//! A flat bitmask over linearized partition colors.
//!
//! Listing 3 of the paper allocates one boolean per sub-collection of the
//! partition being checked. We pack the booleans into `u64` words; the
//! interesting operation is [`test_and_set`](BitMask::test_and_set), which
//! is the inner step of the dynamic check.

/// A fixed-size bitmask indexed by linearized partition color.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMask {
    words: Vec<u64>,
    len: u64,
}

impl BitMask {
    /// Allocate a cleared bitmask of `len` bits.
    pub fn new(len: u64) -> Self {
        let words = vec![0u64; len.div_ceil(64) as usize];
        BitMask { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `idx`.
    ///
    /// # Panics
    /// Panics when `idx >= len` (the dynamic check bounds-checks functor
    /// values *before* touching the mask, mirroring line 13 of Listing 3).
    #[inline]
    pub fn get(&self, idx: u64) -> bool {
        assert!(idx < self.len, "bit {idx} out of range {}", self.len);
        (self.words[(idx / 64) as usize] >> (idx % 64)) & 1 != 0
    }

    /// Set bit `idx`.
    #[inline]
    pub fn set(&mut self, idx: u64) {
        assert!(idx < self.len, "bit {idx} out of range {}", self.len);
        self.words[(idx / 64) as usize] |= 1 << (idx % 64);
    }

    /// Set bit `idx`, returning its previous value — the core of the
    /// duplicate-detection loop.
    #[inline]
    pub fn test_and_set(&mut self, idx: u64) -> bool {
        assert!(idx < self.len, "bit {idx} out of range {}", self.len);
        let word = &mut self.words[(idx / 64) as usize];
        let bit = 1u64 << (idx % 64);
        let was = *word & bit != 0;
        *word |= bit;
        was
    }

    /// Clear every bit (reuse between check phases).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of backing 64-bit words.
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// Read backing word `w`.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Test `mask` against word `w` without writing: returns the overlap
    /// (`word & mask`), nonzero iff any bit of `mask` is already set. This
    /// is the read-side of the word-parallel check: one load and one AND
    /// cover up to 64 colors.
    #[inline]
    pub fn test_word(&self, w: usize, mask: u64) -> u64 {
        self.words[w] & mask
    }

    /// OR `mask` into word `w`, returning the *previous* overlap
    /// (`old & mask`) — a fetch-style word-wide [`test_and_set`]
    /// (BitMask::test_and_set): nonzero result means some bit of `mask`
    /// was already set (a conflict for the write-side check).
    #[inline]
    pub fn fetch_or_word(&mut self, w: usize, mask: u64) -> u64 {
        let word = &mut self.words[w];
        let was = *word & mask;
        *word |= mask;
        was
    }

    /// Merge `other` into `self`, failing on the first word where the two
    /// masks overlap (some bit set in both). Used by the chunked-parallel
    /// check to combine per-chunk masks in deterministic chunk order.
    ///
    /// On `Err`, `self` holds every word before the offending one already
    /// merged; callers treat any error as a conflict and fall back to the
    /// sequential reference check, so partial state is never observed.
    ///
    /// # Panics
    /// Panics when the masks have different lengths.
    pub fn try_union(&mut self, other: &BitMask) -> Result<(), usize> {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (w, (dst, src)) in self.words.iter_mut().zip(&other.words).enumerate() {
            if *dst & *src != 0 {
                return Err(w);
            }
            *dst |= *src;
        }
        Ok(())
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMask::new(130);
        assert_eq!(m.len(), 130);
        assert!(!m.get(0));
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(129);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(129));
        assert!(!m.get(1) && !m.get(65) && !m.get(128));
        assert_eq!(m.count_ones(), 4);
    }

    #[test]
    fn test_and_set_semantics() {
        let mut m = BitMask::new(10);
        assert!(!m.test_and_set(7));
        assert!(m.test_and_set(7));
        assert!(m.get(7));
        assert!(!m.test_and_set(6));
    }

    #[test]
    fn clear_resets() {
        let mut m = BitMask::new(100);
        for i in 0..100 {
            m.set(i);
        }
        assert_eq!(m.count_ones(), 100);
        m.clear();
        assert_eq!(m.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut m = BitMask::new(64);
        m.set(64);
    }

    #[test]
    fn zero_length() {
        let m = BitMask::new(0);
        assert!(m.is_empty());
        assert_eq!(m.count_ones(), 0);
    }

    #[test]
    fn word_ops_match_bit_ops() {
        let mut m = BitMask::new(130);
        // fetch_or_word reports prior overlap only.
        assert_eq!(m.fetch_or_word(0, 0b1010), 0);
        assert_eq!(m.fetch_or_word(0, 0b0110), 0b0010);
        assert!(m.get(1) && m.get(2) && m.get(3));
        assert!(!m.get(0));
        // test_word never writes.
        assert_eq!(m.test_word(0, 0b1000), 0b1000);
        assert_eq!(m.test_word(1, !0), 0);
        assert_eq!(m.count_ones(), 3);
        assert_eq!(m.word_len(), 3);
        assert_eq!(m.word(0), 0b1110);
    }

    #[test]
    fn try_union_merges_or_reports_overlap_word() {
        let mut a = BitMask::new(200);
        let mut b = BitMask::new(200);
        a.set(5);
        a.set(70);
        b.set(6);
        b.set(199);
        assert_eq!(a.try_union(&b), Ok(()));
        assert!(a.get(5) && a.get(6) && a.get(70) && a.get(199));
        let mut c = BitMask::new(200);
        c.set(70);
        assert_eq!(a.try_union(&c), Err(1));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn try_union_length_mismatch_panics() {
        let mut a = BitMask::new(64);
        let b = BitMask::new(65);
        let _ = a.try_union(&b);
    }
}
