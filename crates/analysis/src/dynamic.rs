//! The dynamic projection-functor checks (Listing 3).
//!
//! The dynamic analysis "is a simple loop that evaluates the projection
//! functor at each domain point and determines if it is injective" (§4).
//! Despite its simplicity it is *sound and complete* for injectivity, which
//! is what lets the hybrid design support arbitrary functors. The
//! multi-argument cross-check runs in linear time using a single bitmask
//! per partition: write/reduce arguments are checked first and set bits;
//! read-only arguments are checked afterwards and only test bits.
//!
//! # Fast paths
//!
//! The pointwise loop ([`self_check_reference`] / [`cross_check_reference`])
//! is the semantic definition, but it touches the bitmask one bit at a
//! time. Two fast paths cover the production shapes while provably
//! returning byte-identical [`CheckReport`]s:
//!
//! * **word-parallel** — when the functor's color sequence over a dense
//!   1-D domain decomposes into arithmetic [`ColorRun`]s
//!   ([`ProjExpr::color_runs_1d`]), each run is applied 64 colors at a
//!   time: stride-1 runs fill whole words with range masks, and strided
//!   runs build per-word masks in-register, so conflict detection is one
//!   `(word & mask) != 0` test per word instead of one test per bit;
//! * **chunked-parallel** — functors with no run decomposition (opaque,
//!   true quadratics) over domains with |D| ≥ [`PAR_MIN_VOLUME`] are
//!   scanned in fixed-size chunks ([`PAR_CHUNK`]) across threads, each
//!   chunk filling a private mask; the masks merge in deterministic chunk
//!   order with [`BitMask::try_union`], whose word-overlap test doubles
//!   as cross-chunk conflict detection.
//!
//! Both fast paths handle only the *safe* outcome directly. The moment any
//! overlap is detected they discard their state and re-run the reference
//! check, which early-exits at exactly the first conflicting point — so
//! conflict reports (point, color, eval count) are byte-identical to the
//! reference, and the rerun cost lands only on launches the runtime must
//! serialize anyway.

use crate::bitmask::BitMask;
use crate::proj::{ColorRun, ProjExpr};
use il_geometry::{Domain, DomainPoint};
use std::sync::atomic::{AtomicBool, Ordering};

/// Minimum domain volume for the chunked thread-parallel path: below this
/// the spawn/merge overhead beats the scan itself.
pub const PAR_MIN_VOLUME: u64 = 100_000;

/// Chunk size (in domain points) of the chunked-parallel path. Fixed — not
/// derived from the thread count — so the per-chunk masks, and therefore
/// the merged result, are identical no matter how many threads run.
pub const PAR_CHUNK: u64 = 1 << 15;

/// Outcome of a dynamic check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// All checked accesses are non-interfering: the index launch is safe.
    Safe,
    /// Two accesses selected the same sub-collection.
    Conflict {
        /// Index (into the argument list) of the access that tripped.
        arg: usize,
        /// The launch-domain point whose functor value collided.
        point: DomainPoint,
        /// The colliding color.
        color: DomainPoint,
    },
}

/// Summary of one dynamic check run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckReport {
    /// Safe or the first conflict found (the check exits early, as in
    /// Listing 3).
    pub outcome: CheckOutcome,
    /// Functor evaluations performed (O(|D|) per argument; the runtime
    /// charges simulated time proportional to this).
    pub evals: u64,
    /// Functor values that fell outside the color space. Listing 3 skips
    /// such points (they fail the bounds check on line 13); we count them
    /// so callers can surface the likely program error.
    pub out_of_bounds: u64,
}

impl CheckReport {
    /// True iff the launch was verified safe.
    pub fn is_safe(&self) -> bool {
        self.outcome == CheckOutcome::Safe
    }
}

/// One argument of a multi-argument cross-check.
#[derive(Clone, Debug)]
pub struct ArgCheck<'a> {
    /// Position in the original argument list (for diagnostics).
    pub index: usize,
    /// The argument's projection functor.
    pub functor: &'a ProjExpr,
    /// True for write, read-write, or reduce privileges ("we consider
    /// reductions to be writes for the purposes of these checks", §4).
    pub writes: bool,
}

/// Which implementation a check should use. [`self_check`] and
/// [`cross_check`] always dispatch with [`CheckStrategy::Auto`]; the other
/// variants exist so equivalence tests and benchmarks can pin a path.
#[derive(Clone, Copy, Debug)]
pub enum CheckStrategy {
    /// Production dispatch: word-parallel when the functors decompose into
    /// runs, chunked-parallel for large run-less domains when more than
    /// one hardware thread is available, reference otherwise.
    Auto,
    /// The pointwise per-bit loop (Listing 3 verbatim).
    Reference,
    /// Force the word-parallel run path. Arguments with no run
    /// decomposition fall back to the pointwise loop over the shared
    /// mask; non-1-D shapes make the whole check inapplicable (`None`).
    Word,
    /// Force the chunked-parallel path with an explicit chunk size and
    /// thread count (both clamped to ≥ 1). `None` on non-1-D shapes.
    Chunked {
        /// Points per chunk (determinism requires callers comparing runs
        /// to hold this fixed while varying `threads`).
        chunk: u64,
        /// Worker threads to scan chunks with.
        threads: usize,
    },
}

/// Self-check of a single argument: is `functor` injective over `domain`,
/// with values landing inside `color_bounds` (the partition's color
/// space)? Semantically exactly the generated code of Listing 3, routed
/// through the fastest applicable implementation.
pub fn self_check(domain: &Domain, functor: &ProjExpr, color_bounds: &Domain) -> CheckReport {
    self_check_with(domain, functor, color_bounds, CheckStrategy::Auto)
        .expect("Auto strategy always applies")
}

/// Cross-check of multiple arguments sharing one (disjoint) partition.
///
/// Uses a single bitmask: all write/reduce arguments are processed before
/// any read-only argument; writers set bits (catching write–write
/// conflicts, including non-injectivity of a single writer), readers only
/// test them (catching write–read conflicts without making read–read
/// sharing a false positive). This is the linear-time algorithm of §4,
/// routed through the fastest applicable implementation.
pub fn cross_check(domain: &Domain, args: &[ArgCheck<'_>], color_bounds: &Domain) -> CheckReport {
    cross_check_with(domain, args, color_bounds, CheckStrategy::Auto)
        .expect("Auto strategy always applies")
}

/// [`self_check`] with an explicit [`CheckStrategy`]. Returns `None` when
/// the forced strategy does not apply to the given shapes.
pub fn self_check_with(
    domain: &Domain,
    functor: &ProjExpr,
    color_bounds: &Domain,
    strategy: CheckStrategy,
) -> Option<CheckReport> {
    let args = [ArgCheck { index: 0, functor, writes: true }];
    match strategy {
        CheckStrategy::Reference => Some(self_check_reference(domain, functor, color_bounds)),
        CheckStrategy::Auto => {
            let threads = default_threads();
            let mode = FastMode::Auto { threads };
            fast_check(domain, &args, color_bounds, mode, SelfRef)
                .unwrap_or_else(|| Some(self_check_reference(domain, functor, color_bounds)))
        }
        CheckStrategy::Word => fast_check(domain, &args, color_bounds, FastMode::Word, SelfRef)?,
        CheckStrategy::Chunked { chunk, threads } => {
            let mode = FastMode::Chunked { chunk: chunk.max(1), threads: threads.max(1) };
            fast_check(domain, &args, color_bounds, mode, SelfRef)?
        }
    }
}

/// [`cross_check`] with an explicit [`CheckStrategy`]. Returns `None` when
/// the forced strategy does not apply to the given shapes.
pub fn cross_check_with(
    domain: &Domain,
    args: &[ArgCheck<'_>],
    color_bounds: &Domain,
    strategy: CheckStrategy,
) -> Option<CheckReport> {
    match strategy {
        CheckStrategy::Reference => Some(cross_check_reference(domain, args, color_bounds)),
        CheckStrategy::Auto => {
            let threads = default_threads();
            let mode = FastMode::Auto { threads };
            fast_check(domain, args, color_bounds, mode, CrossRef)
                .unwrap_or_else(|| Some(cross_check_reference(domain, args, color_bounds)))
        }
        CheckStrategy::Word => fast_check(domain, args, color_bounds, FastMode::Word, CrossRef)?,
        CheckStrategy::Chunked { chunk, threads } => {
            let mode = FastMode::Chunked { chunk: chunk.max(1), threads: threads.max(1) };
            fast_check(domain, args, color_bounds, mode, CrossRef)?
        }
    }
}

/// The pointwise self-check — Listing 3 verbatim, one bitmask bit per
/// functor evaluation. This is the semantic oracle every fast path is
/// tested against, and the path conflicts are re-run through so their
/// reports stay byte-identical.
pub fn self_check_reference(
    domain: &Domain,
    functor: &ProjExpr,
    color_bounds: &Domain,
) -> CheckReport {
    let volume = color_bounds.bbox_volume();
    let mut bitmask = BitMask::new(volume);
    let mut evals = 0u64;
    let mut oob = 0u64;
    // Dense 1-D case (the shape of Tables 2–3): iterate raw coordinates
    // and linearize inline.
    if let (Domain::Rect1(d), Domain::Rect1(c)) = (domain, color_bounds) {
        let (clo, chi) = (c.lo[0], c.hi[0]);
        for i in d.lo[0]..=d.hi[0] {
            let color = functor.eval(DomainPoint::new1(i));
            evals += 1;
            let v = color.x();
            if v < clo || v > chi {
                oob += 1;
                continue;
            }
            if bitmask.test_and_set((v - clo) as u64) {
                return CheckReport {
                    outcome: CheckOutcome::Conflict {
                        arg: 0,
                        point: DomainPoint::new1(i),
                        color,
                    },
                    evals,
                    out_of_bounds: oob,
                };
            }
        }
        return CheckReport { outcome: CheckOutcome::Safe, evals, out_of_bounds: oob };
    }
    for point in domain.iter() {
        let color = functor.eval(point);
        evals += 1;
        // Bounds check (line 13 of Listing 3): skip out-of-range values.
        match color_bounds.linearize(color) {
            Some(value) => {
                if bitmask.test_and_set(value) {
                    return CheckReport {
                        outcome: CheckOutcome::Conflict { arg: 0, point, color },
                        evals,
                        out_of_bounds: oob,
                    };
                }
            }
            None => oob += 1,
        }
    }
    CheckReport {
        outcome: CheckOutcome::Safe,
        evals,
        out_of_bounds: oob,
    }
}

/// The pointwise cross-check (see [`cross_check`] for the algorithm) —
/// the semantic oracle for the fast cross-check paths.
pub fn cross_check_reference(
    domain: &Domain,
    args: &[ArgCheck<'_>],
    color_bounds: &Domain,
) -> CheckReport {
    let volume = color_bounds.bbox_volume();
    let mut bitmask = BitMask::new(volume);
    let mut evals = 0u64;
    let mut oob = 0u64;

    // Writers first, then readers; stable within each class.
    let mut ordered: Vec<&ArgCheck<'_>> = args.iter().filter(|a| a.writes).collect();
    ordered.extend(args.iter().filter(|a| !a.writes));

    for arg in ordered {
        for point in domain.iter() {
            let color = arg.functor.eval(point);
            evals += 1;
            let Some(value) = color_bounds.linearize(color) else {
                oob += 1;
                continue;
            };
            if arg.writes {
                if bitmask.test_and_set(value) {
                    return CheckReport {
                        outcome: CheckOutcome::Conflict { arg: arg.index, point, color },
                        evals,
                        out_of_bounds: oob,
                    };
                }
            } else if bitmask.get(value) {
                return CheckReport {
                    outcome: CheckOutcome::Conflict { arg: arg.index, point, color },
                    evals,
                    out_of_bounds: oob,
                };
            }
        }
    }
    CheckReport {
        outcome: CheckOutcome::Safe,
        evals,
        out_of_bounds: oob,
    }
}

// ---------------------------------------------------------------------------
// Fast-path machinery.

/// How `fast_check` picks a per-argument implementation.
#[derive(Clone, Copy)]
enum FastMode {
    /// Runs when available, chunked for big run-less args when threads
    /// allow, pointwise otherwise.
    Auto {
        /// Hardware threads available for the chunked path.
        threads: usize,
    },
    /// Runs when available, pointwise otherwise (never chunks).
    Word,
    /// Chunked for every argument (never uses runs).
    Chunked { chunk: u64, threads: usize },
}

/// Marker passed to `fast_check` telling it which reference function to
/// re-run on conflict, so conflict reports are byte-identical to the
/// public entry point the caller came through.
#[derive(Clone, Copy)]
struct SelfRef;
#[derive(Clone, Copy)]
struct CrossRef;

trait ConflictRerun: Copy {
    fn rerun(self, domain: &Domain, args: &[ArgCheck<'_>], colors: &Domain) -> CheckReport;
}

impl ConflictRerun for SelfRef {
    fn rerun(self, domain: &Domain, args: &[ArgCheck<'_>], colors: &Domain) -> CheckReport {
        self_check_reference(domain, args[0].functor, colors)
    }
}

impl ConflictRerun for CrossRef {
    fn rerun(self, domain: &Domain, args: &[ArgCheck<'_>], colors: &Domain) -> CheckReport {
        cross_check_reference(domain, args, colors)
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Shared fast-path driver for self- and cross-checks over dense 1-D
/// domains. Outer `None` = the shapes don't admit any fast path (caller
/// decides whether that is an error or a cue to use the reference).
fn fast_check<R: ConflictRerun>(
    domain: &Domain,
    args: &[ArgCheck<'_>],
    colors: &Domain,
    mode: FastMode,
    rerun: R,
) -> Option<Option<CheckReport>> {
    let (Domain::Rect1(d), Domain::Rect1(c)) = (domain, colors) else {
        return match mode {
            // Forced fast strategies are inapplicable off the 1-D shape.
            FastMode::Word | FastMode::Chunked { .. } => Some(None),
            FastMode::Auto { .. } => None,
        };
    };
    let (dlo, dhi) = (d.lo[0], d.hi[0]);
    let (clo, chi) = (c.lo[0], c.hi[0]);
    if dlo > dhi {
        return Some(Some(rerun.rerun(domain, args, colors)));
    }
    let points = (dhi as i128 - dlo as i128 + 1) as u64;
    let volume = colors.bbox_volume();
    let mut mask = BitMask::new(volume);
    let mut evals = 0u64;
    let mut oob = 0u64;

    let mut ordered: Vec<&ArgCheck<'_>> = args.iter().filter(|a| a.writes).collect();
    ordered.extend(args.iter().filter(|a| !a.writes));

    for arg in ordered {
        let runs = match mode {
            FastMode::Chunked { .. } => None,
            FastMode::Auto { .. } | FastMode::Word => arg.functor.color_runs_1d(dlo, dhi),
        };
        if let Some(runs) = runs {
            for run in &runs {
                match apply_run(&mut mask, run, clo, chi, arg.writes) {
                    Some(run_oob) => {
                        evals += run.count;
                        oob += run_oob;
                    }
                    None => return Some(Some(rerun.rerun(domain, args, colors))),
                }
            }
            continue;
        }
        let chunked = match mode {
            FastMode::Chunked { chunk, threads } => Some((chunk, threads)),
            FastMode::Auto { threads } if points >= PAR_MIN_VOLUME && threads > 1 => {
                Some((PAR_CHUNK, threads))
            }
            _ => None,
        };
        let Some((chunk, threads)) = chunked else {
            // Pointwise over the shared mask, exactly as the reference
            // would scan this argument.
            for i in dlo..=dhi {
                let v = arg.functor.eval(DomainPoint::new1(i)).x();
                evals += 1;
                if v < clo || v > chi {
                    oob += 1;
                    continue;
                }
                let bit = (v - clo) as u64;
                let hit = if arg.writes { mask.test_and_set(bit) } else { mask.get(bit) };
                if hit {
                    return Some(Some(rerun.rerun(domain, args, colors)));
                }
            }
            continue;
        };
        let scans = scan_chunks(dlo, dhi, arg.functor, clo, chi, volume, chunk, threads, {
            if arg.writes { None } else { Some(&mask) }
        });
        // Deterministic chunk-order merge.
        for scan in scans {
            let Some(scan) = scan else {
                // A sibling chunk conflicted and this one was skipped.
                return Some(Some(rerun.rerun(domain, args, colors)));
            };
            if scan.conflict {
                return Some(Some(rerun.rerun(domain, args, colors)));
            }
            if arg.writes {
                if mask.try_union(&scan.mask).is_err() {
                    return Some(Some(rerun.rerun(domain, args, colors)));
                }
            }
            evals += scan.evals;
            oob += scan.oob;
        }
    }
    Some(Some(CheckReport { outcome: CheckOutcome::Safe, evals, out_of_bounds: oob }))
}

/// One chunk's scan result. For writer arguments `mask` holds the chunk's
/// private bits (merged later); reader chunks only test the global mask
/// and leave `mask` empty.
struct ChunkScan {
    mask: BitMask,
    conflict: bool,
    evals: u64,
    oob: u64,
}

/// Scan `dlo..=dhi` in fixed chunks of `chunk` points across `threads`
/// workers. `global` is `Some` for reader arguments (test-only against the
/// writers' bits); `None` for writer arguments (fill a private mask per
/// chunk). Chunks are striped across workers but results come back indexed
/// by chunk, so the caller's in-order merge is thread-count independent.
#[allow(clippy::too_many_arguments)]
fn scan_chunks(
    dlo: i64,
    dhi: i64,
    functor: &ProjExpr,
    clo: i64,
    chi: i64,
    volume: u64,
    chunk: u64,
    threads: usize,
    global: Option<&BitMask>,
) -> Vec<Option<ChunkScan>> {
    let points = (dhi as i128 - dlo as i128 + 1) as u64;
    let nchunks = points.div_ceil(chunk) as usize;
    let workers = threads.min(nchunks).max(1);
    let stop = AtomicBool::new(false);
    let mut scans: Vec<Option<ChunkScan>> = (0..nchunks).map(|_| None).collect();
    std::thread::scope(|s| {
        let stop = &stop;
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut idx = t;
                    while idx < nchunks && !stop.load(Ordering::Relaxed) {
                        let lo = (dlo as i128 + idx as i128 * chunk as i128) as i64;
                        let hi = (lo as i128 + chunk as i128 - 1).min(dhi as i128) as i64;
                        let scan = scan_one_chunk(lo, hi, functor, clo, chi, volume, global);
                        if scan.conflict {
                            // Early exit: no point scanning further chunks
                            // once a rerun of the reference is inevitable.
                            stop.store(true, Ordering::Relaxed);
                        }
                        out.push((idx, scan));
                        idx += workers;
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for (idx, scan) in handle.join().expect("chunk worker panicked") {
                scans[idx] = Some(scan);
            }
        }
    });
    scans
}

fn scan_one_chunk(
    lo: i64,
    hi: i64,
    functor: &ProjExpr,
    clo: i64,
    chi: i64,
    volume: u64,
    global: Option<&BitMask>,
) -> ChunkScan {
    let mut mask = BitMask::new(if global.is_some() { 0 } else { volume });
    let mut evals = 0u64;
    let mut oob = 0u64;
    let mut conflict = false;
    for i in lo..=hi {
        let v = functor.eval(DomainPoint::new1(i)).x();
        evals += 1;
        if v < clo || v > chi {
            oob += 1;
            continue;
        }
        let bit = (v - clo) as u64;
        let hit = match global {
            Some(g) => g.get(bit),
            None => mask.test_and_set(bit),
        };
        if hit {
            conflict = true;
            break;
        }
    }
    ChunkScan { mask, conflict, evals, oob }
}

/// Apply one color run to the mask with word-wide operations. Returns
/// `Some(out_of_bounds)` when the run applied cleanly (its in-bounds
/// colors were all fresh for writers / all unset for readers), `None` on
/// any overlap — the caller then re-runs the reference check.
fn apply_run(mask: &mut BitMask, run: &ColorRun, clo: i64, chi: i64, write: bool) -> Option<u64> {
    if run.count == 0 {
        return Some(0);
    }
    if run.stride == 0 {
        if run.start < clo || run.start > chi {
            return Some(run.count);
        }
        let bit = (run.start - clo) as u64;
        if write {
            // Every point of the run maps to the same color: with more
            // than one point the run conflicts with itself.
            if mask.test_and_set(bit) || run.count > 1 {
                return None;
            }
        } else if mask.get(bit) {
            return None;
        }
        return Some(0);
    }
    // Clip the run's k-range to colors inside [clo, chi]:
    //   clo ≤ start + k·stride ≤ chi,  0 ≤ k < count.
    let (start, stride) = (run.start as i128, run.stride as i128);
    let (klo, khi) = if stride > 0 {
        (div_ceil(clo as i128 - start, stride), div_floor(chi as i128 - start, stride))
    } else {
        (div_ceil(chi as i128 - start, stride), div_floor(clo as i128 - start, stride))
    };
    let klo = klo.max(0);
    let khi = khi.min(run.count as i128 - 1);
    if klo > khi {
        return Some(run.count);
    }
    let n = (khi - klo + 1) as u64;
    let oob = run.count - n;
    let first = start + klo * stride;
    let last = start + khi * stride;
    let base = (first.min(last) - clo as i128) as u64;
    if apply_ap(mask, base, run.stride.unsigned_abs(), n, write) {
        None
    } else {
        Some(oob)
    }
}

/// Set (writers) or test (readers) the arithmetic bit progression
/// `base, base+s, …, base+(n-1)·s`, whole words at a time. Returns true on
/// overlap with already-set bits.
fn apply_ap(mask: &mut BitMask, base: u64, s: u64, n: u64, write: bool) -> bool {
    debug_assert!(s >= 1 && n >= 1);
    let end = base + (n - 1) * s;
    let (w0, w1) = ((base / 64) as usize, (end / 64) as usize);
    fn op(mask: &mut BitMask, w: usize, m: u64, write: bool) -> bool {
        if write {
            mask.fetch_or_word(w, m) != 0
        } else {
            mask.test_word(w, m) != 0
        }
    }
    if s == 1 {
        // Contiguous range: full-word fills between partial head and tail.
        let head = !0u64 << (base % 64);
        let tail = !0u64 >> (63 - end % 64);
        if w0 == w1 {
            return op(mask, w0, head & tail, write);
        }
        if op(mask, w0, head, write) {
            return true;
        }
        for w in w0 + 1..w1 {
            if op(mask, w, !0u64, write) {
                return true;
            }
        }
        return op(mask, w1, tail, write);
    }
    if s <= 64 && 64 % s == 0 {
        // The stride divides the word size, so the in-word bit pattern
        // (positions ≡ base mod s) is identical in every word.
        let mut pat = 0u64;
        let mut p = base % s;
        while p < 64 {
            pat |= 1 << p;
            p += s;
        }
        let head = pat & (!0u64 << (base % 64));
        let tail = pat & (!0u64 >> (63 - end % 64));
        if w0 == w1 {
            return op(mask, w0, head & tail, write);
        }
        if op(mask, w0, head, write) {
            return true;
        }
        for w in w0 + 1..w1 {
            if op(mask, w, pat, write) {
                return true;
            }
        }
        return op(mask, w1, tail, write);
    }
    // General stride: accumulate each word's mask in-register, then one
    // word op per word.
    let mut bit = base;
    while bit <= end {
        let w = (bit / 64) as usize;
        let mut m = 0u64;
        while bit <= end && (bit / 64) as usize == w {
            m |= 1 << (bit % 64);
            bit += s;
        }
        if op(mask, w, m, write) {
            return true;
        }
    }
    false
}

fn div_floor(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && (a < 0) == (b < 0) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_geometry::Rect;

    fn d1(n: i64) -> Domain {
        Domain::range(n)
    }

    #[test]
    fn identity_self_check_safe() {
        let r = self_check(&d1(100), &ProjExpr::Identity, &d1(100));
        assert!(r.is_safe());
        assert_eq!(r.evals, 100);
        assert_eq!(r.out_of_bounds, 0);
    }

    #[test]
    fn listing2_modular_conflict() {
        // i % 3 over [0,5): conflict at i = 3 (color 0 already taken).
        let f = ProjExpr::Modular { a: 1, b: 0, m: 3 };
        let r = self_check(&d1(5), &f, &d1(3));
        assert_eq!(
            r.outcome,
            CheckOutcome::Conflict {
                arg: 0,
                point: DomainPoint::new1(3),
                color: DomainPoint::new1(0),
            }
        );
        // Early exit: evaluated 0,1,2,3 only.
        assert_eq!(r.evals, 4);
    }

    #[test]
    fn out_of_bounds_skipped_and_counted() {
        // f(i) = i + 8 over [0,5) with colors [0,10): 13,14 evals fall out? No:
        // values 8..12; colors 0..9 -> i=2,3,4 give 10,11,12 out of bounds.
        let f = ProjExpr::linear(1, 8);
        let r = self_check(&d1(5), &f, &d1(10));
        assert!(r.is_safe());
        assert_eq!(r.out_of_bounds, 3);
    }

    #[test]
    fn quadratic_safe_case() {
        // i² over [0,10): injective.
        let f = ProjExpr::Quadratic { a: 1, b: 0, c: 0 };
        let r = self_check(&d1(10), &f, &d1(100));
        assert!(r.is_safe());
    }

    #[test]
    fn dom_sweep_functor_on_diagonal_slice() {
        // A 3-D diagonal slice (x+y+z = const) projected to the (x,y)
        // plane is injective iff no duplicate (x,y) pairs — true for a
        // proper wavefront (§6.2.3).
        let slice = Domain::sparse(vec![
            DomainPoint::new3(0, 0, 2),
            DomainPoint::new3(0, 1, 1),
            DomainPoint::new3(1, 0, 1),
            DomainPoint::new3(1, 1, 0),
            DomainPoint::new3(0, 2, 0),
            DomainPoint::new3(2, 0, 0),
        ]);
        let plane: Domain = Rect::new2((0, 0), (2, 2)).into();
        let f = ProjExpr::Swizzle(vec![0, 1]);
        assert!(self_check(&slice, &f, &plane).is_safe());

        // A bogus "slice" with duplicate (x,y): caught.
        let bad = Domain::sparse(vec![
            DomainPoint::new3(0, 0, 0),
            DomainPoint::new3(0, 0, 1),
        ]);
        let r = self_check(&bad, &f, &plane);
        assert!(!r.is_safe());
    }

    #[test]
    fn cross_check_write_then_reads_safe() {
        // Writer on even colors, readers on odd colors: disjoint images.
        let w = ProjExpr::linear(2, 0);
        let r1 = ProjExpr::linear(2, 1);
        let r2 = ProjExpr::linear(2, 1);
        let args = [
            ArgCheck { index: 0, functor: &w, writes: true },
            ArgCheck { index: 1, functor: &r1, writes: false },
            ArgCheck { index: 2, functor: &r2, writes: false },
        ];
        let rep = cross_check(&d1(10), &args, &d1(20));
        assert!(rep.is_safe());
        assert_eq!(rep.evals, 30);
    }

    #[test]
    fn cross_check_read_sharing_is_fine() {
        // Two readers with identical images: no conflict (reads don't set).
        let f = ProjExpr::Identity;
        let g = ProjExpr::Identity;
        let args = [
            ArgCheck { index: 0, functor: &f, writes: false },
            ArgCheck { index: 1, functor: &g, writes: false },
        ];
        assert!(cross_check(&d1(8), &args, &d1(8)).is_safe());
    }

    #[test]
    fn cross_check_write_read_overlap_caught() {
        // Writer i -> i; reader i -> i+1: reader at i hits writer's i+1.
        let w = ProjExpr::Identity;
        let r = ProjExpr::linear(1, 1);
        let args = [
            ArgCheck { index: 0, functor: &w, writes: true },
            ArgCheck { index: 1, functor: &r, writes: false },
        ];
        let rep = cross_check(&d1(8), &args, &d1(9));
        assert_eq!(
            rep.outcome,
            CheckOutcome::Conflict {
                arg: 1,
                point: DomainPoint::new1(0),
                color: DomainPoint::new1(1),
            }
        );
    }

    #[test]
    fn cross_check_order_is_writers_first() {
        // Reader listed first, writer second — writer still checked first,
        // so the overlap is attributed to the reader pass.
        let r = ProjExpr::Identity;
        let w = ProjExpr::Identity;
        let args = [
            ArgCheck { index: 0, functor: &r, writes: false },
            ArgCheck { index: 1, functor: &w, writes: true },
        ];
        let rep = cross_check(&d1(4), &args, &d1(4));
        assert_eq!(
            rep.outcome,
            CheckOutcome::Conflict {
                arg: 0,
                point: DomainPoint::new1(0),
                color: DomainPoint::new1(0),
            }
        );
    }

    #[test]
    fn cross_check_write_write_self_conflict() {
        // A single non-injective writer is caught by the same bitmask.
        let f = ProjExpr::Modular { a: 1, b: 0, m: 4 };
        let args = [ArgCheck { index: 0, functor: &f, writes: true }];
        let rep = cross_check(&d1(6), &args, &d1(4));
        assert!(!rep.is_safe());
    }

    #[test]
    fn brute_force_agreement() {
        // The bitmask cross-check must agree with a quadratic pairwise
        // oracle on a batch of small scenarios.
        use std::collections::HashSet;
        let functors = [
            ProjExpr::Identity,
            ProjExpr::linear(1, 3),
            ProjExpr::linear(2, 0),
            ProjExpr::Modular { a: 1, b: 0, m: 5 },
            ProjExpr::Quadratic { a: 1, b: 0, c: 0 },
        ];
        let dom = d1(6);
        let colors = d1(40);
        for wi in 0..functors.len() {
            for ri in 0..functors.len() {
                let args = [
                    ArgCheck { index: 0, functor: &functors[wi], writes: true },
                    ArgCheck { index: 1, functor: &functors[ri], writes: false },
                ];
                let got = cross_check(&dom, &args, &colors).is_safe();
                // Oracle: writer must be injective in-bounds, and reader
                // image must avoid writer image.
                let mut wset = HashSet::new();
                let mut winj = true;
                for p in dom.iter() {
                    let c = functors[wi].eval(p);
                    if colors.linearize(c).is_some() && !wset.insert(c) {
                        winj = false;
                    }
                }
                let roverlap = dom.iter().any(|p| {
                    let c = functors[ri].eval(p);
                    colors.linearize(c).is_some() && wset.contains(&c)
                });
                let expect = winj && !roverlap;
                assert_eq!(got, expect, "w={wi} r={ri}");
            }
        }
    }

    // ------------------------------------------------------------------
    // Fast-path equivalence (thorough randomized coverage lives in
    // crates/analysis/tests/bitmask_props.rs; these pin the basics).

    fn all_strategies() -> [CheckStrategy; 5] {
        [
            CheckStrategy::Auto,
            CheckStrategy::Reference,
            CheckStrategy::Word,
            CheckStrategy::Chunked { chunk: 7, threads: 1 },
            CheckStrategy::Chunked { chunk: 16, threads: 3 },
        ]
    }

    #[test]
    fn strategies_agree_on_self_checks() {
        let functors = [
            ProjExpr::Identity,
            ProjExpr::linear(2, 5),
            ProjExpr::linear(-3, 200),
            ProjExpr::Modular { a: 1, b: 0, m: 37 },
            ProjExpr::Modular { a: -4, b: 9, m: 11 },
            ProjExpr::Quadratic { a: 1, b: 0, c: 0 },
            ProjExpr::opaque(|p| DomainPoint::new1(p.x() * 3 + 1)),
            ProjExpr::Constant(DomainPoint::new1(4)),
        ];
        for f in &functors {
            for (n, colors) in [(1, 16), (64, 64), (100, 300), (129, 64), (257, 1024)] {
                let expect = self_check_reference(&d1(n), f, &d1(colors));
                for strat in all_strategies() {
                    if let Some(got) = self_check_with(&d1(n), f, &d1(colors), strat) {
                        assert_eq!(got, expect, "{f:?} n={n} colors={colors} {strat:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn strategies_agree_on_cross_checks() {
        let w = ProjExpr::linear(2, 0);
        let r1 = ProjExpr::linear(2, 1);
        let r2 = ProjExpr::opaque(|p| DomainPoint::new1(p.x() * 2 + 1));
        let args = [
            ArgCheck { index: 0, functor: &w, writes: true },
            ArgCheck { index: 1, functor: &r1, writes: false },
            ArgCheck { index: 2, functor: &r2, writes: false },
        ];
        for n in [1, 63, 64, 65, 200] {
            let expect = cross_check_reference(&d1(n), &args, &d1(2 * n + 2));
            for strat in all_strategies() {
                if let Some(got) = cross_check_with(&d1(n), &args, &d1(2 * n + 2), strat) {
                    assert_eq!(got, expect, "n={n} {strat:?}");
                }
            }
        }
    }

    #[test]
    fn forced_strategies_refuse_non_1d_shapes() {
        let plane: Domain = Rect::new2((0, 0), (3, 3)).into();
        let f = ProjExpr::Swizzle(vec![0, 1]);
        assert!(self_check_with(&plane, &f, &plane, CheckStrategy::Word).is_none());
        let strat = CheckStrategy::Chunked { chunk: 4, threads: 2 };
        assert!(self_check_with(&plane, &f, &plane, strat).is_none());
        // Auto still answers (via the generic reference loop).
        assert!(self_check_with(&plane, &f, &plane, CheckStrategy::Auto).is_some());
    }

    #[test]
    fn word_path_conflict_report_is_reference_exact() {
        // Modular wrap conflict: word path detects overlap, falls back,
        // and must reproduce the reference's early-exit report exactly.
        let f = ProjExpr::Modular { a: 1, b: 0, m: 3 };
        let expect = self_check_reference(&d1(5), &f, &d1(3));
        let got = self_check_with(&d1(5), &f, &d1(3), CheckStrategy::Word).unwrap();
        assert_eq!(got, expect);
        assert_eq!(got.evals, 4);
    }
}
