//! The dynamic projection-functor checks (Listing 3).
//!
//! The dynamic analysis "is a simple loop that evaluates the projection
//! functor at each domain point and determines if it is injective" (§4).
//! Despite its simplicity it is *sound and complete* for injectivity, which
//! is what lets the hybrid design support arbitrary functors. The
//! multi-argument cross-check runs in linear time using a single bitmask
//! per partition: write/reduce arguments are checked first and set bits;
//! read-only arguments are checked afterwards and only test bits.

use crate::bitmask::BitMask;
use crate::proj::ProjExpr;
use il_geometry::{Domain, DomainPoint};

/// Outcome of a dynamic check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// All checked accesses are non-interfering: the index launch is safe.
    Safe,
    /// Two accesses selected the same sub-collection.
    Conflict {
        /// Index (into the argument list) of the access that tripped.
        arg: usize,
        /// The launch-domain point whose functor value collided.
        point: DomainPoint,
        /// The colliding color.
        color: DomainPoint,
    },
}

/// Summary of one dynamic check run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckReport {
    /// Safe or the first conflict found (the check exits early, as in
    /// Listing 3).
    pub outcome: CheckOutcome,
    /// Functor evaluations performed (O(|D|) per argument; the runtime
    /// charges simulated time proportional to this).
    pub evals: u64,
    /// Functor values that fell outside the color space. Listing 3 skips
    /// such points (they fail the bounds check on line 13); we count them
    /// so callers can surface the likely program error.
    pub out_of_bounds: u64,
}

impl CheckReport {
    /// True iff the launch was verified safe.
    pub fn is_safe(&self) -> bool {
        self.outcome == CheckOutcome::Safe
    }
}

/// One argument of a multi-argument cross-check.
#[derive(Clone, Debug)]
pub struct ArgCheck<'a> {
    /// Position in the original argument list (for diagnostics).
    pub index: usize,
    /// The argument's projection functor.
    pub functor: &'a ProjExpr,
    /// True for write, read-write, or reduce privileges ("we consider
    /// reductions to be writes for the purposes of these checks", §4).
    pub writes: bool,
}

/// Self-check of a single argument: is `functor` injective over `domain`,
/// with values landing inside `color_bounds` (the partition's color
/// space)? This is exactly the generated code of Listing 3.
pub fn self_check(domain: &Domain, functor: &ProjExpr, color_bounds: &Domain) -> CheckReport {
    let volume = color_bounds.bbox_volume();
    let mut bitmask = BitMask::new(volume);
    let mut evals = 0u64;
    let mut oob = 0u64;
    // Fast path for the overwhelmingly common dense 1-D case (the shape
    // of Tables 2–3): iterate raw coordinates and linearize inline.
    if let (Domain::Rect1(d), Domain::Rect1(c)) = (domain, color_bounds) {
        let (clo, chi) = (c.lo[0], c.hi[0]);
        for i in d.lo[0]..=d.hi[0] {
            let color = functor.eval(DomainPoint::new1(i));
            evals += 1;
            let v = color.x();
            if v < clo || v > chi {
                oob += 1;
                continue;
            }
            if bitmask.test_and_set((v - clo) as u64) {
                return CheckReport {
                    outcome: CheckOutcome::Conflict {
                        arg: 0,
                        point: DomainPoint::new1(i),
                        color,
                    },
                    evals,
                    out_of_bounds: oob,
                };
            }
        }
        return CheckReport { outcome: CheckOutcome::Safe, evals, out_of_bounds: oob };
    }
    for point in domain.iter() {
        let color = functor.eval(point);
        evals += 1;
        // Bounds check (line 13 of Listing 3): skip out-of-range values.
        match color_bounds.linearize(color) {
            Some(value) => {
                if bitmask.test_and_set(value) {
                    return CheckReport {
                        outcome: CheckOutcome::Conflict { arg: 0, point, color },
                        evals,
                        out_of_bounds: oob,
                    };
                }
            }
            None => oob += 1,
        }
    }
    CheckReport {
        outcome: CheckOutcome::Safe,
        evals,
        out_of_bounds: oob,
    }
}

/// Cross-check of multiple arguments sharing one (disjoint) partition.
///
/// Uses a single bitmask: all write/reduce arguments are processed before
/// any read-only argument; writers set bits (catching write–write
/// conflicts, including non-injectivity of a single writer), readers only
/// test them (catching write–read conflicts without making read–read
/// sharing a false positive). This is the linear-time algorithm of §4.
pub fn cross_check(domain: &Domain, args: &[ArgCheck<'_>], color_bounds: &Domain) -> CheckReport {
    let volume = color_bounds.bbox_volume();
    let mut bitmask = BitMask::new(volume);
    let mut evals = 0u64;
    let mut oob = 0u64;

    // Writers first, then readers; stable within each class.
    let mut ordered: Vec<&ArgCheck<'_>> = args.iter().filter(|a| a.writes).collect();
    ordered.extend(args.iter().filter(|a| !a.writes));

    for arg in ordered {
        for point in domain.iter() {
            let color = arg.functor.eval(point);
            evals += 1;
            let Some(value) = color_bounds.linearize(color) else {
                oob += 1;
                continue;
            };
            if arg.writes {
                if bitmask.test_and_set(value) {
                    return CheckReport {
                        outcome: CheckOutcome::Conflict { arg: arg.index, point, color },
                        evals,
                        out_of_bounds: oob,
                    };
                }
            } else if bitmask.get(value) {
                return CheckReport {
                    outcome: CheckOutcome::Conflict { arg: arg.index, point, color },
                    evals,
                    out_of_bounds: oob,
                };
            }
        }
    }
    CheckReport {
        outcome: CheckOutcome::Safe,
        evals,
        out_of_bounds: oob,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_geometry::Rect;

    fn d1(n: i64) -> Domain {
        Domain::range(n)
    }

    #[test]
    fn identity_self_check_safe() {
        let r = self_check(&d1(100), &ProjExpr::Identity, &d1(100));
        assert!(r.is_safe());
        assert_eq!(r.evals, 100);
        assert_eq!(r.out_of_bounds, 0);
    }

    #[test]
    fn listing2_modular_conflict() {
        // i % 3 over [0,5): conflict at i = 3 (color 0 already taken).
        let f = ProjExpr::Modular { a: 1, b: 0, m: 3 };
        let r = self_check(&d1(5), &f, &d1(3));
        assert_eq!(
            r.outcome,
            CheckOutcome::Conflict {
                arg: 0,
                point: DomainPoint::new1(3),
                color: DomainPoint::new1(0),
            }
        );
        // Early exit: evaluated 0,1,2,3 only.
        assert_eq!(r.evals, 4);
    }

    #[test]
    fn out_of_bounds_skipped_and_counted() {
        // f(i) = i + 8 over [0,5) with colors [0,10): 13,14 evals fall out? No:
        // values 8..12; colors 0..9 -> i=2,3,4 give 10,11,12 out of bounds.
        let f = ProjExpr::linear(1, 8);
        let r = self_check(&d1(5), &f, &d1(10));
        assert!(r.is_safe());
        assert_eq!(r.out_of_bounds, 3);
    }

    #[test]
    fn quadratic_safe_case() {
        // i² over [0,10): injective.
        let f = ProjExpr::Quadratic { a: 1, b: 0, c: 0 };
        let r = self_check(&d1(10), &f, &d1(100));
        assert!(r.is_safe());
    }

    #[test]
    fn dom_sweep_functor_on_diagonal_slice() {
        // A 3-D diagonal slice (x+y+z = const) projected to the (x,y)
        // plane is injective iff no duplicate (x,y) pairs — true for a
        // proper wavefront (§6.2.3).
        let slice = Domain::sparse(vec![
            DomainPoint::new3(0, 0, 2),
            DomainPoint::new3(0, 1, 1),
            DomainPoint::new3(1, 0, 1),
            DomainPoint::new3(1, 1, 0),
            DomainPoint::new3(0, 2, 0),
            DomainPoint::new3(2, 0, 0),
        ]);
        let plane: Domain = Rect::new2((0, 0), (2, 2)).into();
        let f = ProjExpr::Swizzle(vec![0, 1]);
        assert!(self_check(&slice, &f, &plane).is_safe());

        // A bogus "slice" with duplicate (x,y): caught.
        let bad = Domain::sparse(vec![
            DomainPoint::new3(0, 0, 0),
            DomainPoint::new3(0, 0, 1),
        ]);
        let r = self_check(&bad, &f, &plane);
        assert!(!r.is_safe());
    }

    #[test]
    fn cross_check_write_then_reads_safe() {
        // Writer on even colors, readers on odd colors: disjoint images.
        let w = ProjExpr::linear(2, 0);
        let r1 = ProjExpr::linear(2, 1);
        let r2 = ProjExpr::linear(2, 1);
        let args = [
            ArgCheck { index: 0, functor: &w, writes: true },
            ArgCheck { index: 1, functor: &r1, writes: false },
            ArgCheck { index: 2, functor: &r2, writes: false },
        ];
        let rep = cross_check(&d1(10), &args, &d1(20));
        assert!(rep.is_safe());
        assert_eq!(rep.evals, 30);
    }

    #[test]
    fn cross_check_read_sharing_is_fine() {
        // Two readers with identical images: no conflict (reads don't set).
        let f = ProjExpr::Identity;
        let g = ProjExpr::Identity;
        let args = [
            ArgCheck { index: 0, functor: &f, writes: false },
            ArgCheck { index: 1, functor: &g, writes: false },
        ];
        assert!(cross_check(&d1(8), &args, &d1(8)).is_safe());
    }

    #[test]
    fn cross_check_write_read_overlap_caught() {
        // Writer i -> i; reader i -> i+1: reader at i hits writer's i+1.
        let w = ProjExpr::Identity;
        let r = ProjExpr::linear(1, 1);
        let args = [
            ArgCheck { index: 0, functor: &w, writes: true },
            ArgCheck { index: 1, functor: &r, writes: false },
        ];
        let rep = cross_check(&d1(8), &args, &d1(9));
        assert_eq!(
            rep.outcome,
            CheckOutcome::Conflict {
                arg: 1,
                point: DomainPoint::new1(0),
                color: DomainPoint::new1(1),
            }
        );
    }

    #[test]
    fn cross_check_order_is_writers_first() {
        // Reader listed first, writer second — writer still checked first,
        // so the overlap is attributed to the reader pass.
        let r = ProjExpr::Identity;
        let w = ProjExpr::Identity;
        let args = [
            ArgCheck { index: 0, functor: &r, writes: false },
            ArgCheck { index: 1, functor: &w, writes: true },
        ];
        let rep = cross_check(&d1(4), &args, &d1(4));
        assert_eq!(
            rep.outcome,
            CheckOutcome::Conflict {
                arg: 0,
                point: DomainPoint::new1(0),
                color: DomainPoint::new1(0),
            }
        );
    }

    #[test]
    fn cross_check_write_write_self_conflict() {
        // A single non-injective writer is caught by the same bitmask.
        let f = ProjExpr::Modular { a: 1, b: 0, m: 4 };
        let args = [ArgCheck { index: 0, functor: &f, writes: true }];
        let rep = cross_check(&d1(6), &args, &d1(4));
        assert!(!rep.is_safe());
    }

    #[test]
    fn brute_force_agreement() {
        // The bitmask cross-check must agree with a quadratic pairwise
        // oracle on a batch of small scenarios.
        use std::collections::HashSet;
        let functors = [
            ProjExpr::Identity,
            ProjExpr::linear(1, 3),
            ProjExpr::linear(2, 0),
            ProjExpr::Modular { a: 1, b: 0, m: 5 },
            ProjExpr::Quadratic { a: 1, b: 0, c: 0 },
        ];
        let dom = d1(6);
        let colors = d1(40);
        for wi in 0..functors.len() {
            for ri in 0..functors.len() {
                let args = [
                    ArgCheck { index: 0, functor: &functors[wi], writes: true },
                    ArgCheck { index: 1, functor: &functors[ri], writes: false },
                ];
                let got = cross_check(&dom, &args, &colors).is_safe();
                // Oracle: writer must be injective in-bounds, and reader
                // image must avoid writer image.
                let mut wset = HashSet::new();
                let mut winj = true;
                for p in dom.iter() {
                    let c = functors[wi].eval(p);
                    if colors.linearize(c).is_some() && !wset.insert(c) {
                        winj = false;
                    }
                }
                let roverlap = dom.iter().any(|p| {
                    let c = functors[ri].eval(p);
                    colors.linearize(c).is_some() && wset.contains(&c)
                });
                let expect = winj && !roverlap;
                assert_eq!(got, expect, "w={wi} r={ri}");
            }
        }
    }
}
