//! The hybrid safety driver: static first, dynamic for the residue.
//!
//! Implements the §3 validity rules for a whole launch:
//!
//! **Self-checks** — for each argument ⟨Pᵢ, fᵢ⟩ either the privilege is
//! read (or a reduction), or Pᵢ is disjoint and fᵢ injective over D.
//!
//! **Cross-checks** — for each pair ⟨Pᵢ, fᵢ⟩, ⟨Pⱼ, fⱼ⟩ either the
//! privileges are both read (or both the same reduction), or Pᵢ and Pⱼ
//! partition provably-disjoint data, or Pᵢ = Pⱼ is disjoint and the
//! functor images on D are disjoint.
//!
//! Whatever the static analyzer cannot prove is compiled into a
//! [`DynamicCheckPlan`] — the runtime executes it in O(|D| + |P|) before
//! the launch (and may skip it in verified production runs, §4).

use crate::dynamic::{cross_check, self_check, ArgCheck, CheckOutcome, CheckReport};
use crate::proj::ProjExpr;
use crate::static_analysis::{analyze_injectivity, StaticVerdict};
use il_geometry::{Domain, DomainPoint};
use il_region::{FieldId, IndexPartitionId, Privilege, RegionForest};
use std::collections::BTreeMap;
use std::fmt;

/// One region argument of an index launch, for safety purposes.
#[derive(Clone, Debug)]
pub struct LaunchArg {
    /// The partition the functor selects sub-collections from.
    pub partition: IndexPartitionId,
    /// The projection functor.
    pub functor: ProjExpr,
    /// The privilege the task requests.
    pub privilege: Privilege,
    /// Fields accessed (empty = all fields). Two arguments over
    /// *disjoint* field sets never interfere — privileges in Legion are
    /// per-field, which is what lets a stencil read field `in` through an
    /// aliased halo partition while writing field `out` through the
    /// disjoint block partition of the same region.
    pub fields: Vec<FieldId>,
}

impl LaunchArg {
    /// An argument touching all fields.
    pub fn all_fields(partition: IndexPartitionId, functor: ProjExpr, privilege: Privilege) -> Self {
        LaunchArg { partition, functor, privilege, fields: Vec::new() }
    }

    fn fields_disjoint(&self, other: &LaunchArg) -> bool {
        // Empty = all fields: never disjoint from anything.
        if self.fields.is_empty() || other.fields.is_empty() {
            return false;
        }
        self.fields.iter().all(|f| !other.fields.contains(f))
    }
}

/// Why a launch cannot be executed as an index launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnsafeReason {
    /// A write/read-write argument uses an aliased partition: overlapping
    /// sub-collections could be written concurrently.
    AliasedWritePartition {
        /// Offending argument index.
        arg: usize,
    },
    /// A write argument's functor is provably non-injective over the
    /// domain (the Listing 2 case: `q[i%3]` written over `[0,5)`).
    NonInjectiveWrite {
        /// Offending argument index.
        arg: usize,
    },
    /// Two arguments use the same sub-collections with conflicting
    /// privileges and provably overlapping images (e.g. the same functor
    /// on the same partition, one of them writing).
    ConflictingImages {
        /// First argument index.
        a: usize,
        /// Second argument index.
        b: usize,
    },
    /// Two arguments use different partitions of (possibly) overlapping
    /// data with conflicting privileges; the dynamic check cannot relate
    /// colors across different partitions, so the launch must stay
    /// sequential.
    CrossPartitionConflict {
        /// First argument index.
        a: usize,
        /// Second argument index.
        b: usize,
    },
    /// A dynamic check was executed and found a conflict.
    DynamicConflict {
        /// Offending argument index.
        arg: usize,
        /// Launch point of the collision.
        point: DomainPoint,
        /// Colliding color.
        color: DomainPoint,
    },
}

impl fmt::Display for UnsafeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsafeReason::AliasedWritePartition { arg } => {
                write!(f, "argument {arg} writes through an aliased partition")
            }
            UnsafeReason::NonInjectiveWrite { arg } => write!(
                f,
                "argument {arg}'s projection functor is not injective over the launch domain"
            ),
            UnsafeReason::ConflictingImages { a, b } => write!(
                f,
                "arguments {a} and {b} select overlapping sub-collections with conflicting privileges"
            ),
            UnsafeReason::CrossPartitionConflict { a, b } => write!(
                f,
                "arguments {a} and {b} use different partitions of overlapping data with conflicting privileges"
            ),
            UnsafeReason::DynamicConflict { arg, point, color } => write!(
                f,
                "dynamic check: argument {arg} collides at point {point} (color {color})"
            ),
        }
    }
}

/// A group of arguments sharing one partition that must be checked
/// dynamically.
#[derive(Clone, Debug)]
pub struct CheckGroup {
    /// The shared partition.
    pub partition: IndexPartitionId,
    /// The partition's color space (bitmask bounds).
    pub color_bounds: Domain,
    /// `(arg index, functor, writes)` triples, in original order.
    pub args: Vec<(usize, ProjExpr, bool)>,
}

/// The dynamic residue of the hybrid analysis: the checks that must run
/// at launch time. Corresponds to the generated AST of Listing 3.
#[derive(Clone, Debug)]
pub struct DynamicCheckPlan {
    /// The launch domain.
    pub domain: Domain,
    /// One bitmask pass per partition group.
    pub groups: Vec<CheckGroup>,
}

impl DynamicCheckPlan {
    /// Execute the plan. Returns `Ok(evals)` — the number of functor
    /// evaluations, the O(|D|) cost the runtime charges — or the first
    /// conflict.
    pub fn run(&self) -> Result<u64, UnsafeReason> {
        let mut evals = 0u64;
        for group in &self.groups {
            let report: CheckReport = if group.args.len() == 1 {
                let (idx, functor, _) = &group.args[0];
                let mut r = self_check(&self.domain, functor, &group.color_bounds);
                if let CheckOutcome::Conflict { arg, .. } = &mut r.outcome {
                    *arg = *idx;
                }
                r
            } else {
                let checks: Vec<ArgCheck<'_>> = group
                    .args
                    .iter()
                    .map(|(idx, functor, writes)| ArgCheck {
                        index: *idx,
                        functor,
                        writes: *writes,
                    })
                    .collect();
                cross_check(&self.domain, &checks, &group.color_bounds)
            };
            evals += report.evals;
            if let CheckOutcome::Conflict { arg, point, color } = report.outcome {
                return Err(UnsafeReason::DynamicConflict { arg, point, color });
            }
        }
        Ok(evals)
    }

    /// Total functor evaluations the plan will perform if no conflict is
    /// found (for cost accounting without running).
    pub fn planned_evals(&self) -> u64 {
        let d = self.domain.volume();
        self.groups.iter().map(|g| g.args.len() as u64 * d).sum()
    }
}

/// The hybrid analysis verdict for a launch.
#[derive(Clone, Debug)]
pub enum HybridVerdict {
    /// Statically proven safe: zero runtime cost (§4).
    SafeStatic,
    /// Statically unresolved: run this plan before launching.
    NeedsDynamic(DynamicCheckPlan),
    /// Statically proven unsafe: execute as a sequential task loop.
    Unsafe(UnsafeReason),
}

impl HybridVerdict {
    /// True iff the verdict permits an index launch (possibly after a
    /// dynamic check).
    pub fn may_launch(&self) -> bool {
        !matches!(self, HybridVerdict::Unsafe(_))
    }
}

/// Run the hybrid safety analysis for a launch of `args` over `domain`.
pub fn analyze_launch(
    forest: &RegionForest,
    domain: &Domain,
    args: &[LaunchArg],
) -> HybridVerdict {
    // ---- Self-checks (§3) ----
    // needs_dynamic_self[i]: argument i's injectivity is unresolved.
    let mut needs_dynamic_self = vec![false; args.len()];
    for (i, arg) in args.iter().enumerate() {
        if matches!(arg.privilege, Privilege::Read | Privilege::Reduce(_)) {
            continue; // read or reduction: self-check passes outright
        }
        if !forest.is_disjoint(arg.partition) {
            return HybridVerdict::Unsafe(UnsafeReason::AliasedWritePartition { arg: i });
        }
        match analyze_injectivity(&arg.functor, domain) {
            StaticVerdict::Injective => {}
            StaticVerdict::NotInjective => {
                return HybridVerdict::Unsafe(UnsafeReason::NonInjectiveWrite { arg: i });
            }
            StaticVerdict::Unknown => needs_dynamic_self[i] = true,
        }
    }

    // ---- Cross-checks (§3) ----
    // For each unordered pair, establish one of: compatible privileges,
    // disjoint data, or disjoint images (statically or dynamically).
    let mut dynamic_groups: BTreeMap<IndexPartitionId, Vec<usize>> = BTreeMap::new();
    let mut add_to_group = |p: IndexPartitionId, i: usize, j: usize| {
        let g = dynamic_groups.entry(p).or_default();
        if !g.contains(&i) {
            g.push(i);
        }
        if !g.contains(&j) {
            g.push(j);
        }
    };

    for i in 0..args.len() {
        for j in (i + 1)..args.len() {
            let (a, b) = (&args[i], &args[j]);
            if a.privilege.parallel_with(&b.privilege) {
                continue; // both read, or both the same reduction
            }
            if a.fields_disjoint(b) {
                continue; // disjoint field sets never interfere
            }
            if a.partition == b.partition {
                let p = forest.partition(a.partition);
                if !p.disjoint {
                    // A conflicting pair through an aliased partition can
                    // never be validated (a write arg on an aliased
                    // partition was already rejected; this covers
                    // read-vs-reduce etc. on aliased partitions).
                    return HybridVerdict::Unsafe(UnsafeReason::ConflictingImages { a: i, b: j });
                }
                // Same disjoint partition: need image-disjointness.
                match static_images_disjoint(&a.functor, &b.functor, domain) {
                    Some(true) => {}
                    Some(false) => {
                        return HybridVerdict::Unsafe(UnsafeReason::ConflictingImages {
                            a: i,
                            b: j,
                        });
                    }
                    None => add_to_group(a.partition, i, j),
                }
            } else {
                // Different partitions: safe only if they partition
                // provably-disjoint data.
                let pa = forest.partition(a.partition).parent;
                let pb = forest.partition(b.partition).parent;
                if !forest.spaces_disjoint(pa, pb) {
                    return HybridVerdict::Unsafe(UnsafeReason::CrossPartitionConflict {
                        a: i,
                        b: j,
                    });
                }
            }
        }
    }

    // ---- Assemble the dynamic plan ----
    // Arguments with unresolved self-checks join their partition's group;
    // within a group all write/reduce arguments participate (their images
    // interact through the shared bitmask) and unresolved readers test.
    for (i, needed) in needs_dynamic_self.iter().enumerate() {
        if *needed {
            dynamic_groups.entry(args[i].partition).or_default().push(i);
        }
    }

    if dynamic_groups.is_empty() {
        return HybridVerdict::SafeStatic;
    }

    let mut groups = Vec::new();
    for (partition, mut members) in dynamic_groups {
        members.sort_unstable();
        members.dedup();
        // Include *all* write/reduce args on this partition, even
        // statically-proven ones: their images occupy colors that
        // unresolved members must not touch.
        for (i, arg) in args.iter().enumerate() {
            if arg.partition == partition && arg.privilege.writes() && !members.contains(&i) {
                members.push(i);
            }
        }
        members.sort_unstable();
        let color_bounds = forest.partition(partition).color_space.clone();
        let group_args = members
            .iter()
            .map(|&i| (i, args[i].functor.clone(), args[i].privilege.writes()))
            .collect();
        groups.push(CheckGroup {
            partition,
            color_bounds,
            args: group_args,
        });
    }

    HybridVerdict::NeedsDynamic(DynamicCheckPlan {
        domain: domain.clone(),
        groups,
    })
}

/// Try to prove statically that two functors' images over `domain` are
/// disjoint. `Some(true)` = provably disjoint, `Some(false)` = provably
/// overlapping (assuming both functors in bounds), `None` = unknown.
fn static_images_disjoint(f: &ProjExpr, g: &ProjExpr, domain: &Domain) -> Option<bool> {
    // Identical functors have identical images.
    if f.structurally_eq(g) {
        return Some(false);
    }
    match (f, g) {
        (ProjExpr::Constant(a), ProjExpr::Constant(b)) => Some(a != b),
        _ => {
            // Affine-family functors over dense 1-D domains: compare image
            // intervals (sound: disjoint intervals ⇒ disjoint images).
            let (ra, rb) = (image_interval(f, domain)?, image_interval(g, domain)?);
            if ra.1 < rb.0 || rb.1 < ra.0 {
                Some(true)
            } else {
                None // overlapping intervals are inconclusive
            }
        }
    }
}

/// Image interval of a 1-D → 1-D affine-family functor over a dense 1-D
/// domain.
fn image_interval(f: &ProjExpr, domain: &Domain) -> Option<(i64, i64)> {
    let Domain::Rect1(r) = domain else { return None };
    if r.is_empty() {
        return None;
    }
    match f {
        ProjExpr::Identity => Some((r.lo[0], r.hi[0])),
        ProjExpr::Constant(c) if c.dim() == 1 => Some((c.x(), c.x())),
        ProjExpr::Affine(t) if t.in_dim == 1 && t.out_dim == 1 => {
            let a = t.matrix[0][0];
            let b = t.offset[0];
            // Checked: an overflowing image is not a provable interval
            // (eval projects such points to the out-of-bounds sentinel).
            let x = a.checked_mul(r.lo[0])?.checked_add(b)?;
            let y = a.checked_mul(r.hi[0])?.checked_add(b)?;
            Some((x.min(y), x.max(y)))
        }
        // A non-positive modulus is ill-formed (eval projects every point
        // to the sentinel color): no interval claim, let the dynamic
        // check produce the verdict.
        ProjExpr::Modular { m, .. } if *m > 0 => Some((0, m - 1)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_geometry::Rect;
    use il_region::{coloring_partition, equal_partition_1d, FieldSpaceDesc, ReductionKind};

    struct Fixture {
        forest: RegionForest,
        disjoint: IndexPartitionId,
        aliased: IndexPartitionId,
    }

    /// 100-element region partitioned 10 ways disjointly, plus an aliased
    /// halo-ish partition.
    fn fixture() -> Fixture {
        let mut forest = RegionForest::new();
        let fs = forest.create_field_space(FieldSpaceDesc::new());
        let region = forest.create_region(Domain::range(100), fs);
        let disjoint = equal_partition_1d(&mut forest, region.space, 10);
        let aliased: Vec<_> = (0..10i64)
            .map(|c| {
                let lo = (c * 10 - 2).max(0);
                let hi = ((c + 1) * 10 + 1).min(99);
                (DomainPoint::new1(c), Domain::Rect1(Rect::new1(lo, hi)))
            })
            .collect();
        let aliased = coloring_partition(&mut forest, region.space, Domain::range(10), aliased);
        Fixture { forest, disjoint, aliased }
    }

    fn launch(args: Vec<LaunchArg>, n: i64, fx: &Fixture) -> HybridVerdict {
        analyze_launch(&fx.forest, &Domain::range(n), &args)
    }

    #[test]
    fn identity_write_on_disjoint_partition_static_safe() {
        let fx = fixture();
        let v = launch(
            vec![LaunchArg {
                partition: fx.disjoint,
                functor: ProjExpr::Identity,
                privilege: Privilege::ReadWrite,
                    fields: vec![],
            }],
            10,
            &fx,
        );
        assert!(matches!(v, HybridVerdict::SafeStatic));
    }

    #[test]
    fn read_through_aliased_partition_is_fine() {
        let fx = fixture();
        let v = launch(
            vec![LaunchArg {
                partition: fx.aliased,
                functor: ProjExpr::Identity,
                privilege: Privilege::Read,
                    fields: vec![],
            }],
            10,
            &fx,
        );
        assert!(matches!(v, HybridVerdict::SafeStatic));
    }

    #[test]
    fn write_through_aliased_partition_rejected() {
        let fx = fixture();
        let v = launch(
            vec![LaunchArg {
                partition: fx.aliased,
                functor: ProjExpr::Identity,
                privilege: Privilege::Write,
                    fields: vec![],
            }],
            10,
            &fx,
        );
        assert!(matches!(
            v,
            HybridVerdict::Unsafe(UnsafeReason::AliasedWritePartition { arg: 0 })
        ));
    }

    #[test]
    fn listing2_rejected_statically() {
        // foo(p[i], q[i%3]) with writes on q over [0,5): the paper's
        // walkthrough — statically provable non-injectivity.
        let fx = fixture();
        let v = launch(
            vec![
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::Identity,
                    privilege: Privilege::Read,
                    fields: vec![],
                },
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::Modular { a: 1, b: 0, m: 3 },
                    privilege: Privilege::Write,
                    fields: vec![],
                },
            ],
            5,
            &fx,
        );
        assert!(matches!(
            v,
            HybridVerdict::Unsafe(UnsafeReason::NonInjectiveWrite { arg: 1 })
        ));
    }

    #[test]
    fn quadratic_write_needs_dynamic_and_passes() {
        let fx = fixture();
        let v = launch(
            vec![LaunchArg {
                partition: fx.disjoint,
                functor: ProjExpr::Quadratic { a: 1, b: 0, c: 0 }, // i² over [0,4): 0,1,4,9 — injective
                privilege: Privilege::Write,
                    fields: vec![],
            }],
            4,
            &fx,
        );
        let HybridVerdict::NeedsDynamic(plan) = v else {
            panic!("expected dynamic plan, got {v:?}");
        };
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.run().unwrap(), 4);
    }

    #[test]
    fn opaque_conflicting_write_caught_dynamically() {
        let fx = fixture();
        let v = launch(
            vec![LaunchArg {
                partition: fx.disjoint,
                functor: ProjExpr::opaque(|p| DomainPoint::new1(p.x() / 2)),
                privilege: Privilege::Write,
                    fields: vec![],
            }],
            6,
            &fx,
        );
        let HybridVerdict::NeedsDynamic(plan) = v else {
            panic!("expected dynamic plan");
        };
        let err = plan.run().unwrap_err();
        assert!(matches!(err, UnsafeReason::DynamicConflict { arg: 0, .. }));
    }

    #[test]
    fn same_functor_write_read_conflict_static() {
        let fx = fixture();
        let v = launch(
            vec![
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::Identity,
                    privilege: Privilege::Write,
                    fields: vec![],
                },
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::Identity,
                    privilege: Privilege::Read,
                    fields: vec![],
                },
            ],
            10,
            &fx,
        );
        assert!(matches!(
            v,
            HybridVerdict::Unsafe(UnsafeReason::ConflictingImages { a: 0, b: 1 })
        ));
    }

    #[test]
    fn shifted_images_proven_disjoint_statically() {
        // write p[i], read p[i+5] over [0,5): images [0,4] and [5,9].
        let fx = fixture();
        let v = launch(
            vec![
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::Identity,
                    privilege: Privilege::Write,
                    fields: vec![],
                },
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::linear(1, 5),
                    privilege: Privilege::Read,
                    fields: vec![],
                },
            ],
            5,
            &fx,
        );
        assert!(matches!(v, HybridVerdict::SafeStatic));
    }

    #[test]
    fn interleaved_images_need_dynamic() {
        // write p[2i], read p[2i+1] over [0,5): intervals overlap but the
        // images are disjoint — only the dynamic check can tell.
        let fx = fixture();
        let v = launch(
            vec![
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::linear(2, 0),
                    privilege: Privilege::Write,
                    fields: vec![],
                },
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::linear(2, 1),
                    privilege: Privilege::Read,
                    fields: vec![],
                },
            ],
            5,
            &fx,
        );
        let HybridVerdict::NeedsDynamic(plan) = v else {
            panic!("expected dynamic plan, got {v:?}");
        };
        assert_eq!(plan.run().unwrap(), 10); // 2 args × |D| = 5
    }

    #[test]
    fn reductions_commute() {
        let fx = fixture();
        let sum = Privilege::Reduce(ReductionKind::Sum.id());
        // Two reduce args with the same op and even overlapping images are
        // fine — even through a non-injective functor.
        let v = launch(
            vec![
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::Modular { a: 1, b: 0, m: 3 },
                    privilege: sum,
                    fields: vec![],
                },
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::Identity,
                    privilege: sum,
                    fields: vec![],
                },
            ],
            10,
            &fx,
        );
        assert!(matches!(v, HybridVerdict::SafeStatic));
        // Different ops conflict (same partition, same image functor).
        let v2 = launch(
            vec![
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::Identity,
                    privilege: Privilege::Reduce(ReductionKind::Sum.id()),
                    fields: vec![],
                },
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::Identity,
                    privilege: Privilege::Reduce(ReductionKind::Min.id()),
                    fields: vec![],
                },
            ],
            10,
            &fx,
        );
        assert!(matches!(v2, HybridVerdict::Unsafe(_)));
    }

    #[test]
    fn different_partitions_of_same_data_conflict() {
        let fx = fixture();
        let v = launch(
            vec![
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::Identity,
                    privilege: Privilege::Write,
                    fields: vec![],
                },
                LaunchArg {
                    partition: fx.aliased,
                    functor: ProjExpr::Identity,
                    privilege: Privilege::Read,
                    fields: vec![],
                },
            ],
            10,
            &fx,
        );
        assert!(matches!(
            v,
            HybridVerdict::Unsafe(UnsafeReason::CrossPartitionConflict { a: 0, b: 1 })
        ));
    }

    #[test]
    fn partitions_of_different_regions_independent() {
        let mut forest = RegionForest::new();
        let fs = forest.create_field_space(FieldSpaceDesc::new());
        let r1 = forest.create_region(Domain::range(50), fs);
        let r2 = forest.create_region(Domain::range(50), fs);
        let p1 = equal_partition_1d(&mut forest, r1.space, 5);
        let p2 = equal_partition_1d(&mut forest, r2.space, 5);
        let v = analyze_launch(
            &forest,
            &Domain::range(5),
            &[
                LaunchArg {
                    partition: p1,
                    functor: ProjExpr::Identity,
                    privilege: Privilege::Write,
                    fields: vec![],
                },
                LaunchArg {
                    partition: p2,
                    functor: ProjExpr::Identity,
                    privilege: Privilege::Read,
                    fields: vec![],
                },
            ],
        );
        assert!(matches!(v, HybridVerdict::SafeStatic));
    }

    #[test]
    fn statically_proven_writer_joins_dynamic_group() {
        // Writer p[i] (statically injective) + writer p[f(i)] (opaque):
        // the opaque functor must avoid the identity's colors, so both
        // participate in one bitmask pass.
        let fx = fixture();
        // f(i) = i: collides with the identity writer.
        let v = launch(
            vec![
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::Identity,
                    privilege: Privilege::Write,
                    fields: vec![],
                },
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::opaque(|p| p),
                    privilege: Privilege::Write,
                    fields: vec![],
                },
            ],
            5,
            &fx,
        );
        let HybridVerdict::NeedsDynamic(plan) = v else {
            panic!("expected dynamic plan");
        };
        assert_eq!(plan.groups[0].args.len(), 2);
        assert!(plan.run().is_err());

        // f(i) = i + 5: images disjoint, dynamic check passes.
        let v2 = launch(
            vec![
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::Identity,
                    privilege: Privilege::Write,
                    fields: vec![],
                },
                LaunchArg {
                    partition: fx.disjoint,
                    functor: ProjExpr::opaque(|p| DomainPoint::new1(p.x() + 5)),
                    privilege: Privilege::Write,
                    fields: vec![],
                },
            ],
            5,
            &fx,
        );
        let HybridVerdict::NeedsDynamic(plan2) = v2 else {
            panic!("expected dynamic plan");
        };
        assert!(plan2.run().is_ok());
    }
}
