//! Projection functors and the hybrid index-launch safety analysis.
//!
//! An index launch `forall(D, T, ⟨P₁,f₁⟩, …, ⟨Pₙ,fₙ⟩)` is *safe* — all |D|
//! tasks may run in parallel — when the tasks are non-interfering (§3).
//! This crate implements both halves of the paper's hybrid design (§4):
//!
//! * a **static analyzer** ([`static_analysis`]) that recognizes trivial
//!   projection functors (constant, identity, affine, modular) and decides
//!   their injectivity over the launch domain at "compile time";
//! * a **dynamic analyzer** ([`dynamic`]) — the bitmask check of Listing 3
//!   — that is sound and complete for *arbitrary* functors at O(|D| + |P|)
//!   cost, including the linear-time multi-argument cross-check;
//! * the **hybrid driver** ([`hybrid`]) that applies the §3 self-check and
//!   cross-check rules, preferring static proofs and emitting a dynamic
//!   check plan only for the residue the static analyzer cannot decide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmask;
pub mod dynamic;
pub mod hybrid;
pub mod proj;
pub mod static_analysis;

pub use bitmask::BitMask;
pub use dynamic::{
    cross_check, cross_check_reference, cross_check_with, self_check, self_check_reference,
    self_check_with, ArgCheck, CheckOutcome, CheckStrategy, PAR_CHUNK, PAR_MIN_VOLUME,
};
pub use hybrid::{analyze_launch, DynamicCheckPlan, HybridVerdict, LaunchArg, UnsafeReason};
pub use proj::{ColorRun, ProjExpr, ILL_FORMED_COLOR, MAX_COLOR_RUNS};
pub use static_analysis::{analyze_injectivity, StaticVerdict};
