//! The projection-functor expression IR.
//!
//! A projection functor maps a task's index within a launch domain to the
//! color of the sub-collection that task will use (§1, §3). Listing 1's
//! `p[i]` is the identity functor; `q[f(i)]` is an opaque functor. Keeping
//! functors as a small expression IR lets the static analyzer recognize
//! the trivial cases (§4) while [`ProjExpr::Opaque`] admits completely
//! arbitrary user functions, which only the dynamic check can validate.

use il_geometry::{DomainPoint, DynTransform};
use std::fmt;
use std::sync::Arc;

/// An opaque user projection function.
pub type OpaqueFn = Arc<dyn Fn(DomainPoint) -> DomainPoint + Send + Sync>;

/// A projection functor expression.
#[derive(Clone)]
pub enum ProjExpr {
    /// `f(i) = i` — the trivial functor of Listing 1.
    Identity,
    /// `f(i) = c` for a fixed color.
    Constant(DomainPoint),
    /// An affine map `f(p) = A·p + b` (covers the "linear" row of Table 2).
    Affine(DynTransform),
    /// 1-D modular arithmetic `f(i) = (a·i + b) mod m` (Listing 2's `i%3`
    /// and Table 2's "modular" row). The result is normalized to
    /// `0..m`.
    Modular {
        /// Coefficient of `i`.
        a: i64,
        /// Offset added before the modulo.
        b: i64,
        /// The modulus (must be positive).
        m: i64,
    },
    /// 1-D quadratic `f(i) = a·i² + b·i + c` (Table 2's "quadratic" row).
    Quadratic {
        /// Quadratic coefficient.
        a: i64,
        /// Linear coefficient.
        b: i64,
        /// Constant term.
        c: i64,
    },
    /// Coordinate selection: `f(p) = (p[take[0]], …, p[take[k-1]])`. The
    /// DOM sweep's 3-D-wavefront → 2-D-exchange-plane functors (§6.2.3)
    /// are `Swizzle([0,1])`, `Swizzle([1,2])`, `Swizzle([0,2])`.
    Swizzle(Vec<usize>),
    /// Composition: `Compose(g, f)` is `g ∘ f` (apply `f` first).
    Compose(Box<ProjExpr>, Box<ProjExpr>),
    /// An arbitrary user function — statically opaque, dynamically checked.
    Opaque(OpaqueFn),
}

impl ProjExpr {
    /// Evaluate the functor at a launch-domain point.
    pub fn eval(&self, p: DomainPoint) -> DomainPoint {
        match self {
            ProjExpr::Identity => p,
            ProjExpr::Constant(c) => *c,
            ProjExpr::Affine(t) => t.apply(p),
            ProjExpr::Modular { a, b, m } => {
                assert!(*m > 0, "modulus must be positive");
                assert_eq!(p.dim(), 1, "modular functor is 1-D");
                DomainPoint::new1((a * p.x() + b).rem_euclid(*m))
            }
            ProjExpr::Quadratic { a, b, c } => {
                assert_eq!(p.dim(), 1, "quadratic functor is 1-D");
                let i = p.x();
                DomainPoint::new1(a * i * i + b * i + c)
            }
            ProjExpr::Swizzle(take) => {
                let coords: Vec<i64> = take.iter().map(|&d| p.coord(d)).collect();
                DomainPoint::from_slice(&coords)
            }
            ProjExpr::Compose(g, f) => g.eval(f.eval(p)),
            ProjExpr::Opaque(f) => f(p),
        }
    }

    /// Wrap a closure as an opaque functor.
    pub fn opaque<F>(f: F) -> Self
    where
        F: Fn(DomainPoint) -> DomainPoint + Send + Sync + 'static,
    {
        ProjExpr::Opaque(Arc::new(f))
    }

    /// 1-D linear functor `a·i + b`.
    pub fn linear(a: i64, b: i64) -> Self {
        ProjExpr::Affine(DynTransform::affine1(a, b))
    }

    /// Structural equality. Opaque functors compare by closure identity
    /// (same `Arc`), which is the only sound notion available.
    pub fn structurally_eq(&self, other: &ProjExpr) -> bool {
        match (self, other) {
            (ProjExpr::Identity, ProjExpr::Identity) => true,
            (ProjExpr::Constant(a), ProjExpr::Constant(b)) => a == b,
            (ProjExpr::Affine(a), ProjExpr::Affine(b)) => a == b,
            (
                ProjExpr::Modular { a, b, m },
                ProjExpr::Modular { a: a2, b: b2, m: m2 },
            ) => a == a2 && b == b2 && m == m2,
            (
                ProjExpr::Quadratic { a, b, c },
                ProjExpr::Quadratic { a: a2, b: b2, c: c2 },
            ) => a == a2 && b == b2 && c == c2,
            (ProjExpr::Swizzle(a), ProjExpr::Swizzle(b)) => a == b,
            (ProjExpr::Compose(g1, f1), ProjExpr::Compose(g2, f2)) => {
                g1.structurally_eq(g2) && f1.structurally_eq(f2)
            }
            (ProjExpr::Opaque(a), ProjExpr::Opaque(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// True iff this functor is the identity (the "trivial" functors of
    /// the Circuit and Stencil applications, §6.1).
    pub fn is_identity(&self) -> bool {
        matches!(self, ProjExpr::Identity)
    }
}

impl fmt::Debug for ProjExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjExpr::Identity => write!(f, "λi.i"),
            ProjExpr::Constant(c) => write!(f, "λi.{c:?}"),
            ProjExpr::Affine(t) => write!(f, "λi.{t:?}(i)"),
            ProjExpr::Modular { a, b, m } => write!(f, "λi.({a}i+{b}) mod {m}"),
            ProjExpr::Quadratic { a, b, c } => write!(f, "λi.{a}i²+{b}i+{c}"),
            ProjExpr::Swizzle(take) => write!(f, "λp.swizzle{take:?}(p)"),
            ProjExpr::Compose(g, other) => write!(f, "({g:?})∘({other:?})"),
            ProjExpr::Opaque(_) => write!(f, "λi.f(i)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_identity_and_constant() {
        let p = DomainPoint::new2(3, 4);
        assert_eq!(ProjExpr::Identity.eval(p), p);
        assert_eq!(
            ProjExpr::Constant(DomainPoint::new1(7)).eval(p),
            DomainPoint::new1(7)
        );
    }

    #[test]
    fn eval_linear_modular_quadratic() {
        let i5 = DomainPoint::new1(5);
        assert_eq!(ProjExpr::linear(3, 2).eval(i5), DomainPoint::new1(17));
        assert_eq!(
            ProjExpr::Modular { a: 1, b: 0, m: 3 }.eval(i5),
            DomainPoint::new1(2)
        );
        // rem_euclid keeps results nonnegative.
        assert_eq!(
            ProjExpr::Modular { a: -1, b: 0, m: 3 }.eval(i5),
            DomainPoint::new1(1)
        );
        assert_eq!(
            ProjExpr::Quadratic { a: 1, b: -1, c: 2 }.eval(i5),
            DomainPoint::new1(22)
        );
    }

    #[test]
    fn eval_swizzle() {
        let p = DomainPoint::new3(7, 8, 9);
        assert_eq!(
            ProjExpr::Swizzle(vec![0, 1]).eval(p),
            DomainPoint::new2(7, 8)
        );
        assert_eq!(
            ProjExpr::Swizzle(vec![2, 0]).eval(p),
            DomainPoint::new2(9, 7)
        );
        assert_eq!(ProjExpr::Swizzle(vec![1]).eval(p), DomainPoint::new1(8));
    }

    #[test]
    fn eval_compose_and_opaque() {
        // (i -> 2i) then (j -> j+1): compose(g=+1, f=*2)(5) = 11.
        let f = ProjExpr::linear(2, 0);
        let g = ProjExpr::linear(1, 1);
        let c = ProjExpr::Compose(Box::new(g), Box::new(f));
        assert_eq!(c.eval(DomainPoint::new1(5)), DomainPoint::new1(11));

        let sq = ProjExpr::opaque(|p| DomainPoint::new1(p.x() * p.x()));
        assert_eq!(sq.eval(DomainPoint::new1(6)), DomainPoint::new1(36));
    }

    #[test]
    fn structural_equality() {
        assert!(ProjExpr::Identity.structurally_eq(&ProjExpr::Identity));
        assert!(ProjExpr::linear(2, 1).structurally_eq(&ProjExpr::linear(2, 1)));
        assert!(!ProjExpr::linear(2, 1).structurally_eq(&ProjExpr::linear(2, 2)));
        let o1 = ProjExpr::opaque(|p| p);
        let o2 = o1.clone();
        let o3 = ProjExpr::opaque(|p| p);
        assert!(o1.structurally_eq(&o2));
        assert!(!o1.structurally_eq(&o3));
    }

    #[test]
    fn debug_rendering() {
        assert_eq!(format!("{:?}", ProjExpr::Identity), "λi.i");
        assert_eq!(
            format!("{:?}", ProjExpr::Modular { a: 1, b: 0, m: 3 }),
            "λi.(1i+0) mod 3"
        );
    }

    #[test]
    #[should_panic(expected = "modular functor is 1-D")]
    fn modular_rejects_2d() {
        ProjExpr::Modular { a: 1, b: 0, m: 3 }.eval(DomainPoint::new2(0, 0));
    }
}
