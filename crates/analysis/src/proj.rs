//! The projection-functor expression IR.
//!
//! A projection functor maps a task's index within a launch domain to the
//! color of the sub-collection that task will use (§1, §3). Listing 1's
//! `p[i]` is the identity functor; `q[f(i)]` is an opaque functor. Keeping
//! functors as a small expression IR lets the static analyzer recognize
//! the trivial cases (§4) while [`ProjExpr::Opaque`] admits completely
//! arbitrary user functions, which only the dynamic check can validate.

use il_geometry::{DomainPoint, DynTransform};
use std::fmt;
use std::sync::Arc;

/// An opaque user projection function.
pub type OpaqueFn = Arc<dyn Fn(DomainPoint) -> DomainPoint + Send + Sync>;

/// A projection functor expression.
#[derive(Clone)]
pub enum ProjExpr {
    /// `f(i) = i` — the trivial functor of Listing 1.
    Identity,
    /// `f(i) = c` for a fixed color.
    Constant(DomainPoint),
    /// An affine map `f(p) = A·p + b` (covers the "linear" row of Table 2).
    Affine(DynTransform),
    /// 1-D modular arithmetic `f(i) = (a·i + b) mod m` (Listing 2's `i%3`
    /// and Table 2's "modular" row). The result is normalized to
    /// `0..m`.
    Modular {
        /// Coefficient of `i`.
        a: i64,
        /// Offset added before the modulo.
        b: i64,
        /// The modulus (must be positive).
        m: i64,
    },
    /// 1-D quadratic `f(i) = a·i² + b·i + c` (Table 2's "quadratic" row).
    Quadratic {
        /// Quadratic coefficient.
        a: i64,
        /// Linear coefficient.
        b: i64,
        /// Constant term.
        c: i64,
    },
    /// Coordinate selection: `f(p) = (p[take[0]], …, p[take[k-1]])`. The
    /// DOM sweep's 3-D-wavefront → 2-D-exchange-plane functors (§6.2.3)
    /// are `Swizzle([0,1])`, `Swizzle([1,2])`, `Swizzle([0,2])`.
    Swizzle(Vec<usize>),
    /// Composition: `Compose(g, f)` is `g ∘ f` (apply `f` first).
    Compose(Box<ProjExpr>, Box<ProjExpr>),
    /// An arbitrary user function — statically opaque, dynamically checked.
    Opaque(OpaqueFn),
}

/// The sentinel color produced by [`ProjExpr::eval`] for ill-formed
/// evaluations (rank mismatch, non-positive modulus, overflow, malformed
/// swizzle). It lies far outside every realizable color space, so the
/// dynamic bounds check reports such a projection as **out of bounds** —
/// a verdict — instead of the evaluation panicking mid-analysis.
pub const ILL_FORMED_COLOR: i64 = i64::MIN;

impl ProjExpr {
    /// Evaluate the functor at a launch-domain point.
    ///
    /// Total: evaluations that used to panic (a modular or quadratic
    /// functor applied to a multi-dimensional point, a non-positive
    /// modulus, coefficient overflow, a swizzle selecting a coordinate the
    /// point does not have) project to [`ILL_FORMED_COLOR`] instead. The
    /// analysis layers treat that color like any other out-of-domain
    /// projection: the dynamic bounds check counts it and the launch gets
    /// a verdict rather than a crash. The sparse-graph workload's
    /// data-dependent functors are exactly the users that reach these
    /// edges.
    pub fn eval(&self, p: DomainPoint) -> DomainPoint {
        self.try_eval(p)
            .unwrap_or(DomainPoint::new1(ILL_FORMED_COLOR))
    }

    /// [`eval`](ProjExpr::eval) that reports ill-formed evaluations as
    /// `None` instead of the sentinel color.
    pub fn try_eval(&self, p: DomainPoint) -> Option<DomainPoint> {
        match self {
            ProjExpr::Identity => Some(p),
            ProjExpr::Constant(c) => Some(*c),
            ProjExpr::Affine(t) => checked_affine_apply(t, p),
            ProjExpr::Modular { a, b, m } => {
                if *m <= 0 || p.dim() != 1 {
                    return None;
                }
                let raw = a.checked_mul(p.x())?.checked_add(*b)?;
                Some(DomainPoint::new1(raw.rem_euclid(*m)))
            }
            ProjExpr::Quadratic { a, b, c } => {
                if p.dim() != 1 {
                    return None;
                }
                let i = p.x();
                let sq = i.checked_mul(i)?;
                let v = a
                    .checked_mul(sq)?
                    .checked_add(b.checked_mul(i)?)?
                    .checked_add(*c)?;
                Some(DomainPoint::new1(v))
            }
            ProjExpr::Swizzle(take) => {
                if take.is_empty() || take.len() > 3 || take.iter().any(|&d| d >= p.dim()) {
                    return None;
                }
                let coords: Vec<i64> = take.iter().map(|&d| p.coord(d)).collect();
                Some(DomainPoint::from_slice(&coords))
            }
            ProjExpr::Compose(g, f) => g.try_eval(f.try_eval(p)?),
            ProjExpr::Opaque(f) => Some(f(p)),
        }
    }

    /// Wrap a closure as an opaque functor.
    pub fn opaque<F>(f: F) -> Self
    where
        F: Fn(DomainPoint) -> DomainPoint + Send + Sync + 'static,
    {
        ProjExpr::Opaque(Arc::new(f))
    }

    /// 1-D linear functor `a·i + b`.
    pub fn linear(a: i64, b: i64) -> Self {
        ProjExpr::Affine(DynTransform::affine1(a, b))
    }

    /// Structural equality. Opaque functors compare by closure identity
    /// (same `Arc`), which is the only sound notion available.
    pub fn structurally_eq(&self, other: &ProjExpr) -> bool {
        match (self, other) {
            (ProjExpr::Identity, ProjExpr::Identity) => true,
            (ProjExpr::Constant(a), ProjExpr::Constant(b)) => a == b,
            (ProjExpr::Affine(a), ProjExpr::Affine(b)) => a == b,
            (
                ProjExpr::Modular { a, b, m },
                ProjExpr::Modular { a: a2, b: b2, m: m2 },
            ) => a == a2 && b == b2 && m == m2,
            (
                ProjExpr::Quadratic { a, b, c },
                ProjExpr::Quadratic { a: a2, b: b2, c: c2 },
            ) => a == a2 && b == b2 && c == c2,
            (ProjExpr::Swizzle(a), ProjExpr::Swizzle(b)) => a == b,
            (ProjExpr::Compose(g1, f1), ProjExpr::Compose(g2, f2)) => {
                g1.structurally_eq(g2) && f1.structurally_eq(f2)
            }
            (ProjExpr::Opaque(a), ProjExpr::Opaque(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// True iff this functor is the identity (the "trivial" functors of
    /// the Circuit and Stencil applications, §6.1).
    pub fn is_identity(&self) -> bool {
        matches!(self, ProjExpr::Identity)
    }

    /// The functor as a 1-D affine map `i ↦ a·i + b`, if it is one
    /// (including affine compositions and degenerate quadratics). Returns
    /// `None` when the functor is not affine *or* when folding the
    /// coefficients would overflow `i64` — callers must then fall back to
    /// pointwise [`eval`](ProjExpr::eval).
    pub fn as_affine_1d(&self) -> Option<(i64, i64)> {
        match self {
            ProjExpr::Identity => Some((1, 0)),
            ProjExpr::Constant(c) if c.dim() == 1 => Some((0, c.x())),
            ProjExpr::Affine(t) if t.in_dim == 1 && t.out_dim == 1 => {
                Some((t.matrix[0][0], t.offset[0]))
            }
            ProjExpr::Quadratic { a: 0, b, c } => Some((*b, *c)),
            ProjExpr::Compose(g, f) => {
                let (ga, gb) = g.as_affine_1d()?;
                let (fa, fb) = f.as_affine_1d()?;
                Some((ga.checked_mul(fa)?, ga.checked_mul(fb)?.checked_add(gb)?))
            }
            _ => None,
        }
    }

    /// [`eval`](ProjExpr::eval) restricted to 1-D functors, with every
    /// intermediate computed by checked arithmetic. `None` means either
    /// "not a 1-D scalar functor" or "this evaluation would overflow" —
    /// both send the caller back to the reference pointwise path, so the
    /// analytic fast paths never disagree with `eval` on reachable inputs.
    fn checked_eval_1d(&self, i: i64) -> Option<i64> {
        match self {
            ProjExpr::Identity => Some(i),
            ProjExpr::Constant(c) if c.dim() == 1 => Some(c.x()),
            ProjExpr::Affine(t) if t.in_dim == 1 && t.out_dim == 1 => {
                t.matrix[0][0].checked_mul(i)?.checked_add(t.offset[0])
            }
            ProjExpr::Modular { a, b, m } if *m > 0 => {
                Some(a.checked_mul(i)?.checked_add(*b)?.rem_euclid(*m))
            }
            ProjExpr::Quadratic { a, b, c } => {
                let sq = i.checked_mul(i)?;
                a.checked_mul(sq)?.checked_add(b.checked_mul(i)?)?.checked_add(*c)
            }
            ProjExpr::Compose(g, f) => g.checked_eval_1d(f.checked_eval_1d(i)?),
            _ => None,
        }
    }

    /// Decompose the functor's color sequence over the dense 1-D index
    /// range `lo..=hi` into arithmetic [`ColorRun`]s, or `None` when no
    /// exact decomposition exists (opaque/quadratic/multi-dim functors,
    /// arithmetic that could overflow, or a modular functor whose
    /// wrap-around would produce more than [`MAX_COLOR_RUNS`] runs).
    ///
    /// The contract is exactness: when this returns `Some(runs)`, the
    /// concatenated runs equal `(lo..=hi).map(|i| eval(i).x())` point for
    /// point. Affine functors yield one run; `(a·i + b) mod m` yields one
    /// run per wrap of the modulus. The word-parallel dynamic check
    /// (`il-analysis::dynamic`) consumes these runs 64 colors at a time.
    pub fn color_runs_1d(&self, lo: i64, hi: i64) -> Option<Vec<ColorRun>> {
        if lo > hi {
            return Some(Vec::new());
        }
        let count = (hi as i128 - lo as i128 + 1) as u64;
        if let Some((a, b)) = self.as_affine_1d() {
            // Verify the folded coefficients against the step-by-step
            // checked evaluation at both endpoints. Affine maps are
            // monotone in `i`, so endpoint success implies every interior
            // evaluation is overflow-free and equal to the analytic value.
            let start = self.checked_eval_1d(lo)?;
            let end = self.checked_eval_1d(hi)?;
            let fold_start = a as i128 * lo as i128 + b as i128;
            let fold_end = a as i128 * hi as i128 + b as i128;
            if fold_start != start as i128 || fold_end != end as i128 {
                return None;
            }
            return Some(vec![ColorRun { start, stride: a, count }]);
        }
        if let ProjExpr::Modular { a, b, m } = self {
            let (a, b, m) = (*a, *b, *m);
            if m <= 0 {
                return None;
            }
            // eval computes the raw a·i + b directly; require it to fit.
            a.checked_mul(lo)?.checked_add(b)?;
            a.checked_mul(hi)?.checked_add(b)?;
            if a == 0 {
                let start = b.rem_euclid(m);
                return Some(vec![ColorRun { start, stride: 0, count }]);
            }
            let wraps = a.unsigned_abs() as u128 * count as u128 / m as u128;
            if wraps + 1 > MAX_COLOR_RUNS as u128 {
                return None;
            }
            let (ai, bi, mi) = (a as i128, b as i128, m as i128);
            let hi = hi as i128;
            let mut i = lo as i128;
            let mut runs = Vec::new();
            while i <= hi {
                let r0 = (ai * i + bi).rem_euclid(mi);
                // Longest k with r0 + k·a still inside [0, m).
                let kmax = if ai > 0 { (mi - 1 - r0) / ai } else { r0 / -ai };
                let kmax = kmax.min(hi - i);
                runs.push(ColorRun {
                    start: r0 as i64,
                    stride: a,
                    count: (kmax + 1) as u64,
                });
                i += kmax + 1;
            }
            return Some(runs);
        }
        None
    }
}

/// Rank-checked, overflow-checked application of a rank-erased affine
/// transform (`DynTransform::apply` asserts on rank mismatch and uses
/// unchecked arithmetic; the analysis must stay total).
fn checked_affine_apply(t: &DynTransform, p: DomainPoint) -> Option<DomainPoint> {
    if p.dim() != t.in_dim as usize {
        return None;
    }
    let mut out = [0i64; 3];
    for (r, out_coord) in out.iter_mut().enumerate().take(t.out_dim as usize) {
        let mut acc = t.offset[r];
        for c in 0..t.in_dim as usize {
            acc = acc.checked_add(t.matrix[r][c].checked_mul(p.coord(c))?)?;
        }
        *out_coord = acc;
    }
    Some(DomainPoint::from_slice(&out[..t.out_dim as usize]))
}

/// Cap on the number of runs [`ProjExpr::color_runs_1d`] will produce; a
/// modular functor wrapping more often than this is checked pointwise
/// instead (each run has fixed word-op overhead, so past this point the
/// decomposition stops paying for itself).
pub const MAX_COLOR_RUNS: usize = 4096;

/// A maximal arithmetic run of functor colors over consecutive 1-D launch
/// indices: colors `start, start + stride, …, start + (count-1)·stride`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColorRun {
    /// Color of the first index in the run.
    pub start: i64,
    /// Color increment between consecutive indices.
    pub stride: i64,
    /// Number of indices covered (≥ 1 except for empty domains).
    pub count: u64,
}

impl fmt::Debug for ProjExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjExpr::Identity => write!(f, "λi.i"),
            ProjExpr::Constant(c) => write!(f, "λi.{c:?}"),
            ProjExpr::Affine(t) => write!(f, "λi.{t:?}(i)"),
            ProjExpr::Modular { a, b, m } => write!(f, "λi.({a}i+{b}) mod {m}"),
            ProjExpr::Quadratic { a, b, c } => write!(f, "λi.{a}i²+{b}i+{c}"),
            ProjExpr::Swizzle(take) => write!(f, "λp.swizzle{take:?}(p)"),
            ProjExpr::Compose(g, other) => write!(f, "({g:?})∘({other:?})"),
            ProjExpr::Opaque(_) => write!(f, "λi.f(i)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_identity_and_constant() {
        let p = DomainPoint::new2(3, 4);
        assert_eq!(ProjExpr::Identity.eval(p), p);
        assert_eq!(
            ProjExpr::Constant(DomainPoint::new1(7)).eval(p),
            DomainPoint::new1(7)
        );
    }

    #[test]
    fn eval_linear_modular_quadratic() {
        let i5 = DomainPoint::new1(5);
        assert_eq!(ProjExpr::linear(3, 2).eval(i5), DomainPoint::new1(17));
        assert_eq!(
            ProjExpr::Modular { a: 1, b: 0, m: 3 }.eval(i5),
            DomainPoint::new1(2)
        );
        // rem_euclid keeps results nonnegative.
        assert_eq!(
            ProjExpr::Modular { a: -1, b: 0, m: 3 }.eval(i5),
            DomainPoint::new1(1)
        );
        assert_eq!(
            ProjExpr::Quadratic { a: 1, b: -1, c: 2 }.eval(i5),
            DomainPoint::new1(22)
        );
    }

    #[test]
    fn eval_swizzle() {
        let p = DomainPoint::new3(7, 8, 9);
        assert_eq!(
            ProjExpr::Swizzle(vec![0, 1]).eval(p),
            DomainPoint::new2(7, 8)
        );
        assert_eq!(
            ProjExpr::Swizzle(vec![2, 0]).eval(p),
            DomainPoint::new2(9, 7)
        );
        assert_eq!(ProjExpr::Swizzle(vec![1]).eval(p), DomainPoint::new1(8));
    }

    #[test]
    fn eval_compose_and_opaque() {
        // (i -> 2i) then (j -> j+1): compose(g=+1, f=*2)(5) = 11.
        let f = ProjExpr::linear(2, 0);
        let g = ProjExpr::linear(1, 1);
        let c = ProjExpr::Compose(Box::new(g), Box::new(f));
        assert_eq!(c.eval(DomainPoint::new1(5)), DomainPoint::new1(11));

        let sq = ProjExpr::opaque(|p| DomainPoint::new1(p.x() * p.x()));
        assert_eq!(sq.eval(DomainPoint::new1(6)), DomainPoint::new1(36));
    }

    #[test]
    fn structural_equality() {
        assert!(ProjExpr::Identity.structurally_eq(&ProjExpr::Identity));
        assert!(ProjExpr::linear(2, 1).structurally_eq(&ProjExpr::linear(2, 1)));
        assert!(!ProjExpr::linear(2, 1).structurally_eq(&ProjExpr::linear(2, 2)));
        let o1 = ProjExpr::opaque(|p| p);
        let o2 = o1.clone();
        let o3 = ProjExpr::opaque(|p| p);
        assert!(o1.structurally_eq(&o2));
        assert!(!o1.structurally_eq(&o3));
    }

    #[test]
    fn debug_rendering() {
        assert_eq!(format!("{:?}", ProjExpr::Identity), "λi.i");
        assert_eq!(
            format!("{:?}", ProjExpr::Modular { a: 1, b: 0, m: 3 }),
            "λi.(1i+0) mod 3"
        );
    }

    #[test]
    fn ill_formed_evaluations_yield_sentinel_not_panic() {
        let oob = DomainPoint::new1(ILL_FORMED_COLOR);
        // Rank mismatch: 1-D functor families on a 2-D point.
        assert_eq!(ProjExpr::Modular { a: 1, b: 0, m: 3 }.eval(DomainPoint::new2(0, 0)), oob);
        assert_eq!(ProjExpr::Quadratic { a: 1, b: 0, c: 0 }.eval(DomainPoint::new2(1, 1)), oob);
        assert_eq!(ProjExpr::linear(2, 1).eval(DomainPoint::new2(1, 1)), oob);
        // Non-positive modulus (the "zero-stride" degenerate family).
        assert_eq!(ProjExpr::Modular { a: 1, b: 0, m: 0 }.eval(DomainPoint::new1(4)), oob);
        assert_eq!(ProjExpr::Modular { a: 1, b: 0, m: -5 }.eval(DomainPoint::new1(4)), oob);
        // Coefficient overflow.
        assert_eq!(ProjExpr::linear(i64::MAX, 1).eval(DomainPoint::new1(2)), oob);
        assert_eq!(
            ProjExpr::Quadratic { a: i64::MAX, b: 0, c: 0 }.eval(DomainPoint::new1(3)),
            oob
        );
        // Swizzles selecting coordinates the point does not have.
        assert_eq!(ProjExpr::Swizzle(vec![2]).eval(DomainPoint::new1(7)), oob);
        assert_eq!(ProjExpr::Swizzle(vec![]).eval(DomainPoint::new2(1, 2)), oob);
        // Ill-formedness propagates through compositions.
        let c = ProjExpr::Compose(
            Box::new(ProjExpr::linear(1, 0)),
            Box::new(ProjExpr::Modular { a: 1, b: 0, m: 0 }),
        );
        assert_eq!(c.eval(DomainPoint::new1(3)), oob);
        // try_eval reports the same edges as None.
        assert_eq!(ProjExpr::Modular { a: 1, b: 0, m: 0 }.try_eval(DomainPoint::new1(4)), None);
        // Well-formed evaluations are untouched.
        assert_eq!(
            ProjExpr::Modular { a: 1, b: 0, m: 3 }.try_eval(DomainPoint::new1(5)),
            Some(DomainPoint::new1(2))
        );
    }

    /// Expand runs back to a flat color sequence.
    fn flatten(runs: &[ColorRun]) -> Vec<i64> {
        let mut out = Vec::new();
        for r in runs {
            for k in 0..r.count {
                out.push(r.start + k as i64 * r.stride);
            }
        }
        out
    }

    fn eval_seq(f: &ProjExpr, lo: i64, hi: i64) -> Vec<i64> {
        (lo..=hi).map(|i| f.eval(DomainPoint::new1(i)).x()).collect()
    }

    #[test]
    fn color_runs_affine_shapes() {
        for (f, lo, hi) in [
            (ProjExpr::Identity, 0, 99),
            (ProjExpr::linear(1, 3), -5, 40),
            (ProjExpr::linear(-3, 7), 0, 17),
            (ProjExpr::Constant(DomainPoint::new1(9)), 0, 10),
            (ProjExpr::Quadratic { a: 0, b: 2, c: -1 }, -8, 8),
            (
                ProjExpr::Compose(
                    Box::new(ProjExpr::linear(2, 1)),
                    Box::new(ProjExpr::linear(3, -4)),
                ),
                0,
                25,
            ),
        ] {
            let runs = f.color_runs_1d(lo, hi).unwrap_or_else(|| panic!("{f:?} has runs"));
            assert_eq!(runs.len(), 1, "{f:?}");
            assert_eq!(flatten(&runs), eval_seq(&f, lo, hi), "{f:?}");
        }
    }

    #[test]
    fn color_runs_modular_piecewise() {
        for (a, b, m, lo, hi) in [
            (1, 0, 3, 0, 10),
            (1, 7, 5, -12, 30),
            (-2, 3, 7, -9, 25),
            (5, -1, 4, 0, 40),
            (0, 11, 4, 2, 9),
        ] {
            let f = ProjExpr::Modular { a, b, m };
            let runs = f.color_runs_1d(lo, hi).unwrap();
            assert_eq!(flatten(&runs), eval_seq(&f, lo, hi), "{f:?}");
            // Every run stays inside the canonical [0, m) range.
            for r in &runs {
                assert!(r.start >= 0 && r.start < m);
                let last = r.start + (r.count as i64 - 1) * r.stride;
                assert!(last >= 0 && last < m, "{f:?} run {r:?}");
            }
        }
    }

    #[test]
    fn color_runs_refused_where_inexact() {
        // Opaque and true quadratics have no run decomposition.
        assert!(ProjExpr::opaque(|p| p).color_runs_1d(0, 9).is_none());
        assert!(ProjExpr::Quadratic { a: 1, b: 0, c: 0 }.color_runs_1d(0, 9).is_none());
        // Overflowing affine folds are refused rather than wrapped.
        assert!(ProjExpr::linear(i64::MAX, 0).color_runs_1d(0, 9).is_none());
        // A modulus that wraps more than MAX_COLOR_RUNS times is refused.
        assert!(ProjExpr::Modular { a: 1, b: 0, m: 2 }
            .color_runs_1d(0, 3 * MAX_COLOR_RUNS as i64)
            .is_none());
        // Empty domains decompose to no runs.
        assert_eq!(ProjExpr::Identity.color_runs_1d(5, 4), Some(Vec::new()));
    }
}
