//! The static half of the hybrid analysis.
//!
//! "The compiler first subjects \[the projection functor] to a simple
//! static analysis that can recognize trivial projection functors like
//! constant (not injective), identity (injective), or the slightly more
//! general affine case" (§4). This module decides injectivity of the
//! statically analyzable fragment *over a given launch domain*; every case
//! it cannot decide returns [`StaticVerdict::Unknown`] and is handed to
//! the dynamic check.

use crate::proj::ProjExpr;
use il_geometry::Domain;

/// Result of the static injectivity analysis of one functor over one
/// launch domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StaticVerdict {
    /// Provably injective over the domain.
    Injective,
    /// Provably *not* injective over the domain (two points collide).
    NotInjective,
    /// Statically undecidable; requires the dynamic check.
    Unknown,
}

/// Decide injectivity of `functor` over `domain` statically.
///
/// The analysis is sound in both directions: `Injective` and
/// `NotInjective` are proofs, never guesses. Its strength is deliberately
/// modest — the paper notes the exact power "is less important in our case
/// than in more traditional compiler settings because we augment this
/// static analysis with a precise dynamic analysis" (§4).
pub fn analyze_injectivity(functor: &ProjExpr, domain: &Domain) -> StaticVerdict {
    let volume = domain.volume();
    // Domains of at most one point make every functor injective.
    if volume <= 1 {
        return StaticVerdict::Injective;
    }
    match functor {
        ProjExpr::Identity => StaticVerdict::Injective,
        ProjExpr::Constant(_) => StaticVerdict::NotInjective,
        ProjExpr::Affine(t) => {
            if t.in_dim as usize != domain.dim() {
                return StaticVerdict::Unknown; // rank mismatch: leave to dynamic/bounds checks
            }
            if t.is_injective() {
                return StaticVerdict::Injective;
            }
            // Full column rank failed over Z^n, but the functor may still
            // be injective over the domain if the matrix has full rank on
            // the coordinates that actually *vary* within the domain.
            match varying_dims(domain) {
                Some(vary) => {
                    if vary.is_empty() {
                        // Single point; handled above, but be safe.
                        StaticVerdict::Injective
                    } else if restricted_full_rank(t, &vary) {
                        StaticVerdict::Injective
                    } else if vary.iter().any(|&c| column_is_zero(t, c)) {
                        // The functor ignores a coordinate that varies in
                        // the (dense) domain: two points differing only in
                        // that coordinate collide.
                        StaticVerdict::NotInjective
                    } else {
                        StaticVerdict::Unknown
                    }
                }
                None => StaticVerdict::Unknown, // sparse domain: imprecise
            }
        }
        ProjExpr::Modular { a, m, .. } => {
            if domain.dim() != 1 || *m <= 0 {
                return StaticVerdict::Unknown;
            }
            if *a == 0 {
                return StaticVerdict::NotInjective;
            }
            match domain {
                Domain::Rect1(r) => {
                    // (a·i + b) mod m repeats with period m / gcd(a, m):
                    // a·d ≡ 0 (mod m) ⇔ d ≡ 0 (mod m/gcd(a,m)). Injective
                    // over a dense range iff its extent ≤ that period.
                    let g = gcd(a.unsigned_abs(), m.unsigned_abs());
                    let period = m.unsigned_abs() / g;
                    if r.volume() <= period {
                        StaticVerdict::Injective
                    } else {
                        StaticVerdict::NotInjective
                    }
                }
                // Sparse 1-D domains: point spacing is arbitrary.
                _ => StaticVerdict::Unknown,
            }
        }
        ProjExpr::Compose(g, f) => {
            // Sound composition rules:
            //   f not injective over D      => g∘f not injective;
            //   g constant (and |D| > 1)    => g∘f not injective;
            //   f injective over D and g injective on all of Z^n
            //                               => g∘f injective.
            if matches!(**g, ProjExpr::Constant(_)) {
                return StaticVerdict::NotInjective;
            }
            match analyze_injectivity(f, domain) {
                StaticVerdict::NotInjective => StaticVerdict::NotInjective,
                StaticVerdict::Injective if globally_injective(g) => StaticVerdict::Injective,
                _ => StaticVerdict::Unknown,
            }
        }
        // Quadratics, swizzles, and opaque functions go to the dynamic
        // check (the paper's DOM functors land here).
        ProjExpr::Quadratic { .. } | ProjExpr::Swizzle(_) | ProjExpr::Opaque(_) => {
            StaticVerdict::Unknown
        }
    }
}

/// True iff `f` is injective on its entire (integer) input space — usable
/// as the outer member of a composition regardless of the inner image.
fn globally_injective(f: &ProjExpr) -> bool {
    match f {
        ProjExpr::Identity => true,
        ProjExpr::Affine(t) => t.is_injective(),
        ProjExpr::Compose(g, h) => globally_injective(g) && globally_injective(h),
        _ => false,
    }
}

/// The set of dimensions whose extent exceeds 1, for dense domains.
fn varying_dims(domain: &Domain) -> Option<Vec<usize>> {
    let (lo, hi) = match domain {
        Domain::Sparse { .. } => return None,
        d => d.bounds(),
    };
    Some(
        (0..domain.dim())
            .filter(|&d| lo.coord(d) != hi.coord(d))
            .collect(),
    )
}

/// True iff column `c` of the matrix is all zeros (the functor ignores
/// input coordinate `c`).
fn column_is_zero(t: &il_geometry::DynTransform, c: usize) -> bool {
    (0..t.out_dim as usize).all(|r| t.matrix[r][c] == 0)
}

/// Full column rank of the transform restricted to columns `cols`.
#[allow(clippy::needless_range_loop)] // matrix elimination indexes by row/col
fn restricted_full_rank(t: &il_geometry::DynTransform, cols: &[usize]) -> bool {
    let m = t.out_dim as usize;
    let n = cols.len();
    if m < n {
        return false;
    }
    let mut a = [[0i128; 3]; 3];
    for r in 0..m {
        for (j, &c) in cols.iter().enumerate() {
            a[r][j] = t.matrix[r][c] as i128;
        }
    }
    let mut rank = 0usize;
    let mut row = 0usize;
    for col in 0..n {
        let Some(pivot) = (row..m).find(|&r| a[r][col] != 0) else {
            continue;
        };
        a.swap(row, pivot);
        let pv = a[row][col];
        for r in (row + 1)..m {
            let factor = a[r][col];
            if factor == 0 {
                continue;
            }
            for c in col..n {
                a[r][c] = a[r][c] * pv - a[row][c] * factor;
            }
        }
        rank += 1;
        row += 1;
        if row == m {
            break;
        }
    }
    rank == n
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_geometry::{DomainPoint, DynTransform, Rect};

    fn d1(n: i64) -> Domain {
        Domain::range(n)
    }

    #[test]
    fn identity_injective() {
        assert_eq!(
            analyze_injectivity(&ProjExpr::Identity, &d1(100)),
            StaticVerdict::Injective
        );
    }

    #[test]
    fn constant_not_injective_unless_singleton() {
        let c = ProjExpr::Constant(DomainPoint::new1(3));
        assert_eq!(analyze_injectivity(&c, &d1(5)), StaticVerdict::NotInjective);
        assert_eq!(analyze_injectivity(&c, &d1(1)), StaticVerdict::Injective);
    }

    #[test]
    fn affine_cases() {
        assert_eq!(
            analyze_injectivity(&ProjExpr::linear(2, 5), &d1(10)),
            StaticVerdict::Injective
        );
        // Degenerate affine (a = 0) is constant.
        assert_eq!(
            analyze_injectivity(&ProjExpr::linear(0, 5), &d1(10)),
            StaticVerdict::NotInjective
        );
    }

    #[test]
    fn affine_rank_refinement_on_domain() {
        // f(x,y) = (x, 0): not injective over Z², but injective over a
        // domain where only x varies.
        let t = DynTransform::from_rows(2, &[&[1, 0], &[0, 0]], &[0, 0]);
        let f = ProjExpr::Affine(t);
        let thin: Domain = Rect::new2((0, 5), (9, 5)).into(); // y fixed at 5
        assert_eq!(analyze_injectivity(&f, &thin), StaticVerdict::Injective);
        let fat: Domain = Rect::new2((0, 0), (9, 9)).into();
        // y varies and is dropped entirely: provably not injective.
        assert_eq!(analyze_injectivity(&f, &fat), StaticVerdict::NotInjective);
    }

    #[test]
    fn affine_unknown_when_partial() {
        // f(x,y) = x + y: not full rank (1 row, 2 varying cols), but not
        // zero on varying dims either -> Unknown (dynamic would reject).
        let t = DynTransform::from_rows(2, &[&[1, 1]], &[0]);
        let f = ProjExpr::Affine(t);
        let fat: Domain = Rect::new2((0, 0), (3, 3)).into();
        assert_eq!(analyze_injectivity(&f, &fat), StaticVerdict::Unknown);
    }

    #[test]
    fn modular_listing2_example() {
        // i % 3 over [0, 5): the paper's running example — not injective.
        let f = ProjExpr::Modular { a: 1, b: 0, m: 3 };
        assert_eq!(analyze_injectivity(&f, &d1(5)), StaticVerdict::NotInjective);
        // Over [0, 3) it is injective.
        assert_eq!(analyze_injectivity(&f, &d1(3)), StaticVerdict::Injective);
    }

    #[test]
    fn modular_with_stride() {
        // (2i) mod 10 has period 5: injective over [0,5), not over [0,6).
        let f = ProjExpr::Modular { a: 2, b: 0, m: 10 };
        assert_eq!(analyze_injectivity(&f, &d1(5)), StaticVerdict::Injective);
        assert_eq!(analyze_injectivity(&f, &d1(6)), StaticVerdict::NotInjective);
    }

    #[test]
    fn compose_rules() {
        // (2i+1) o (3i): both injective -> injective.
        let c = ProjExpr::Compose(
            Box::new(ProjExpr::linear(2, 1)),
            Box::new(ProjExpr::linear(3, 0)),
        );
        assert_eq!(analyze_injectivity(&c, &d1(10)), StaticVerdict::Injective);
        // anything o (i%3 over [0,5)): inner non-injective -> non-injective.
        let c = ProjExpr::Compose(
            Box::new(ProjExpr::linear(1, 0)),
            Box::new(ProjExpr::Modular { a: 1, b: 0, m: 3 }),
        );
        assert_eq!(analyze_injectivity(&c, &d1(5)), StaticVerdict::NotInjective);
        // constant o anything: non-injective.
        let c = ProjExpr::Compose(
            Box::new(ProjExpr::Constant(DomainPoint::new1(2))),
            Box::new(ProjExpr::Identity),
        );
        assert_eq!(analyze_injectivity(&c, &d1(5)), StaticVerdict::NotInjective);
        // quadratic o identity: unknown (outer not globally injective).
        let c = ProjExpr::Compose(
            Box::new(ProjExpr::Quadratic { a: 1, b: 0, c: 0 }),
            Box::new(ProjExpr::Identity),
        );
        assert_eq!(analyze_injectivity(&c, &d1(5)), StaticVerdict::Unknown);
        // modular o (50i): modular is injective over small domains but
        // not globally -> unknown (the inner image can exceed the period
        // even when the launch domain doesn't).
        let c = ProjExpr::Compose(
            Box::new(ProjExpr::Modular { a: 1, b: 0, m: 100 }),
            Box::new(ProjExpr::linear(50, 0)),
        );
        assert_eq!(analyze_injectivity(&c, &d1(5)), StaticVerdict::Unknown);
    }

    #[test]
    fn undecidable_cases_are_unknown() {
        assert_eq!(
            analyze_injectivity(&ProjExpr::Quadratic { a: 1, b: 0, c: 0 }, &d1(4)),
            StaticVerdict::Unknown
        );
        assert_eq!(
            analyze_injectivity(&ProjExpr::opaque(|p| p), &d1(4)),
            StaticVerdict::Unknown
        );
        let sw = ProjExpr::Swizzle(vec![0, 1]);
        let dom: Domain = Rect::new3((0, 0, 0), (2, 2, 2)).into();
        assert_eq!(analyze_injectivity(&sw, &dom), StaticVerdict::Unknown);
    }

    #[test]
    fn verdicts_match_ground_truth_by_enumeration() {
        // For decidable verdicts, brute-force must agree.
        use std::collections::HashSet;
        let cases: Vec<(ProjExpr, Domain)> = vec![
            (ProjExpr::Identity, d1(20)),
            (ProjExpr::linear(3, -4), d1(20)),
            (ProjExpr::linear(0, 2), d1(20)),
            (ProjExpr::Modular { a: 1, b: 2, m: 7 }, d1(7)),
            (ProjExpr::Modular { a: 1, b: 2, m: 7 }, d1(8)),
            (ProjExpr::Modular { a: 3, b: 0, m: 9 }, d1(3)),
            (ProjExpr::Modular { a: 3, b: 0, m: 9 }, d1(4)),
        ];
        for (f, dom) in cases {
            let verdict = analyze_injectivity(&f, &dom);
            let mut seen = HashSet::new();
            let actually = dom.iter().all(|p| seen.insert(f.eval(p)));
            match verdict {
                StaticVerdict::Injective => assert!(actually, "{f:?} over {dom:?}"),
                StaticVerdict::NotInjective => assert!(!actually, "{f:?} over {dom:?}"),
                StaticVerdict::Unknown => {}
            }
        }
    }
}
