//! Property tests: the word-parallel and chunked-parallel dynamic-check
//! paths are *observationally identical* to the pointwise Listing-3
//! reference — same outcome (including which argument/point/color trips
//! first), same functor-evaluation count, same out-of-bounds count — on
//! random domains, functor families, and strategies. Runs on the
//! hermetic `il-testkit` harness; failures print a rerunnable
//! `IL_TESTKIT_SEED`.

use il_analysis::{
    cross_check_reference, cross_check_with, self_check_reference, self_check_with, ArgCheck,
    CheckStrategy, ProjExpr, PAR_CHUNK, PAR_MIN_VOLUME,
};
use il_geometry::{Domain, DomainPoint};
use il_testkit::prop::{bools, check, i64s, map, one_of, usizes, vec_of, Just, OneOf};
use il_testkit::prop_assert_eq;

/// A functor from the statically-analyzable + dynamic families (the same
/// pool the hybrid-analysis property tests draw from).
fn functor() -> OneOf<ProjExpr> {
    one_of(vec![
        Box::new(Just(ProjExpr::Identity)),
        Box::new(map((i64s(-3..4), i64s(-5..6)), |(a, b)| ProjExpr::linear(a, b))),
        Box::new(map(i64s(0..20), |c| ProjExpr::Constant(DomainPoint::new1(c)))),
        Box::new(map((i64s(-3..4), i64s(0..8), i64s(1..20)), |(a, b, m)| {
            ProjExpr::Modular { a, b, m }
        })),
        Box::new(map((i64s(-2..3), i64s(-3..4), i64s(0..5)), |(a, b, c)| {
            ProjExpr::Quadratic { a, b, c }
        })),
    ])
}

/// Every strategy the dispatcher can take on 1-D rectangles, including
/// chunk sizes small enough that even tiny domains split into many
/// chunks (exercising the in-order merge and cross-chunk conflicts).
fn strategy() -> OneOf<CheckStrategy> {
    one_of(vec![
        Box::new(Just(CheckStrategy::Auto)),
        Box::new(Just(CheckStrategy::Word)),
        Box::new(map((i64s(1..80), usizes(1..5)), |(chunk, threads)| {
            CheckStrategy::Chunked { chunk: chunk as u64, threads }
        })),
    ])
}

/// Self-checks: every strategy reproduces the reference report exactly —
/// outcome (first conflict point and color included), eval count, and
/// out-of-bounds count.
#[test]
fn self_check_strategies_match_reference_exactly() {
    let gen = (functor(), i64s(1..300), i64s(1..400), strategy());
    check("self_check_strategies_match_reference_exactly", &gen, |(f, n, colors, strat)| {
        let domain = Domain::range(*n);
        let bounds = Domain::range(*colors);
        let want = self_check_reference(&domain, f, &bounds);
        let got = self_check_with(&domain, f, &bounds, *strat)
            .expect("all strategies apply to 1-D rectangles");
        prop_assert_eq!(got, want, "functor {:?} over [0,{}), strategy {:?}", f, n, strat);
        Ok(())
    });
}

/// Cross-checks: same exactness guarantee with multiple writer/reader
/// arguments sharing one mask.
#[test]
fn cross_check_strategies_match_reference_exactly() {
    let gen = (vec_of((functor(), bools()), 1..5), i64s(1..120), i64s(1..300), strategy());
    check("cross_check_strategies_match_reference_exactly", &gen, |(fs, n, colors, strat)| {
        let domain = Domain::range(*n);
        let bounds = Domain::range(*colors);
        let args: Vec<ArgCheck<'_>> = fs
            .iter()
            .enumerate()
            .map(|(i, (f, w))| ArgCheck { index: i, functor: f, writes: *w })
            .collect();
        let want = cross_check_reference(&domain, &args, &bounds);
        let got = cross_check_with(&domain, &args, &bounds, *strat)
            .expect("all strategies apply to 1-D rectangles");
        prop_assert_eq!(got, want, "args {:?} over [0,{}), strategy {:?}", fs, n, strat);
        Ok(())
    });
}

/// Deterministic large-domain cases around the parallel threshold
/// (|D| ≥ `PAR_MIN_VOLUME`), where the Auto path may go wide: a safe
/// run-decomposable writer, a conflicting modular writer (early exit
/// must report the reference's first conflict), and a run-less quadratic
/// whose values mostly fall out of bounds (the chunked scan must count
/// them identically).
#[test]
fn large_domains_agree_across_all_paths() {
    let n = (PAR_MIN_VOLUME + PAR_MIN_VOLUME / 2) as i64;
    let cases: Vec<(&str, ProjExpr, i64)> = vec![
        ("safe linear", ProjExpr::linear(1, 3), n + 16),
        ("conflicting modular", ProjExpr::Modular { a: 1, b: 0, m: n / 2 }, n),
        ("out-of-bounds quadratic", ProjExpr::Quadratic { a: 1, b: 0, c: 0 }, 100_000),
    ];
    let strategies = [
        CheckStrategy::Auto,
        CheckStrategy::Word,
        CheckStrategy::Chunked { chunk: PAR_CHUNK, threads: 4 },
        CheckStrategy::Chunked { chunk: 4096, threads: 3 },
    ];
    for (name, f, colors) in &cases {
        let domain = Domain::range(n);
        let bounds = Domain::range(*colors);
        let want = self_check_reference(&domain, f, &bounds);
        for strat in &strategies {
            let got = self_check_with(&domain, f, &bounds, *strat)
                .expect("all strategies apply to 1-D rectangles");
            assert_eq!(got, want, "{name}: strategy {strat:?} diverged from reference");
        }
    }
}
