//! Property tests: the analysis stack is **total** on degenerate and
//! ill-formed projection functors. Empty rectangles, zero-stride and
//! zero-modulus maps, out-of-domain projections, rank mismatches, and
//! overflowing coefficients — the shapes the sparse-graph workload's
//! data-dependent functors reach — must all produce *verdicts*, never
//! panics, and every fast-path strategy must still agree with the
//! pointwise reference byte for byte. Runs on the hermetic `il-testkit`
//! harness; failures print a rerunnable `IL_TESTKIT_SEED`.

use il_analysis::{
    analyze_launch, cross_check_reference, cross_check_with, self_check_reference,
    self_check_with, ArgCheck, CheckStrategy, HybridVerdict, LaunchArg, ProjExpr,
    ILL_FORMED_COLOR,
};
use il_geometry::{Domain, DomainPoint, Rect};
use il_region::{equal_partition_1d, FieldSpaceDesc, Privilege, RegionForest};
use il_testkit::prop::{bools, check, i64s, map, one_of, usizes, vec_of, Just, OneOf};
use il_testkit::{prop_assert, prop_assert_eq};

/// Adversarial functor pool: every constructor stressed at its edges —
/// non-positive moduli, zero strides, out-of-range swizzles, overflowing
/// coefficients, out-of-domain constants and opaque maps, and shallow
/// compositions of all of the above.
fn edge_functor() -> OneOf<ProjExpr> {
    one_of(vec![
        Box::new(Just(ProjExpr::Identity)),
        // Zero-stride and ordinary affine maps, plus coefficients at the
        // overflow boundary.
        Box::new(map((i64s(-2..3), i64s(-6..7)), |(a, b)| ProjExpr::linear(a, b))),
        Box::new(Just(ProjExpr::linear(i64::MAX, 1))),
        Box::new(Just(ProjExpr::linear(0, i64::MAX))),
        // Moduli spanning negative, zero, and positive.
        Box::new(map((i64s(-3..4), i64s(-4..5), i64s(-3..8)), |(a, b, m)| {
            ProjExpr::Modular { a, b, m }
        })),
        Box::new(map((i64s(-2..3), i64s(-2..3), i64s(-2..3)), |(a, b, c)| {
            ProjExpr::Quadratic { a, b, c }
        })),
        Box::new(Just(ProjExpr::Quadratic { a: i64::MAX, b: 0, c: 0 })),
        // Swizzles: in-range, out-of-range, and empty selections.
        Box::new(map(vec_of(usizes(0..4), 0..3), ProjExpr::Swizzle)),
        // Constants far outside any color space.
        Box::new(map(i64s(-40..40), |c| ProjExpr::Constant(DomainPoint::new1(c)))),
        Box::new(Just(ProjExpr::Constant(DomainPoint::new1(i64::MAX)))),
        // Data-dependent opaque maps that wander out of the color space
        // (the sparse-graph app's functor family).
        Box::new(map(i64s(-8..9), |k| {
            ProjExpr::opaque(move |p| DomainPoint::new1(p.coord(0).wrapping_mul(3) + k))
        })),
    ])
}

/// A possibly-degenerate composition of edge functors.
fn composed_edge_functor() -> OneOf<ProjExpr> {
    one_of(vec![
        Box::new(edge_functor()),
        Box::new(map((edge_functor(), edge_functor()), |(g, f)| {
            ProjExpr::Compose(Box::new(g), Box::new(f))
        })),
    ])
}

/// 1-D launch domains including the empty rectangle.
fn domain_1d() -> OneOf<Domain> {
    one_of(vec![
        Box::new(Just(Domain::Rect1(Rect::empty()))),
        Box::new(map(i64s(1..60), Domain::range)),
        Box::new(map((i64s(-20..20), i64s(0..40)), |(lo, len)| {
            Domain::Rect1(Rect::new1(lo, lo + len - 1)) // len 0 ⇒ empty
        })),
    ])
}

/// `eval` is total and deterministic on the full adversarial pool, and
/// `try_eval`'s `None` is exactly `eval`'s sentinel.
#[test]
fn eval_is_total_on_edge_functors() {
    let gen = (composed_edge_functor(), i64s(-50..50), usizes(1..4));
    check("eval_is_total_on_edge_functors", &gen, |(f, x, rank)| {
        let p = match rank {
            1 => DomainPoint::new1(*x),
            2 => DomainPoint::new2(*x, x + 1),
            _ => DomainPoint::new3(*x, x + 1, x + 2),
        };
        let a = f.eval(p);
        let b = f.eval(p);
        prop_assert_eq!(a, b, "eval must be deterministic for {:?}", f);
        match f.try_eval(p) {
            Some(v) => prop_assert_eq!(a, v, "try_eval/eval disagree for {:?}", f),
            None => prop_assert_eq!(
                a,
                DomainPoint::new1(ILL_FORMED_COLOR),
                "ill-formed eval must be the sentinel for {:?}",
                f
            ),
        }
        Ok(())
    });
}

/// `color_runs_1d` keeps its exactness contract against the total `eval`:
/// when it claims a decomposition, the flattened runs equal the pointwise
/// evaluation — even for degenerate families (which mostly refuse).
#[test]
fn color_runs_stay_exact_on_edge_functors() {
    let gen = (composed_edge_functor(), i64s(-30..30), i64s(0..50));
    check("color_runs_stay_exact_on_edge_functors", &gen, |(f, lo, len)| {
        let (lo, hi) = (*lo, lo + len - 1);
        if let Some(runs) = f.color_runs_1d(lo, hi) {
            let mut flat = Vec::new();
            for r in &runs {
                for k in 0..r.count {
                    flat.push(r.start + k as i64 * r.stride);
                }
            }
            let want: Vec<i64> =
                (lo..=hi).map(|i| f.eval(DomainPoint::new1(i)).coord(0)).collect();
            prop_assert_eq!(flat, want, "inexact run decomposition for {:?}", f);
        }
        Ok(())
    });
}

/// Every check strategy still matches the pointwise reference exactly on
/// the adversarial pool — including empty launch domains and functors
/// whose every value is out of bounds.
#[test]
fn strategies_match_reference_on_edge_functors() {
    fn strategy() -> OneOf<CheckStrategy> {
        one_of(vec![
            Box::new(Just(CheckStrategy::Auto)),
            Box::new(Just(CheckStrategy::Word)),
            Box::new(map((i64s(1..40), usizes(1..4)), |(chunk, threads)| {
                CheckStrategy::Chunked { chunk: chunk as u64, threads }
            })),
        ])
    }
    let gen = (
        vec_of((composed_edge_functor(), bools()), 1..4),
        domain_1d(),
        i64s(1..40),
        strategy(),
    );
    check("strategies_match_reference_on_edge_functors", &gen, |(fs, domain, colors, strat)| {
        let bounds = Domain::range(*colors);
        let args: Vec<ArgCheck<'_>> = fs
            .iter()
            .enumerate()
            .map(|(i, (f, w))| ArgCheck { index: i, functor: f, writes: *w })
            .collect();
        let want = cross_check_reference(domain, &args, &bounds);
        if let Some(got) = cross_check_with(domain, &args, &bounds, *strat) {
            prop_assert_eq!(got, want, "args {:?} over {:?}, strategy {:?}", fs, domain, strat);
        }
        let (f0, _) = &fs[0];
        let want = self_check_reference(domain, f0, &bounds);
        if let Some(got) = self_check_with(domain, f0, &bounds, *strat) {
            prop_assert_eq!(got, want, "functor {:?} over {:?}, strategy {:?}", f0, domain, strat);
        }
        Ok(())
    });
}

/// `analyze_launch` + running the dynamic plan is total: every launch
/// over the adversarial pool gets a verdict (safe, dynamic, or unsafe),
/// and dynamic plans run to completion with a result — no panics
/// anywhere, even for empty domains and fully out-of-domain projections.
#[test]
fn analyze_launch_is_total_on_edge_functors() {
    let gen = (
        vec_of((composed_edge_functor(), usizes(0..4)), 1..4),
        domain_1d(),
        i64s(1..12),
    );
    check("analyze_launch_is_total_on_edge_functors", &gen, |(fs, domain, parts)| {
        let mut forest = RegionForest::new();
        let fsp = forest.create_field_space(FieldSpaceDesc::new());
        let region = forest.create_region(Domain::range(120), fsp);
        let partition = equal_partition_1d(&mut forest, region.space, *parts as usize);
        let args: Vec<LaunchArg> = fs
            .iter()
            .map(|(f, priv_idx)| LaunchArg {
                partition,
                functor: f.clone(),
                privilege: match priv_idx {
                    0 => Privilege::Read,
                    1 => Privilege::Write,
                    _ => Privilege::ReadWrite,
                },
                fields: vec![],
            })
            .collect();
        let verdict = analyze_launch(&forest, domain, &args);
        if let HybridVerdict::NeedsDynamic(plan) = verdict {
            let budget = plan.planned_evals();
            match plan.run() {
                Ok(evals) => prop_assert!(
                    evals <= budget,
                    "dynamic check ran {} evals against a plan of {}",
                    evals,
                    budget
                ),
                Err(_) => {} // a conflict is a verdict too
            }
        }
        Ok(())
    });
}
