//! Property tests: the dynamic checks are *sound and complete* for
//! injectivity and image-disjointness (§4 claims this outright — "the
//! analysis is sound and complete with respect to determining injectivity
//! of the projection functor"), and the static analyzer never contradicts
//! ground truth. Runs on the hermetic `il-testkit` harness; failures
//! print a rerunnable `IL_TESTKIT_SEED`.

use il_analysis::{
    analyze_injectivity, analyze_launch, cross_check, self_check, ArgCheck, HybridVerdict,
    LaunchArg, ProjExpr, StaticVerdict,
};
use il_geometry::{Domain, DomainPoint};
use il_region::{equal_partition_1d, FieldSpaceDesc, Privilege, RegionForest};
use il_testkit::prop::{bools, check, i64s, map, one_of, usizes, vec_of, Just, OneOf};
use il_testkit::{prop_assert, prop_assert_eq};
use std::collections::HashSet;

/// A functor from the statically-analyzable + dynamic families.
fn functor() -> OneOf<ProjExpr> {
    one_of(vec![
        Box::new(Just(ProjExpr::Identity)),
        Box::new(map((i64s(-3..4), i64s(-5..6)), |(a, b)| ProjExpr::linear(a, b))),
        Box::new(map(i64s(0..20), |c| ProjExpr::Constant(DomainPoint::new1(c)))),
        Box::new(map((i64s(-3..4), i64s(0..8), i64s(1..20)), |(a, b, m)| {
            ProjExpr::Modular { a, b, m }
        })),
        Box::new(map((i64s(-2..3), i64s(-3..4), i64s(0..5)), |(a, b, c)| {
            ProjExpr::Quadratic { a, b, c }
        })),
    ])
}

/// Ground truth: is `f` injective over `domain`, counting only in-bounds
/// values (the bounds-check semantics of Listing 3)?
fn injective_in_bounds(f: &ProjExpr, domain: &Domain, colors: &Domain) -> bool {
    let mut seen = HashSet::new();
    for p in domain.iter() {
        let c = f.eval(p);
        if colors.linearize(c).is_some() && !seen.insert(c) {
            return false;
        }
    }
    true
}

/// The dynamic self-check equals brute-force injectivity.
#[test]
fn self_check_is_sound_and_complete() {
    check(
        "self_check_is_sound_and_complete",
        &(functor(), i64s(1..40), i64s(1..60)),
        |(f, n, colors)| {
            let domain = Domain::range(*n);
            let color_bounds = Domain::range(*colors);
            let got = self_check(&domain, f, &color_bounds).is_safe();
            let want = injective_in_bounds(f, &domain, &color_bounds);
            prop_assert_eq!(got, want, "functor {:?} over [0,{})", f, n);
            Ok(())
        },
    );
}

/// The static analyzer never contradicts ground truth (in-bounds
/// behavior is irrelevant here: static analysis reasons about the
/// functor itself, so restrict to a color space large enough that
/// everything is in bounds).
#[test]
fn static_verdicts_are_proofs() {
    check("static_verdicts_are_proofs", &(functor(), i64s(1..40)), |(f, n)| {
        let n = *n;
        let domain = Domain::range(n);
        let mut seen = HashSet::new();
        let truly = domain.iter().all(|p| seen.insert(f.eval(p)));
        match analyze_injectivity(f, &domain) {
            StaticVerdict::Injective => prop_assert!(truly, "{f:?} over [0,{n})"),
            StaticVerdict::NotInjective => prop_assert!(!truly, "{f:?} over [0,{n})"),
            StaticVerdict::Unknown => {}
        }
        Ok(())
    });
}

/// The linear-time cross-check equals the quadratic pairwise oracle.
#[test]
fn cross_check_matches_pairwise_oracle() {
    let gen = (vec_of((functor(), bools()), 1..5), i64s(1..25), i64s(5..50));
    check("cross_check_matches_pairwise_oracle", &gen, |(fs, n, colors)| {
        let domain = Domain::range(*n);
        let color_bounds = Domain::range(*colors);
        let args: Vec<ArgCheck<'_>> = fs
            .iter()
            .enumerate()
            .map(|(i, (f, w))| ArgCheck { index: i, functor: f, writes: *w })
            .collect();
        let got = cross_check(&domain, &args, &color_bounds).is_safe();

        // Oracle: every writer injective (in bounds), writer images
        // pairwise disjoint, and no reader image touching a writer image.
        let image = |f: &ProjExpr| -> Vec<DomainPoint> {
            domain
                .iter()
                .map(|p| f.eval(p))
                .filter(|c| color_bounds.linearize(*c).is_some())
                .collect()
        };
        let mut want = true;
        for (i, (f, w)) in fs.iter().enumerate() {
            if !w {
                continue;
            }
            if !injective_in_bounds(f, &domain, &color_bounds) {
                want = false;
            }
            let img: HashSet<_> = image(f).into_iter().collect();
            for (j, (g, gw)) in fs.iter().enumerate() {
                if i == j {
                    continue;
                }
                // Writer vs writer counted once.
                if *gw && j < i {
                    continue;
                }
                if image(g).iter().any(|c| img.contains(c)) {
                    want = false;
                }
            }
        }
        prop_assert_eq!(got, want, "args {:?} over [0,{})", fs, n);
        Ok(())
    });
}

/// Whole-launch soundness: whenever the hybrid driver clears a launch
/// (statically or dynamically), brute force finds no interference.
#[test]
fn hybrid_never_accepts_interference() {
    let gen = (vec_of((functor(), usizes(0..3)), 1..4), usizes(2..8));
    check("hybrid_never_accepts_interference", &gen, |(specs, pieces)| {
        let pieces = *pieces;
        let mut forest = RegionForest::new();
        let fs = forest.create_field_space(FieldSpaceDesc::new());
        let region = forest.create_region(Domain::range(64), fs);
        let partition = equal_partition_1d(&mut forest, region.space, pieces);
        let domain = Domain::range(pieces as i64);

        let args: Vec<LaunchArg> = specs
            .iter()
            .map(|(f, p)| LaunchArg {
                partition,
                functor: f.clone(),
                privilege: match p {
                    0 => Privilege::Read,
                    1 => Privilege::Write,
                    _ => Privilege::ReadWrite,
                },
                fields: vec![],
            })
            .collect();

        let verdict = analyze_launch(&forest, &domain, &args);
        let accepted = match &verdict {
            HybridVerdict::SafeStatic => true,
            HybridVerdict::NeedsDynamic(plan) => plan.run().is_ok(),
            HybridVerdict::Unsafe(_) => false,
        };
        if accepted {
            // Brute force over point-task pairs: conflicting privileges on
            // the same subspace (colors out of bounds never materialize a
            // subspace, matching the runtime's expansion semantics — but
            // the runtime would panic on them, so treat out-of-bounds as
            // vacuously fine only if the verdict also passed).
            let points: Vec<DomainPoint> = domain.iter().collect();
            for (ti, a) in points.iter().enumerate() {
                for b in points.iter().skip(ti + 1) {
                    for (ai, arg_a) in args.iter().enumerate() {
                        for (bi, arg_b) in args.iter().enumerate() {
                            if arg_a.privilege.parallel_with(&arg_b.privilege) {
                                continue;
                            }
                            let ca = arg_a.functor.eval(*a);
                            let cb = arg_b.functor.eval(*b);
                            if domain.linearize(ca).is_some()
                                && domain.linearize(cb).is_some()
                                && ca == cb
                            {
                                prop_assert!(
                                    false,
                                    "accepted launch interferes: args {ai},{bi} at {a:?},{b:?} -> {ca:?} ({verdict:?})"
                                );
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    });
}
