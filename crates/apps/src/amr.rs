//! AMR: a block-structured adaptive-mesh-refinement driver (1-D).
//!
//! The grid region holds a solution field `u` and a scratch field `unew`.
//! Time is split into *epochs* of `steps_per_epoch` timesteps; at every
//! epoch boundary the driver regrids, alternating between a coarse block
//! partition and a refined one (`refine_factor`× more blocks). The
//! refined pair is produced by the in-place partition-replacement ops
//! ([`il_region::replace_equal_partition_1d`] /
//! [`il_region::replace_halo_partition_1d`]) — the regrid step of a real
//! AMR code, which bumps the forest generation that keys cached analyses
//! and captured traces.
//!
//! Each timestep issues three launches:
//!
//! 1. `flag` — the regrid indicator: reads `u` through the *fixed* coarse
//!    blocks and computes the per-block gradient maximum. Its launch
//!    signature never changes, so it is the first key of every captured
//!    trace — and at each epoch boundary that key reappears followed by
//!    the *other* level's step/copy keys, forcing the trace recorder to
//!    invalidate the stale trace and re-capture (the analysis cache
//!    likewise misses on the first timestep of each level and hits
//!    afterwards).
//! 2. `step` — explicit diffusion: reads `u` through the epoch's aliased
//!    halo partition, writes `unew` through the epoch's disjoint blocks
//!    (field-disjoint, statically safe, identity functors).
//! 3. `copy` — `u = unew` through the epoch's blocks.
//!
//! Refined epochs also swap the sharding functor from the default block
//! sharding to round-robin — the rebalance a regrid triggers — so traces,
//! shard maps, and distribution plans all turn over at the boundary.

use il_geometry::{Domain, DomainPoint};
use il_machine::SimTime;
use il_region::{
    equal_partition_1d, halo_partition_1d, replace_equal_partition_1d, replace_halo_partition_1d,
    FieldId, FieldKind, FieldSpaceDesc, IndexPartitionId, Privilege, RegionTreeId,
};
use il_runtime::{
    round_robin_shard, CostSpec, ExecutionMode, IndexLaunchDesc, Program, ProgramBuilder,
    RegionReq, RunReport,
};

/// Stencil radius of the diffusion update (nearest neighbor).
pub const RADIUS: i64 = 1;

/// Diffusion coefficient (stable for the explicit 1-D scheme).
pub const ALPHA: f64 = 0.25;

/// AMR problem configuration.
#[derive(Clone, Debug)]
pub struct AmrConfig {
    /// Grid cells.
    pub cells: i64,
    /// Blocks of the coarse level (= indicator launch size).
    pub base_blocks: usize,
    /// Refinement ratio: the fine level has `base_blocks × refine_factor`
    /// blocks.
    pub refine_factor: usize,
    /// Timesteps between regrids.
    pub steps_per_epoch: usize,
    /// Epochs (regrid intervals); the level alternates coarse/fine.
    pub epochs: usize,
    /// Execution mode.
    pub mode: ExecutionMode,
    /// Simulated per-GPU rate in cells per second.
    pub cells_per_second: f64,
}

impl AmrConfig {
    /// A tiny validation-mode problem: 3 epochs of 4 steps over 96 cells,
    /// regridding 3 → 6 → 3 blocks.
    pub fn tiny() -> Self {
        AmrConfig {
            cells: 96,
            base_blocks: 3,
            refine_factor: 2,
            steps_per_epoch: 4,
            epochs: 3,
            mode: ExecutionMode::Validate,
            cells_per_second: 1.0e10,
        }
    }

    /// Weak scaling: 10⁶ cells per node, one coarse block per node.
    pub fn weak(nodes: usize) -> Self {
        AmrConfig {
            cells: nodes as i64 * 1_000_000,
            base_blocks: nodes,
            refine_factor: 4,
            steps_per_epoch: 4,
            epochs: 4,
            mode: ExecutionMode::Scale,
            cells_per_second: 1.0e10,
        }
    }

    /// Strong scaling: 10⁷ cells total.
    pub fn strong(nodes: usize) -> Self {
        AmrConfig {
            cells: 10_000_000,
            base_blocks: nodes,
            refine_factor: 4,
            steps_per_epoch: 4,
            epochs: 4,
            mode: ExecutionMode::Scale,
            cells_per_second: 1.0e10,
        }
    }

    /// Blocks at level 0 (coarse) or 1 (fine).
    pub fn blocks_at(&self, level: usize) -> usize {
        if level == 0 {
            self.base_blocks
        } else {
            self.base_blocks * self.refine_factor
        }
    }

    /// The refinement level of an epoch (alternates coarse/fine).
    pub fn level_of(&self, epoch: usize) -> usize {
        epoch % 2
    }

    /// Total timed timesteps.
    pub fn total_steps(&self) -> usize {
        self.epochs * self.steps_per_epoch
    }
}

/// A built AMR program plus validation handles.
pub struct AmrApp {
    /// The runtime program.
    pub program: Program,
    /// Configuration.
    pub config: AmrConfig,
    /// Solution field.
    pub u: FieldId,
    /// Scratch field.
    pub unew: FieldId,
    /// Grid region tree.
    pub tree: RegionTreeId,
    /// Disjoint block partitions per level: `[coarse, fine]`.
    pub blocks: [IndexPartitionId; 2],
    /// Aliased halo partitions per level: `[coarse, fine]`.
    pub halos: [IndexPartitionId; 2],
}

/// Initial profile (integer-derived so the reference is bit-exact).
fn initial(i: i64) -> f64 {
    ((i * i) % 13) as f64
}

/// Build the AMR program.
pub fn build(config: &AmrConfig) -> AmrApp {
    assert!(config.refine_factor >= 2, "refinement must change the block count");
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let u = fsd.add("u", FieldKind::F64);
    let unew = fsd.add("unew", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(config.cells), fs);

    // Level 0: the coarse mesh.
    let coarse_blocks = equal_partition_1d(&mut b.forest, region.space, config.base_blocks);
    let coarse_halo = halo_partition_1d(&mut b.forest, region.space, config.base_blocks, RADIUS);

    // Level 1: starts coarse and is refined *in place* — the regrid op of
    // the driver. The ids are stable; the forest generation bump is what
    // keys cached analyses and captured traces to the new shape.
    let fine = config.base_blocks * config.refine_factor;
    let fine_blocks = equal_partition_1d(&mut b.forest, region.space, config.base_blocks);
    replace_equal_partition_1d(&mut b.forest, fine_blocks, fine).expect("refine blocks");
    let fine_halo = halo_partition_1d(&mut b.forest, region.space, config.base_blocks, RADIUS);
    replace_halo_partition_1d(&mut b.forest, fine_halo, fine, RADIUS).expect("refine halo");

    let blocks = [coarse_blocks, fine_blocks];
    let halos = [coarse_halo, fine_halo];
    let ident = b.identity_functor();
    let cells = config.cells;

    let init = b.task("init", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.write(0, u, p, initial(p.x()));
            ctx.write(0, unew, p, 0.0);
        }
    });
    // Regrid indicator: per-block gradient maximum of `u`. Read-only and
    // epoch-independent — the fixed first key of every captured trace.
    let flag = b.task("flag", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        let mut max_grad = 0.0f64;
        for p in pts {
            let x = p.x();
            if x + 1 < cells && ctx.domain(0).contains(DomainPoint::new1(x + 1)) {
                let a: f64 = ctx.read(0, u, p);
                let bb: f64 = ctx.read(0, u, DomainPoint::new1(x + 1));
                max_grad = max_grad.max((bb - a).abs());
            }
        }
        std::hint::black_box(max_grad);
    });
    let step = b.task("step", move |ctx| {
        let pts: Vec<_> = ctx.domain(1).iter().collect();
        for p in pts {
            let x = p.x();
            let c: f64 = ctx.read(0, u, p);
            let l: f64 = if x > 0 { ctx.read(0, u, DomainPoint::new1(x - 1)) } else { c };
            let r: f64 = if x < cells - 1 { ctx.read(0, u, DomainPoint::new1(x + 1)) } else { c };
            ctx.write(1, unew, p, c + ALPHA * (l - 2.0 * c + r));
        }
    });
    // Read `unew` and write `u` through *separate field-scoped reqs*: a
    // single all-fields req would make the cross-level refresh of `u`
    // (whose last writer is the other level's blocks at an epoch
    // boundary) also pull in a stale `unew` over the one `step` just
    // wrote. A plain Write needs no refresh at all.
    let copy = b.task("copy", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let v: f64 = ctx.read(0, unew, p);
            ctx.write(1, u, p, v);
        }
    });

    let cell_time = |blocks: usize, share: f64| {
        CostSpec::Uniform(SimTime::from_secs_f64(
            config.cells as f64 / blocks as f64 * share / config.cells_per_second,
        ))
    };
    let req = |partition, privilege, fields: Vec<FieldId>| RegionReq {
        partition,
        functor: ident,
        privilege,
        fields,
        tree: region.tree,
        field_space: fs,
    };
    // Refined epochs rebalance with round-robin sharding (one stable
    // functor value, so its interned identity is stable across launches).
    let rr = round_robin_shard();

    b.index_launch(IndexLaunchDesc {
        task: init,
        domain: Domain::range(config.base_blocks as i64),
        reqs: vec![req(coarse_blocks, Privilege::Write, vec![])],
        scalars: vec![],
        cost: cell_time(config.base_blocks, 0.2),
        shard: None,
    });
    b.start_timing();
    for epoch in 0..config.epochs {
        let level = config.level_of(epoch);
        let nb = config.blocks_at(level);
        let shard = if level == 0 { None } else { Some(rr.clone()) };
        for _ in 0..config.steps_per_epoch {
            b.index_launch(IndexLaunchDesc {
                task: flag,
                domain: Domain::range(config.base_blocks as i64),
                reqs: vec![req(coarse_blocks, Privilege::Read, vec![u])],
                scalars: vec![],
                cost: cell_time(config.base_blocks, 0.1),
                shard: None,
            });
            b.index_launch(IndexLaunchDesc {
                task: step,
                domain: Domain::range(nb as i64),
                reqs: vec![
                    req(halos[level], Privilege::Read, vec![u]),
                    req(blocks[level], Privilege::Write, vec![unew]),
                ],
                scalars: vec![],
                cost: cell_time(nb, 0.6),
                shard: shard.clone(),
            });
            b.index_launch(IndexLaunchDesc {
                task: copy,
                domain: Domain::range(nb as i64),
                reqs: vec![
                    req(blocks[level], Privilege::Read, vec![unew]),
                    req(blocks[level], Privilege::Write, vec![u]),
                ],
                scalars: vec![],
                cost: cell_time(nb, 0.3),
                shard: shard.clone(),
            });
        }
    }

    AmrApp {
        program: b.build(),
        config: config.clone(),
        u,
        unew,
        tree: region.tree,
        blocks,
        halos,
    }
}

/// Throughput in cell-updates per second.
pub fn throughput(config: &AmrConfig, report: &RunReport) -> f64 {
    config.cells as f64 * config.total_steps() as f64 / report.elapsed.as_secs_f64()
}

/// Sequential reference: final `u` grid.
pub fn reference(config: &AmrConfig) -> Vec<f64> {
    let n = config.cells;
    let mut u: Vec<f64> = (0..n).map(initial).collect();
    for _ in 0..config.total_steps() {
        let mut next = vec![0.0f64; n as usize];
        for i in 0..n {
            let c = u[i as usize];
            let l = if i > 0 { u[(i - 1) as usize] } else { c };
            let r = if i < n - 1 { u[(i + 1) as usize] } else { c };
            next[i as usize] = c + ALPHA * (l - 2.0 * c + r);
        }
        u = next;
    }
    u
}

/// Extract the final `u` grid from a validation run (read through the
/// final epoch's block partition — the last writer).
pub fn extract_u(app: &AmrApp, report: &RunReport) -> Vec<f64> {
    let store = report.store.as_ref().expect("validation mode");
    let forest = &app.program.forest;
    let final_level = app.config.level_of(app.config.epochs - 1);
    let mut out = vec![f64::NAN; app.config.cells as usize];
    for &space in forest.partition(app.blocks[final_level]).children.values() {
        if let Some(inst) = store.get((app.tree, space)) {
            for p in forest.domain(space).iter() {
                out[p.x() as usize] = inst.get::<f64>(app.u, p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_runtime::{execute, RuntimeConfig};

    #[test]
    fn validates_against_reference_all_configs() {
        let config = AmrConfig::tiny();
        let want = reference(&config);
        for (dcr, idx) in [(true, true), (true, false), (false, true), (false, false)] {
            let app = build(&config);
            let report = execute(&app.program, &RuntimeConfig::validate(4).with_axes(dcr, idx));
            let got = extract_u(&app, &report);
            for (k, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-9, "cell {k}: {a} vs {b} (dcr={dcr} idx={idx})");
            }
        }
    }

    #[test]
    fn statically_safe() {
        // All functors are the identity over disjoint or declared-aliased
        // partitions: no dynamic checks anywhere.
        let app = build(&AmrConfig::tiny());
        let report = execute(&app.program, &RuntimeConfig::validate(2));
        assert_eq!(report.dynamic_check_time, il_machine::SimTime::ZERO);
    }

    #[test]
    fn regrid_invalidates_and_recaptures_traces() {
        // Each epoch's steady loop is captured; every regrid boundary
        // re-issues the fixed indicator key with a different continuation,
        // which must invalidate the stale trace and trigger a re-capture.
        let config = AmrConfig::tiny();
        let app = build(&config);
        let report =
            execute(&app.program, &RuntimeConfig::validate(4).with_trace_replay(true));
        let stats = &report.trace_replay;
        assert!(stats.enabled);
        assert!(
            stats.captured >= config.epochs as u64,
            "each epoch must capture its own trace: {stats:?}"
        );
        assert!(
            stats.invalidated >= (config.epochs - 1) as u64,
            "each regrid must invalidate the previous epoch's trace: {stats:?}"
        );
        assert!(stats.replayed > 0, "steady steps inside an epoch must replay: {stats:?}");
    }

    #[test]
    fn regrid_cycles_warm_the_analysis_cache() {
        // Within an epoch every timestep after the first hits the verdict
        // cache; the regrid flips the partition set, so the first timestep
        // of each level misses and later epochs at the same level hit.
        let app = build(&AmrConfig::tiny());
        let report =
            execute(&app.program, &RuntimeConfig::validate(4).with_analysis_cache(true));
        let stats = &report.analysis_cache;
        assert!(stats.enabled);
        assert!(stats.hits > 0, "steady timesteps must hit: {stats:?}");
        assert!(stats.misses > 0, "regrids must miss: {stats:?}");
    }

    #[test]
    fn refined_epochs_reshard() {
        // Round-robin sharding on fine epochs actually moves work: a
        // 2-node run exchanges bytes between the coarse block layout and
        // the round-robin fine layout.
        let app = build(&AmrConfig::tiny());
        let report = execute(&app.program, &RuntimeConfig::validate(2));
        assert!(report.bytes > 0);
    }

    #[test]
    fn scale_mode_task_count() {
        let config = AmrConfig::weak(4);
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::scale(4));
        let mut want = config.base_blocks as u64; // init
        for epoch in 0..config.epochs {
            let nb = config.blocks_at(config.level_of(epoch)) as u64;
            want += config.steps_per_epoch as u64 * (config.base_blocks as u64 + 2 * nb);
        }
        assert_eq!(report.tasks, want);
        assert!(throughput(&config, &report) > 0.0);
    }

    #[test]
    fn presets() {
        let t = AmrConfig::tiny();
        assert_eq!(t.blocks_at(0), 3);
        assert_eq!(t.blocks_at(1), 6);
        assert_eq!(t.total_steps(), 12);
        let w = AmrConfig::weak(8);
        assert_eq!(w.cells, 8_000_000);
        assert_eq!(w.blocks_at(1), 32);
        let s = AmrConfig::strong(16);
        assert_eq!(s.cells, 10_000_000);
    }
}
