//! `ilaunch` — run any of the paper's applications from the command line.
//!
//! ```text
//! cargo run -p il-apps --release --bin ilaunch -- circuit --nodes 8 --validate
//! cargo run -p il-apps --release --bin ilaunch -- stencil --nodes 64
//! cargo run -p il-apps --release --bin ilaunch -- soleil --nodes 16 --fluid-only
//! cargo run -p il-apps --release --bin ilaunch -- circuit --nodes 256 --no-idx
//! cargo run -p il-apps --release --bin ilaunch -- amr --nodes 16 --validate
//! cargo run -p il-apps --release --bin ilaunch -- pagerank --pieces 100000
//! ```
//!
//! Scale mode (default) runs the cost-modeled simulation and reports
//! throughput; `--validate` runs real kernels on a small problem and
//! checks the result against the sequential reference.
//!
//! `--trace FILE` collects the structured per-stage event log and writes
//! it as Chrome `about:tracing` JSON to FILE (open in `chrome://tracing`
//! or Perfetto), along with a per-stage busy/traffic summary on stdout.
//! `--audit` forces the pipeline audits on (they default to debug-only).
//!
//! `--faults SEED` runs the app under the seeded survivable fault
//! schedule (message drops/duplication, one node crash, one slow node)
//! and prints the recovery counters; `--validate --faults SEED` also
//! checks that the faulted run still matches the sequential reference.
//!
//! `ilaunch serve --policy P [--sessions N] [--tenants T] [--slots S]
//! [--slot-nodes K] [--seed SEED] [--mean-gap-us G] [--skewed] [--heavy H]
//! [--light L] [--queue-cap C] [--faults SEED] [--per-session]` runs the
//! multi-tenant service scheduler instead of a single application: a
//! seeded workload mix (golden apps + fuzzer programs, Poisson-like
//! arrivals) streams through the shared simulated machine under the
//! chosen scheduling policy (`fifo`, `fair`, `aged-priority`, or `all`
//! to compare the three), printing per-policy throughput and latency
//! percentiles — `--per-session` adds one line per session.
//!
//! `ilaunch fuzz --cases N --seed S [--nodes K] [--threads T] [--inject]`
//! runs the differential fuzzer instead of an application: N seeded random
//! launch programs through both the fast path and the desugared-launch
//! oracle, printing verdict-class coverage and, on any divergence, the
//! single seed that reproduces it (exit code 1). Cases fan out across a
//! thread pool (`--threads`, default one worker per hardware thread) with
//! results folded in case order, so the report is identical at any width.
//! `--inject` perturbs the oracle of every case and demands the
//! divergence is caught (self test). `fuzz --faults SEED` adds a chaos
//! leg to every case: the program re-executes under a survivable fault
//! schedule derived from SEED and the case seed, and must run the same
//! tasks, no faster than fault-free, with a byte-identical replay.
//! `fuzz --corrupt SEED` adds a silent-data-corruption leg: the program
//! re-executes in validation mode under a seeded bit-flip schedule with
//! replicate-2 defense, and every flip must be caught (zero escapes)
//! with the final store converging byte-for-byte to the fault-free run.

use il_apps::service_mix::{generate_mix, skewed_mix, MixConfig};
use il_apps::{amr, circuit, pagerank, soleil, stencil};
use il_machine::SimTime;
use il_oracle::{run_case, run_differential, DiffConfig};
use il_runtime::{
    execute, policy_by_name, FaultConfig, RunReport, RuntimeConfig, Service, ServiceConfig,
};

struct Args {
    app: String,
    nodes: usize,
    validate: bool,
    dcr: bool,
    idx: bool,
    tracing: bool,
    trace_replay: bool,
    checks: bool,
    fluid_only: bool,
    overdecompose: usize,
    strong: bool,
    trace_out: Option<String>,
    audit: bool,
    faults: Option<u64>,
    pieces: usize,
}

fn parse() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        app: String::new(),
        nodes: 4,
        validate: false,
        dcr: true,
        idx: true,
        tracing: true,
        trace_replay: true,
        checks: true,
        fluid_only: false,
        overdecompose: 1,
        strong: false,
        trace_out: None,
        audit: false,
        faults: None,
        pieces: 0,
    };
    let mut it = argv.into_iter();
    args.app = it
        .next()
        .ok_or("usage: ilaunch <circuit|stencil|soleil|amr|pagerank> [flags]")?;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--nodes" => {
                args.nodes = it
                    .next()
                    .ok_or("--nodes takes a value")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--pieces" => {
                args.pieces = it
                    .next()
                    .ok_or("--pieces takes a value")?
                    .parse()
                    .map_err(|e| format!("--pieces: {e}"))?;
            }
            "--overdecompose" => {
                args.overdecompose = it
                    .next()
                    .ok_or("--overdecompose takes a value")?
                    .parse()
                    .map_err(|e| format!("--overdecompose: {e}"))?;
            }
            "--trace" => {
                args.trace_out = Some(it.next().ok_or("--trace takes an output path")?);
            }
            "--audit" => args.audit = true,
            "--faults" => {
                args.faults = Some(parse_seed(&it.next().ok_or("--faults takes a seed")?)?);
            }
            "--validate" => args.validate = true,
            "--strong" => args.strong = true,
            "--no-dcr" => args.dcr = false,
            "--no-idx" => args.idx = false,
            "--no-tracing" => args.tracing = false,
            "--no-trace-replay" => args.trace_replay = false,
            "--no-checks" => args.checks = false,
            "--fluid-only" => args.fluid_only = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn runtime_config(a: &Args) -> RuntimeConfig {
    let base = if a.validate {
        RuntimeConfig::validate(a.nodes)
    } else {
        RuntimeConfig::scale(a.nodes)
    };
    let mut config = base
        .with_axes(a.dcr, a.idx)
        .with_tracing(a.tracing)
        .with_trace_replay(a.trace_replay)
        .with_dynamic_checks(a.checks)
        .with_trace(a.trace_out.is_some());
    if a.audit {
        config = config.with_audit(true);
    }
    if let Some(seed) = a.faults {
        config = config.with_faults(seed);
    }
    config
}

fn report_line(args: &Args, report: &RunReport) {
    println!(
        "tasks: {}   makespan: {}   elapsed(timed): {}   messages: {}   bytes: {}   dyn-checks: {}",
        report.tasks,
        report.makespan,
        report.elapsed,
        report.messages,
        report.bytes,
        report.dynamic_check_time
    );
    if report.trace_replay.enabled && report.trace_replay.captured > 0 {
        let tr = &report.trace_replay;
        println!(
            "trace replay: {} captured, {} replayed, {} invalidated, {} analyses skipped",
            tr.captured, tr.replayed, tr.invalidated, tr.analyses_skipped
        );
    }
    if let Some(rec) = &report.recovery {
        println!(
            "faults (seed {:#x}): {} crash(es), {} slow node(s), {} dropped, {} duplicated, \
             {} crash-dropped",
            rec.seed, rec.crashes, rec.slow_nodes, rec.dropped, rec.duplicated, rec.crash_dropped
        );
        println!(
            "recovery: {} checks, {} retried tasks, {} re-sharded groups, {} re-analyses",
            rec.recovery_checks, rec.retried_tasks, rec.resharded_groups, rec.reanalyses
        );
    }
    if let Some(audit) = &report.audit {
        println!(
            "audits: OK ({} credits conserved, {} slices covered)",
            audit.credits_paid, audit.slices_covered
        );
    }
    if let Some(path) = &args.trace_out {
        println!("per-stage breakdown (busy time | messages | bytes):");
        for (stage, busy) in report.stage_busy.iter() {
            let i = stage.index();
            if busy.as_ns() == 0 && report.stage_messages[i] == 0 {
                continue;
            }
            println!(
                "  {:<14} {:>14}   {:>8} msgs   {:>12} B",
                stage.name(),
                busy.to_string(),
                report.stage_messages[i],
                report.stage_bytes[i]
            );
        }
        let trace = report.trace.as_ref().expect("--trace requested");
        std::fs::write(path, trace.to_chrome_trace())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path} ({} events)", trace.len());
    }
}

fn parse_seed(v: &str) -> Result<u64, String> {
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| format!("seed: {e}"))
    } else {
        v.parse().map_err(|e| format!("seed: {e}"))
    }
}

fn parse_fuzz(argv: &[String]) -> Result<(DiffConfig, Option<u64>), String> {
    let mut cfg = DiffConfig::default();
    let mut repro = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--cases" => {
                cfg.cases = it
                    .next()
                    .ok_or("--cases takes a value")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
            }
            "--seed" => {
                cfg.seed = parse_seed(it.next().ok_or("--seed takes a value")?)?;
            }
            "--repro" => {
                repro = Some(parse_seed(it.next().ok_or("--repro takes a case seed")?)?);
            }
            "--nodes" => {
                cfg.nodes = it
                    .next()
                    .ok_or("--nodes takes a value")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--threads" => {
                cfg.threads = it
                    .next()
                    .ok_or("--threads takes a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--inject" => cfg.inject = true,
            "--faults" => {
                cfg.faults = Some(parse_seed(&it.next().ok_or("--faults takes a seed")?)?);
            }
            "--corrupt" => {
                cfg.corrupt = Some(parse_seed(&it.next().ok_or("--corrupt takes a seed")?)?);
            }
            other => return Err(format!("unknown fuzz flag {other:?}")),
        }
    }
    Ok((cfg, repro))
}

fn fuzz_main(argv: &[String]) -> ! {
    let (cfg, repro) = match parse_fuzz(argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: ilaunch fuzz [--cases N] [--seed S] [--nodes K] [--threads T] \
                 [--inject] [--faults SEED] [--corrupt SEED] [--repro CASE_SEED]"
            );
            std::process::exit(2);
        }
    };
    if let Some(seed) = repro {
        println!(
            "differential repro: case seed {seed:#018x}, {} nodes{}",
            cfg.nodes,
            if cfg.inject { ", divergence injection ON" } else { "" }
        );
        let result = run_case(seed, cfg.nodes, cfg.inject, cfg.faults, cfg.corrupt);
        println!("{} point tasks", result.tasks);
        println!("verdict-class coverage:\n{}", result.coverage);
        match result.error {
            Some(detail) => {
                eprintln!("DIVERGENCE (seed {seed:#018x}): {detail}");
                std::process::exit(1);
            }
            None => {
                println!("no divergence");
                std::process::exit(0);
            }
        }
    }
    println!(
        "differential fuzz: {} cases, base seed {:#018x}, {} nodes{}{}{}",
        cfg.cases,
        cfg.seed,
        cfg.nodes,
        if cfg.inject { ", divergence injection ON" } else { "" },
        match cfg.faults {
            Some(s) => format!(", chaos leg ON (fault seed {s:#x})"),
            None => String::new(),
        },
        match cfg.corrupt {
            Some(s) => format!(", corruption leg ON (corrupt seed {s:#x})"),
            None => String::new(),
        }
    );
    let report = run_differential(&cfg);
    println!("{} point tasks across {} programs", report.tasks, report.cases);
    println!("verdict-class coverage:\n{}", report.coverage);
    if cfg.inject {
        if report.divergences.len() == report.cases as usize {
            println!(
                "self test OK: all {} injected divergences were caught",
                report.cases
            );
            std::process::exit(0);
        }
        eprintln!(
            "SELF TEST FAILED: only {} of {} injected divergences caught",
            report.divergences.len(),
            report.cases
        );
        std::process::exit(1);
    }
    if report.divergences.is_empty() {
        if !report.coverage.complete() {
            println!("note: classes not exercised: {:?}", report.coverage.missing());
        }
        println!("no divergences");
        std::process::exit(0);
    }
    for d in &report.divergences {
        eprintln!("DIVERGENCE {d}");
        eprintln!("  reproduce: ilaunch fuzz --repro {:#x}", d.seed);
    }
    std::process::exit(1);
}

struct ServeArgs {
    policies: Vec<String>,
    sessions: usize,
    tenants: u32,
    slots: usize,
    slot_nodes: usize,
    seed: u64,
    mean_gap_us: u64,
    skewed: bool,
    heavy: usize,
    light: usize,
    queue_cap: usize,
    faults: Option<u64>,
    per_session: bool,
}

fn parse_serve(argv: &[String]) -> Result<ServeArgs, String> {
    let mut a = ServeArgs {
        policies: vec!["fifo".into()],
        sessions: 32,
        tenants: 8,
        slots: 2,
        slot_nodes: 2,
        seed: 0x5E8E,
        mean_gap_us: 50,
        skewed: false,
        heavy: 10,
        light: 1500,
        queue_cap: 0,
        faults: None,
        per_session: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or(format!("{name} takes a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--policy" => {
                let v = it.next().ok_or("--policy takes a value")?;
                a.policies = if v == "all" {
                    vec!["fifo".into(), "fair".into(), "aged-priority".into()]
                } else {
                    vec![v.clone()]
                };
            }
            "--sessions" => a.sessions = num("--sessions")? as usize,
            "--tenants" => a.tenants = num("--tenants")? as u32,
            "--slots" => a.slots = num("--slots")? as usize,
            "--slot-nodes" => a.slot_nodes = num("--slot-nodes")? as usize,
            "--seed" => a.seed = parse_seed(it.next().ok_or("--seed takes a value")?)?,
            "--mean-gap-us" => a.mean_gap_us = num("--mean-gap-us")?,
            "--skewed" => a.skewed = true,
            "--heavy" => a.heavy = num("--heavy")? as usize,
            "--light" => a.light = num("--light")? as usize,
            "--queue-cap" => a.queue_cap = num("--queue-cap")? as usize,
            "--faults" => {
                a.faults = Some(parse_seed(it.next().ok_or("--faults takes a seed")?)?);
            }
            "--per-session" => a.per_session = true,
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }
    Ok(a)
}

fn serve_main(argv: &[String]) -> ! {
    let a = match parse_serve(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: ilaunch serve [--policy fifo|fair|aged-priority|all] [--sessions N] \
                 [--tenants T] [--slots S] [--slot-nodes K] [--seed SEED] [--mean-gap-us G] \
                 [--skewed] [--heavy H] [--light L] [--queue-cap C] [--faults SEED] \
                 [--per-session]"
            );
            std::process::exit(2);
        }
    };
    let cfg = MixConfig {
        seed: a.seed,
        tenants: a.tenants,
        sessions: a.sessions,
        slot_nodes: a.slot_nodes,
        mean_gap: SimTime::us(a.mean_gap_us),
        fuzz_per_mille: 500,
    };
    let sessions = if a.skewed {
        skewed_mix(&cfg, a.heavy, a.light)
    } else {
        generate_mix(&cfg)
    };
    println!(
        "service mix: {} sessions, {} tenants, {} slots x {} nodes, seed {:#x}{}",
        sessions.len(),
        a.tenants,
        a.slots,
        a.slot_nodes,
        a.seed,
        if a.skewed {
            format!(" (skewed: {} heavy + {} light)", a.heavy, a.light)
        } else {
            String::new()
        }
    );
    for policy in &a.policies {
        let mut svc = Service::new(
            ServiceConfig {
                slots: a.slots,
                slot_nodes: a.slot_nodes,
                queue_cap: if a.queue_cap == 0 { sessions.len().max(1) } else { a.queue_cap },
                faults: a.faults.map(FaultConfig::from_seed),
                replication_overrides: vec![],
            },
            policy_by_name(policy),
        );
        let out = svc.run(&sessions);
        let mut latencies: Vec<u64> =
            out.sessions.iter().map(|s| s.latency().as_ns()).collect();
        latencies.sort_unstable();
        let pct = |p: f64| -> SimTime {
            let rank = ((p / 100.0) * latencies.len() as f64).ceil() as usize;
            SimTime::ns(latencies[rank.clamp(1, latencies.len()) - 1])
        };
        let secs = out.makespan.as_ns() as f64 / 1e9;
        println!(
            "{:>13}: {} finished, {} rejected, {} rounds, makespan {}   \
             {:.1} sessions/s   p50 {}  p95 {}  p99 {}",
            out.policy,
            out.sessions.len(),
            out.rejected.len(),
            out.rounds,
            out.makespan,
            if secs > 0.0 { out.sessions.len() as f64 / secs } else { 0.0 },
            pct(50.0),
            pct(95.0),
            pct(99.0),
        );
        if a.per_session {
            let mut by_finish: Vec<_> = out.sessions.iter().collect();
            by_finish.sort_by_key(|s| (s.finished, s.submit_idx));
            for s in by_finish {
                println!(
                    "    #{:<3} tenant {:<2} prio {}  slot {}  arrival {:>12}  admitted {:>12}  \
                     finished {:>12}  latency {:>12}  waited {} rounds  tasks {}",
                    s.submit_idx,
                    s.tenant,
                    s.priority,
                    s.slot,
                    s.arrival,
                    s.admitted,
                    s.finished,
                    s.latency(),
                    s.wait_rounds,
                    s.report.tasks,
                );
            }
        }
    }
    std::process::exit(0);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("fuzz") {
        fuzz_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        serve_main(&argv[1..]);
    }
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let rt = runtime_config(&args);
    println!(
        "{} on {} simulated nodes [dcr={} idx={} tracing={} replay={} checks={} mode={}]",
        args.app,
        args.nodes,
        args.dcr,
        args.idx,
        args.tracing,
        args.trace_replay,
        args.checks,
        if args.validate { "validate" } else { "scale" }
    );

    match args.app.as_str() {
        "circuit" => {
            let config = if args.validate {
                circuit::CircuitConfig::tiny(args.nodes.max(2))
            } else if args.strong {
                circuit::CircuitConfig::strong(args.nodes)
            } else {
                circuit::CircuitConfig::weak(args.nodes, args.overdecompose)
            };
            let app = circuit::build(&config);
            let report = execute(&app.program, &rt);
            report_line(&args, &report);
            println!(
                "throughput: {:.3e} wires/s ({:.3e} per node)",
                circuit::throughput(&config, &report),
                circuit::throughput(&config, &report) / args.nodes as f64
            );
            if args.validate {
                let got = circuit::extract_voltages(&app, &report);
                let want = circuit::reference(&config, &app.wires);
                let err = got
                    .iter()
                    .zip(&want)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                println!("validation: max |voltage error| = {err:.2e}");
                assert!(err < 1e-9, "validation failed");
            }
        }
        "stencil" => {
            let config = if args.validate {
                stencil::StencilConfig::tiny((2, 2))
            } else if args.strong {
                stencil::StencilConfig::strong(args.nodes)
            } else {
                stencil::StencilConfig::weak(args.nodes)
            };
            let app = stencil::build(&config);
            let report = execute(&app.program, &rt);
            report_line(&args, &report);
            println!(
                "throughput: {:.3e} cells/s ({:.3e} per node)",
                stencil::throughput(&config, &report),
                stencil::throughput(&config, &report) / args.nodes as f64
            );
            if args.validate {
                let got = stencil::extract_fout(&app, &report);
                let want = stencil::reference(&config);
                let err = got
                    .iter()
                    .zip(&want)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                println!("validation: max |error| = {err:.2e}");
                assert!(err < 1e-9, "validation failed");
            }
        }
        "soleil" => {
            let config = if args.validate {
                let mut c = soleil::SoleilConfig::tiny((2, 2, 2));
                if args.fluid_only {
                    c.dom = false;
                    c.particles = false;
                }
                c
            } else if args.fluid_only {
                soleil::SoleilConfig::fluid_weak(args.nodes)
            } else {
                soleil::SoleilConfig::full_weak(args.nodes)
            };
            let app = soleil::build(&config);
            let report = execute(&app.program, &rt);
            report_line(&args, &report);
            println!(
                "throughput: {:.3} iter/s per node",
                soleil::throughput(&config, &report)
            );
            if args.validate {
                let got = soleil::extract_u(&app, &report);
                let want = soleil::reference(&config);
                let err = got
                    .iter()
                    .zip(&want)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                println!("validation: max |u error| = {err:.2e}");
                assert!(err < 1e-12, "validation failed");
            }
        }
        "amr" => {
            let config = if args.validate {
                amr::AmrConfig::tiny()
            } else if args.strong {
                amr::AmrConfig::strong(args.nodes)
            } else {
                amr::AmrConfig::weak(args.nodes)
            };
            let app = amr::build(&config);
            let report = execute(&app.program, &rt);
            report_line(&args, &report);
            println!(
                "throughput: {:.3e} cells/s ({:.3e} per node)",
                amr::throughput(&config, &report),
                amr::throughput(&config, &report) / args.nodes as f64
            );
            if args.validate {
                let got = amr::extract_u(&app, &report);
                let want = amr::reference(&config);
                let err = got
                    .iter()
                    .zip(&want)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                println!("validation: max |u error| = {err:.2e}");
                assert!(err < 1e-9, "validation failed");
            }
        }
        "pagerank" => {
            let config = if args.validate {
                pagerank::PagerankConfig::tiny(if args.pieces == 0 { 6 } else { args.pieces })
            } else {
                let pieces = if args.pieces == 0 { args.nodes * 1024 } else { args.pieces };
                pagerank::PagerankConfig::scale(pieces)
            };
            println!(
                "pagerank: {} pieces, {} vertices, {} edges",
                config.pieces,
                config.total_nodes(),
                config.total_edges()
            );
            let app = pagerank::build(&config);
            let report = execute(&app.program, &rt);
            report_line(&args, &report);
            println!(
                "throughput: {:.3e} edges/s ({:.3e} per node)",
                pagerank::throughput(&config, &report),
                pagerank::throughput(&config, &report) / args.nodes as f64
            );
            if args.validate {
                let got = pagerank::extract_ranks(&app, &report);
                let want = pagerank::reference(&config, &app.edges);
                let err = got
                    .iter()
                    .zip(&want)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                println!("validation: max |rank error| = {err:.2e}");
                assert!(err < 1e-12, "validation failed");
            }
        }
        other => {
            eprintln!(
                "unknown app {other:?} (expected circuit, stencil, soleil, amr, or pagerank)"
            );
            std::process::exit(2);
        }
    }
}
