//! Circuit: an electrical-circuit simulation on an unstructured graph.
//!
//! The graph is split into *pieces*; each piece owns a contiguous range
//! of circuit nodes and wires. Wires mostly connect nodes inside one
//! piece, but a fraction cross pieces, giving each piece a *ghost* set of
//! remote nodes (a sparse, aliased partition — the views produced by a
//! graph partitioner, §2). Each timestep runs three index launches:
//!
//! 1. `calc_new_currents` — read voltages (own + ghost), update wire
//!    currents;
//! 2. `distribute_charge` — read currents, **reduce** charge deltas into
//!    own + ghost nodes (sum reduction through an aliased partition —
//!    legal per §3 because reductions commute);
//! 3. `update_voltages` — fold accumulated charge into voltages.
//!
//! All projection functors are the identity, so every launch is verified
//! by the static checker alone, exactly as the paper reports for this
//! code (§6.1).

use il_geometry::{Domain, DomainPoint, Rect};
use il_machine::SimTime;
use il_region::{
    coloring_partition, equal_partition_1d, Disjointness, FieldId, FieldKind, FieldSpaceDesc,
    Privilege, RegionTreeId, ReductionKind,
};
use il_runtime::{
    CostSpec, ExecutionMode, IndexLaunchDesc, Program, ProgramBuilder, RegionReq, RunReport,
};
use il_testkit::TestRng;
use std::sync::Arc;

/// Circuit problem configuration.
#[derive(Clone, Debug)]
pub struct CircuitConfig {
    /// Number of graph pieces (= launch-domain size; the paper generates
    /// one task per GPU per stage, so pieces = nodes × overdecompose).
    pub pieces: usize,
    /// Circuit nodes per piece.
    pub nodes_per_piece: usize,
    /// Wires per piece.
    pub wires_per_piece: usize,
    /// Fraction of wires whose far endpoint is in another piece.
    pub pct_shared: f64,
    /// Timesteps (timed).
    pub iterations: usize,
    /// RNG seed for graph generation.
    pub seed: u64,
    /// Execution mode.
    pub mode: ExecutionMode,
    /// Simulated per-GPU processing rate in wires per second (calibrated
    /// so 1-node throughput lands in the paper's regime).
    pub wires_per_second: f64,
}

impl CircuitConfig {
    /// The paper's weak-scaling setup: 2×10⁵ wires per node.
    pub fn weak(nodes: usize, overdecompose: usize) -> Self {
        let pieces = nodes * overdecompose.max(1);
        CircuitConfig {
            pieces,
            nodes_per_piece: 50_000 / overdecompose.clamp(1, 50_000),
            wires_per_piece: 200_000 / overdecompose.max(1),
            pct_shared: 0.05,
            iterations: 10,
            seed: 0xC1BC417,
            mode: ExecutionMode::Scale,
            wires_per_second: 5.0e6,
        }
    }

    /// The paper's strong-scaling setup: 5.1×10⁶ wires total.
    pub fn strong(nodes: usize) -> Self {
        let pieces = nodes;
        CircuitConfig {
            pieces,
            nodes_per_piece: (1_275_000 / pieces).max(1),
            wires_per_piece: (5_100_000 / pieces).max(1),
            pct_shared: 0.05,
            iterations: 10,
            seed: 0xC1BC417,
            mode: ExecutionMode::Scale,
            wires_per_second: 5.0e6,
        }
    }

    /// A tiny validation-mode problem.
    pub fn tiny(pieces: usize) -> Self {
        CircuitConfig {
            pieces,
            nodes_per_piece: 8,
            wires_per_piece: 16,
            pct_shared: 0.25,
            iterations: 4,
            seed: 42,
            mode: ExecutionMode::Validate,
            wires_per_second: 5.0e6,
        }
    }

    /// Total wires in the problem.
    pub fn total_wires(&self) -> u64 {
        (self.pieces * self.wires_per_piece) as u64
    }
}

/// Field handles for the circuit regions.
#[derive(Clone, Copy, Debug)]
pub struct CircuitFields {
    /// Node voltage.
    pub voltage: FieldId,
    /// Node accumulated charge.
    pub charge: FieldId,
    /// Node capacitance.
    pub capacitance: FieldId,
    /// Wire source node (global id).
    pub in_node: FieldId,
    /// Wire sink node (global id).
    pub out_node: FieldId,
    /// Wire current.
    pub current: FieldId,
    /// Wire resistance.
    pub resistance: FieldId,
}

/// A built circuit program plus the handles validation needs.
pub struct CircuitApp {
    /// The runtime program.
    pub program: Program,
    /// Configuration it was built from.
    pub config: CircuitConfig,
    /// Field ids.
    pub fields: CircuitFields,
    /// Node region tree.
    pub node_tree: RegionTreeId,
    /// Wire region tree.
    pub wire_tree: RegionTreeId,
    /// The generated wires (validation mode): `(in, out, resistance)`.
    pub wires: Arc<Vec<(i64, i64, f64)>>,
}

/// Deterministically generate wires. In validation mode every wire is
/// materialized; the ghost set of each piece is derived from the actual
/// endpoints. In scale mode we only generate the *shape*: a bounded
/// synthetic ghost set per piece (ring-neighbor pattern), which preserves
/// the communication structure without materializing 5×10⁶ wires.
fn generate_wires(config: &CircuitConfig, rng: &mut TestRng) -> Vec<(i64, i64, f64)> {
    let npp = config.nodes_per_piece as i64;
    let mut wires = Vec::with_capacity(config.pieces * config.wires_per_piece);
    for piece in 0..config.pieces as i64 {
        let base = piece * npp;
        for _ in 0..config.wires_per_piece {
            let a = base + rng.gen_range_i64(0, npp);
            let b = if rng.gen_bool(config.pct_shared) && config.pieces > 1 {
                // A neighbor piece (ring), matching the locality a graph
                // partitioner produces.
                let delta = if rng.gen_bool(0.5) { 1 } else { config.pieces as i64 - 1 };
                let other = (piece + delta) % config.pieces as i64;
                other * npp + rng.gen_range_i64(0, npp)
            } else {
                base + rng.gen_range_i64(0, npp)
            };
            let r = 1.0 + rng.gen_range_f64(0.0, 9.0);
            wires.push((a, b, r));
        }
    }
    wires
}

/// Ghost node set of each piece (sorted, deduplicated).
fn ghost_sets(config: &CircuitConfig, wires: &[(i64, i64, f64)]) -> Vec<Vec<i64>> {
    let npp = config.nodes_per_piece as i64;
    let mut ghosts: Vec<Vec<i64>> = vec![Vec::new(); config.pieces];
    for (w, &(a, b, _)) in wires.iter().enumerate() {
        let piece = w / config.wires_per_piece;
        let lo = piece as i64 * npp;
        let hi = lo + npp - 1;
        for n in [a, b] {
            if n < lo || n > hi {
                ghosts[piece].push(n);
            }
        }
    }
    for g in &mut ghosts {
        g.sort_unstable();
        g.dedup();
    }
    ghosts
}

/// Synthetic ghost sets for scale mode: `k` nodes in each ring neighbor.
fn synthetic_ghost_sets(config: &CircuitConfig) -> Vec<Vec<i64>> {
    let npp = config.nodes_per_piece as i64;
    let per_side = ((config.wires_per_piece as f64 * config.pct_shared / 2.0) as usize).clamp(1, 128);
    (0..config.pieces as i64)
        .map(|piece| {
            let mut g = Vec::with_capacity(2 * per_side);
            if config.pieces > 1 {
                for delta in [1i64, config.pieces as i64 - 1] {
                    let other = (piece + delta) % config.pieces as i64;
                    let base = other * npp;
                    for k in 0..per_side as i64 {
                        g.push(base + (k * npp / per_side as i64).min(npp - 1));
                    }
                }
            }
            g.sort_unstable();
            g.dedup();
            g
        })
        .collect()
}

/// Build the circuit program.
pub fn build(config: &CircuitConfig) -> CircuitApp {
    let mut rng = TestRng::seed_from_u64(config.seed);
    let mut b = ProgramBuilder::new();

    // Field spaces.
    let mut nfs = FieldSpaceDesc::new();
    let voltage = nfs.add("voltage", FieldKind::F64);
    let charge = nfs.add("charge", FieldKind::F64);
    let capacitance = nfs.add("capacitance", FieldKind::F64);
    let nfs = b.forest.create_field_space(nfs);

    let mut wfs = FieldSpaceDesc::new();
    let in_node = wfs.add("in_node", FieldKind::I64);
    let out_node = wfs.add("out_node", FieldKind::I64);
    let current = wfs.add("current", FieldKind::F64);
    let resistance = wfs.add("resistance", FieldKind::F64);
    let wfs = b.forest.create_field_space(wfs);

    let fields = CircuitFields { voltage, charge, capacitance, in_node, out_node, current, resistance };

    // Regions and partitions.
    let total_nodes = (config.pieces * config.nodes_per_piece) as i64;
    let total_wires = (config.pieces * config.wires_per_piece) as i64;
    let node_region = b.forest.create_region(Domain::range(total_nodes), nfs);
    let wire_region = b.forest.create_region(Domain::range(total_wires), wfs);
    let nodes_own = equal_partition_1d(&mut b.forest, node_region.space, config.pieces);
    let wires_p = equal_partition_1d(&mut b.forest, wire_region.space, config.pieces);

    let (wires, ghosts) = if config.mode == ExecutionMode::Validate {
        let wires = generate_wires(config, &mut rng);
        let ghosts = ghost_sets(config, &wires);
        (wires, ghosts)
    } else {
        (Vec::new(), synthetic_ghost_sets(config))
    };
    let wires = Arc::new(wires);

    // Ghost partition: sparse per-piece sets of remote nodes; aliased
    // because neighboring pieces can share ghost nodes. Empty ghost sets
    // use a 1-point placeholder domain inside the piece's own range (a
    // read of owned data, harmless and keeps the coloring total).
    let ghost_coloring: Vec<(DomainPoint, Domain)> = ghosts
        .iter()
        .enumerate()
        .map(|(piece, g)| {
            let domain = if g.is_empty() {
                Domain::Rect1(Rect::new1(
                    piece as i64 * config.nodes_per_piece as i64,
                    piece as i64 * config.nodes_per_piece as i64,
                ))
            } else {
                Domain::sparse(g.iter().map(|&n| DomainPoint::new1(n)).collect())
            };
            (DomainPoint::new1(piece as i64), domain)
        })
        .collect();
    let nodes_ghost = b.forest.create_partition(
        node_region.space,
        Domain::range(config.pieces as i64),
        ghost_coloring,
        Disjointness::Aliased,
    );
    let _ = coloring_partition; // explicit-coloring op exercised in tests

    let ident = b.identity_functor();

    // ---- Task bodies (validation mode) ----
    let wpp = config.wires_per_piece;
    let wires_for_init = wires.clone();
    let init_nodes = b.task("init_nodes", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let id = p.x();
            ctx.write(0, voltage, p, (id % 7) as f64 - 3.0);
            ctx.write(0, charge, p, 0.0);
            ctx.write(0, capacitance, p, 1.0 + (id % 5) as f64);
        }
    });
    let init_wires = b.task("init_wires", move |ctx| {
        let piece = ctx.point.x() as usize;
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let w = p.x() as usize;
            let local = w - piece * wpp;
            let (a, bn, r) = wires_for_init[piece * wpp + local];
            ctx.write(0, in_node, p, a);
            ctx.write(0, out_node, p, bn);
            ctx.write(0, current, p, 0.0);
            ctx.write(0, resistance, p, r);
        }
    });
    // calc_new_currents: current = (V_in − V_out) / R.
    let cnc = b.task("calc_new_currents", move |ctx| {
        let read_v = |ctx: &il_runtime::TaskContext, n: i64| -> f64 {
            let p = DomainPoint::new1(n);
            if ctx.domain(1).contains(p) {
                ctx.read(1, voltage, p)
            } else {
                ctx.read(2, voltage, p)
            }
        };
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let a: i64 = ctx.read(0, in_node, p);
            let o: i64 = ctx.read(0, out_node, p);
            let r: f64 = ctx.read(0, resistance, p);
            let i = (read_v(ctx, a) - read_v(ctx, o)) / r;
            ctx.write(0, current, p, i);
        }
    });
    // distribute_charge: dq = I·dt leaves the source, enters the sink.
    let dc = b.task("distribute_charge", move |ctx| {
        let dt = ctx.scalar(0);
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let a: i64 = ctx.read(0, in_node, p);
            let o: i64 = ctx.read(0, out_node, p);
            let i: f64 = ctx.read(0, current, p);
            for (n, dq) in [(a, -i * dt), (o, i * dt)] {
                let q = DomainPoint::new1(n);
                let req = if ctx.domain(1).contains(q) { 1 } else { 2 };
                ctx.fold_f64(req, charge, q, ReductionKind::Sum, dq);
            }
        }
    });
    // update_voltages: fold charge into voltage, decay, reset charge.
    let uv = b.task("update_voltages", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let v: f64 = ctx.read(0, voltage, p);
            let q: f64 = ctx.read(0, charge, p);
            let c: f64 = ctx.read(0, capacitance, p);
            ctx.write(0, voltage, p, (v + q / c) * 0.999);
            ctx.write(0, charge, p, 0.0);
        }
    });

    // ---- Launches ----
    let domain = Domain::range(config.pieces as i64);
    let sum = Privilege::Reduce(ReductionKind::Sum.id());
    let wire_time = |share: f64| {
        CostSpec::Uniform(SimTime::from_secs_f64(
            config.wires_per_piece as f64 * share / config.wires_per_second,
        ))
    };
    let node_time = CostSpec::Uniform(SimTime::from_secs_f64(
        config.nodes_per_piece as f64 * 0.1 / config.wires_per_second,
    ));
    let req = |partition, privilege, fields: Vec<FieldId>, tree, fs| RegionReq {
        partition,
        functor: ident,
        privilege,
        fields,
        tree,
        field_space: fs,
    };

    b.index_launch(IndexLaunchDesc {
        task: init_nodes,
        domain: domain.clone(),
        reqs: vec![req(nodes_own, Privilege::Write, vec![], node_region.tree, nfs)],
        scalars: vec![],
        cost: node_time.clone(),
        shard: None,
    });
    b.index_launch(IndexLaunchDesc {
        task: init_wires,
        domain: domain.clone(),
        reqs: vec![req(wires_p, Privilege::Write, vec![], wire_region.tree, wfs)],
        scalars: vec![],
        cost: wire_time(0.1),
        shard: None,
    });
    b.start_timing();
    for _ in 0..config.iterations {
        b.index_launch(IndexLaunchDesc {
            task: cnc,
            domain: domain.clone(),
            reqs: vec![
                req(wires_p, Privilege::ReadWrite, vec![], wire_region.tree, wfs),
                req(nodes_own, Privilege::Read, vec![voltage], node_region.tree, nfs),
                req(nodes_ghost, Privilege::Read, vec![voltage], node_region.tree, nfs),
            ],
            scalars: vec![],
            cost: wire_time(0.6),
            shard: None,
        });
        b.index_launch(IndexLaunchDesc {
            task: dc,
            domain: domain.clone(),
            reqs: vec![
                req(wires_p, Privilege::Read, vec![], wire_region.tree, wfs),
                req(nodes_own, sum, vec![charge], node_region.tree, nfs),
                req(nodes_ghost, sum, vec![charge], node_region.tree, nfs),
            ],
            scalars: vec![1e-3],
            cost: wire_time(0.3),
            shard: None,
        });
        b.index_launch(IndexLaunchDesc {
            task: uv,
            domain: domain.clone(),
            reqs: vec![req(
                nodes_own,
                Privilege::ReadWrite,
                vec![],
                node_region.tree,
                nfs,
            )],
            scalars: vec![],
            cost: node_time.clone(),
            shard: None,
        });
    }

    CircuitApp {
        program: b.build(),
        config: config.clone(),
        fields,
        node_tree: node_region.tree,
        wire_tree: wire_region.tree,
        wires,
    }
}

/// Throughput in wires per second from a run report.
pub fn throughput(config: &CircuitConfig, report: &RunReport) -> f64 {
    let work = config.total_wires() as f64 * config.iterations as f64;
    work / report.elapsed.as_secs_f64()
}

/// Sequential reference: final node voltages.
pub fn reference(config: &CircuitConfig, wires: &[(i64, i64, f64)]) -> Vec<f64> {
    let n = config.pieces * config.nodes_per_piece;
    let mut voltage: Vec<f64> = (0..n).map(|id| (id % 7) as f64 - 3.0).collect();
    let cap: Vec<f64> = (0..n).map(|id| 1.0 + (id % 5) as f64).collect();
    let mut current = vec![0.0f64; wires.len()];
    let dt = 1e-3;
    for _ in 0..config.iterations {
        for (w, &(a, o, r)) in wires.iter().enumerate() {
            current[w] = (voltage[a as usize] - voltage[o as usize]) / r;
        }
        let mut charge = vec![0.0f64; n];
        for (w, &(a, o, _)) in wires.iter().enumerate() {
            charge[a as usize] -= current[w] * dt;
            charge[o as usize] += current[w] * dt;
        }
        for id in 0..n {
            voltage[id] = (voltage[id] + charge[id] / cap[id]) * 0.999;
        }
    }
    voltage
}

/// Extract final voltages from a validation run.
pub fn extract_voltages(app: &CircuitApp, report: &RunReport) -> Vec<f64> {
    let store = report.store.as_ref().expect("validation mode");
    let forest = &app.program.forest;
    let n = app.config.pieces * app.config.nodes_per_piece;
    let npp = app.config.nodes_per_piece as u64;
    let mut out = vec![f64::NAN; n];
    for s in 0..forest.num_spaces() as u32 {
        let space = il_region::IndexSpaceId(s);
        let node = forest.space(space);
        // Owned-node subspaces are the dense pieces of the node region.
        if node.parent.is_some() && matches!(node.domain, Domain::Rect1(_)) && node.domain.volume() == npp
        {
            if let Some(inst) = store.get((app.node_tree, space)) {
                if inst.has_field(app.fields.voltage) && inst.has_field(app.fields.capacitance) {
                    for p in node.domain.iter() {
                        out[p.x() as usize] = inst.get::<f64>(app.fields.voltage, p);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_runtime::{execute, RuntimeConfig};

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "voltage {i}: {x} vs {y}");
        }
    }

    #[test]
    fn validates_against_reference_all_configs() {
        let config = CircuitConfig::tiny(4);
        for (dcr, idx) in [(true, true), (true, false), (false, true), (false, false)] {
            let app = build(&config);
            let rt = RuntimeConfig::validate(2).with_axes(dcr, idx);
            let report = execute(&app.program, &rt);
            let got = extract_voltages(&app, &report);
            let want = reference(&config, &app.wires);
            assert_close(&got, &want);
        }
    }

    #[test]
    fn all_launches_statically_safe() {
        // The paper: circuit "is verified entirely by Regent's static
        // checker and does not incur any runtime cost".
        let app = build(&CircuitConfig::tiny(4));
        let report = execute(&app.program, &RuntimeConfig::validate(2));
        assert_eq!(report.dynamic_check_time, il_machine::SimTime::ZERO);
    }

    #[test]
    fn scale_mode_runs_at_many_nodes() {
        let config = CircuitConfig::weak(16, 1);
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::scale(16));
        assert_eq!(report.tasks, (2 + 3 * config.iterations as u64) * 16);
        let tput = throughput(&config, &report);
        assert!(tput > 0.0);
    }

    #[test]
    fn ghost_sets_are_remote_only() {
        let config = CircuitConfig::tiny(4);
        let mut rng = TestRng::seed_from_u64(config.seed);
        let wires = generate_wires(&config, &mut rng);
        let ghosts = ghost_sets(&config, &wires);
        let npp = config.nodes_per_piece as i64;
        for (piece, g) in ghosts.iter().enumerate() {
            let lo = piece as i64 * npp;
            let hi = lo + npp - 1;
            assert!(g.iter().all(|&n| n < lo || n > hi), "piece {piece}");
        }
    }

    #[test]
    fn synthetic_ghosts_bounded() {
        let config = CircuitConfig::weak(8, 1);
        let ghosts = synthetic_ghost_sets(&config);
        assert_eq!(ghosts.len(), 8);
        assert!(ghosts.iter().all(|g| !g.is_empty() && g.len() <= 256));
    }

    #[test]
    fn weak_and_strong_presets() {
        let w = CircuitConfig::weak(4, 1);
        assert_eq!(w.total_wires(), 800_000);
        let s = CircuitConfig::strong(4);
        assert_eq!(s.total_wires(), 5_100_000);
        let od = CircuitConfig::weak(4, 10);
        assert_eq!(od.pieces, 40);
        assert_eq!(od.total_wires(), 800_000);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use il_runtime::{execute, RuntimeConfig};

    #[test]
    fn single_piece_circuit_validates() {
        // pct_shared is irrelevant with one piece: no ghosts at all.
        let config = CircuitConfig {
            pieces: 1,
            ..CircuitConfig::tiny(1)
        };
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::validate(1));
        let got = extract_voltages(&app, &report);
        let want = reference(&config, &app.wires);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(report.messages, 0);
    }

    #[test]
    fn charge_is_reset_every_timestep() {
        // After any number of iterations, every node's charge field is
        // exactly zero (update_voltages consumed and reset it).
        let config = CircuitConfig::tiny(3);
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::validate(3));
        let store = report.store.as_ref().unwrap();
        let forest = &app.program.forest;
        let npp = config.nodes_per_piece as u64;
        for s in 0..forest.num_spaces() as u32 {
            let space = il_region::IndexSpaceId(s);
            let node = forest.space(space);
            if node.parent.is_some()
                && matches!(node.domain, Domain::Rect1(_))
                && node.domain.volume() == npp
            {
                if let Some(inst) = store.get((app.node_tree, space)) {
                    if inst.has_field(app.fields.capacitance) {
                        for p in node.domain.iter() {
                            assert_eq!(inst.get::<f64>(app.fields.charge, p), 0.0);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn throughput_accounts_total_wires() {
        let config = CircuitConfig::weak(4, 1);
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::scale(4));
        let tput = throughput(&config, &report);
        // 4 nodes near the 1-node calibration of ~5.4M wires/s/node.
        assert!(tput > 4.0 * 4.0e6 && tput < 4.0 * 7.0e6, "{tput:.3e}");
    }
}
