//! The paper's evaluation applications (§6.1), built on the index-launch
//! runtime:
//!
//! * [`circuit`] — an electrical-circuit simulation on an unstructured
//!   graph, previously optimized in the DCR paper. Trivial (identity)
//!   projection functors only: verified entirely by the static checker.
//! * [`stencil`] — the PRK 2-D radius-2 star stencil. Trivial functors.
//! * [`soleil`] — Soleil-mini: a multi-physics code with turbulent-fluid,
//!   particle, and discrete-ordinates-radiation (DOM) modules. The DOM
//!   sweeps launch over 3-D diagonal wavefront slices with non-trivial
//!   projection functors into 2-D exchange planes — statically
//!   undecidable, verified by the dynamic check (§6.2.3).
//! * [`amr`] — a block-structured adaptive-mesh-refinement driver whose
//!   partitions are refined/coarsened in place every few timesteps,
//!   turning over captured traces, cached verdicts, and shard maps at
//!   every regrid boundary.
//! * [`pagerank`] — pull-mode PageRank over a seeded power-law graph
//!   with a data-dependent (opaque) piece permutation: the static
//!   analyzer cannot classify it, so every update launch takes the
//!   dynamic bitmask check at full launch-domain size.
//!
//! Every application provides a [`il_runtime::Program`] builder usable in
//! two modes: **validation** (real kernels over real instances on a small
//! machine, checked against a sequential reference) and **scale**
//! (cost-modeled kernels, up to 1024 simulated nodes — the mode the
//! figures are generated in).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amr;
pub mod circuit;
pub mod pagerank;
pub mod service_mix;
pub mod soleil;
pub mod stencil;
