//! PageRank: pull-mode PageRank over a seeded power-law graph.
//!
//! Vertices are split into *pieces*; each piece owns a contiguous vertex
//! range and the in-edges of those vertices (generated with power-law
//! skew on the source, so a few hub vertices fan out everywhere). Each
//! piece's remote in-neighbor sources form its *ghost* set — a sparse,
//! aliased partition, exactly the shape a graph partitioner produces.
//!
//! The interesting part is the projection functor. The `update` launch
//! does not use the identity: launch point `i` processes piece `σ(i)`,
//! where `σ` is a **data-dependent permutation** — pieces ordered by
//! ghost-degree (hot pieces first) in validation mode, a seeded shuffle
//! in scale mode. `σ` is an arbitrary table lookup, so it is expressed
//! as [`il_analysis::ProjExpr::opaque`]: the static analyzer cannot
//! classify it and the launch takes the paper's **dynamic bitmask
//! check** (Listing 3) every iteration — O(|D| + |P|) evaluations that
//! verify the write set through `σ` is injective. The check passes
//! (σ is a bijection), so the |D| tasks still run in parallel.
//!
//! Per iteration:
//!
//! 1. `update` — point `i`, piece `p = σ(i)`: pulls `rank` of every
//!    in-neighbor (own else ghost) and writes the damped sum into
//!    `next[v]` for each owned `v` (write via `σ` ⇒ dynamic check);
//! 2. `apply` — `rank = next` through the identity (statically safe).

use il_analysis::ProjExpr;
use il_geometry::{Domain, DomainPoint, Rect};
use il_machine::SimTime;
use il_region::{
    equal_partition_1d, Disjointness, FieldId, FieldKind, FieldSpaceDesc, IndexPartitionId,
    Privilege, RegionTreeId,
};
use il_runtime::{
    CostSpec, ExecutionMode, IndexLaunchDesc, Program, ProgramBuilder, RegionReq, RunReport,
};
use il_testkit::TestRng;
use std::sync::Arc;

/// Damping factor.
pub const DAMPING: f64 = 0.85;

/// PageRank problem configuration.
#[derive(Clone, Debug)]
pub struct PagerankConfig {
    /// Graph pieces (= launch-domain size).
    pub pieces: usize,
    /// Vertices per piece.
    pub nodes_per_piece: usize,
    /// In-edges per piece.
    pub edges_per_piece: usize,
    /// Power-law skew exponent for edge sources (higher = hubbier).
    pub skew: f64,
    /// Iterations (timed).
    pub iterations: usize,
    /// RNG seed for graph generation and the scale-mode shuffle.
    pub seed: u64,
    /// Execution mode.
    pub mode: ExecutionMode,
    /// Simulated per-GPU rate in edges per second.
    pub edges_per_second: f64,
}

impl PagerankConfig {
    /// A tiny validation-mode problem.
    pub fn tiny(pieces: usize) -> Self {
        PagerankConfig {
            pieces,
            nodes_per_piece: 8,
            edges_per_piece: 24,
            skew: 2.0,
            iterations: 3,
            seed: 42,
            mode: ExecutionMode::Validate,
            edges_per_second: 1.0e9,
        }
    }

    /// Scale mode at an explicit launch-domain size — the dynamic-check
    /// sweep runs this at 10⁵–10⁶ pieces.
    pub fn scale(pieces: usize) -> Self {
        PagerankConfig {
            pieces,
            nodes_per_piece: 16,
            edges_per_piece: 64,
            skew: 2.0,
            iterations: 5,
            seed: 0x9A6E,
            mode: ExecutionMode::Scale,
            edges_per_second: 1.0e9,
        }
    }

    /// Total vertices.
    pub fn total_nodes(&self) -> usize {
        self.pieces * self.nodes_per_piece
    }

    /// Total edges.
    pub fn total_edges(&self) -> u64 {
        (self.pieces * self.edges_per_piece) as u64
    }
}

/// A built PageRank program plus validation handles.
pub struct PagerankApp {
    /// The runtime program.
    pub program: Program,
    /// Configuration.
    pub config: PagerankConfig,
    /// Current rank field.
    pub rank: FieldId,
    /// Next-iteration rank field.
    pub next: FieldId,
    /// Vertex region tree.
    pub tree: RegionTreeId,
    /// The owned (disjoint) vertex partition.
    pub owned: IndexPartitionId,
    /// In-edges per piece, `(src, dst)` in generation order (validation
    /// mode; empty in scale mode).
    pub edges: Arc<Vec<Vec<(i64, i64)>>>,
    /// The data-dependent piece permutation `σ` (launch point → piece).
    pub perm: Arc<Vec<i64>>,
}

/// Deterministic power-law-ish source pick: `u^skew` concentrates mass
/// near vertex 0, making low-numbered vertices hubs.
fn skewed_source(rng: &mut TestRng, total: i64, skew: f64) -> i64 {
    let u = rng.unit_f64();
    ((u.powf(skew) * total as f64) as i64).min(total - 1)
}

/// Generate each piece's in-edges `(src, dst)`: `dst` owned by the
/// piece, `src` power-law over all vertices.
fn generate_edges(config: &PagerankConfig, rng: &mut TestRng) -> Vec<Vec<(i64, i64)>> {
    let npp = config.nodes_per_piece as i64;
    let total = config.total_nodes() as i64;
    (0..config.pieces as i64)
        .map(|piece| {
            let base = piece * npp;
            (0..config.edges_per_piece)
                .map(|_| {
                    let dst = base + rng.gen_range_i64(0, npp);
                    let src = skewed_source(rng, total, config.skew);
                    (src, dst)
                })
                .collect()
        })
        .collect()
}

/// Remote in-neighbor sources of each piece (sorted, deduplicated).
fn ghost_sets(config: &PagerankConfig, edges: &[Vec<(i64, i64)>]) -> Vec<Vec<i64>> {
    let npp = config.nodes_per_piece as i64;
    edges
        .iter()
        .enumerate()
        .map(|(piece, es)| {
            let lo = piece as i64 * npp;
            let hi = lo + npp - 1;
            let mut g: Vec<i64> =
                es.iter().map(|&(src, _)| src).filter(|&s| s < lo || s > hi).collect();
            g.sort_unstable();
            g.dedup();
            g
        })
        .collect()
}

/// Synthetic ghost sets for scale mode: every piece reads a bounded
/// window of the hub pieces (power-law sources concentrate there) plus
/// its ring neighbor — the communication shape without materializing
/// the edge list.
fn synthetic_ghost_sets(config: &PagerankConfig) -> Vec<Vec<i64>> {
    let npp = config.nodes_per_piece as i64;
    let hubs = npp.min(8);
    (0..config.pieces as i64)
        .map(|piece| {
            let mut g: Vec<i64> = (0..hubs).collect();
            if config.pieces > 1 {
                let other = (piece + 1) % config.pieces as i64;
                g.push(other * npp);
            }
            let lo = piece * npp;
            let hi = lo + npp - 1;
            g.retain(|&n| n < lo || n > hi);
            g.sort_unstable();
            g.dedup();
            g
        })
        .collect()
}

/// The data-dependent piece permutation: validation orders pieces by
/// ghost-degree descending (hot pieces first — a load-balance heuristic
/// computed from the graph), scale mode uses a seeded Fisher–Yates
/// shuffle. Both are bijections, so the dynamic check passes.
fn permutation(config: &PagerankConfig, ghosts: &[Vec<i64>], rng: &mut TestRng) -> Vec<i64> {
    let mut perm: Vec<i64> = (0..config.pieces as i64).collect();
    if config.mode == ExecutionMode::Validate {
        perm.sort_by_key(|&p| (usize::MAX - ghosts[p as usize].len(), p));
    } else {
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.gen_range_usize(0, i + 1));
        }
    }
    perm
}

/// Per-vertex 1/outdegree (0 for dangling vertices, whose mass is
/// dropped — the reference does the same).
fn inverse_outdegree(config: &PagerankConfig, edges: &[Vec<(i64, i64)>]) -> Vec<f64> {
    let mut deg = vec![0u32; config.total_nodes()];
    for es in edges {
        for &(src, _) in es {
            deg[src as usize] += 1;
        }
    }
    deg.iter().map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f64 }).collect()
}

/// Build the PageRank program.
pub fn build(config: &PagerankConfig) -> PagerankApp {
    let mut rng = TestRng::seed_from_u64(config.seed);
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let rank = fsd.add("rank", FieldKind::F64);
    let next = fsd.add("next", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let total = config.total_nodes() as i64;
    let region = b.forest.create_region(Domain::range(total), fs);
    let owned = equal_partition_1d(&mut b.forest, region.space, config.pieces);

    let (edges, ghosts) = if config.mode == ExecutionMode::Validate {
        let edges = generate_edges(config, &mut rng);
        let ghosts = ghost_sets(config, &edges);
        (edges, ghosts)
    } else {
        (Vec::new(), synthetic_ghost_sets(config))
    };
    let perm = Arc::new(permutation(config, &ghosts, &mut rng));
    let inv_deg = Arc::new(inverse_outdegree(config, &edges));
    let edges = Arc::new(edges);

    // Sparse aliased ghost partition (empty sets use a 1-point
    // placeholder inside the piece's own range).
    let npp = config.nodes_per_piece as i64;
    let ghost_coloring: Vec<(DomainPoint, Domain)> = ghosts
        .iter()
        .enumerate()
        .map(|(piece, g)| {
            let domain = if g.is_empty() {
                Domain::Rect1(Rect::new1(piece as i64 * npp, piece as i64 * npp))
            } else {
                Domain::sparse(g.iter().map(|&n| DomainPoint::new1(n)).collect())
            };
            (DomainPoint::new1(piece as i64), domain)
        })
        .collect();
    let ghost = b.forest.create_partition(
        region.space,
        Domain::range(config.pieces as i64),
        ghost_coloring,
        Disjointness::Aliased,
    );

    let ident = b.identity_functor();
    // σ as an opaque functor: a table lookup the static analyzer cannot
    // classify — every launch through it takes the dynamic bitmask check.
    let perm_for_functor = perm.clone();
    let sigma = b.functor(ProjExpr::opaque(move |p| {
        let i = p.coord(0);
        let color = if i >= 0 && (i as usize) < perm_for_functor.len() {
            perm_for_functor[i as usize]
        } else {
            -1 // out-of-domain probes map out of the color space
        };
        DomainPoint::new1(color)
    }));

    let n_total = total as f64;
    let perm_for_task = perm.clone();
    let edges_for_task = edges.clone();
    let inv_deg_task = inv_deg.clone();
    let init = b.task("init", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.write(0, rank, p, 1.0 / n_total);
            ctx.write(0, next, p, 0.0);
        }
    });
    // update: pull in-neighbor ranks (own else ghost), write damped sums.
    let update = b.task("update", move |ctx| {
        let piece = perm_for_task[ctx.point.x() as usize] as usize;
        let base = piece as i64 * npp;
        let mut acc = vec![0.0f64; npp as usize];
        for &(src, dst) in &edges_for_task[piece] {
            let q = DomainPoint::new1(src);
            let r: f64 = if ctx.domain(1).contains(q) {
                ctx.read(1, rank, q)
            } else {
                ctx.read(2, rank, q)
            };
            acc[(dst - base) as usize] += r * inv_deg_task[src as usize];
        }
        for (k, a) in acc.iter().enumerate() {
            let p = DomainPoint::new1(base + k as i64);
            ctx.write(0, next, p, (1.0 - DAMPING) / n_total + DAMPING * a);
        }
    });
    let apply = b.task("apply", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let v: f64 = ctx.read(0, next, p);
            ctx.write(0, rank, p, v);
        }
    });

    let domain = Domain::range(config.pieces as i64);
    let edge_time = |share: f64| {
        CostSpec::Uniform(SimTime::from_secs_f64(
            config.edges_per_piece as f64 * share / config.edges_per_second,
        ))
    };
    let req = |partition, functor, privilege, fields: Vec<FieldId>| RegionReq {
        partition,
        functor,
        privilege,
        fields,
        tree: region.tree,
        field_space: fs,
    };

    b.index_launch(IndexLaunchDesc {
        task: init,
        domain: domain.clone(),
        reqs: vec![req(owned, ident, Privilege::Write, vec![])],
        scalars: vec![],
        cost: edge_time(0.1),
        shard: None,
    });
    b.start_timing();
    for _ in 0..config.iterations {
        b.index_launch(IndexLaunchDesc {
            task: update,
            domain: domain.clone(),
            reqs: vec![
                req(owned, sigma, Privilege::Write, vec![next]),
                req(owned, sigma, Privilege::Read, vec![rank]),
                req(ghost, sigma, Privilege::Read, vec![rank]),
            ],
            scalars: vec![],
            cost: edge_time(0.7),
            shard: None,
        });
        b.index_launch(IndexLaunchDesc {
            task: apply,
            domain: domain.clone(),
            reqs: vec![req(owned, ident, Privilege::ReadWrite, vec![])],
            scalars: vec![],
            cost: edge_time(0.2),
            shard: None,
        });
    }

    PagerankApp {
        program: b.build(),
        config: config.clone(),
        rank,
        next,
        tree: region.tree,
        owned,
        edges,
        perm,
    }
}

/// Throughput in edge-traversals per second.
pub fn throughput(config: &PagerankConfig, report: &RunReport) -> f64 {
    config.total_edges() as f64 * config.iterations as f64 / report.elapsed.as_secs_f64()
}

/// Sequential reference: final ranks. Accumulates per piece in edge
/// order — the same float-op order as the tasks, so results match
/// bit-for-bit.
pub fn reference(config: &PagerankConfig, edges: &[Vec<(i64, i64)>]) -> Vec<f64> {
    let n = config.total_nodes();
    let npp = config.nodes_per_piece as i64;
    let mut deg = vec![0u32; n];
    for es in edges {
        for &(src, _) in es {
            deg[src as usize] += 1;
        }
    }
    let inv_deg: Vec<f64> =
        deg.iter().map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f64 }).collect();
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..config.iterations {
        let mut next = vec![0.0f64; n];
        for (piece, es) in edges.iter().enumerate() {
            let base = piece as i64 * npp;
            let mut acc = vec![0.0f64; npp as usize];
            for &(src, dst) in es {
                acc[(dst - base) as usize] += rank[src as usize] * inv_deg[src as usize];
            }
            for (k, a) in acc.iter().enumerate() {
                next[(base + k as i64) as usize] = (1.0 - DAMPING) / n as f64 + DAMPING * a;
            }
        }
        rank = next;
    }
    rank
}

/// Extract final ranks from a validation run.
pub fn extract_ranks(app: &PagerankApp, report: &RunReport) -> Vec<f64> {
    let store = report.store.as_ref().expect("validation mode");
    let forest = &app.program.forest;
    let mut out = vec![f64::NAN; app.config.total_nodes()];
    for &space in forest.partition(app.owned).children.values() {
        if let Some(inst) = store.get((app.tree, space)) {
            for p in forest.domain(space).iter() {
                out[p.x() as usize] = inst.get::<f64>(app.rank, p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_runtime::{execute, RuntimeConfig};

    #[test]
    fn validates_against_reference_all_configs() {
        let config = PagerankConfig::tiny(4);
        for (dcr, idx) in [(true, true), (true, false), (false, true), (false, false)] {
            let app = build(&config);
            let report = execute(&app.program, &RuntimeConfig::validate(2).with_axes(dcr, idx));
            let got = extract_ranks(&app, &report);
            let want = reference(&config, &app.edges);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-12, "rank {i}: {a} vs {b} (dcr={dcr} idx={idx})");
            }
        }
    }

    #[test]
    fn update_launch_takes_the_dynamic_check() {
        // σ is opaque: the static analyzer cannot prove injectivity, so
        // every `update` launch must run the dynamic bitmask check — and
        // pass it (σ is a bijection), keeping all tasks parallel.
        let app = build(&PagerankConfig::tiny(4));
        let report = execute(&app.program, &RuntimeConfig::validate(2));
        assert!(
            report.dynamic_check_time > il_machine::SimTime::ZERO,
            "opaque σ must hit the dynamic-check path"
        );
        // Disabling the checks changes nothing about the data (the launch
        // is genuinely safe), only the check cost disappears.
        let app2 = build(&PagerankConfig::tiny(4));
        let report2 =
            execute(&app2.program, &RuntimeConfig::validate(2).with_dynamic_checks(false));
        assert_eq!(report2.dynamic_check_time, il_machine::SimTime::ZERO);
        assert_eq!(extract_ranks(&app, &report), extract_ranks(&app2, &report2));
    }

    #[test]
    fn permutation_is_a_data_dependent_bijection() {
        let config = PagerankConfig::tiny(6);
        let app = build(&config);
        let mut seen = vec![false; config.pieces];
        for &c in app.perm.iter() {
            assert!(!seen[c as usize], "σ must be injective");
            seen[c as usize] = true;
        }
        // Hot pieces (largest ghost sets) come first.
        let ghosts = ghost_sets(&config, &app.edges);
        let degrees: Vec<usize> = app.perm.iter().map(|&c| ghosts[c as usize].len()).collect();
        assert!(degrees.windows(2).all(|w| w[0] >= w[1]), "{degrees:?}");
    }

    #[test]
    fn sources_are_power_law_skewed() {
        let config = PagerankConfig::tiny(8);
        let mut rng = TestRng::seed_from_u64(config.seed);
        let edges = generate_edges(&config, &mut rng);
        let n = config.total_nodes();
        let lower: usize = edges
            .iter()
            .flatten()
            .filter(|&&(src, _)| (src as usize) < n / 4)
            .count();
        // With skew 2.0, u² < 1/4 for u < 1/2: half the edges land in the
        // first quarter of the vertex range.
        assert!(
            lower as f64 > 0.4 * config.total_edges() as f64,
            "{lower} of {} sources in the low quarter",
            config.total_edges()
        );
    }

    #[test]
    fn scale_mode_runs_with_synthetic_ghosts() {
        let config = PagerankConfig::scale(256);
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::scale(16));
        assert_eq!(report.tasks, (1 + 2 * config.iterations as u64) * 256);
        assert!(report.dynamic_check_time > il_machine::SimTime::ZERO);
        assert!(throughput(&config, &report) > 0.0);
    }

    #[test]
    fn rank_mass_is_conserved_modulo_dangling() {
        // Σ rank stays within (1-d)·… bounds: every iteration redistributes
        // at most the full mass; with dangling drop the sum is ≤ 1 and ≥ (1-d).
        let config = PagerankConfig::tiny(4);
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::validate(2));
        let total: f64 = extract_ranks(&app, &report).iter().sum();
        assert!(total > 1.0 - DAMPING && total <= 1.0 + 1e-9, "Σrank = {total}");
    }
}
