//! Seeded multi-tenant workload generator for service mode.
//!
//! Builds deterministic streams of [`SessionSpec`]s for the service
//! scheduler: Poisson-like arrivals (exponential inter-arrival gaps via
//! inverse-transform sampling on the [`il_testkit`] PRNG), tenant
//! assignment, and a program mix drawn from the golden evaluation
//! applications plus the differential-fuzzer program generator. Two
//! shapes:
//!
//! * [`generate_mix`] — a balanced mix: every tenant submits a blend of
//!   short and medium sessions at a common arrival rate. This is the
//!   bench's throughput/latency workload.
//! * [`skewed_mix`] — a tail-latency adversary: one heavy tenant bursts
//!   a queue of moderately long sessions at time zero while many light
//!   sessions from other tenants trickle in behind them. FIFO convoys
//!   the whole burst — every freed slot goes back to the heavy queue in
//!   arrival order, so light sessions wait for the burst to drain; fair
//!   share charges the heavy tenant its accumulated service time after
//!   the first completion and routes every later slot to the light
//!   tenants — the measurable p99 gap `figures -- serve` reports.
//!
//! Generation is a pure function of the seed: the same `MixConfig`
//! yields byte-identical session streams (programs included), which is
//! what makes the service bench and its CI smoke reproducible.

use std::rc::Rc;

use il_machine::SimTime;
use il_runtime::{Program, RuntimeConfig, SessionSpec};
use il_testkit::{SplitMix64, TestRng};

use crate::{amr, circuit, pagerank, soleil, stencil};

/// Shape of a generated multi-tenant workload.
#[derive(Clone, Debug)]
pub struct MixConfig {
    /// Master seed; everything (arrivals, tenants, programs) derives
    /// from it.
    pub seed: u64,
    /// Number of tenants cycling through the stream.
    pub tenants: u32,
    /// Sessions to generate.
    pub sessions: usize,
    /// Nodes per service slot; every session's config uses this width.
    pub slot_nodes: usize,
    /// Mean inter-arrival gap of the Poisson-like arrival process.
    pub mean_gap: SimTime,
    /// Per-mille of sessions drawn from the fuzzer program generator
    /// instead of the golden applications.
    pub fuzz_per_mille: u32,
}

impl MixConfig {
    /// The PR 8 reference mix: 8 tenants, 64 sessions, half fuzzer
    /// programs, 50 µs mean gap on 2-node slots.
    pub fn standard(seed: u64) -> MixConfig {
        MixConfig {
            seed,
            tenants: 8,
            sessions: 64,
            slot_nodes: 2,
            mean_gap: SimTime::us(50),
            fuzz_per_mille: 500,
        }
    }
}

/// Exponential gap with the given mean (inverse-transform sample), for
/// Poisson-like arrivals. Clamped into `[1ns, 20×mean]` so schedules
/// stay finite and strictly ordered draws stay distinct.
fn exp_gap(rng: &mut TestRng, mean: SimTime) -> SimTime {
    let u = rng.unit_f64().clamp(1e-12, 1.0 - 1e-12);
    let gap = -(1.0 - u).ln() * mean.as_ns() as f64;
    SimTime::ns((gap as u64).clamp(1, mean.as_ns().saturating_mul(20)))
}

/// A golden-app program of roughly `weight` iterations, cycling over
/// the five applications (the AMR regrid cadence and pagerank's
/// dynamic-check loop included, so service slots exercise trace
/// invalidation and the bitmask path under multi-tenancy).
fn golden_program(which: usize, weight: usize) -> Program {
    match which % 5 {
        0 => {
            stencil::build(&stencil::StencilConfig {
                iterations: weight.max(1),
                ..stencil::StencilConfig::tiny((2, 2))
            })
            .program
        }
        1 => {
            circuit::build(&circuit::CircuitConfig {
                iterations: weight.max(1),
                ..circuit::CircuitConfig::tiny(4)
            })
            .program
        }
        2 => {
            soleil::build(&soleil::SoleilConfig {
                iterations: weight.max(1),
                ..soleil::SoleilConfig::tiny((2, 1, 1))
            })
            .program
        }
        3 => {
            amr::build(&amr::AmrConfig {
                epochs: weight.max(1),
                ..amr::AmrConfig::tiny()
            })
            .program
        }
        _ => {
            pagerank::build(&pagerank::PagerankConfig {
                iterations: weight.max(1),
                ..pagerank::PagerankConfig::tiny(4)
            })
            .program
        }
    }
}

/// Generate the balanced multi-tenant stream described by `cfg`.
pub fn generate_mix(cfg: &MixConfig) -> Vec<SessionSpec> {
    assert!(cfg.tenants >= 1 && cfg.sessions >= 1);
    let mut rng = TestRng::seed_from_u64(SplitMix64::mix(cfg.seed, 0x5E55));
    let mut arrival = SimTime::ZERO;
    let mut out = Vec::with_capacity(cfg.sessions);
    for i in 0..cfg.sessions {
        arrival = arrival + exp_gap(&mut rng, cfg.mean_gap);
        let tenant = rng.next_below(cfg.tenants as u64) as u32;
        let priority = rng.next_below(4) as u32;
        let program = if rng.next_below(1000) < cfg.fuzz_per_mille as u64 {
            il_oracle::generate_program(SplitMix64::mix(cfg.seed, 0xF0_0000 + i as u64))
        } else {
            golden_program(rng.next_below(5) as usize, 1 + rng.next_below(4) as usize)
        };
        out.push(SessionSpec {
            tenant,
            priority,
            arrival,
            program: Rc::new(program),
            config: RuntimeConfig::scale(cfg.slot_nodes),
        });
    }
    out
}

/// Generate the skewed tail-latency workload: `heavy` moderately long
/// sessions from tenant 0 burst at time zero; `light` short sessions
/// from the remaining tenants arrive Poisson-spread behind them.
pub fn skewed_mix(cfg: &MixConfig, heavy: usize, light: usize) -> Vec<SessionSpec> {
    assert!(cfg.tenants >= 2, "skew needs a heavy tenant and at least one light tenant");
    let mut rng = TestRng::seed_from_u64(SplitMix64::mix(cfg.seed, 0x5AE9));
    let mut out = Vec::with_capacity(heavy + light);
    for i in 0..heavy {
        out.push(SessionSpec {
            tenant: 0,
            priority: 0,
            arrival: SimTime::ns(i as u64), // effectively simultaneous
            program: Rc::new(golden_program(0, 30)),
            config: RuntimeConfig::scale(cfg.slot_nodes),
        });
    }
    let mut arrival = SimTime::ZERO;
    for i in 0..light {
        arrival = arrival + exp_gap(&mut rng, cfg.mean_gap);
        let tenant = 1 + rng.next_below(cfg.tenants as u64 - 1) as u32;
        let program = if rng.next_below(1000) < cfg.fuzz_per_mille as u64 {
            il_oracle::generate_program(SplitMix64::mix(cfg.seed, 0x11_0000 + i as u64))
        } else {
            golden_program(rng.next_below(5) as usize, 1)
        };
        out.push(SessionSpec {
            tenant,
            priority: rng.next_below(4) as u32,
            arrival,
            program: Rc::new(program),
            config: RuntimeConfig::scale(cfg.slot_nodes),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_deterministic() {
        let cfg = MixConfig::standard(7);
        let a = generate_mix(&cfg);
        let b = generate_mix(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!((x.tenant, x.priority, x.arrival), (y.tenant, y.priority, y.arrival));
            assert_eq!(x.program.ops.len(), y.program.ops.len());
        }
        // Arrivals strictly increase (gaps are clamped to ≥ 1ns).
        for w in a.windows(2) {
            assert!(w[0].arrival < w[1].arrival);
        }
    }

    #[test]
    fn skewed_mix_bursts_tenant_zero() {
        let cfg = MixConfig::standard(3);
        let mix = skewed_mix(&cfg, 4, 20);
        assert_eq!(mix.len(), 24);
        assert!(mix[..4].iter().all(|s| s.tenant == 0 && s.arrival < SimTime::us(1)));
        assert!(mix[4..].iter().all(|s| s.tenant != 0));
    }
}
