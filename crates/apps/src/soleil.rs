//! Soleil-mini: turbulent fluid + particles + discrete-ordinates
//! radiation (DOM), after Soleil-X (§6.1).
//!
//! The fluid is an explicit diffusion step over a 3-D grid with aliased
//! halo reads; particles are tracers advected by the local fluid
//! velocity; radiation is the interesting module: for each of the 8
//! octants, intensity sweeps across the tile grid in *wavefronts* —
//! launch domains that are 3-D diagonal slices of the tile grid. Each
//! sweep task exchanges upstream/downstream flux through three 2-D plane
//! regions, selected by the projection functors
//! `(x,y,z) ↦ (y,z)`, `(x,z)`, `(x,y)`.
//!
//! "This projection is safe only when the launch domain contains no
//! duplicate (x,y), (y,z) or (x,z) pairs. While it could be challenging
//! for a static compiler to verify that no duplicate pairs exist, a
//! dynamic check can verify this trivially." (§6.2.3) — and indeed the
//! static analyzer returns Unknown for these swizzles and the dynamic
//! bitmask check proves them injective over every wavefront.

use il_geometry::{Domain, DomainPoint, Rect};
use il_machine::{NodeId, SimTime};
use il_region::{
    block_partition_2d, block_partition_3d, coloring_partition, halo_partition_3d, FieldId,
    FieldKind, FieldSpaceDesc, Privilege, RegionTreeId,
};
use il_runtime::{
    CostSpec, ExecutionMode, IndexLaunchDesc, Program, ProgramBuilder, RegionReq, RunReport,
};
use il_analysis::ProjExpr;
use std::sync::Arc;

/// Diffusion coefficient of the fluid step.
pub const NU: f64 = 0.05;
/// Radiation scattering factor.
pub const SIGMA: f64 = 0.7;
/// Radiation emission coupling.
pub const EMISS: f64 = 0.3;
/// Radiation absorption coupling back into the fluid.
pub const EPS: f64 = 1e-3;

/// The eight octant directions of the discrete-ordinates method.
pub const OCTANTS: [(i64, i64, i64); 8] = [
    (1, 1, 1),
    (1, 1, -1),
    (1, -1, 1),
    (1, -1, -1),
    (-1, 1, 1),
    (-1, 1, -1),
    (-1, -1, 1),
    (-1, -1, -1),
];

/// Soleil-mini configuration.
#[derive(Clone, Debug)]
pub struct SoleilConfig {
    /// Tile grid (one task per tile per stage).
    pub tiles: (usize, usize, usize),
    /// Cells per tile per axis.
    pub cells_per_tile: (i64, i64, i64),
    /// Fluid sub-stages per timestep (real Soleil-X runs a multi-stage
    /// Runge-Kutta integrator, so one timestep issues many launches —
    /// this is what makes per-launch overheads visible at scale).
    pub fluid_stages: usize,
    /// Tracer particles per tile.
    pub particles_per_tile: usize,
    /// Enable the particle module.
    pub particles: bool,
    /// Enable the DOM radiation module.
    pub dom: bool,
    /// Timed iterations.
    pub iterations: usize,
    /// Execution mode.
    pub mode: ExecutionMode,
    /// Simulated per-GPU fluid rate (cells/s).
    pub fluid_cells_per_second: f64,
    /// Simulated per-GPU sweep rate (cells/s per octant).
    pub dom_cells_per_second: f64,
}

impl SoleilConfig {
    /// Near-cubic tile grid for `n` tiles.
    pub fn tile_grid(n: usize) -> (usize, usize, usize) {
        let mut best = (n, 1, 1);
        let mut best_score = usize::MAX;
        for a in 1..=n {
            if !n.is_multiple_of(a) {
                continue;
            }
            let rem = n / a;
            for b in 1..=rem {
                if !rem.is_multiple_of(b) {
                    continue;
                }
                let c = rem / b;
                let score = a.max(b).max(c) - a.min(b).min(c);
                if score < best_score {
                    best_score = score;
                    best = (a, b, c);
                }
            }
        }
        best
    }

    /// Fluid-only weak scaling (Figure 9): one tile per node.
    pub fn fluid_weak(nodes: usize) -> Self {
        SoleilConfig {
            tiles: Self::tile_grid(nodes),
            cells_per_tile: (180, 180, 180),
            fluid_stages: 8,
            particles_per_tile: 0,
            particles: false,
            dom: false,
            iterations: 10,
            mode: ExecutionMode::Scale,
            fluid_cells_per_second: 1.5e7,
            dom_cells_per_second: 6.0e7,
        }
    }

    /// Full-physics weak scaling (Figure 10): fluid + particles + DOM.
    pub fn full_weak(nodes: usize) -> Self {
        SoleilConfig {
            tiles: Self::tile_grid(nodes),
            cells_per_tile: (96, 96, 96),
            fluid_stages: 4,
            particles_per_tile: 1000,
            particles: true,
            dom: true,
            iterations: 10,
            mode: ExecutionMode::Scale,
            fluid_cells_per_second: 1.5e7,
            dom_cells_per_second: 6.0e7,
        }
    }

    /// A tiny validation problem.
    pub fn tiny(tiles: (usize, usize, usize)) -> Self {
        SoleilConfig {
            tiles,
            cells_per_tile: (2, 2, 2),
            fluid_stages: 2,
            particles_per_tile: 2,
            particles: true,
            dom: true,
            iterations: 2,
            mode: ExecutionMode::Validate,
            fluid_cells_per_second: 1.5e7,
            dom_cells_per_second: 6.0e7,
        }
    }

    /// Grid size per axis.
    pub fn grid(&self) -> (i64, i64, i64) {
        (
            self.tiles.0 as i64 * self.cells_per_tile.0,
            self.tiles.1 as i64 * self.cells_per_tile.1,
            self.tiles.2 as i64 * self.cells_per_tile.2,
        )
    }

    /// Total tiles.
    pub fn total_tiles(&self) -> usize {
        self.tiles.0 * self.tiles.1 * self.tiles.2
    }

    /// Cells per tile.
    pub fn tile_cells(&self) -> i64 {
        self.cells_per_tile.0 * self.cells_per_tile.1 * self.cells_per_tile.2
    }
}

/// A built Soleil-mini program plus validation handles.
pub struct SoleilApp {
    /// The runtime program.
    pub program: Program,
    /// Configuration.
    pub config: SoleilConfig,
    /// Fluid field `u`.
    pub u: FieldId,
    /// Fluid region tree.
    pub fluid_tree: RegionTreeId,
    /// Radiation fields, one per octant.
    pub ity: Vec<FieldId>,
    /// Radiation region tree.
    pub rad_tree: RegionTreeId,
    /// Particle position fields `(x, y, z)`.
    pub ppos: (FieldId, FieldId, FieldId),
    /// Particle region tree (when enabled).
    pub part_tree: Option<RegionTreeId>,
}

/// Consistent tile → node mapping shared by every launch (dense 3-D,
/// sparse wavefront, and 2-D boundary domains all shard by the tile they
/// touch).
fn tile_shard(tiles: (usize, usize, usize)) -> il_runtime::ShardingFn {
    let (tx, ty, tz) = (tiles.0 as i64, tiles.1 as i64, tiles.2 as i64);
    Arc::new(move |p: DomainPoint, _d: &il_runtime::ShardDomain<'_>, nodes: usize| -> NodeId {
        let (x, y, z) = match p.dim() {
            3 => (p.x(), p.y(), p.z()),
            // 2-D boundary launches for planes: map onto the entry tile's
            // (y,z)/(x,z)/(x,y) — x component 0 is a fine proxy because
            // plane (a, b) is owned alongside tile (0, a, b).
            2 => (0, p.x(), p.y()),
            _ => (p.x(), 0, 0),
        };
        let lin = (x * ty * tz + y * tz + z) as u128;
        let total = (tx * ty * tz) as u128;
        ((lin * nodes as u128) / total) as NodeId
    })
}

/// Wavefront slices of the tile grid for one octant: slice `w` holds all
/// tiles whose direction-adjusted progress coordinates sum to `w`.
pub fn wavefronts(tiles: (usize, usize, usize), dir: (i64, i64, i64)) -> Vec<Vec<DomainPoint>> {
    let (tx, ty, tz) = (tiles.0 as i64, tiles.1 as i64, tiles.2 as i64);
    let n = (tx + ty + tz - 2) as usize;
    let mut out = vec![Vec::new(); n];
    for x in 0..tx {
        for y in 0..ty {
            for z in 0..tz {
                let px = if dir.0 > 0 { x } else { tx - 1 - x };
                let py = if dir.1 > 0 { y } else { ty - 1 - y };
                let pz = if dir.2 > 0 { z } else { tz - 1 - z };
                out[(px + py + pz) as usize].push(DomainPoint::new3(x, y, z));
            }
        }
    }
    out
}

/// Build the Soleil-mini program.
#[allow(clippy::too_many_lines)]
pub fn build(config: &SoleilConfig) -> SoleilApp {
    let mut b = ProgramBuilder::new();
    let (gx, gy, gz) = config.grid();
    let (cx, cy, cz) = config.cells_per_tile;
    let tiles = config.tiles;
    let shard = tile_shard(tiles);

    // ---- Fluid region ----
    let mut ffs = FieldSpaceDesc::new();
    let u = ffs.add("u", FieldKind::F64);
    let unew = ffs.add("unew", FieldKind::F64);
    let ffs = b.forest.create_field_space(ffs);
    let fluid = b
        .forest
        .create_region(Domain::Rect3(Rect::new3((0, 0, 0), (gx - 1, gy - 1, gz - 1))), ffs);
    let f_blocks = block_partition_3d(&mut b.forest, fluid.space, tiles);
    let f_halo = halo_partition_3d(&mut b.forest, fluid.space, tiles, 1);

    // ---- Radiation region: one intensity field per octant ----
    let mut rfs = FieldSpaceDesc::new();
    let ity: Vec<FieldId> = (0..8).map(|o| rfs.add(&format!("ity{o}"), FieldKind::F64)).collect();
    let rfs = b.forest.create_field_space(rfs);
    let rad = b
        .forest
        .create_region(Domain::Rect3(Rect::new3((0, 0, 0), (gx - 1, gy - 1, gz - 1))), rfs);
    let r_blocks = block_partition_3d(&mut b.forest, rad.space, tiles);

    // ---- Flux planes: per octant, one region per axis, partitioned by
    // the 2-D tile coordinates of the plane ----
    let mut pfs = FieldSpaceDesc::new();
    let flux = pfs.add("flux", FieldKind::F64);
    let pfs = b.forest.create_field_space(pfs);
    let mut fx_regions = Vec::new(); // (region, partition) per octant
    let mut fy_regions = Vec::new();
    let mut fz_regions = Vec::new();
    if config.dom {
        for _ in 0..8 {
            let rx = b
                .forest
                .create_region(Domain::Rect2(Rect::new2((0, 0), (gy - 1, gz - 1))), pfs);
            let px = block_partition_2d(&mut b.forest, rx.space, (tiles.1, tiles.2));
            fx_regions.push((rx, px));
            let ry = b
                .forest
                .create_region(Domain::Rect2(Rect::new2((0, 0), (gx - 1, gz - 1))), pfs);
            let py = block_partition_2d(&mut b.forest, ry.space, (tiles.0, tiles.2));
            fy_regions.push((ry, py));
            let rz = b
                .forest
                .create_region(Domain::Rect2(Rect::new2((0, 0), (gx - 1, gy - 1))), pfs);
            let pz = block_partition_2d(&mut b.forest, rz.space, (tiles.0, tiles.1));
            fz_regions.push((rz, pz));
        }
    }

    // ---- Particles: contiguous ranges per tile, colored by tile ----
    let mut sfs = FieldSpaceDesc::new();
    let px_ = sfs.add("px", FieldKind::F64);
    let py_ = sfs.add("py", FieldKind::F64);
    let pz_ = sfs.add("pz", FieldKind::F64);
    let sfs = b.forest.create_field_space(sfs);
    let ppt = config.particles_per_tile as i64;
    let part = if config.particles && ppt > 0 {
        let total = config.total_tiles() as i64 * ppt;
        let region = b.forest.create_region(Domain::range(total), sfs);
        let coloring: Vec<(DomainPoint, Domain)> = (0..tiles.0 as i64)
            .flat_map(|x| {
                (0..tiles.1 as i64).flat_map(move |y| {
                    (0..tiles.2 as i64).map(move |z| {
                        let lin = x * (tiles.1 * tiles.2) as i64 + y * tiles.2 as i64 + z;
                        (
                            DomainPoint::new3(x, y, z),
                            Domain::Rect1(Rect::new1(lin * ppt, (lin + 1) * ppt - 1)),
                        )
                    })
                })
            })
            .collect();
        let color_space = Domain::Rect3(Rect::new3(
            (0, 0, 0),
            (tiles.0 as i64 - 1, tiles.1 as i64 - 1, tiles.2 as i64 - 1),
        ));
        let p = coloring_partition(&mut b.forest, region.space, color_space, coloring);
        Some((region, p))
    } else {
        None
    };

    // ---- Functors ----
    let id3 = b.identity_functor();
    let id2 = b.functor(ProjExpr::Affine(il_geometry::DynTransform::identity(2)));
    let swiz_yz = b.functor(ProjExpr::Swizzle(vec![1, 2]));
    let swiz_xz = b.functor(ProjExpr::Swizzle(vec![0, 2]));
    let swiz_xy = b.functor(ProjExpr::Swizzle(vec![0, 1]));

    // ---- Task bodies ----
    let init_fluid = b.task("init_fluid", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let v = ((p.x() * 31 + p.y() * 17 + p.z() * 7) % 11) as f64 / 11.0;
            ctx.write(0, u, p, v);
            ctx.write(0, unew, p, 0.0);
        }
    });
    let fluid_step = b.task("fluid_step", move |ctx| {
        let pts: Vec<_> = ctx.domain(1).iter().collect();
        for p in pts {
            let c: f64 = ctx.read(0, u, p);
            let mut acc = 0.0;
            for (dx, dy, dz) in
                [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)]
            {
                let q = DomainPoint::new3(p.x() + dx, p.y() + dy, p.z() + dz);
                if q.x() >= 0 && q.x() < gx && q.y() >= 0 && q.y() < gy && q.z() >= 0 && q.z() < gz
                {
                    acc += ctx.read::<f64>(0, u, q) - c;
                }
            }
            ctx.write(1, unew, p, c + NU * acc);
        }
    });
    let fluid_swap = b.task("fluid_swap", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let v: f64 = ctx.read(0, unew, p);
            ctx.write(0, u, p, v);
        }
    });
    let advect = b.task("advect", move |ctx| {
        // Tracers move by the local fluid value, wrapping within the
        // owning tile (ownership is static in this mini-app).
        let tile = ctx.point;
        let lo = (
            tile.x() * cx,
            tile.y() * cy,
            tile.z() * cz,
        );
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let x: f64 = ctx.read(0, px_, p);
            let y: f64 = ctx.read(0, py_, p);
            let z: f64 = ctx.read(0, pz_, p);
            let cell = DomainPoint::new3(
                (x.floor() as i64).clamp(lo.0, lo.0 + cx - 1),
                (y.floor() as i64).clamp(lo.1, lo.1 + cy - 1),
                (z.floor() as i64).clamp(lo.2, lo.2 + cz - 1),
            );
            let vel: f64 = ctx.read(1, u, cell);
            let wrap = |v: f64, lo: i64, ext: i64| lo as f64 + (v - lo as f64 + vel).rem_euclid(ext as f64);
            ctx.write(0, px_, p, wrap(x, lo.0, cx));
            ctx.write(0, py_, p, wrap(y, lo.1, cy));
            ctx.write(0, pz_, p, wrap(z, lo.2, cz));
        }
    });
    let init_particles = b.task("init_particles", move |ctx| {
        let tile = ctx.point;
        let lo = (tile.x() * cx, tile.y() * cy, tile.z() * cz);
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for (k, p) in pts.into_iter().enumerate() {
            ctx.write(0, px_, p, lo.0 as f64 + (k as f64 * 0.37) % cx as f64);
            ctx.write(0, py_, p, lo.1 as f64 + (k as f64 * 0.61) % cy as f64);
            ctx.write(0, pz_, p, lo.2 as f64 + (k as f64 * 0.89) % cz as f64);
        }
    });
    let dom_bc = b.task("dom_bc", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.write(0, flux, p, 0.0);
        }
    });
    // One sweep task variant per octant (each reads/writes its own
    // intensity field and flux regions; the direction fixes iteration
    // order and entry/exit faces).
    let mut sweep_tasks = Vec::new();
    for (o, dir) in OCTANTS.iter().enumerate() {
        let ity_o = ity[o];
        let dir = *dir;
        sweep_tasks.push(b.task(&format!("dom_sweep{o}"), move |ctx| {
            // req0: intensity block (rw), req1: fluid block (read u),
            // req2/3/4: flux planes FX (y,z), FY (x,z), FZ (x,y).
            let (lo, hi) = ctx.domain(0).bounds();
            let xr: Vec<i64> = if dir.0 > 0 {
                (lo.x()..=hi.x()).collect()
            } else {
                (lo.x()..=hi.x()).rev().collect()
            };
            let yr: Vec<i64> = if dir.1 > 0 {
                (lo.y()..=hi.y()).collect()
            } else {
                (lo.y()..=hi.y()).rev().collect()
            };
            let zr: Vec<i64> = if dir.2 > 0 {
                (lo.z()..=hi.z()).collect()
            } else {
                (lo.z()..=hi.z()).rev().collect()
            };
            for &x in &xr {
                for &y in &yr {
                    for &z in &zr {
                        let p = DomainPoint::new3(x, y, z);
                        let in_x: f64 = if x == xr[0] {
                            ctx.read(2, flux, DomainPoint::new2(y, z))
                        } else {
                            ctx.read(0, ity_o, DomainPoint::new3(x - dir.0, y, z))
                        };
                        let in_y: f64 = if y == yr[0] {
                            ctx.read(3, flux, DomainPoint::new2(x, z))
                        } else {
                            ctx.read(0, ity_o, DomainPoint::new3(x, y - dir.1, z))
                        };
                        let in_z: f64 = if z == zr[0] {
                            ctx.read(4, flux, DomainPoint::new2(x, y))
                        } else {
                            ctx.read(0, ity_o, DomainPoint::new3(x, y, z - dir.2))
                        };
                        let src: f64 = ctx.read(1, u, p);
                        let val = (in_x + in_y + in_z) / 3.0 * SIGMA + EMISS * src;
                        ctx.write(0, ity_o, p, val);
                    }
                }
            }
            // Write exit faces into the flux planes.
            let exit_x = *xr.last().unwrap();
            let exit_y = *yr.last().unwrap();
            let exit_z = *zr.last().unwrap();
            for &y in &yr {
                for &z in &zr {
                    let v: f64 = ctx.read(0, ity_o, DomainPoint::new3(exit_x, y, z));
                    ctx.write(2, flux, DomainPoint::new2(y, z), v);
                }
            }
            for &x in &xr {
                for &z in &zr {
                    let v: f64 = ctx.read(0, ity_o, DomainPoint::new3(x, exit_y, z));
                    ctx.write(3, flux, DomainPoint::new2(x, z), v);
                }
            }
            for &x in &xr {
                for &y in &yr {
                    let v: f64 = ctx.read(0, ity_o, DomainPoint::new3(x, y, exit_z));
                    ctx.write(4, flux, DomainPoint::new2(x, y), v);
                }
            }
        }));
    }
    let ity_all = ity.clone();
    let absorb = b.task("absorb", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let total: f64 = ity_all.iter().map(|&f| ctx.read::<f64>(1, f, p)).sum();
            let v: f64 = ctx.read(0, u, p);
            ctx.write(0, u, p, v + EPS * total / 8.0);
        }
    });

    // ---- Launches ----
    let tile_domain = Domain::Rect3(Rect::new3(
        (0, 0, 0),
        (tiles.0 as i64 - 1, tiles.1 as i64 - 1, tiles.2 as i64 - 1),
    ));
    let cells = config.tile_cells() as f64;
    let fluid_time = |share: f64| {
        CostSpec::Uniform(SimTime::from_secs_f64(share * cells / config.fluid_cells_per_second))
    };
    let sweep_time = CostSpec::Uniform(SimTime::from_secs_f64(cells / config.dom_cells_per_second));
    let freq = |partition, functor, privilege, fields: Vec<FieldId>| RegionReq {
        partition,
        functor,
        privilege,
        fields,
        tree: fluid.tree,
        field_space: ffs,
    };

    b.index_launch(IndexLaunchDesc {
        task: init_fluid,
        domain: tile_domain.clone(),
        reqs: vec![freq(f_blocks, id3, Privilege::Write, vec![])],
        scalars: vec![],
        cost: fluid_time(0.3),
        shard: Some(shard.clone()),
    });
    if let Some((preg, ppart)) = &part {
        b.index_launch(IndexLaunchDesc {
            task: init_particles,
            domain: tile_domain.clone(),
            reqs: vec![RegionReq {
                partition: *ppart,
                functor: id3,
                privilege: Privilege::Write,
                fields: vec![],
                tree: preg.tree,
                field_space: sfs,
            }],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::us(20)),
            shard: Some(shard.clone()),
        });
    }
    b.start_timing();
    let stages = config.fluid_stages.max(1);
    for _ in 0..config.iterations {
        for _ in 0..stages {
            b.index_launch(IndexLaunchDesc {
                task: fluid_step,
                domain: tile_domain.clone(),
                reqs: vec![
                    freq(f_halo, id3, Privilege::Read, vec![u]),
                    freq(f_blocks, id3, Privilege::ReadWrite, vec![unew]),
                ],
                scalars: vec![],
                cost: fluid_time(0.6 / stages as f64),
                shard: Some(shard.clone()),
            });
            b.index_launch(IndexLaunchDesc {
                task: fluid_swap,
                domain: tile_domain.clone(),
                reqs: vec![freq(f_blocks, id3, Privilege::ReadWrite, vec![])],
                scalars: vec![],
                cost: fluid_time(0.2 / stages as f64),
                shard: Some(shard.clone()),
            });
        }
        if let Some((preg, ppart)) = &part {
            b.index_launch(IndexLaunchDesc {
                task: advect,
                domain: tile_domain.clone(),
                reqs: vec![
                    RegionReq {
                        partition: *ppart,
                        functor: id3,
                        privilege: Privilege::ReadWrite,
                        fields: vec![],
                        tree: preg.tree,
                        field_space: sfs,
                    },
                    freq(f_blocks, id3, Privilege::Read, vec![u]),
                ],
                scalars: vec![],
                cost: CostSpec::Uniform(SimTime::from_secs_f64(
                    config.particles_per_tile as f64 / 2.0e7,
                )),
                shard: Some(shard.clone()),
            });
        }
        if config.dom {
            for (o, dir) in OCTANTS.iter().enumerate() {
                // Boundary fills for the three flux regions.
                for (axis, (reg, partn)) in [
                    (0usize, &fx_regions[o]),
                    (1, &fy_regions[o]),
                    (2, &fz_regions[o]),
                ] {
                    let (da, db) = match axis {
                        0 => (tiles.1, tiles.2),
                        1 => (tiles.0, tiles.2),
                        _ => (tiles.0, tiles.1),
                    };
                    let _ = dir;
                    b.index_launch(IndexLaunchDesc {
                        task: dom_bc,
                        domain: Domain::Rect2(Rect::new2(
                            (0, 0),
                            (da as i64 - 1, db as i64 - 1),
                        )),
                        reqs: vec![RegionReq {
                            partition: *partn,
                            functor: id2,
                            privilege: Privilege::Write,
                            fields: vec![],
                            tree: reg.tree,
                            field_space: pfs,
                        }],
                        scalars: vec![],
                        cost: CostSpec::Uniform(SimTime::us(15)),
                        shard: Some(shard.clone()),
                    });
                }
                // Wavefront sweeps: sparse diagonal launch domains with
                // the paper's plane-projection functors.
                for slice in wavefronts(tiles, *dir) {
                    let slice_domain = Domain::sparse(slice);
                    b.index_launch(IndexLaunchDesc {
                        task: sweep_tasks[o],
                        domain: slice_domain,
                        reqs: vec![
                            RegionReq {
                                partition: r_blocks,
                                functor: id3,
                                privilege: Privilege::ReadWrite,
                                fields: vec![ity[o]],
                                tree: rad.tree,
                                field_space: rfs,
                            },
                            freq(f_blocks, id3, Privilege::Read, vec![u]),
                            RegionReq {
                                partition: fx_regions[o].1,
                                functor: swiz_yz,
                                privilege: Privilege::ReadWrite,
                                fields: vec![],
                                tree: fx_regions[o].0.tree,
                                field_space: pfs,
                            },
                            RegionReq {
                                partition: fy_regions[o].1,
                                functor: swiz_xz,
                                privilege: Privilege::ReadWrite,
                                fields: vec![],
                                tree: fy_regions[o].0.tree,
                                field_space: pfs,
                            },
                            RegionReq {
                                partition: fz_regions[o].1,
                                functor: swiz_xy,
                                privilege: Privilege::ReadWrite,
                                fields: vec![],
                                tree: fz_regions[o].0.tree,
                                field_space: pfs,
                            },
                        ],
                        scalars: vec![],
                        cost: sweep_time.clone(),
                        shard: Some(shard.clone()),
                    });
                }
            }
            b.index_launch(IndexLaunchDesc {
                task: absorb,
                domain: tile_domain.clone(),
                reqs: vec![
                    freq(f_blocks, id3, Privilege::ReadWrite, vec![u]),
                    RegionReq {
                        partition: r_blocks,
                        functor: id3,
                        privilege: Privilege::Read,
                        fields: vec![],
                        tree: rad.tree,
                        field_space: rfs,
                    },
                ],
                scalars: vec![],
                cost: fluid_time(0.2),
                shard: Some(shard.clone()),
            });
        }
    }

    SoleilApp {
        program: b.build(),
        config: config.clone(),
        u,
        fluid_tree: fluid.tree,
        ity,
        rad_tree: rad.tree,
        ppos: (px_, py_, pz_),
        part_tree: part.as_ref().map(|(r, _)| r.tree),
    }
}

/// Throughput in iterations per second.
pub fn throughput(config: &SoleilConfig, report: &RunReport) -> f64 {
    config.iterations as f64 / report.elapsed.as_secs_f64()
}

/// Sequential reference: final fluid field `u` (row-major x,y,z).
pub fn reference(config: &SoleilConfig) -> Vec<f64> {
    let (gx, gy, gz) = config.grid();
    let idx = |x: i64, y: i64, z: i64| ((x * gy + y) * gz + z) as usize;
    let n = (gx * gy * gz) as usize;
    let mut ufield: Vec<f64> = (0..n)
        .map(|k| {
            let k = k as i64;
            let (x, y, z) = (k / (gy * gz), (k / gz) % gy, k % gz);
            ((x * 31 + y * 17 + z * 7) % 11) as f64 / 11.0
        })
        .collect();
    let mut ity = vec![vec![0.0f64; n]; 8];
    for _ in 0..config.iterations {
        // Fluid diffusion sub-stages.
        for _ in 0..config.fluid_stages.max(1) {
            let mut unew = ufield.clone();
            for x in 0..gx {
                for y in 0..gy {
                    for z in 0..gz {
                        let c = ufield[idx(x, y, z)];
                        let mut acc = 0.0;
                        for (dx, dy, dz) in
                            [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)]
                        {
                            let (qx, qy, qz) = (x + dx, y + dy, z + dz);
                            if qx >= 0 && qx < gx && qy >= 0 && qy < gy && qz >= 0 && qz < gz {
                                acc += ufield[idx(qx, qy, qz)] - c;
                            }
                        }
                        unew[idx(x, y, z)] = c + NU * acc;
                    }
                }
            }
            ufield = unew;
        }
        // DOM sweeps (particles don't affect u).
        if config.dom {
            for (o, dir) in OCTANTS.iter().enumerate() {
                let xs: Vec<i64> =
                    if dir.0 > 0 { (0..gx).collect() } else { (0..gx).rev().collect() };
                let ys: Vec<i64> =
                    if dir.1 > 0 { (0..gy).collect() } else { (0..gy).rev().collect() };
                let zs: Vec<i64> =
                    if dir.2 > 0 { (0..gz).collect() } else { (0..gz).rev().collect() };
                for &x in &xs {
                    for &y in &ys {
                        for &z in &zs {
                            let up = |qx: i64, qy: i64, qz: i64| -> f64 {
                                if qx < 0 || qx >= gx || qy < 0 || qy >= gy || qz < 0 || qz >= gz {
                                    0.0
                                } else {
                                    ity[o][idx(qx, qy, qz)]
                                }
                            };
                            let in_x = up(x - dir.0, y, z);
                            let in_y = up(x, y - dir.1, z);
                            let in_z = up(x, y, z - dir.2);
                            ity[o][idx(x, y, z)] = (in_x + in_y + in_z) / 3.0 * SIGMA
                                + EMISS * ufield[idx(x, y, z)];
                        }
                    }
                }
            }
            for k in 0..n {
                let total: f64 = (0..8).map(|o| ity[o][k]).sum();
                ufield[k] += EPS * total / 8.0;
            }
        }
    }
    ufield
}

/// Extract the final fluid `u` grid from a validation run.
pub fn extract_u(app: &SoleilApp, report: &RunReport) -> Vec<f64> {
    let store = report.store.as_ref().expect("validation mode");
    let forest = &app.program.forest;
    let (gx, gy, gz) = app.config.grid();
    let mut out = vec![f64::NAN; (gx * gy * gz) as usize];
    let root = forest.tree_root(app.fluid_tree);
    let blocks = forest.space(root).partitions[0];
    for &space in forest.partition(blocks).children.values() {
        if let Some(inst) = store.get((app.fluid_tree, space)) {
            for p in forest.domain(space).iter() {
                out[((p.x() * gy + p.y()) * gz + p.z()) as usize] = inst.get::<f64>(app.u, p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_runtime::{execute, RuntimeConfig};

    #[test]
    fn wavefronts_cover_tiles_without_duplicates() {
        for dir in OCTANTS {
            let fronts = wavefronts((3, 2, 2), dir);
            assert_eq!(fronts.len(), 5);
            let mut all: Vec<DomainPoint> = fronts.iter().flatten().copied().collect();
            assert_eq!(all.len(), 12);
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 12);
            // No duplicate (x,y), (y,z), (x,z) pairs within a slice — the
            // paper's safety condition for the plane projections.
            for slice in &fronts {
                for take in [[0usize, 1], [1, 2], [0, 2]] {
                    let mut pairs: Vec<(i64, i64)> = slice
                        .iter()
                        .map(|p| (p.coord(take[0]), p.coord(take[1])))
                        .collect();
                    let len = pairs.len();
                    pairs.sort_unstable();
                    pairs.dedup();
                    assert_eq!(pairs.len(), len);
                }
            }
        }
    }

    #[test]
    fn tile_grid_is_balanced() {
        assert_eq!(SoleilConfig::tile_grid(8), (2, 2, 2));
        assert_eq!(SoleilConfig::tile_grid(64), (4, 4, 4));
        let (a, b, c) = SoleilConfig::tile_grid(32);
        assert_eq!(a * b * c, 32);
        assert!(a.max(b).max(c) <= 4 * a.min(b).min(c));
    }

    #[test]
    fn fluid_only_validates() {
        let mut config = SoleilConfig::tiny((2, 2, 2));
        config.dom = false;
        config.particles = false;
        let want = reference(&config);
        for (dcr, idx) in [(true, true), (false, false)] {
            let app = build(&config);
            let report = execute(&app.program, &RuntimeConfig::validate(4).with_axes(dcr, idx));
            let got = extract_u(&app, &report);
            for (k, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-12, "cell {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn full_physics_validates_against_reference() {
        let config = SoleilConfig::tiny((2, 2, 2));
        let want = reference(&config);
        for (dcr, idx) in [(true, true), (true, false), (false, true)] {
            let app = build(&config);
            let report = execute(&app.program, &RuntimeConfig::validate(4).with_axes(dcr, idx));
            let got = extract_u(&app, &report);
            for (k, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (a - b).abs() < 1e-12,
                    "cell {k}: {a} vs {b} (dcr={dcr} idx={idx})"
                );
            }
        }
    }

    #[test]
    fn dom_needs_dynamic_checks() {
        // The sweeps' swizzle functors are statically undecidable; with
        // checks enabled the run pays dynamic-check time, and the checks
        // pass (the program executes as index launches).
        let config = SoleilConfig::tiny((2, 2, 2));
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::validate(4));
        assert!(report.dynamic_check_time > SimTime::ZERO);
        let app2 = build(&config);
        let no_checks =
            execute(&app2.program, &RuntimeConfig::validate(4).with_dynamic_checks(false));
        assert_eq!(no_checks.dynamic_check_time, SimTime::ZERO);
        // Identical results either way.
        assert_eq!(extract_u(&app, &report), {
            
            extract_u(&app2, &no_checks)
        });
    }

    #[test]
    fn asymmetric_tile_grid_validates() {
        let config = SoleilConfig::tiny((3, 2, 1));
        let want = reference(&config);
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::validate(3));
        let got = extract_u(&app, &report);
        for (k, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-12, "cell {k}: {a} vs {b}");
        }
    }

    #[test]
    fn scale_mode_runs() {
        let config = SoleilConfig {
            mode: ExecutionMode::Scale,
            ..SoleilConfig::tiny((2, 2, 2))
        };
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::scale(8));
        assert!(report.makespan > SimTime::ZERO);
        assert!(throughput(&config, &report) > 0.0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use il_runtime::{execute, RuntimeConfig};

    #[test]
    fn all_octants_sweep_directionally() {
        // For each octant, the first wavefront must contain exactly the
        // corner tile the sweep starts from.
        let tiles = (2, 2, 2);
        for dir in OCTANTS {
            let fronts = wavefronts(tiles, dir);
            assert_eq!(fronts[0].len(), 1, "first wavefront is the corner");
            let corner = fronts[0][0];
            let expect = DomainPoint::new3(
                if dir.0 > 0 { 0 } else { 1 },
                if dir.1 > 0 { 0 } else { 1 },
                if dir.2 > 0 { 0 } else { 1 },
            );
            assert_eq!(corner, expect, "octant {dir:?}");
        }
    }

    #[test]
    fn single_tile_grid_validates() {
        // Degenerate machine: all 8 octants sweep a single tile.
        let config = SoleilConfig::tiny((1, 1, 1));
        let want = reference(&config);
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::validate(1));
        let got = extract_u(&app, &report);
        for (k, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-12, "cell {k}: {a} vs {b}");
        }
    }

    #[test]
    fn fluid_stages_change_the_math_consistently() {
        // 1 stage vs 3 stages are different computations; both validate.
        for stages in [1usize, 3] {
            let config = SoleilConfig {
                fluid_stages: stages,
                dom: false,
                particles: false,
                ..SoleilConfig::tiny((2, 1, 1))
            };
            let want = reference(&config);
            let app = build(&config);
            let report = execute(&app.program, &RuntimeConfig::validate(2));
            let got = extract_u(&app, &report);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sweep_launches_use_sparse_domains() {
        let config = SoleilConfig::tiny((2, 2, 2));
        let app = build(&config);
        let sparse_ops = app
            .program
            .ops
            .iter()
            .filter(|op| matches!(op.launch().domain, Domain::Sparse { .. }))
            .count();
        // 8 octants × (2+2+2-2) wavefronts × iterations.
        assert_eq!(sparse_ops, 8 * 4 * config.iterations);
    }
}
