//! Stencil: the PRK 2-D radius-2 star stencil (§6.1).
//!
//! The grid region holds two fields, `fin` and `fout`. Per iteration:
//!
//! 1. `stencil` — reads `fin` through the *aliased halo* partition
//!    (each tile grown by the stencil radius) and read-writes `fout`
//!    through the disjoint block partition: `fout += Σ w(d)·fin(p+d)`;
//! 2. `increment` — read-writes `fin` through the blocks: `fin += 1`.
//!
//! Both launches use identity functors and are statically verified. The
//! halo reads against block writes are non-interfering because the two
//! requirements touch disjoint *fields* — per-field privileges, as in
//! Legion.

use il_geometry::{Domain, DomainPoint, Rect};
use il_machine::SimTime;
use il_region::{
    block_partition_2d, halo_partition_2d, FieldId, FieldKind, FieldSpaceDesc, Privilege,
    RegionTreeId,
};
use il_runtime::{
    CostSpec, ExecutionMode, IndexLaunchDesc, Program, ProgramBuilder, RegionReq, RunReport,
};

/// Stencil radius (PRK default star radius 2).
pub const RADIUS: i64 = 2;

/// Stencil problem configuration.
#[derive(Clone, Debug)]
pub struct StencilConfig {
    /// Grid size (cells per side along x and y).
    pub grid: (i64, i64),
    /// Tile grid (tiles along x and y); tiles.0 × tiles.1 = launch size.
    pub tiles: (usize, usize),
    /// Timed iterations.
    pub iterations: usize,
    /// Execution mode.
    pub mode: ExecutionMode,
    /// Simulated per-GPU rate in cells per second.
    pub cells_per_second: f64,
}

impl StencilConfig {
    /// Square-ish tile grid for `n` tiles.
    fn tile_grid(n: usize) -> (usize, usize) {
        let mut tx = (n as f64).sqrt() as usize;
        while tx > 1 && !n.is_multiple_of(tx) {
            tx -= 1;
        }
        (tx.max(1), n / tx.max(1))
    }

    /// The paper's weak scaling: 9×10⁸ cells per node.
    pub fn weak(nodes: usize) -> Self {
        let tiles = Self::tile_grid(nodes);
        let per_node = 30_000i64; // 30_000² = 9×10⁸ cells per node
        StencilConfig {
            grid: (per_node * tiles.0 as i64, per_node * tiles.1 as i64),
            tiles,
            iterations: 10,
            mode: ExecutionMode::Scale,
            cells_per_second: 1.0e10,
        }
    }

    /// The paper's strong scaling: 9×10⁸ cells total.
    pub fn strong(nodes: usize) -> Self {
        let tiles = Self::tile_grid(nodes);
        StencilConfig {
            grid: (30_000, 30_000),
            tiles,
            iterations: 10,
            mode: ExecutionMode::Scale,
            cells_per_second: 1.0e10,
        }
    }

    /// A tiny validation-mode problem.
    pub fn tiny(tiles: (usize, usize)) -> Self {
        StencilConfig {
            grid: (12, 12),
            tiles,
            iterations: 3,
            mode: ExecutionMode::Validate,
            cells_per_second: 1.0e10,
        }
    }

    /// Total cells.
    pub fn total_cells(&self) -> u64 {
        (self.grid.0 * self.grid.1) as u64
    }

    /// Cells per tile (uniform split assumed for costs).
    pub fn cells_per_tile(&self) -> f64 {
        self.total_cells() as f64 / (self.tiles.0 * self.tiles.1) as f64
    }
}

/// A built stencil program plus validation handles.
pub struct StencilApp {
    /// The runtime program.
    pub program: Program,
    /// Configuration.
    pub config: StencilConfig,
    /// Input field.
    pub fin: FieldId,
    /// Output field.
    pub fout: FieldId,
    /// Grid region tree.
    pub tree: RegionTreeId,
}

/// Star-stencil weight for offset distance `d` (1..=RADIUS).
fn weight(d: i64) -> f64 {
    1.0 / (2.0 * RADIUS as f64 * d as f64)
}

/// Build the stencil program.
pub fn build(config: &StencilConfig) -> StencilApp {
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let fin = fsd.add("fin", FieldKind::F64);
    let fout = fsd.add("fout", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let grid: Domain = Rect::new2((0, 0), (config.grid.0 - 1, config.grid.1 - 1)).into();
    let region = b.forest.create_region(grid.clone(), fs);
    let blocks = block_partition_2d(&mut b.forest, region.space, config.tiles);
    let halo = halo_partition_2d(&mut b.forest, region.space, config.tiles, RADIUS);

    let ident = b.identity_functor();
    let (gx, gy) = config.grid;

    let init = b.task("init", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.write(0, fin, p, (p.x() + p.y()) as f64);
            ctx.write(0, fout, p, 0.0);
        }
    });
    let stencil = b.task("stencil", move |ctx| {
        // Interior points only (the PRK stencil skips the grid border).
        let pts: Vec<_> = ctx
            .domain(1)
            .iter()
            .filter(|p| {
                p.x() >= RADIUS && p.x() < gx - RADIUS && p.y() >= RADIUS && p.y() < gy - RADIUS
            })
            .collect();
        for p in pts {
            let mut acc: f64 = ctx.read(1, fout, p);
            for d in 1..=RADIUS {
                let w = weight(d);
                acc += w * ctx.read::<f64>(0, fin, DomainPoint::new2(p.x() + d, p.y()));
                acc += w * ctx.read::<f64>(0, fin, DomainPoint::new2(p.x() - d, p.y()));
                acc += w * ctx.read::<f64>(0, fin, DomainPoint::new2(p.x(), p.y() + d));
                acc += w * ctx.read::<f64>(0, fin, DomainPoint::new2(p.x(), p.y() - d));
            }
            ctx.write(1, fout, p, acc);
        }
    });
    let increment = b.task("increment", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let v: f64 = ctx.read(0, fin, p);
            ctx.write(0, fin, p, v + 1.0);
        }
    });

    let domain = Domain::Rect2(Rect::new2(
        (0, 0),
        (config.tiles.0 as i64 - 1, config.tiles.1 as i64 - 1),
    ));
    let cell_time = |share: f64| {
        CostSpec::Uniform(SimTime::from_secs_f64(
            config.cells_per_tile() * share / config.cells_per_second,
        ))
    };

    b.index_launch(IndexLaunchDesc {
        task: init,
        domain: domain.clone(),
        reqs: vec![RegionReq {
            partition: blocks,
            functor: ident,
            privilege: Privilege::Write,
            fields: vec![],
            tree: region.tree,
            field_space: fs,
        }],
        scalars: vec![],
        cost: cell_time(0.2),
        shard: None,
    });
    b.start_timing();
    for _ in 0..config.iterations {
        b.index_launch(IndexLaunchDesc {
            task: stencil,
            domain: domain.clone(),
            reqs: vec![
                RegionReq {
                    partition: halo,
                    functor: ident,
                    privilege: Privilege::Read,
                    fields: vec![fin],
                    tree: region.tree,
                    field_space: fs,
                },
                RegionReq {
                    partition: blocks,
                    functor: ident,
                    privilege: Privilege::ReadWrite,
                    fields: vec![fout],
                    tree: region.tree,
                    field_space: fs,
                },
            ],
            scalars: vec![],
            cost: cell_time(0.8),
            shard: None,
        });
        b.index_launch(IndexLaunchDesc {
            task: increment,
            domain: domain.clone(),
            reqs: vec![RegionReq {
                partition: blocks,
                functor: ident,
                privilege: Privilege::ReadWrite,
                fields: vec![fin],
                tree: region.tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: cell_time(0.2),
            shard: None,
        });
    }

    StencilApp { program: b.build(), config: config.clone(), fin, fout, tree: region.tree }
}

/// Throughput in cells per second.
pub fn throughput(config: &StencilConfig, report: &RunReport) -> f64 {
    config.total_cells() as f64 * config.iterations as f64 / report.elapsed.as_secs_f64()
}

/// Sequential reference: final `fout` grid.
pub fn reference(config: &StencilConfig) -> Vec<f64> {
    let (gx, gy) = config.grid;
    let idx = |x: i64, y: i64| (x * gy + y) as usize;
    let mut fin: Vec<f64> = (0..gx * gy).map(|k| (k / gy + k % gy) as f64).collect();
    let mut fout = vec![0.0f64; (gx * gy) as usize];
    for _ in 0..config.iterations {
        for x in RADIUS..gx - RADIUS {
            for y in RADIUS..gy - RADIUS {
                let mut acc = fout[idx(x, y)];
                for d in 1..=RADIUS {
                    let w = weight(d);
                    acc += w * (fin[idx(x + d, y)] + fin[idx(x - d, y)]
                        + fin[idx(x, y + d)]
                        + fin[idx(x, y - d)]);
                }
                fout[idx(x, y)] = acc;
            }
        }
        for v in &mut fin {
            *v += 1.0;
        }
    }
    fout
}

/// Extract the final `fout` grid from a validation run.
pub fn extract_fout(app: &StencilApp, report: &RunReport) -> Vec<f64> {
    let store = report.store.as_ref().expect("validation mode");
    let forest = &app.program.forest;
    let (gx, gy) = app.config.grid;
    let mut out = vec![f64::NAN; (gx * gy) as usize];
    // Block subspaces: children of the first (disjoint) partition.
    let root = forest.tree_root(app.tree);
    let blocks = forest.space(root).partitions[0];
    for &space in forest.partition(blocks).children.values() {
        if let Some(inst) = store.get((app.tree, space)) {
            for p in forest.domain(space).iter() {
                out[(p.x() * gy + p.y()) as usize] = inst.get::<f64>(app.fout, p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_runtime::{execute, RuntimeConfig};

    #[test]
    fn validates_against_reference_all_configs() {
        let config = StencilConfig::tiny((2, 2));
        let want = reference(&config);
        for (dcr, idx) in [(true, true), (true, false), (false, true), (false, false)] {
            let app = build(&config);
            let report = execute(&app.program, &RuntimeConfig::validate(4).with_axes(dcr, idx));
            let got = extract_fout(&app, &report);
            for (k, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-9, "cell {k}: {a} vs {b} (dcr={dcr} idx={idx})");
            }
        }
    }

    #[test]
    fn uneven_tiles_validate() {
        let config = StencilConfig::tiny((3, 2));
        let want = reference(&config);
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::validate(3));
        let got = extract_fout(&app, &report);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn statically_safe() {
        let app = build(&StencilConfig::tiny((2, 2)));
        let report = execute(&app.program, &RuntimeConfig::validate(2));
        assert_eq!(report.dynamic_check_time, il_machine::SimTime::ZERO);
    }

    #[test]
    fn halo_exchange_moves_bytes() {
        let config = StencilConfig::tiny((2, 2));
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::validate(4));
        // fin strips cross nodes every iteration.
        assert!(report.bytes > 0);
    }

    #[test]
    fn presets() {
        let w = StencilConfig::weak(4);
        assert_eq!(w.total_cells(), 4 * 900_000_000);
        let s = StencilConfig::strong(16);
        assert_eq!(s.total_cells(), 900_000_000);
        assert_eq!(s.tiles.0 * s.tiles.1, 16);
        let odd = StencilConfig::tile_grid(6);
        assert_eq!(odd.0 * odd.1, 6);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use il_runtime::{execute, RuntimeConfig};

    #[test]
    fn single_tile_has_no_exchange() {
        let config = StencilConfig::tiny((1, 1));
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::validate(1));
        assert_eq!(report.messages, 0);
        let got = extract_fout(&app, &report);
        let want = reference(&config);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn tall_thin_tiles() {
        // Tiles narrower than the stencil radius still validate (halo
        // clamping + cross-tile reads through multiple neighbors).
        let config = StencilConfig {
            grid: (12, 12),
            tiles: (6, 1),
            iterations: 2,
            mode: il_runtime::ExecutionMode::Validate,
            cells_per_second: 1e10,
        };
        let app = build(&config);
        let report = execute(&app.program, &RuntimeConfig::validate(3));
        let got = extract_fout(&app, &report);
        let want = reference(&config);
        for (k, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-9, "cell {k}: {a} vs {b}");
        }
    }

    #[test]
    fn weights_sum_matches_prk_star() {
        // Σ over the 4 arms of Σ_{d=1..R} w(d) = 4 × Σ 1/(2Rd).
        let total: f64 = (1..=RADIUS).map(|d| 4.0 * weight(d)).sum();
        let expect: f64 = (1..=RADIUS).map(|d| 2.0 / (RADIUS as f64 * d as f64)).sum();
        assert!((total - expect).abs() < 1e-12);
    }
}
