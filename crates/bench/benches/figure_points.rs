//! Representative points of every scaling figure as wall-clock
//! benchmarks on the il-testkit runner.
//!
//! Each benchmark runs the *full* pipeline — program construction, hybrid
//! safety analysis, expansion, dependence oracle, and discrete-event
//! execution — for one (figure, node count, configuration) point. These
//! measure the real cost of regenerating the figures (the simulated
//! throughputs themselves come from `--bin figures`).
//!
//! Under `cargo test` this runs in smoke mode (one iteration per point);
//! `cargo bench` (or `--full` / `IL_BENCH_FULL=1`) takes measured
//! median-of-N timings.

use il_apps::{circuit, soleil, stencil};
use il_runtime::{execute, RuntimeConfig};
use il_testkit::BenchRunner;

fn bench_circuit_points(runner: &mut BenchRunner) {
    for (label, dcr, idx) in
        [("dcr_idx", true, true), ("dcr_noidx", true, false), ("nodcr_idx", false, true)]
    {
        for nodes in [16usize, 64] {
            let config = circuit::CircuitConfig {
                iterations: 3,
                ..circuit::CircuitConfig::weak(nodes, 1)
            };
            runner.bench(&format!("fig4_fig5_circuit/{label}/{nodes}"), || {
                let app = circuit::build(&config);
                let rt = RuntimeConfig::scale(nodes).with_axes(dcr, idx);
                execute(&app.program, &rt).makespan
            });
        }
    }
}

fn bench_fig6_overdecomposed(runner: &mut BenchRunner) {
    for idx in [true, false] {
        let config = circuit::CircuitConfig {
            iterations: 3,
            ..circuit::CircuitConfig::weak(64, 10)
        };
        runner.bench(&format!("fig6_overdecomposed/dcr64x10/{idx}"), || {
            let app = circuit::build(&config);
            let rt = RuntimeConfig::scale(64).with_axes(true, idx).with_tracing(false);
            execute(&app.program, &rt).makespan
        });
    }
}

fn bench_stencil_points(runner: &mut BenchRunner) {
    for nodes in [16usize, 64] {
        let config = stencil::StencilConfig {
            iterations: 3,
            ..stencil::StencilConfig::weak(nodes)
        };
        runner.bench(&format!("fig7_fig8_stencil/dcr_idx_weak/{nodes}"), || {
            let app = stencil::build(&config);
            execute(&app.program, &RuntimeConfig::scale(nodes)).makespan
        });
    }
}

fn bench_soleil_points(runner: &mut BenchRunner) {
    let fluid = soleil::SoleilConfig { iterations: 3, ..soleil::SoleilConfig::fluid_weak(16) };
    runner.bench("fig9_fig10_soleil/fluid_weak_16", || {
        let app = soleil::build(&fluid);
        execute(&app.program, &RuntimeConfig::scale(16)).makespan
    });
    for checks in [true, false] {
        let config = soleil::SoleilConfig { iterations: 3, ..soleil::SoleilConfig::full_weak(8) };
        runner.bench(&format!("fig9_fig10_soleil/full_weak_8_checks/{checks}"), || {
            let app = soleil::build(&config);
            let rt = RuntimeConfig::scale(8).with_dynamic_checks(checks);
            execute(&app.program, &rt).makespan
        });
    }
}

fn main() {
    let mut runner = BenchRunner::from_args("figure_points");
    bench_circuit_points(&mut runner);
    bench_fig6_overdecomposed(&mut runner);
    bench_stencil_points(&mut runner);
    bench_soleil_points(&mut runner);
    runner.finish();
}
