//! Representative points of every scaling figure as Criterion
//! benchmarks.
//!
//! Each benchmark runs the *full* pipeline — program construction, hybrid
//! safety analysis, expansion, dependence oracle, and discrete-event
//! execution — for one (figure, node count, configuration) point. These
//! measure the real cost of regenerating the figures (the simulated
//! throughputs themselves come from `--bin figures`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use il_apps::{circuit, soleil, stencil};
use il_runtime::{execute, RuntimeConfig};

fn bench_circuit_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_fig5_circuit");
    group.sample_size(10);
    for (label, dcr, idx) in [("dcr_idx", true, true), ("dcr_noidx", true, false), ("nodcr_idx", false, true)] {
        for nodes in [16usize, 64] {
            group.bench_with_input(
                BenchmarkId::new(label, nodes),
                &nodes,
                |b, &nodes| {
                    let config = circuit::CircuitConfig {
                        iterations: 3,
                        ..circuit::CircuitConfig::weak(nodes, 1)
                    };
                    b.iter(|| {
                        let app = circuit::build(&config);
                        let rt = RuntimeConfig::scale(nodes).with_axes(dcr, idx);
                        execute(&app.program, &rt).makespan
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_fig6_overdecomposed(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_overdecomposed");
    group.sample_size(10);
    for idx in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("dcr64x10", idx),
            &idx,
            |b, &idx| {
                let config = circuit::CircuitConfig {
                    iterations: 3,
                    ..circuit::CircuitConfig::weak(64, 10)
                };
                b.iter(|| {
                    let app = circuit::build(&config);
                    let rt = RuntimeConfig::scale(64).with_axes(true, idx).with_tracing(false);
                    execute(&app.program, &rt).makespan
                });
            },
        );
    }
    group.finish();
}

fn bench_stencil_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_fig8_stencil");
    group.sample_size(10);
    for nodes in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("dcr_idx_weak", nodes), &nodes, |b, &nodes| {
            let config = stencil::StencilConfig {
                iterations: 3,
                ..stencil::StencilConfig::weak(nodes)
            };
            b.iter(|| {
                let app = stencil::build(&config);
                execute(&app.program, &RuntimeConfig::scale(nodes)).makespan
            });
        });
    }
    group.finish();
}

fn bench_soleil_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_fig10_soleil");
    group.sample_size(10);
    group.bench_function("fluid_weak_16", |b| {
        let config = soleil::SoleilConfig {
            iterations: 3,
            ..soleil::SoleilConfig::fluid_weak(16)
        };
        b.iter(|| {
            let app = soleil::build(&config);
            execute(&app.program, &RuntimeConfig::scale(16)).makespan
        });
    });
    for checks in [true, false] {
        group.bench_with_input(BenchmarkId::new("full_weak_8_checks", checks), &checks, |b, &checks| {
            let config = soleil::SoleilConfig {
                iterations: 3,
                ..soleil::SoleilConfig::full_weak(8)
            };
            b.iter(|| {
                let app = soleil::build(&config);
                let rt = RuntimeConfig::scale(8).with_dynamic_checks(checks);
                execute(&app.program, &rt).makespan
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_circuit_points,
    bench_fig6_overdecomposed,
    bench_stencil_points,
    bench_soleil_points
);
criterion_main!(benches);
