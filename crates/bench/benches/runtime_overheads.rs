//! Ablation microbenchmarks of the runtime's own costs (real wall-clock,
//! not simulated): hybrid analysis per launch, program expansion +
//! dependence oracle, and the broadcast-tree schedule — the pieces whose
//! asymptotics DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use il_analysis::{analyze_launch, LaunchArg, ProjExpr};
use il_apps::stencil;
use il_geometry::Domain;
use il_machine::binomial_children;
use il_region::{equal_partition_1d, FieldSpaceDesc, Privilege, RegionForest};
use il_runtime::{expand_program, RuntimeConfig};

fn bench_hybrid_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid_analysis");
    let mut forest = RegionForest::new();
    let fs = forest.create_field_space(FieldSpaceDesc::new());
    let region = forest.create_region(Domain::range(100_000), fs);
    let partition = equal_partition_1d(&mut forest, region.space, 1024);
    // Static path: O(1) regardless of |D|.
    group.bench_function("static_identity_1024", |b| {
        let args = [LaunchArg {
            partition,
            functor: ProjExpr::Identity,
            privilege: Privilege::ReadWrite,
            fields: vec![],
        }];
        b.iter(|| analyze_launch(&forest, &Domain::range(1024), &args));
    });
    // Dynamic path: O(|D|).
    for &n in &[256i64, 1024] {
        group.bench_with_input(BenchmarkId::new("dynamic_opaque", n), &n, |b, &n| {
            let args = [LaunchArg {
                partition,
                functor: ProjExpr::opaque(|p| p),
                privilege: Privilege::ReadWrite,
                fields: vec![],
            }];
            b.iter(|| {
                let v = analyze_launch(&forest, &Domain::range(n), &args);
                if let il_analysis::HybridVerdict::NeedsDynamic(plan) = v {
                    plan.run().unwrap()
                } else {
                    panic!("expected dynamic plan")
                }
            });
        });
    }
    group.finish();
}

fn bench_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("expansion_and_oracle");
    group.sample_size(10);
    for nodes in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("stencil_weak", nodes), &nodes, |b, &nodes| {
            let config = stencil::StencilConfig {
                iterations: 5,
                ..stencil::StencilConfig::weak(nodes)
            };
            let app = stencil::build(&config);
            let rt = RuntimeConfig::scale(nodes);
            b.iter(|| expand_program(&app.program, &rt).len());
        });
    }
    group.finish();
}

fn bench_broadcast_tree(c: &mut Criterion) {
    c.bench_function("binomial_children_1024", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for me in 0..1024 {
                total += binomial_children(0, me, 1024).len();
            }
            assert_eq!(total, 1023);
            total
        });
    });
}

criterion_group!(benches, bench_hybrid_analysis, bench_expansion, bench_broadcast_tree);
criterion_main!(benches);
