//! Ablation microbenchmarks of the runtime's own costs (real wall-clock,
//! not simulated): hybrid analysis per launch, program expansion +
//! dependence oracle, and the broadcast-tree schedule — the pieces whose
//! asymptotics DESIGN.md calls out. Runs on the il-testkit runner:
//! smoke mode under `cargo test`, measured under `cargo bench`.

use il_analysis::{analyze_launch, LaunchArg, ProjExpr};
use il_apps::stencil;
use il_geometry::Domain;
use il_machine::binomial_children;
use il_region::{equal_partition_1d, FieldSpaceDesc, Privilege, RegionForest};
use il_runtime::{expand_program, RuntimeConfig};
use il_testkit::BenchRunner;

fn bench_hybrid_analysis(runner: &mut BenchRunner) {
    let mut forest = RegionForest::new();
    let fs = forest.create_field_space(FieldSpaceDesc::new());
    let region = forest.create_region(Domain::range(100_000), fs);
    let partition = equal_partition_1d(&mut forest, region.space, 1024);
    // Static path: O(1) regardless of |D|.
    let args = [LaunchArg {
        partition,
        functor: ProjExpr::Identity,
        privilege: Privilege::ReadWrite,
        fields: vec![],
    }];
    runner.bench("hybrid_analysis/static_identity_1024", || {
        analyze_launch(&forest, &Domain::range(1024), &args)
    });
    // Dynamic path: O(|D|).
    for n in [256i64, 1024] {
        let args = [LaunchArg {
            partition,
            functor: ProjExpr::opaque(|p| p),
            privilege: Privilege::ReadWrite,
            fields: vec![],
        }];
        runner.bench(&format!("hybrid_analysis/dynamic_opaque/{n}"), || {
            let v = analyze_launch(&forest, &Domain::range(n), &args);
            if let il_analysis::HybridVerdict::NeedsDynamic(plan) = v {
                plan.run().unwrap()
            } else {
                panic!("expected dynamic plan")
            }
        });
    }
}

fn bench_expansion(runner: &mut BenchRunner) {
    for nodes in [16usize, 64] {
        let config = stencil::StencilConfig {
            iterations: 5,
            ..stencil::StencilConfig::weak(nodes)
        };
        let app = stencil::build(&config);
        let rt = RuntimeConfig::scale(nodes);
        runner.bench(&format!("expansion_and_oracle/stencil_weak/{nodes}"), || {
            expand_program(&app.program, &rt).len()
        });
    }
}

fn bench_broadcast_tree(runner: &mut BenchRunner) {
    runner.bench("binomial_children_1024", || {
        let mut total = 0usize;
        for me in 0..1024 {
            total += binomial_children(0, me, 1024).len();
        }
        assert_eq!(total, 1023);
        total
    });
}

fn main() {
    let mut runner = BenchRunner::from_args("runtime_overheads");
    bench_hybrid_analysis(&mut runner);
    bench_expansion(&mut runner);
    bench_broadcast_tree(&mut runner);
    runner.finish();
}
