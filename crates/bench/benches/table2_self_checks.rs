//! Table 2 as a wall-clock benchmark: dynamic self-check time for the
//! paper's four projection-functor classes at launch-domain sizes
//! 10³–10⁶, on the il-testkit runner (smoke under `cargo test`,
//! measured under `cargo bench`).
//!
//! Expected regime (paper, Piz Daint Xeon): identity at 10⁶ ≈ 1.3 ms,
//! quadratic at 10⁶ ≈ 2.4 ms, all rows linear in |D|.

use il_analysis::{self_check, ProjExpr};
use il_geometry::Domain;
use il_testkit::{BenchRunner, Throughput};

fn main() {
    let mut runner = BenchRunner::from_args("table2_self_checks");
    for n in [1_000i64, 10_000, 100_000, 1_000_000] {
        let domain = Domain::range(n);
        let colors = Domain::range(n + 16);
        let cases: Vec<(&str, ProjExpr)> = vec![
            ("identity", ProjExpr::Identity),
            ("linear", ProjExpr::linear(1, 3)),
            ("modular", ProjExpr::Modular { a: 1, b: 7, m: n }),
            ("quadratic", ProjExpr::Quadratic { a: 0, b: 1, c: 2 }),
        ];
        for (name, functor) in cases {
            runner.bench_throughput(&format!("{name}/{n}"), Throughput(n as u64), || {
                let report = self_check(&domain, &functor, &colors);
                assert!(report.is_safe());
                report.evals
            });
        }
    }
    runner.finish();
}
