//! Table 2 as a Criterion benchmark: dynamic self-check wall-clock time
//! for the paper's four projection-functor classes at launch-domain
//! sizes 10³–10⁶.
//!
//! Expected regime (paper, Piz Daint Xeon): identity at 10⁶ ≈ 1.3 ms,
//! quadratic at 10⁶ ≈ 2.4 ms, all rows linear in |D|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use il_analysis::{self_check, ProjExpr};
use il_geometry::Domain;

fn bench_self_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_self_checks");
    for &n in &[1_000i64, 10_000, 100_000, 1_000_000] {
        let domain = Domain::range(n);
        let colors = Domain::range(n + 16);
        let cases: Vec<(&str, ProjExpr)> = vec![
            ("identity", ProjExpr::Identity),
            ("linear", ProjExpr::linear(1, 3)),
            ("modular", ProjExpr::Modular { a: 1, b: 7, m: n }),
            ("quadratic", ProjExpr::Quadratic { a: 0, b: 1, c: 2 }),
        ];
        for (name, functor) in cases {
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let report = self_check(&domain, &functor, &colors);
                    assert!(report.is_safe());
                    report.evals
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_self_checks);
criterion_main!(benches);
