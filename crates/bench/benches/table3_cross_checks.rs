//! Table 3 as a Criterion benchmark: the linear-time multi-argument
//! cross-check for 2–5 arguments sharing one partition.
//!
//! The paper's cells scale linearly both left-to-right (|D|) and
//! top-to-bottom (#arguments); Criterion's throughput report makes both
//! trends visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use il_analysis::{cross_check, ArgCheck, ProjExpr};
use il_geometry::Domain;

fn bench_cross_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_cross_checks");
    let writer = ProjExpr::linear(2, 0);
    let reader = ProjExpr::linear(2, 1);
    for &n in &[1_000i64, 10_000, 100_000, 1_000_000] {
        let domain = Domain::range(n);
        // Launch domain is half the number of sub-collections, as in the
        // paper's setup.
        let colors = Domain::range(2 * n);
        for nargs in 2usize..=5 {
            group.throughput(Throughput::Elements(n as u64 * nargs as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{nargs}args"), n),
                &nargs,
                |b, &nargs| {
                    b.iter(|| {
                        let args: Vec<ArgCheck<'_>> = (0..nargs)
                            .map(|k| ArgCheck {
                                index: k,
                                functor: if k == 0 { &writer } else { &reader },
                                writes: k == 0,
                            })
                            .collect();
                        let report = cross_check(&domain, &args, &colors);
                        assert!(report.is_safe());
                        report.evals
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cross_checks);
criterion_main!(benches);
