//! Table 3 as a wall-clock benchmark: the linear-time multi-argument
//! cross-check for 2–5 arguments sharing one partition, on the
//! il-testkit runner (smoke under `cargo test`, measured under
//! `cargo bench`).
//!
//! The paper's cells scale linearly both left-to-right (|D|) and
//! top-to-bottom (#arguments); the throughput column makes both trends
//! visible.

use il_analysis::{cross_check, ArgCheck, ProjExpr};
use il_geometry::Domain;
use il_testkit::{BenchRunner, Throughput};

fn main() {
    let mut runner = BenchRunner::from_args("table3_cross_checks");
    let writer = ProjExpr::linear(2, 0);
    let reader = ProjExpr::linear(2, 1);
    for n in [1_000i64, 10_000, 100_000, 1_000_000] {
        let domain = Domain::range(n);
        // Launch domain is half the number of sub-collections, as in the
        // paper's setup.
        let colors = Domain::range(2 * n);
        for nargs in 2usize..=5 {
            let tput = Throughput(n as u64 * nargs as u64);
            runner.bench_throughput(&format!("{nargs}args/{n}"), tput, || {
                let args: Vec<ArgCheck<'_>> = (0..nargs)
                    .map(|k| ArgCheck {
                        index: k,
                        functor: if k == 0 { &writer } else { &reader },
                        writes: k == 0,
                    })
                    .collect();
                let report = cross_check(&domain, &args, &colors);
                assert!(report.is_safe());
                report.evals
            });
        }
    }
    runner.finish();
}
