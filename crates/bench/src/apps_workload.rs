//! Adaptive-workload sweep: what the PR 10 apps cost the analysis
//! machinery, written to `BENCH_PR10.json` by `figures -- apps`.
//!
//! Two sections:
//!
//! * **AMR regrid cadence** — the AMR app re-partitions its block
//!   structure every `steps_per_epoch` timesteps, which is exactly the
//!   workload that churns the launch-signature analysis cache and
//!   invalidates captured traces. The sweep holds the total timestep
//!   count fixed and varies the cadence, reporting trace
//!   capture/replay/invalidation counts and the analysis-cache hit rate
//!   at each point: short epochs never amortize a capture, long epochs
//!   replay almost everything.
//! * **Pagerank dynamic checks** — every pagerank update launch carries
//!   data-dependent opaque projection functors, so safety rides the
//!   dynamic bitmask-check path. The sweep expands the app at 10⁵+
//!   graph pieces and reports host-side functor-evaluation throughput
//!   (evaluations per second of analysis wall-clock), the quantity
//!   Tables 2–3 pin for synthetic functors, here measured end-to-end
//!   through a real launch pipeline.
//!
//! Counts (captures, replays, invalidations, cache hits, evals) are
//! pure functions of `(config)` and reproduce bit-for-bit; the
//! throughput column is host wall-clock and varies run to run.

use il_apps::{amr, pagerank};
use il_runtime::{expand_program, OpSafety, RuntimeConfig};
use il_testkit::Json;
use std::time::Instant;

/// Nodes in the swept machine.
const NODES: usize = 4;
/// Total AMR timesteps per cadence point (cadence must divide this).
const AMR_TOTAL_STEPS: usize = 16;
/// Regrid cadences swept (timesteps between partition changes).
const AMR_CADENCES: [usize; 3] = [2, 4, 8];

/// One cadence point of the AMR sweep.
#[derive(Clone, Debug)]
pub struct AmrPoint {
    /// Timesteps between regrids.
    pub cadence: usize,
    /// Epochs run (`AMR_TOTAL_STEPS / cadence`).
    pub epochs: usize,
    /// Launches in the program.
    pub ops: u64,
    /// Launches materialized by replaying a captured trace.
    pub replayed_ops: u64,
    /// Traces captured.
    pub captured: u64,
    /// Whole-trace replays.
    pub replayed: u64,
    /// Captured traces invalidated (regrid boundaries).
    pub invalidated: u64,
    /// Per-launch analyses replay skipped.
    pub analyses_skipped: u64,
    /// Analysis-cache hits / misses.
    pub cache_hits: u64,
    /// Analysis-cache misses (forced by the partition churn).
    pub cache_misses: u64,
}

/// One piece-count point of the pagerank dynamic-check sweep.
#[derive(Clone, Debug)]
pub struct PagerankPoint {
    /// Graph pieces (= launch-domain size of every update launch).
    pub pieces: usize,
    /// Launches that cleared safety statically.
    pub static_ops: u64,
    /// Launches that needed the dynamic bitmask check.
    pub dynamic_ops: u64,
    /// Total dynamic functor evaluations across the program.
    pub evals: u64,
    /// Host wall-clock of the full expansion.
    pub expand_ns: u64,
    /// Host wall-clock the profiler attributes to analysis.
    pub analysis_ns: u64,
    /// Dynamic evaluations per second of analysis wall-clock.
    pub evals_per_sec: f64,
}

/// The full PR 10 sweep.
#[derive(Clone, Debug)]
pub struct AppsSweep {
    /// AMR cadence points, ascending cadence.
    pub amr: Vec<AmrPoint>,
    /// Pagerank piece-count points, ascending size.
    pub pagerank: Vec<PagerankPoint>,
}

/// Run the AMR regrid-cadence sweep.
fn amr_cadence_sweep() -> Vec<AmrPoint> {
    let mut out = Vec::new();
    for cadence in AMR_CADENCES {
        let cfg = amr::AmrConfig {
            cells: 1 << 20,
            base_blocks: 8,
            refine_factor: 4,
            steps_per_epoch: cadence,
            epochs: AMR_TOTAL_STEPS / cadence,
            ..amr::AmrConfig::weak(NODES)
        };
        let app = amr::build(&cfg);
        let expanded = expand_program(&app.program, &RuntimeConfig::scale(NODES));
        let trace = expanded.trace_replay;
        let cache = expanded.analysis_cache;
        assert!(
            trace.invalidated >= 1,
            "cadence {cadence}: the regrid churn must invalidate at least one captured trace"
        );
        out.push(AmrPoint {
            cadence,
            epochs: AMR_TOTAL_STEPS / cadence,
            ops: expanded.replayed_ops.len() as u64,
            replayed_ops: expanded.replayed_ops.iter().filter(|&&r| r).count() as u64,
            captured: trace.captured,
            replayed: trace.replayed,
            invalidated: trace.invalidated,
            analyses_skipped: trace.analyses_skipped,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
        });
    }
    out
}

/// Expand one pagerank configuration and measure its dynamic-check
/// throughput.
fn pagerank_point(pieces: usize) -> PagerankPoint {
    let cfg = pagerank::PagerankConfig {
        iterations: 2,
        ..pagerank::PagerankConfig::scale(pieces)
    };
    let app = pagerank::build(&cfg);
    let start = Instant::now();
    let expanded = expand_program(&app.program, &RuntimeConfig::scale(NODES));
    let expand_ns = start.elapsed().as_nanos() as u64;
    let (mut static_ops, mut dynamic_ops, mut evals) = (0u64, 0u64, 0u64);
    for safety in &expanded.safety {
        match safety {
            OpSafety::Dynamic { evals: e, .. } => {
                dynamic_ops += 1;
                evals += e;
            }
            _ => static_ops += 1,
        }
    }
    assert!(
        dynamic_ops > 0 && evals >= pieces as u64,
        "pagerank at {pieces} pieces must ride the dynamic-check path"
    );
    let analysis_ns = expanded.profile.analysis_ns;
    PagerankPoint {
        pieces,
        static_ops,
        dynamic_ops,
        evals,
        expand_ns,
        analysis_ns,
        evals_per_sec: evals as f64 / (analysis_ns.max(1) as f64 / 1e9),
    }
}

/// Run the pagerank dynamic-check throughput sweep at `max_pieces` and
/// at 10⁵ (the sweep's contract is "10⁵+ pieces", so the floor clamps
/// smaller requests up).
fn pagerank_dynamic_sweep(max_pieces: usize) -> Vec<PagerankPoint> {
    let max_pieces = max_pieces.max(100_000);
    let mut sizes = vec![100_000];
    if max_pieces > 100_000 {
        sizes.push(max_pieces);
    }
    sizes.into_iter().map(pagerank_point).collect()
}

/// Run the full adaptive-workload sweep. `max_pieces` sizes the largest
/// pagerank point (floored at 10⁵).
pub fn apps_sweep(max_pieces: usize) -> AppsSweep {
    AppsSweep { amr: amr_cadence_sweep(), pagerank: pagerank_dynamic_sweep(max_pieces) }
}

impl AppsSweep {
    /// Render the sweep as ASCII tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "amr regrid cadence: trace & analysis-cache behavior ({AMR_TOTAL_STEPS} timesteps)\n"
        ));
        out.push_str(
            "  cadence  epochs  ops  replayed-ops  captured  replayed  invalidated  skipped  cache-hit\n",
        );
        for p in &self.amr {
            let hit_rate = p.cache_hits as f64 / (p.cache_hits + p.cache_misses).max(1) as f64;
            out.push_str(&format!(
                "  {:>7}  {:>6}  {:>3}  {:>12}  {:>8}  {:>8}  {:>11}  {:>7}  {:>8.1}%\n",
                p.cadence,
                p.epochs,
                p.ops,
                p.replayed_ops,
                p.captured,
                p.replayed,
                p.invalidated,
                p.analyses_skipped,
                hit_rate * 100.0,
            ));
        }
        out.push_str("pagerank dynamic checks: bitmask-path throughput\n");
        out.push_str("  pieces   static  dynamic        evals   analysis      evals/s\n");
        for p in &self.pagerank {
            out.push_str(&format!(
                "  {:>7}  {:>5}  {:>7}  {:>11}  {:>6.1} ms  {:>9.2e}\n",
                p.pieces,
                p.static_ops,
                p.dynamic_ops,
                p.evals,
                p.analysis_ns as f64 / 1e6,
                p.evals_per_sec,
            ));
        }
        out
    }

    /// The sweep as a `BENCH_PR10.json` trajectory document.
    pub fn to_json(&self) -> Json {
        let amr: Vec<Json> = self
            .amr
            .iter()
            .map(|p| {
                Json::obj()
                    .set("cadence", p.cadence)
                    .set("epochs", p.epochs)
                    .set("ops", p.ops)
                    .set("replayed_ops", p.replayed_ops)
                    .set("captured", p.captured)
                    .set("replayed", p.replayed)
                    .set("invalidated", p.invalidated)
                    .set("analyses_skipped", p.analyses_skipped)
                    .set("cache_hits", p.cache_hits)
                    .set("cache_misses", p.cache_misses)
            })
            .collect();
        let pagerank: Vec<Json> = self
            .pagerank
            .iter()
            .map(|p| {
                Json::obj()
                    .set("pieces", p.pieces)
                    .set("static_ops", p.static_ops)
                    .set("dynamic_ops", p.dynamic_ops)
                    .set("evals", p.evals)
                    .set("expand_ns", p.expand_ns)
                    .set("analysis_ns", p.analysis_ns)
                    .set("evals_per_sec", p.evals_per_sec)
            })
            .collect();
        Json::obj()
            .set("schema", "il-bench-trajectory-v1")
            .set("pr", "PR10")
            .set("amr_cadence", Json::Arr(amr))
            .set("pagerank_dynamic", Json::Arr(pagerank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The AMR leg covers every cadence, sees invalidations at every
    /// regrid boundary, and replays more as epochs lengthen; counts are
    /// deterministic.
    #[test]
    fn amr_cadence_counts_are_deterministic_and_monotone() {
        let a = amr_cadence_sweep();
        assert_eq!(a.len(), AMR_CADENCES.len());
        for p in &a {
            assert!(p.invalidated >= 1, "cadence {}: regrids must invalidate", p.cadence);
            assert!(p.captured >= 1);
        }
        // The shortest epoch is too short to ever replay its capture
        // before the regrid kills it; the longest replays most launches.
        assert_eq!(a[0].replayed, 0, "cadence 2 must never amortize a capture");
        assert!(
            a[a.len() - 1].replayed_ops * 2 > a[a.len() - 1].ops,
            "the longest cadence must replay most launches"
        );
        // Longer epochs amortize captures into more whole-trace replays
        // per capture.
        let replay_per_capture: Vec<f64> =
            a.iter().map(|p| p.replayed as f64 / p.captured.max(1) as f64).collect();
        assert!(
            replay_per_capture.windows(2).all(|w| w[0] <= w[1]),
            "replays per capture must grow with cadence: {replay_per_capture:?}"
        );
        let b = amr_cadence_sweep();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// The pagerank leg rides the dynamic path. A bench-scale piece
    /// count is too slow for a debug-profile unit test, so exercise the
    /// single-point helper below the sweep's 10⁵ floor — the safety
    /// verdict classes are size-independent.
    #[test]
    fn pagerank_leg_counts_dynamic_evals() {
        let p = pagerank_point(2_000);
        assert_eq!(p.pieces, 2_000);
        assert!(p.dynamic_ops >= 2, "every update launch is dynamic");
        assert!(p.evals >= 2_000);
        assert!(p.evals_per_sec > 0.0);
    }
}
