//! Regenerate the paper's evaluation artifacts.
//!
//! ```text
//! cargo run -p il-bench --release --bin figures -- all
//! cargo run -p il-bench --release --bin figures -- fig5 fig10 table2
//! cargo run -p il-bench --release --bin figures -- fig4 --max-nodes 64
//! ```
//!
//! ASCII tables print to stdout; CSVs land in `results/`. Every run also
//! re-measures the core analysis kernels and writes the wall-clock
//! trajectory to `BENCH_PR2.json` (testkit bench runner + JSON emitter),
//! now including a per-stage pipeline breakdown of a reference stencil
//! run under each (DCR × IDX) corner, plus a Chrome `about:tracing`
//! export of the DCR+IDX run in `results/stencil_trace.json`.

use il_analysis::{cross_check, self_check, ArgCheck, ProjExpr};
use il_bench::figures::{fig10, fig4, fig5, fig6, fig7, fig8, fig9, Figure};
use il_bench::render::{render_figure, render_table, write_figure_csv, write_table_csv};
use il_bench::tables::{extrapolate_checks, table2, table3};
use il_geometry::Domain;
use il_runtime::ThreadPool;
use il_testkit::{BenchRunner, Json, Throughput};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets: Vec<String> = Vec::new();
    let mut max_nodes = 1024usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-nodes" => {
                i += 1;
                max_nodes = args[i].parse().expect("--max-nodes takes a number");
            }
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = [
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table2", "table3",
            "extrapolate",
        ]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    let pool = ThreadPool::with_default_parallelism();
    let out_dir = PathBuf::from("results");

    for target in &targets {
        match target.as_str() {
            "fig4" => emit(fig4(&pool, max_nodes), false, &out_dir),
            "fig5" => emit(fig5(&pool, max_nodes), true, &out_dir),
            "fig6" => emit(fig6(&pool, max_nodes), true, &out_dir),
            "fig7" => emit(fig7(&pool, max_nodes), false, &out_dir),
            "fig8" => emit(fig8(&pool, max_nodes), true, &out_dir),
            "fig9" => emit(fig9(&pool, max_nodes), true, &out_dir),
            "fig10" => emit(fig10(&pool, max_nodes), true, &out_dir),
            "table2" => {
                let rows = table2();
                print!("{}", render_table("Table 2: dynamic self-checks", "Projection functor", &rows));
                write_table_csv("table2", &rows, &out_dir).expect("write table2.csv");
                println!();
            }
            "extrapolate" => {
                let rows = extrapolate_checks();
                print!(
                    "{}",
                    render_table(
                        "Extrapolation (§6.3): dynamic-check cost at future machine scales",
                        "Launch domain size ->",
                        &rows
                    )
                );
                write_table_csv("extrapolate", &rows, &out_dir).expect("write extrapolate.csv");
                println!();
            }
            "table3" => {
                let rows = table3();
                print!("{}", render_table("Table 3: dynamic cross-checks", "Number of arguments", &rows));
                write_table_csv("table3", &rows, &out_dir).expect("write table3.csv");
                println!();
            }
            other => eprintln!("unknown target {other:?} (expected fig4..fig10, table2, table3, all)"),
        }
    }

    write_bench_trajectory("BENCH_PR2.json", &out_dir);
}

/// Re-measure the dynamic-check kernels (the paper's Tables 2–3 hot
/// paths) and dump the reports to `path` so benchmark trajectories can
/// be diffed across PRs.
fn write_bench_trajectory(path: &str, out_dir: &std::path::Path) {
    let mut runner = BenchRunner::new("pr2").full().samples(5);
    let n = 100_000i64;
    let domain = Domain::range(n);
    let colors = Domain::range(n + 16);
    for (name, functor) in [
        ("self_check/identity", ProjExpr::Identity),
        ("self_check/modular", ProjExpr::Modular { a: 1, b: 7, m: n }),
        ("self_check/quadratic", ProjExpr::Quadratic { a: 0, b: 1, c: 2 }),
    ] {
        runner.bench_throughput(name, Throughput(n as u64), || {
            let report = self_check(&domain, &functor, &colors);
            assert!(report.is_safe());
            report.evals
        });
    }
    let writer = ProjExpr::linear(2, 0);
    let reader = ProjExpr::linear(2, 1);
    let wide_colors = Domain::range(2 * n);
    runner.bench_throughput("cross_check/3args", Throughput(3 * n as u64), || {
        let args: Vec<ArgCheck<'_>> = (0..3)
            .map(|k| ArgCheck {
                index: k,
                functor: if k == 0 { &writer } else { &reader },
                writes: k == 0,
            })
            .collect();
        let report = cross_check(&domain, &args, &wide_colors);
        assert!(report.is_safe());
        report.evals
    });
    let reports = runner.finish();
    let json = Json::obj()
        .set("schema", "il-bench-trajectory-v1")
        .set("pr", "PR2")
        .set("domain_size", n)
        .set("benches", Json::Arr(reports.iter().map(|r| r.to_json()).collect()))
        .set("stage_breakdown", stage_breakdown(out_dir));
    std::fs::write(path, json.to_string_pretty()).expect("write bench trajectory");
    println!("wrote {path}");
}

/// Per-stage pipeline breakdown of a reference stencil run (16 nodes,
/// weak scaling) under each (DCR × IDX) corner, with the pipeline audits
/// enabled. The DCR+IDX corner is also run with trace collection and its
/// Chrome `about:tracing` export written to `results/stencil_trace.json`.
fn stage_breakdown(out_dir: &std::path::Path) -> Json {
    use il_apps::stencil::{build, StencilConfig};
    use il_runtime::{execute, RuntimeConfig};
    let nodes = 16;
    let app = build(&StencilConfig::weak(nodes));
    let mut obj = Json::obj();
    for (name, dcr, idx) in [
        ("dcr_idx", true, true),
        ("dcr_noidx", true, false),
        ("nodcr_idx", false, true),
        ("nodcr_noidx", false, false),
    ] {
        let config = RuntimeConfig::scale(nodes)
            .with_axes(dcr, idx)
            .with_audit(true)
            .with_trace(dcr && idx);
        let report = execute(&app.program, &config);
        if let Some(trace) = &report.trace {
            let path = out_dir.join("stencil_trace.json");
            std::fs::create_dir_all(out_dir).expect("create results dir");
            std::fs::write(&path, trace.to_chrome_trace()).expect("write chrome trace");
            println!("wrote {}", path.display());
        }
        obj = obj.set(
            name,
            Json::obj()
                .set("makespan_ns", report.makespan.as_ns())
                .set("tasks", report.tasks)
                .set("stages", report.stage_json()),
        );
    }
    obj
}

fn emit(fig: Figure, per_node: bool, out_dir: &std::path::Path) {
    print!("{}", render_figure(&fig, per_node));
    write_figure_csv(&fig, out_dir).expect("write figure csv");
    println!();
}
