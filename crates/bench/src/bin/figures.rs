//! Regenerate the paper's evaluation artifacts.
//!
//! ```text
//! cargo run -p il-bench --release --bin figures -- all
//! cargo run -p il-bench --release --bin figures -- fig5 fig10 table2
//! cargo run -p il-bench --release --bin figures -- fig4 --max-nodes 64
//! cargo run -p il-bench --release --bin figures -- all --repeats 5
//! cargo run -p il-bench --release --bin figures -- fig4 --out-dir /tmp/r --no-bench
//! cargo run -p il-bench --release --bin figures -- scale --scale-max-nodes 65536
//! cargo run -p il-bench --release --bin figures -- serve --serve-light 120
//! cargo run -p il-bench --release --bin figures -- sdc --sdc-seed 24000
//! cargo run -p il-bench --release --bin figures -- apps --apps-pieces 250000
//! ```
//!
//! ASCII tables print to stdout; CSVs land in `--out-dir` (default
//! `results/`). The DES is deterministic, so each figure point runs once
//! by default; `--repeats 5` restores the paper's 5-run methodology with
//! every rerun asserted identical. `--pool N` sizes the sweep thread
//! pool (default: one worker per hardware thread — the CSVs are
//! byte-identical at any width). Unless `--no-bench` is given, every run
//! also re-measures the core analysis kernels, times the PR's
//! before/after pairs (reference vs. word-parallel checks, analysis
//! cache off vs. on, repeats 5 vs. 1), and writes the wall-clock
//! trajectory to `BENCH_PR4.json`, including the per-stage pipeline
//! breakdown of a reference stencil run under each (DCR × IDX) corner
//! and a Chrome `about:tracing` export in `<out-dir>/stencil_trace.json`,
//! plus the trace-replay trajectory (per-iteration analysis overhead on
//! the iterative apps, replay on vs. off) to `BENCH_PR6.json`.

use il_analysis::{
    cross_check, cross_check_reference, self_check, self_check_reference, ArgCheck, ProjExpr,
};
use il_bench::apps_workload;
use il_bench::figures::{fig10, fig4, fig5, fig6, fig7, fig8, fig9, Figure, SweepOpts};
use il_bench::machine_scale;
use il_bench::sdc_overhead;
use il_bench::service_workload;
use il_bench::render::{render_figure, render_table, write_figure_csv, write_table_csv};
use il_bench::tables::{extrapolate_checks, table2, table3};
use il_geometry::Domain;
use il_runtime::ThreadPool;
use il_testkit::{BenchRunner, Comparison, Json, Throughput};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets: Vec<String> = Vec::new();
    let mut max_nodes = 1024usize;
    let mut scale_max_nodes = 1_048_576usize;
    let mut serve_light = 1500usize;
    let mut serve_seed = 0x5E8Eu64;
    let mut sdc_seed = 0x5DC0u64;
    let mut apps_pieces = 250_000usize;
    let mut repeats = 1u32;
    let mut pool_size = 0usize;
    let mut out_dir = PathBuf::from("results");
    let mut bench = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-nodes" => {
                i += 1;
                max_nodes = args[i].parse().expect("--max-nodes takes a number");
            }
            "--scale-max-nodes" => {
                i += 1;
                scale_max_nodes =
                    args[i].parse().expect("--scale-max-nodes takes a number");
            }
            "--serve-light" => {
                i += 1;
                serve_light = args[i].parse().expect("--serve-light takes a number");
            }
            "--serve-seed" => {
                i += 1;
                serve_seed = args[i].parse().expect("--serve-seed takes a number");
            }
            "--sdc-seed" => {
                i += 1;
                sdc_seed = args[i].parse().expect("--sdc-seed takes a number");
            }
            "--apps-pieces" => {
                i += 1;
                apps_pieces = args[i].parse().expect("--apps-pieces takes a number");
            }
            "--repeats" => {
                i += 1;
                repeats = args[i].parse().expect("--repeats takes a number");
            }
            "--pool" => {
                i += 1;
                pool_size = args[i].parse().expect("--pool takes a number");
            }
            "--out-dir" => {
                i += 1;
                out_dir = PathBuf::from(&args[i]);
            }
            "--no-bench" => bench = false,
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = [
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table2", "table3",
            "extrapolate",
        ]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    let pool = if pool_size == 0 {
        ThreadPool::with_default_parallelism()
    } else {
        ThreadPool::new(pool_size)
    };
    let opts = SweepOpts::new(max_nodes).repeats(repeats);

    for target in &targets {
        match target.as_str() {
            "fig4" => emit(fig4(&pool, opts), false, &out_dir),
            "fig5" => emit(fig5(&pool, opts), true, &out_dir),
            "fig6" => emit(fig6(&pool, opts), true, &out_dir),
            "fig7" => emit(fig7(&pool, opts), false, &out_dir),
            "fig8" => emit(fig8(&pool, opts), true, &out_dir),
            "fig9" => emit(fig9(&pool, opts), true, &out_dir),
            "fig10" => emit(fig10(&pool, opts), true, &out_dir),
            "table2" => {
                let rows = table2();
                print!("{}", render_table("Table 2: dynamic self-checks", "Projection functor", &rows));
                write_table_csv("table2", &rows, &out_dir).expect("write table2.csv");
                println!();
            }
            "extrapolate" => {
                let rows = extrapolate_checks();
                print!(
                    "{}",
                    render_table(
                        "Extrapolation (§6.3): dynamic-check cost at future machine scales",
                        "Launch domain size ->",
                        &rows
                    )
                );
                write_table_csv("extrapolate", &rows, &out_dir).expect("write extrapolate.csv");
                println!();
            }
            // Not part of "all": the machine-scale sweep measures the
            // raw DES, not a paper figure, and the 1M-node point takes
            // a while. `--scale-max-nodes 65536` is the CI smoke size.
            "scale" => {
                let sweep = machine_scale::weak_scaling(scale_max_nodes);
                print!("{}", sweep.render());
                std::fs::write("BENCH_PR7.json", sweep.to_json().to_string_pretty())
                    .expect("write machine-scale trajectory");
                println!("wrote BENCH_PR7.json");
                println!();
            }
            // Not part of "all" either: the service-mode policy sweep
            // benches the multi-tenant scheduler, not a paper figure.
            // `--serve-light N` sizes the skewed mix's light-session
            // stream (default 1500).
            "serve" => {
                let sweep = service_workload::service_sweep(serve_seed, serve_light);
                print!("{}", sweep.render());
                std::fs::write("BENCH_PR8.json", sweep.to_json().to_string_pretty())
                    .expect("write service-mode trajectory");
                println!("wrote BENCH_PR8.json");
                println!();
            }
            // Not part of "all" either: the SDC sweep benches the
            // corruption defense, not a paper figure. `--sdc-seed N`
            // picks the corruption seed (default 0x5DC0).
            "sdc" => {
                let sweep = sdc_overhead::replication_sweep(sdc_seed);
                print!("{}", sweep.render());
                std::fs::write("BENCH_PR9.json", sweep.to_json().to_string_pretty())
                    .expect("write sdc-overhead trajectory");
                println!("wrote BENCH_PR9.json");
                println!();
            }
            // Not part of "all" either: the adaptive-workload sweep
            // benches the PR 10 apps (AMR regrid churn against the
            // trace/cache machinery, pagerank's dynamic bitmask path at
            // scale), not a paper figure. `--apps-pieces N` sizes the
            // largest pagerank point (default 250000, floored at 1e5).
            "apps" => {
                let sweep = apps_workload::apps_sweep(apps_pieces);
                print!("{}", sweep.render());
                std::fs::write("BENCH_PR10.json", sweep.to_json().to_string_pretty())
                    .expect("write apps-workload trajectory");
                println!("wrote BENCH_PR10.json");
                println!();
            }
            "table3" => {
                let rows = table3();
                print!("{}", render_table("Table 3: dynamic cross-checks", "Number of arguments", &rows));
                write_table_csv("table3", &rows, &out_dir).expect("write table3.csv");
                println!();
            }
            other => eprintln!(
                "unknown target {other:?} (expected fig4..fig10, table2, table3, scale, serve, sdc, apps, all)"
            ),
        }
    }

    if bench {
        write_bench_trajectory("BENCH_PR4.json", &out_dir, &pool);
        write_replay_trajectory("BENCH_PR6.json");
    }
}

/// Trace capture & replay wall-clock trajectory: per-iteration analysis
/// overhead of `expand_program` on the iterative golden apps, replay on
/// vs. off. Measured as a finite difference between a long and a short
/// run of the same app, so one-time costs (region setup, first-iteration
/// capture) cancel and only the steady-state per-iteration cost remains
/// — the quantity replay is supposed to collapse.
///
/// Two numbers per app: *analysis overhead* (safety verdicts, oracle
/// dependence scans, distribution planning, plus the recorder's own
/// validation cost — from [`il_runtime::ExpandProfile`]) is what replay
/// skips and where the headline drop shows; *total expand* wall-clock
/// additionally includes task materialization, which both paths pay
/// identically, and bounds the end-to-end win.
fn write_replay_trajectory(path: &str) {
    use il_apps::{circuit, soleil, stencil};
    use il_runtime::{expand_program, Program, RuntimeConfig};
    use std::time::Instant;

    /// Mean `(analysis+replay overhead ns, total expand ns)`.
    fn mean_expand_ns(program: &Program, config: &RuntimeConfig, samples: u32) -> (f64, f64) {
        expand_program(program, config); // warm-up
        let (mut overhead, mut total) = (0.0, 0.0);
        for _ in 0..samples {
            let start = Instant::now();
            let prof = expand_program(program, config).profile;
            total += start.elapsed().as_secs_f64() * 1e9;
            overhead += (prof.analysis_ns + prof.replay_ns) as f64;
        }
        (overhead / samples as f64, total / samples as f64)
    }

    type BuildFn = Box<dyn Fn(usize) -> Program>;
    let apps: Vec<(&str, BuildFn)> = vec![
        (
            "stencil",
            Box::new(|iters| {
                stencil::build(&stencil::StencilConfig {
                    iterations: iters,
                    ..stencil::StencilConfig::tiny((4, 4))
                })
                .program
            }),
        ),
        (
            "circuit",
            Box::new(|iters| {
                circuit::build(&circuit::CircuitConfig {
                    iterations: iters,
                    ..circuit::CircuitConfig::tiny(8)
                })
                .program
            }),
        ),
        (
            "soleil",
            Box::new(|iters| {
                soleil::build(&soleil::SoleilConfig {
                    iterations: iters,
                    ..soleil::SoleilConfig::tiny((2, 1, 1))
                })
                .program
            }),
        ),
    ];

    let (lo, hi, samples) = (10usize, 50usize, 3u32);
    let cfg_on = RuntimeConfig::scale(4);
    let cfg_off = cfg_on.clone().with_trace_replay(false);
    let mut rows = Vec::new();
    println!("trace replay: per-iteration analysis overhead ({} iterations)", hi - lo);
    for (name, build) in apps {
        let p_lo = build(lo);
        let p_hi = build(hi);
        let per_iter = |cfg: &RuntimeConfig| {
            let (over_hi, total_hi) = mean_expand_ns(&p_hi, cfg, samples);
            let (over_lo, total_lo) = mean_expand_ns(&p_lo, cfg, samples);
            let iters = (hi - lo) as f64;
            ((over_hi - over_lo) / iters, (total_hi - total_lo) / iters)
        };
        let (off_ns, off_total_ns) = per_iter(&cfg_off);
        let (on_ns, on_total_ns) = per_iter(&cfg_on);
        let on_ns = on_ns.max(1.0);
        let stats = expand_program(&p_hi, &cfg_on).trace_replay;
        let speedup = off_ns / on_ns;
        let total_speedup = off_total_ns / on_total_ns.max(1.0);
        println!(
            "  {name:8} analysis off {:9.0} ns/iter   on {:9.0} ns/iter   {speedup:6.1}x \
             (total {total_speedup:.1}x; captured={} replayed={} analyses_skipped={})",
            off_ns, on_ns, stats.captured, stats.replayed, stats.analyses_skipped
        );
        rows.push(
            Json::obj()
                .set("app", name)
                .set("iterations", hi - lo)
                .set("analysis_per_iter_ns_off", off_ns)
                .set("analysis_per_iter_ns_on", on_ns)
                .set("analysis_speedup", speedup)
                .set("total_per_iter_ns_off", off_total_ns)
                .set("total_per_iter_ns_on", on_total_ns)
                .set("total_speedup", total_speedup)
                .set("captured", stats.captured)
                .set("replayed", stats.replayed)
                .set("invalidated", stats.invalidated)
                .set("analyses_skipped", stats.analyses_skipped),
        );
    }
    let json = Json::obj()
        .set("schema", "il-bench-trajectory-v1")
        .set("pr", "PR6")
        .set("replay_overhead", Json::Arr(rows));
    std::fs::write(path, json.to_string_pretty()).expect("write replay trajectory");
    println!("wrote {path}");
}

/// Re-measure the dynamic-check kernels (the paper's Tables 2–3 hot
/// paths), time this PR's before/after pairs, and dump everything to
/// `path` so benchmark trajectories can be diffed across PRs.
fn write_bench_trajectory(path: &str, out_dir: &std::path::Path, pool: &ThreadPool) {
    let mut runner = BenchRunner::new("pr4").full().samples(5);
    let n = 100_000i64;
    let domain = Domain::range(n);
    let colors = Domain::range(n + 16);
    for (name, functor) in [
        ("self_check/identity", ProjExpr::Identity),
        ("self_check/modular", ProjExpr::Modular { a: 1, b: 7, m: n }),
        ("self_check/quadratic", ProjExpr::Quadratic { a: 0, b: 1, c: 2 }),
    ] {
        runner.bench_throughput(name, Throughput(n as u64), || {
            let report = self_check(&domain, &functor, &colors);
            assert!(report.is_safe());
            report.evals
        });
    }
    let writer = ProjExpr::linear(2, 0);
    let reader = ProjExpr::linear(2, 1);
    let wide_colors = Domain::range(2 * n);
    runner.bench_throughput("cross_check/3args", Throughput(3 * n as u64), || {
        let args: Vec<ArgCheck<'_>> = (0..3)
            .map(|k| ArgCheck {
                index: k,
                functor: if k == 0 { &writer } else { &reader },
                writes: k == 0,
            })
            .collect();
        let report = cross_check(&domain, &args, &wide_colors);
        assert!(report.is_safe());
        report.evals
    });
    let reports = runner.finish();
    let comparisons = measure_comparisons(pool);
    println!("before/after comparisons:");
    for c in &comparisons {
        println!("{}", c.render());
    }
    let json = Json::obj()
        .set("schema", "il-bench-trajectory-v1")
        .set("pr", "PR4")
        .set("domain_size", n)
        .set("benches", Json::Arr(reports.iter().map(|r| r.to_json()).collect()))
        .set(
            "comparisons",
            Json::Arr(comparisons.iter().map(|c| c.to_json()).collect()),
        )
        .set("stage_breakdown", stage_breakdown(out_dir));
    std::fs::write(path, json.to_string_pretty()).expect("write bench trajectory");
    println!("wrote {path}");
}

/// The PR's before/after wall-clock pairs:
///
/// * Tables 2–3 at |D| = 10⁶: exact pointwise reference check vs. the
///   word-parallel fast path (same verdicts, asserted);
/// * the figure smoke sweep under the paper's 5-run methodology vs. a
///   single deterministic run;
/// * a launch-heavy circuit run with the launch-signature analysis
///   cache off vs. on.
fn measure_comparisons(pool: &ThreadPool) -> Vec<Comparison> {
    use il_apps::circuit;
    use il_runtime::{execute, RuntimeConfig};

    let mut out = Vec::new();

    let n = 1_000_000i64;
    let domain = Domain::range(n);
    let colors = Domain::range(n + 16);
    let functor = ProjExpr::linear(1, 3);
    out.push(Comparison::measure(
        "table2/self_check_1e6/reference_vs_word",
        3,
        || {
            let r = self_check_reference(&domain, &functor, &colors);
            assert!(r.is_safe());
            r.evals
        },
        || {
            let r = self_check(&domain, &functor, &colors);
            assert!(r.is_safe());
            r.evals
        },
    ));

    let writer = ProjExpr::linear(2, 0);
    let reader = ProjExpr::linear(2, 1);
    let wide_colors = Domain::range(2 * n);
    let args: Vec<ArgCheck<'_>> = (0..3)
        .map(|k| ArgCheck {
            index: k,
            functor: if k == 0 { &writer } else { &reader },
            writes: k == 0,
        })
        .collect();
    out.push(Comparison::measure(
        "table3/cross_check_1e6/reference_vs_word",
        3,
        || {
            let r = cross_check_reference(&domain, &args, &wide_colors);
            assert!(r.is_safe());
            r.evals
        },
        || {
            let r = cross_check(&domain, &args, &wide_colors);
            assert!(r.is_safe());
            r.evals
        },
    ));

    out.push(Comparison::measure(
        "figures/fig4_smoke/repeats5_vs_repeats1",
        1,
        || fig4(pool, SweepOpts::new(4).repeats(5)),
        || fig4(pool, SweepOpts::new(4)),
    ));

    let app = circuit::build(&circuit::CircuitConfig::weak(4, 1));
    let cache_off = RuntimeConfig::scale(4).with_analysis_cache(false);
    let cache_on = RuntimeConfig::scale(4);
    out.push(Comparison::measure(
        "runtime/circuit_weak4/cache_off_vs_on",
        3,
        || execute(&app.program, &cache_off).makespan,
        || {
            let report = execute(&app.program, &cache_on);
            assert!(report.analysis_cache.hits > 0, "cache never hit");
            report.makespan
        },
    ));

    out
}

/// Per-stage pipeline breakdown of a reference stencil run (16 nodes,
/// weak scaling) under each (DCR × IDX) corner, with the pipeline audits
/// enabled. The DCR+IDX corner is also run with trace collection and its
/// Chrome `about:tracing` export written to `<out-dir>/stencil_trace.json`.
fn stage_breakdown(out_dir: &std::path::Path) -> Json {
    use il_apps::stencil::{build, StencilConfig};
    use il_runtime::{execute, RuntimeConfig};
    let nodes = 16;
    let app = build(&StencilConfig::weak(nodes));
    let mut obj = Json::obj();
    for (name, dcr, idx) in [
        ("dcr_idx", true, true),
        ("dcr_noidx", true, false),
        ("nodcr_idx", false, true),
        ("nodcr_noidx", false, false),
    ] {
        let config = RuntimeConfig::scale(nodes)
            .with_axes(dcr, idx)
            .with_audit(true)
            .with_trace(dcr && idx);
        let report = execute(&app.program, &config);
        if let Some(trace) = &report.trace {
            let path = out_dir.join("stencil_trace.json");
            std::fs::create_dir_all(out_dir).expect("create results dir");
            std::fs::write(&path, trace.to_chrome_trace()).expect("write chrome trace");
            println!("wrote {}", path.display());
        }
        obj = obj.set(
            name,
            Json::obj()
                .set("makespan_ns", report.makespan.as_ns())
                .set("tasks", report.tasks)
                .set("stages", report.stage_json()),
        );
    }
    obj
}

fn emit(fig: Figure, per_node: bool, out_dir: &std::path::Path) {
    print!("{}", render_figure(&fig, per_node));
    write_figure_csv(&fig, out_dir).expect("write figure csv");
    println!();
}
