//! Regenerate the paper's evaluation artifacts.
//!
//! ```text
//! cargo run -p il-bench --release --bin figures -- all
//! cargo run -p il-bench --release --bin figures -- fig5 fig10 table2
//! cargo run -p il-bench --release --bin figures -- fig4 --max-nodes 64
//! ```
//!
//! ASCII tables print to stdout; CSVs land in `results/`.

use il_bench::figures::{fig10, fig4, fig5, fig6, fig7, fig8, fig9, Figure};
use il_bench::render::{render_figure, render_table, write_figure_csv, write_table_csv};
use il_bench::tables::{extrapolate_checks, table2, table3};
use il_runtime::ThreadPool;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets: Vec<String> = Vec::new();
    let mut max_nodes = 1024usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-nodes" => {
                i += 1;
                max_nodes = args[i].parse().expect("--max-nodes takes a number");
            }
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = [
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table2", "table3",
            "extrapolate",
        ]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    let pool = ThreadPool::with_default_parallelism();
    let out_dir = PathBuf::from("results");

    for target in &targets {
        match target.as_str() {
            "fig4" => emit(fig4(&pool, max_nodes), false, &out_dir),
            "fig5" => emit(fig5(&pool, max_nodes), true, &out_dir),
            "fig6" => emit(fig6(&pool, max_nodes), true, &out_dir),
            "fig7" => emit(fig7(&pool, max_nodes), false, &out_dir),
            "fig8" => emit(fig8(&pool, max_nodes), true, &out_dir),
            "fig9" => emit(fig9(&pool, max_nodes), true, &out_dir),
            "fig10" => emit(fig10(&pool, max_nodes), true, &out_dir),
            "table2" => {
                let rows = table2();
                print!("{}", render_table("Table 2: dynamic self-checks", "Projection functor", &rows));
                write_table_csv("table2", &rows, &out_dir).expect("write table2.csv");
                println!();
            }
            "extrapolate" => {
                let rows = extrapolate_checks();
                print!(
                    "{}",
                    render_table(
                        "Extrapolation (§6.3): dynamic-check cost at future machine scales",
                        "Launch domain size ->",
                        &rows
                    )
                );
                write_table_csv("extrapolate", &rows, &out_dir).expect("write extrapolate.csv");
                println!();
            }
            "table3" => {
                let rows = table3();
                print!("{}", render_table("Table 3: dynamic cross-checks", "Number of arguments", &rows));
                write_table_csv("table3", &rows, &out_dir).expect("write table3.csv");
                println!();
            }
            other => eprintln!("unknown target {other:?} (expected fig4..fig10, table2, table3, all)"),
        }
    }
}

fn emit(fig: Figure, per_node: bool, out_dir: &std::path::Path) {
    print!("{}", render_figure(&fig, per_node));
    write_figure_csv(&fig, out_dir).expect("write figure csv");
    println!();
}
