//! The scaling experiments of §6.2 (Figures 4–10).

use il_apps::{circuit, soleil, stencil};
use il_runtime::{execute, Program, RunReport, RuntimeConfig, ThreadPool};

/// Options shared by every figure sweep.
///
/// The paper's methodology (§6) averages 5 runs per data point, but the
/// simulator is a deterministic DES: re-running a point reproduces the
/// identical report bit-for-bit, so averaging is redundant work. The
/// default is therefore a single run; `repeats(5)` restores the paper's
/// methodology, with each repeat *asserted* identical to the first
/// rather than folded into a meaningless mean.
#[derive(Clone, Copy, Debug)]
pub struct SweepOpts {
    /// Largest node count to sweep (each figure additionally clamps to
    /// the paper's own range).
    pub max_nodes: usize,
    /// DES executions per data point (min 1).
    pub repeats: u32,
}

impl SweepOpts {
    /// Single-run sweep up to `max_nodes`.
    pub fn new(max_nodes: usize) -> Self {
        SweepOpts { max_nodes, repeats: 1 }
    }

    /// Set the number of executions per point (clamped to ≥ 1).
    pub fn repeats(mut self, n: u32) -> Self {
        self.repeats = n.max(1);
        self
    }
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts::new(1024)
    }
}

/// Execute one figure point `repeats` times, asserting every rerun
/// reproduces the first report exactly (the DES is deterministic — any
/// difference is a simulator bug, not noise to average away).
fn run_point(program: &Program, rt: &RuntimeConfig, repeats: u32) -> RunReport {
    let first = execute(program, rt);
    for rerun in 1..repeats {
        let again = execute(program, rt);
        assert!(
            again.makespan == first.makespan
                && again.elapsed == first.elapsed
                && again.dynamic_check_time == first.dynamic_check_time
                && again.tasks == first.tasks
                && again.stage_json().to_string() == first.stage_json().to_string(),
            "deterministic DES diverged on repeat {rerun}"
        );
    }
    first
}

/// One data point of a figure.
#[derive(Clone, Debug)]
pub struct FigPoint {
    /// Figure id (e.g. "fig5").
    pub figure: String,
    /// Node count.
    pub nodes: usize,
    /// Configuration label (e.g. "DCR, IDX").
    pub config: String,
    /// Aggregate throughput in the figure's work unit per second.
    pub throughput: f64,
    /// Throughput per node.
    pub per_node: f64,
    /// Parallel efficiency vs. the same configuration at 1 node
    /// (weak scaling) or ideal speedup (strong scaling).
    pub efficiency: f64,
    /// Simulated elapsed time of the timed portion (ms).
    pub elapsed_ms: f64,
    /// Simulated time spent in dynamic safety checks (ms).
    pub dyn_check_ms: f64,
}

/// A rendered figure: its points grouped by configuration.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Figure id.
    pub id: String,
    /// Caption (what the paper's figure shows).
    pub caption: String,
    /// Work-unit label for the throughput column.
    pub unit: String,
    /// All measured points.
    pub points: Vec<FigPoint>,
}

/// The four (DCR × IDX) corners, labeled as in the paper's legends.
pub const AXES: [(&str, bool, bool); 4] = [
    ("DCR, IDX", true, true),
    ("DCR, No IDX", true, false),
    ("No DCR, IDX", false, true),
    ("No DCR, No IDX", false, false),
];

fn pow2_up_to(max: usize) -> Vec<usize> {
    let mut v = vec![1usize];
    while *v.last().unwrap() < max {
        let next = v.last().unwrap() * 2;
        v.push(next);
    }
    v
}

fn fill_efficiency(points: &mut [FigPoint], weak: bool) {
    // Efficiency is relative to the same configuration at the smallest
    // node count.
    let mut configs: Vec<String> = Vec::new();
    for p in points.iter() {
        if !configs.contains(&p.config) {
            configs.push(p.config.clone());
        }
    }
    for config in configs {
        let base = points
            .iter()
            .filter(|p| p.config == config)
            .min_by_key(|p| p.nodes)
            .map(|p| (p.nodes, p.throughput))
            .unwrap();
        for p in points.iter_mut().filter(|p| p.config == config) {
            p.efficiency = if weak {
                p.per_node / (base.1 / base.0 as f64)
            } else {
                (p.throughput / base.1) / (p.nodes as f64 / base.0 as f64)
            };
        }
    }
}

/// Figure 4: Circuit strong scaling (5.1×10⁶ wires), 1–512 nodes,
/// DCR × IDX.
pub fn fig4(pool: &ThreadPool, opts: SweepOpts) -> Figure {
    let nodes_list = pow2_up_to(opts.max_nodes.min(512));
    let repeats = opts.repeats;
    let jobs: Vec<_> = nodes_list
        .iter()
        .flat_map(|&nodes| {
            AXES.iter().map(move |&(label, dcr, idx)| {
                move || {
                    let config = circuit::CircuitConfig::strong(nodes);
                    let app = circuit::build(&config);
                    let rt = RuntimeConfig::scale(nodes).with_axes(dcr, idx);
                    let report = run_point(&app.program, &rt, repeats);
                    let tput = circuit::throughput(&config, &report);
                    FigPoint {
                        figure: "fig4".into(),
                        nodes,
                        config: label.to_string(),
                        throughput: tput,
                        per_node: tput / nodes as f64,
                        efficiency: 0.0,
                        elapsed_ms: report.elapsed.as_ms_f64(),
                        dyn_check_ms: report.dynamic_check_time.as_ms_f64(),
                    }
                }
            })
        })
        .collect();
    let mut points = pool.map(jobs);
    fill_efficiency(&mut points, false);
    Figure {
        id: "fig4".into(),
        caption: "Circuit strong scaling".into(),
        unit: "wires/s".into(),
        points,
    }
}

/// Figure 5: Circuit weak scaling (2×10⁵ wires/node), 1–1024 nodes.
pub fn fig5(pool: &ThreadPool, opts: SweepOpts) -> Figure {
    circuit_weak(pool, opts, 1, true, "fig5", "Circuit weak scaling")
}

/// Figure 6: Circuit weak scaling, 10× overdecomposed, tracing disabled.
pub fn fig6(pool: &ThreadPool, opts: SweepOpts) -> Figure {
    circuit_weak(
        pool,
        opts,
        10,
        false,
        "fig6",
        "Circuit weak scaling, overdecomposed, no tracing",
    )
}

fn circuit_weak(
    pool: &ThreadPool,
    opts: SweepOpts,
    overdecompose: usize,
    tracing: bool,
    id: &str,
    caption: &str,
) -> Figure {
    let nodes_list = pow2_up_to(opts.max_nodes.min(1024));
    let repeats = opts.repeats;
    let id_owned = id.to_string();
    let jobs: Vec<_> = nodes_list
        .iter()
        .flat_map(|&nodes| {
            let id_owned = id_owned.clone();
            AXES.iter().map(move |&(label, dcr, idx)| {
                let id_owned = id_owned.clone();
                move || {
                    let config = circuit::CircuitConfig::weak(nodes, overdecompose);
                    let app = circuit::build(&config);
                    let rt = RuntimeConfig::scale(nodes)
                        .with_axes(dcr, idx)
                        .with_tracing(tracing);
                    let report = run_point(&app.program, &rt, repeats);
                    let tput = circuit::throughput(&config, &report);
                    FigPoint {
                        figure: id_owned,
                        nodes,
                        config: label.to_string(),
                        throughput: tput,
                        per_node: tput / nodes as f64,
                        efficiency: 0.0,
                        elapsed_ms: report.elapsed.as_ms_f64(),
                        dyn_check_ms: report.dynamic_check_time.as_ms_f64(),
                    }
                }
            })
        })
        .collect();
    let mut points = pool.map(jobs);
    fill_efficiency(&mut points, true);
    Figure {
        id: id.into(),
        caption: caption.into(),
        unit: "wires/s".into(),
        points,
    }
}

/// Figure 7: Stencil strong scaling (9×10⁸ cells), 1–512 nodes.
pub fn fig7(pool: &ThreadPool, opts: SweepOpts) -> Figure {
    let nodes_list = pow2_up_to(opts.max_nodes.min(512));
    let repeats = opts.repeats;
    let jobs: Vec<_> = nodes_list
        .iter()
        .flat_map(|&nodes| {
            AXES.iter().map(move |&(label, dcr, idx)| {
                move || {
                    let config = stencil::StencilConfig::strong(nodes);
                    let app = stencil::build(&config);
                    let rt = RuntimeConfig::scale(nodes).with_axes(dcr, idx);
                    let report = run_point(&app.program, &rt, repeats);
                    let tput = stencil::throughput(&config, &report);
                    FigPoint {
                        figure: "fig7".into(),
                        nodes,
                        config: label.to_string(),
                        throughput: tput,
                        per_node: tput / nodes as f64,
                        efficiency: 0.0,
                        elapsed_ms: report.elapsed.as_ms_f64(),
                        dyn_check_ms: report.dynamic_check_time.as_ms_f64(),
                    }
                }
            })
        })
        .collect();
    let mut points = pool.map(jobs);
    fill_efficiency(&mut points, false);
    Figure {
        id: "fig7".into(),
        caption: "Stencil strong scaling".into(),
        unit: "cells/s".into(),
        points,
    }
}

/// Figure 8: Stencil weak scaling (9×10⁸ cells/node), 1–1024 nodes.
pub fn fig8(pool: &ThreadPool, opts: SweepOpts) -> Figure {
    let nodes_list = pow2_up_to(opts.max_nodes.min(1024));
    let repeats = opts.repeats;
    let jobs: Vec<_> = nodes_list
        .iter()
        .flat_map(|&nodes| {
            AXES.iter().map(move |&(label, dcr, idx)| {
                move || {
                    let config = stencil::StencilConfig::weak(nodes);
                    let app = stencil::build(&config);
                    let rt = RuntimeConfig::scale(nodes).with_axes(dcr, idx);
                    let report = run_point(&app.program, &rt, repeats);
                    let tput = stencil::throughput(&config, &report);
                    FigPoint {
                        figure: "fig8".into(),
                        nodes,
                        config: label.to_string(),
                        throughput: tput,
                        per_node: tput / nodes as f64,
                        efficiency: 0.0,
                        elapsed_ms: report.elapsed.as_ms_f64(),
                        dyn_check_ms: report.dynamic_check_time.as_ms_f64(),
                    }
                }
            })
        })
        .collect();
    let mut points = pool.map(jobs);
    fill_efficiency(&mut points, true);
    Figure {
        id: "fig8".into(),
        caption: "Stencil weak scaling".into(),
        unit: "cells/s".into(),
        points,
    }
}

/// Figure 9: Soleil-X fluid-only weak scaling, 1–512 nodes, DCR ± IDX.
pub fn fig9(pool: &ThreadPool, opts: SweepOpts) -> Figure {
    let nodes_list = pow2_up_to(opts.max_nodes.min(512));
    let repeats = opts.repeats;
    let jobs: Vec<_> = nodes_list
        .iter()
        .flat_map(|&nodes| {
            [("DCR, IDX", true), ("DCR, No IDX", false)]
                .into_iter()
                .map(move |(label, idx)| {
                    move || {
                        let config = soleil::SoleilConfig::fluid_weak(nodes);
                        let app = soleil::build(&config);
                        let rt = RuntimeConfig::scale(nodes).with_axes(true, idx);
                        let report = run_point(&app.program, &rt, repeats);
                        let tput = soleil::throughput(&config, &report);
                        FigPoint {
                            figure: "fig9".into(),
                            nodes,
                            config: label.to_string(),
                            throughput: tput,
                            per_node: tput,
                            efficiency: 0.0,
                            elapsed_ms: report.elapsed.as_ms_f64(),
                            dyn_check_ms: report.dynamic_check_time.as_ms_f64(),
                        }
                    }
                })
        })
        .collect();
    let mut points = pool.map(jobs);
    fill_efficiency(&mut points, true);
    Figure {
        id: "fig9".into(),
        caption: "Soleil-X (fluid-only) weak scaling".into(),
        unit: "iter/s".into(),
        points,
    }
}

/// Figure 10: Soleil-X full physics (fluid, particles, DOM) weak
/// scaling, 1–32 nodes: dynamic check vs. no check vs. no IDX.
pub fn fig10(pool: &ThreadPool, opts: SweepOpts) -> Figure {
    let nodes_list = pow2_up_to(opts.max_nodes.min(32));
    let repeats = opts.repeats;
    let configs: [(&str, bool, bool); 3] = [
        ("DCR, IDX (dynamic check)", true, true),
        ("DCR, IDX (no check)", true, false),
        ("DCR, No IDX", false, false),
    ];
    let jobs: Vec<_> = nodes_list
        .iter()
        .flat_map(|&nodes| {
            configs.into_iter().map(move |(label, idx, checks)| {
                move || {
                    let config = soleil::SoleilConfig::full_weak(nodes);
                    let app = soleil::build(&config);
                    let rt = RuntimeConfig::scale(nodes)
                        .with_axes(true, idx)
                        .with_dynamic_checks(checks);
                    let report = run_point(&app.program, &rt, repeats);
                    let tput = soleil::throughput(&config, &report);
                    FigPoint {
                        figure: "fig10".into(),
                        nodes,
                        config: label.to_string(),
                        throughput: tput,
                        per_node: tput,
                        efficiency: 0.0,
                        elapsed_ms: report.elapsed.as_ms_f64(),
                        dyn_check_ms: report.dynamic_check_time.as_ms_f64(),
                    }
                }
            })
        })
        .collect();
    let mut points = pool.map(jobs);
    fill_efficiency(&mut points, true);
    Figure {
        id: "fig10".into(),
        caption: "Soleil-X (fluid, particles and DOM) weak scaling".into(),
        unit: "iter/s".into(),
        points,
    }
}

/// Per-node throughput of a configuration at a node count (test helper).
pub fn per_node(figure: &Figure, config: &str, nodes: usize) -> f64 {
    figure
        .points
        .iter()
        .find(|p| p.config == config && p.nodes == nodes)
        .unwrap_or_else(|| panic!("{}: no point {config}@{nodes}", figure.id))
        .per_node
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_lists() {
        assert_eq!(pow2_up_to(8), vec![1, 2, 4, 8]);
        assert_eq!(pow2_up_to(1), vec![1]);
    }

    #[test]
    fn small_fig4_has_expected_points() {
        let pool = ThreadPool::new(4);
        let fig = fig4(&pool, SweepOpts::new(4));
        assert_eq!(fig.points.len(), 3 * 4);
        assert!(fig.points.iter().all(|p| p.throughput > 0.0));
    }

    #[test]
    fn weak_efficiency_is_one_at_one_node() {
        let pool = ThreadPool::new(4);
        let fig = fig5(&pool, SweepOpts::new(2));
        for p in fig.points.iter().filter(|p| p.nodes == 1) {
            assert!((p.efficiency - 1.0).abs() < 1e-9, "{p:?}");
        }
    }

    #[test]
    fn repeated_points_reproduce_the_single_run() {
        // `repeats` asserts internally that every rerun is identical;
        // here we also pin that the *emitted* points match a repeats=1
        // sweep exactly, so `--repeats 5` (paper methodology) can never
        // change a figure.
        let pool = ThreadPool::new(2);
        let once = fig4(&pool, SweepOpts::new(2));
        let five = fig4(&pool, SweepOpts::new(2).repeats(5));
        assert_eq!(once.points.len(), five.points.len());
        for (a, b) in once.points.iter().zip(five.points.iter()) {
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.config, b.config);
            assert_eq!(a.throughput.to_bits(), b.throughput.to_bits(), "{a:?} vs {b:?}");
            assert_eq!(a.elapsed_ms.to_bits(), b.elapsed_ms.to_bits());
            assert_eq!(a.dyn_check_ms.to_bits(), b.dyn_check_ms.to_bits());
        }
    }
}
