//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§6).
//!
//! * [`figures`] — the scaling experiments (Figures 4–10), run on the
//!   simulated machine across node counts and runtime configurations,
//!   parallelized over a work-stealing pool;
//! * [`machine_scale`] — the weak-scaling sweep of the raw DES at
//!   16k–1M simulated nodes (`figures -- scale`), written to
//!   `BENCH_PR7.json`;
//! * [`service_workload`] — the multi-tenant service-mode policy sweep
//!   (`figures -- serve`): throughput and p50/p95/p99 latency per
//!   scheduling policy, written to `BENCH_PR8.json`;
//! * [`sdc_overhead`] — the silent-data-corruption defense cost sweep
//!   (`figures -- sdc`): golden apps under a corrupting schedule at
//!   replication factors k ∈ {1, 2, 3}, written to `BENCH_PR9.json`;
//! * [`tables`] — the dynamic-check microbenchmarks (Tables 2–3),
//!   measured in real wall-clock time on this machine (no simulation —
//!   the checks are ordinary single-node code);
//! * [`render`] — ASCII tables and CSV output.
//!
//! Regenerate everything with `cargo run -p il-bench --release --bin
//! figures -- all`; see `EXPERIMENTS.md` for paper-vs-measured notes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps_workload;
pub mod figures;
pub mod machine_scale;
pub mod render;
pub mod sdc_overhead;
pub mod service_workload;
pub mod tables;

pub use figures::{FigPoint, Figure};
pub use machine_scale::{weak_scaling, ScalePoint, ScaleSweep};
pub use sdc_overhead::{replication_sweep, SdcPoint, SdcSweep};
pub use service_workload::{run_policy, service_sweep, PolicyPoint, ServiceSweep};
pub use tables::{extrapolate_checks, table2, table3, TableRow};
