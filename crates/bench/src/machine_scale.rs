//! Machine-scale weak-scaling sweep of the raw discrete-event simulator.
//!
//! The paper's figures stop at 1024 nodes — the size of Piz Daint's
//! allocation. This sweep measures the *simulator itself* well past
//! that: a relay storm whose event count grows linearly with the node
//! count (weak scaling) is dispatched at 16k–1M simulated nodes, and
//! the wall-clock events-per-second rate is recorded to
//! `BENCH_PR7.json`.
//!
//! Each point runs the identical storm twice over two configurations:
//!
//! * **new** — `QueueKind::Auto` (the calendar queue above 4096 nodes),
//!   table-based O(1) fault lookups, O(active) clock arena;
//! * **legacy** — the pre-PR hot path: `QueueKind::BinaryHeap` plus
//!   [`FaultPlan::with_scan_lookups`], which re-scans the full
//!   crash/slow schedule on every dispatched event.
//!
//! Both runs must dispatch the same number of events (locked by an
//! assert — the queue-equivalence property guarantees it), so the
//! events-per-second ratio is a pure data-structure comparison. The
//! legacy leg is only run at the smaller sizes; its per-event cost is
//! O(faults) and the fault schedule grows with the machine.

use il_machine::{
    FaultPlan, FaultSpec, MachineDesc, Network, NodeBehavior, NodeCtx, QueueKind, SimTime,
    Simulator, Stage,
};
use il_testkit::Json;
use std::time::Instant;

/// Relay hops per injected seed message. Every hop is one network
/// delivery plus one handler dispatch, so the storm generates
/// `nodes × (TTL + 1)` events.
const TTL: u32 = 8;

/// One measured point of the sweep.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Simulated machine size.
    pub nodes: usize,
    /// Which event queue the run used (`"binary_heap"` / `"calendar"`).
    pub queue: &'static str,
    /// True for the pre-PR baseline (heap queue + linear fault scans).
    pub legacy: bool,
    /// Events dispatched (identical across configurations by design).
    pub events: u64,
    /// Scheduled crash + slow-node entries in the fault plan.
    pub faults: usize,
    /// Wall-clock nanoseconds spent inside `Simulator::run`.
    pub wall_ns: u64,
    /// Dispatch rate.
    pub events_per_sec: f64,
    /// Weak-scaling figure of merit: simulated nodes per wall second.
    pub nodes_per_sec: f64,
}

/// The whole sweep: every measured point plus the per-size speedup of
/// the new path over the legacy baseline (where both were run).
#[derive(Clone, Debug)]
pub struct ScaleSweep {
    /// All measured points, new path first, then legacy baselines.
    pub points: Vec<ScalePoint>,
    /// `(nodes, new events/s ÷ legacy events/s)` for the paired sizes.
    pub speedups: Vec<(usize, f64)>,
}

/// Relay behavior: charge a little network time, forward until the
/// hop budget runs out. Stateless per node, so per-node memory stays
/// in the simulator's clock arena, not the behavior vector.
struct Relay;

#[derive(Clone, Debug)]
struct Hop {
    ttl: u32,
    stride: usize,
}

impl NodeBehavior<Hop> for Relay {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, Hop>, msg: Hop) {
        ctx.set_stage(Stage::Network);
        ctx.charge(SimTime::ns(200));
        if msg.ttl > 0 {
            let dst = (ctx.node() + msg.stride) % ctx.nodes();
            ctx.send(dst, Hop { ttl: msg.ttl - 1, ..msg }, 256);
        }
    }
}

/// A fault schedule that *loads* the lookup path without perturbing the
/// storm: `nodes/4` crashes scheduled far beyond the storm's makespan
/// (so the crash check runs on every event but never fires) plus
/// `nodes/4` slow nodes (which stretch charges identically in both
/// configurations — the plan is a pure function of the seed).
fn storm_plan(nodes: usize) -> FaultPlan {
    let spec = FaultSpec {
        drop_per_mille: 0,
        dup_per_mille: 0,
        max_crashes: nodes / 4,
        slow_nodes: nodes / 4,
        crash_window: (SimTime::secs(3_600), SimTime::secs(7_200)),
        slow_factor: 3,
        corrupt_nodes: 0,
        corrupt_per_mille: 0,
        corrupt_payload_per_mille: 0,
    };
    FaultPlan::generate(0x5CA1E, nodes, &spec)
}

/// Run the relay storm at `nodes` and measure the dispatch rate.
pub fn run_point(nodes: usize, legacy: bool) -> ScalePoint {
    // One CPU per node: the proc arena is per-active-node, but there is
    // no reason to model 13 processors nobody uses.
    let machine = MachineDesc { nodes, cpus_per_node: 1, gpus_per_node: 0 };
    let behaviors = (0..nodes).map(|_| Relay).collect();
    let kind = if legacy { QueueKind::BinaryHeap } else { QueueKind::Auto };
    let mut sim = Simulator::new(machine, Network::aries(), behaviors).with_queue(kind);
    let queue = match sim.queue_kind() {
        QueueKind::BinaryHeap => "binary_heap",
        _ => "calendar",
    };
    let mut plan = storm_plan(nodes);
    if legacy {
        plan = plan.with_scan_lookups();
    }
    let faults = plan.crashes().len() + plan.slow_count();
    sim.set_fault_plan(plan);
    // Every node seeds one relay chain; injection instants are staggered
    // over a 51.2 µs window so the storm spreads across calendar buckets
    // instead of colliding on one timestamp.
    for n in 0..nodes {
        sim.inject(
            SimTime::ns((n % 1_024) as u64 * 50),
            n,
            Hop { ttl: TTL, stride: (n % 7) + 1 },
        );
    }
    let bound = (nodes as u64) * (TTL as u64 + 2) * 4;
    let start = Instant::now();
    let events = sim.try_run(bound).expect("storm exceeded its event bound");
    let wall_ns = start.elapsed().as_nanos() as u64;
    let secs = (wall_ns as f64 / 1e9).max(1e-9);
    ScalePoint {
        nodes,
        queue,
        legacy,
        events,
        faults,
        wall_ns,
        events_per_sec: events as f64 / secs,
        nodes_per_sec: nodes as f64 / secs,
    }
}

/// Node counts for the new path, capped at `max_nodes`.
fn new_sizes(max_nodes: usize) -> Vec<usize> {
    [16_384, 65_536, 262_144, 1_048_576]
        .into_iter()
        .filter(|&n| n <= max_nodes)
        .collect()
}

/// Node counts for the legacy baseline: the O(faults)-per-event scans
/// make larger sizes pointless to wait on.
fn legacy_sizes(max_nodes: usize) -> Vec<usize> {
    [16_384, 65_536].into_iter().filter(|&n| n <= max_nodes).collect()
}

/// Run the full weak-scaling sweep up to `max_nodes` simulated nodes.
pub fn weak_scaling(max_nodes: usize) -> ScaleSweep {
    let mut points: Vec<ScalePoint> = Vec::new();
    for nodes in new_sizes(max_nodes) {
        points.push(run_point(nodes, false));
    }
    for nodes in legacy_sizes(max_nodes) {
        points.push(run_point(nodes, true));
    }
    let mut speedups = Vec::new();
    for p in points.iter().filter(|p| p.legacy) {
        let new = points
            .iter()
            .find(|q| !q.legacy && q.nodes == p.nodes)
            .expect("every legacy size is also run on the new path");
        assert_eq!(
            new.events, p.events,
            "queue kinds diverged at {} nodes: the equivalence property is broken",
            p.nodes
        );
        speedups.push((p.nodes, new.events_per_sec / p.events_per_sec.max(1e-9)));
    }
    ScaleSweep { points, speedups }
}

impl ScaleSweep {
    /// Render the sweep as an ASCII table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("weak scaling: DES dispatch rate vs. machine size\n");
        out.push_str("  nodes      path    queue        events     events/s      wall\n");
        for p in &self.points {
            out.push_str(&format!(
                "  {:>9}  {:6}  {:11}  {:>9}  {:>11.0}  {:>6.2}s\n",
                p.nodes,
                if p.legacy { "legacy" } else { "new" },
                p.queue,
                p.events,
                p.events_per_sec,
                p.wall_ns as f64 / 1e9,
            ));
        }
        for (nodes, s) in &self.speedups {
            out.push_str(&format!("  {nodes} nodes: new path {s:.1}x legacy events/s\n"));
        }
        out
    }

    /// The sweep as a `BENCH_PR7.json` trajectory document.
    pub fn to_json(&self) -> Json {
        let points: Vec<Json> = self
            .points
            .iter()
            .map(|p| {
                Json::obj()
                    .set("nodes", p.nodes)
                    .set("path", if p.legacy { "legacy" } else { "new" })
                    .set("queue", p.queue)
                    .set("events", p.events)
                    .set("faults", p.faults)
                    .set("wall_ns", p.wall_ns)
                    .set("events_per_sec", p.events_per_sec)
                    .set("nodes_per_sec", p.nodes_per_sec)
            })
            .collect();
        let speedups: Vec<Json> = self
            .speedups
            .iter()
            .map(|(nodes, s)| Json::obj().set("nodes", *nodes).set("speedup", *s))
            .collect();
        Json::obj()
            .set("schema", "il-bench-trajectory-v1")
            .set("pr", "PR7")
            .set("ttl", TTL as u64)
            .set("weak_scaling", Json::Arr(points))
            .set("speedup_vs_legacy", Json::Arr(speedups))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep (below the calendar auto-threshold the sizes
    /// list is empty, so drive the point runner directly): both paths
    /// dispatch the same storm.
    #[test]
    fn paths_agree_on_event_counts() {
        let new = run_point(512, false);
        let legacy = run_point(512, true);
        assert_eq!(new.events, legacy.events);
        assert_eq!(new.events, 512 * (TTL as u64 + 1));
        assert!(new.faults > 0, "the storm must carry a fault schedule");
        assert_eq!(legacy.queue, "binary_heap");
    }

    #[test]
    fn sizes_respect_the_cap() {
        assert_eq!(new_sizes(65_536), vec![16_384, 65_536]);
        assert_eq!(legacy_sizes(16_384), vec![16_384]);
        assert!(new_sizes(8_192).is_empty());
    }
}
