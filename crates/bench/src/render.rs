//! ASCII rendering and CSV output of figures and tables.

use crate::figures::Figure;
use crate::tables::TableRow;
use std::fmt::Write as _;
use std::path::Path;

/// Render a figure as an ASCII table: one column per node count, one row
/// per configuration, cells showing the figure's y-axis value.
pub fn render_figure(fig: &Figure, per_node: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {}: {} ({}) ===", fig.id, fig.caption, fig.unit);
    let mut nodes: Vec<usize> = fig.points.iter().map(|p| p.nodes).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut configs: Vec<String> = Vec::new();
    for p in &fig.points {
        if !configs.contains(&p.config) {
            configs.push(p.config.clone());
        }
    }

    let _ = write!(out, "{:<28}", if per_node { "config \\ nodes (per-node)" } else { "config \\ nodes" });
    for n in &nodes {
        let _ = write!(out, "{n:>12}");
    }
    let _ = writeln!(out);
    for config in &configs {
        let _ = write!(out, "{config:<28}");
        for &n in &nodes {
            match fig.points.iter().find(|p| p.config == *config && p.nodes == n) {
                Some(p) => {
                    let v = if per_node { p.per_node } else { p.throughput };
                    let _ = write!(out, "{:>12}", human(v));
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    // Efficiency row for the primary configuration.
    if let Some(first) = configs.first() {
        let _ = write!(out, "{:<28}", format!("  efficiency [{first}]"));
        for &n in &nodes {
            match fig.points.iter().find(|p| &p.config == first && p.nodes == n) {
                Some(p) => {
                    let _ = write!(out, "{:>11.0}%", p.efficiency * 100.0);
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render a timing table (Tables 2–3).
pub fn render_table(title: &str, first_col: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} (elapsed µs, 5-run average) ===");
    let _ = write!(out, "{first_col:<24}");
    if let Some(r) = rows.first() {
        for (n, _) in &r.cells {
            let _ = write!(out, "{:>12}", format!("10^{}", (*n as f64).log10() as u32));
        }
    }
    let _ = writeln!(out);
    for row in rows {
        let _ = write!(out, "{:<24}", row.label);
        for (_, us) in &row.cells {
            let _ = write!(out, "{us:>12.1}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Human-readable engineering notation.
pub fn human(v: f64) -> String {
    if !v.is_finite() {
        return "inf".into();
    }
    let (scaled, suffix) = if v >= 1e9 {
        (v / 1e9, "G")
    } else if v >= 1e6 {
        (v / 1e6, "M")
    } else if v >= 1e3 {
        (v / 1e3, "k")
    } else {
        (v, "")
    };
    if scaled >= 100.0 {
        format!("{scaled:.0}{suffix}")
    } else {
        format!("{scaled:.2}{suffix}")
    }
}

/// Write a figure's points as CSV.
pub fn write_figure_csv(fig: &Figure, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut csv = String::from("figure,nodes,config,throughput,per_node,efficiency,elapsed_ms,dyn_check_ms\n");
    for p in &fig.points {
        let _ = writeln!(
            csv,
            "{},{},{:?},{},{},{},{},{}",
            p.figure, p.nodes, p.config, p.throughput, p.per_node, p.efficiency, p.elapsed_ms, p.dyn_check_ms
        );
    }
    std::fs::write(dir.join(format!("{}.csv", fig.id)), csv)
}

/// Write a timing table as CSV.
pub fn write_table_csv(name: &str, rows: &[TableRow], dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut csv = String::from("label,size,elapsed_us\n");
    for row in rows {
        for (n, us) in &row.cells {
            let _ = writeln!(csv, "{:?},{},{}", row.label, n, us);
        }
    }
    std::fs::write(dir.join(format!("{name}.csv")), csv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigPoint;

    #[test]
    fn human_formats() {
        assert_eq!(human(1234.0), "1.23k");
        assert_eq!(human(5.1e6), "5.10M");
        assert_eq!(human(2.3e9), "2.30G");
        assert_eq!(human(42.0), "42.00");
        assert_eq!(human(345e6), "345M");
    }

    #[test]
    fn figure_renders_all_configs() {
        let fig = Figure {
            id: "figX".into(),
            caption: "test".into(),
            unit: "u/s".into(),
            points: vec![
                FigPoint {
                    figure: "figX".into(),
                    nodes: 1,
                    config: "A".into(),
                    throughput: 10.0,
                    per_node: 10.0,
                    efficiency: 1.0,
                    elapsed_ms: 1.0,
                    dyn_check_ms: 0.0,
                },
                FigPoint {
                    figure: "figX".into(),
                    nodes: 2,
                    config: "A".into(),
                    throughput: 18.0,
                    per_node: 9.0,
                    efficiency: 0.9,
                    elapsed_ms: 1.0,
                    dyn_check_ms: 0.0,
                },
            ],
        };
        let text = render_figure(&fig, true);
        assert!(text.contains("figX"));
        assert!(text.contains("A"));
        assert!(text.contains("90%"));
    }
}
