//! Replication-overhead sweep: what the silent-data-corruption defense
//! costs, written to `BENCH_PR9.json` by `figures -- sdc`.
//!
//! Each golden app runs in validation mode under a seeded corrupting
//! fault schedule at replication factors k ∈ {1, 2, 3}. k = 1 is the
//! undefended baseline (the policy is inert below k = 2, so corrupted
//! commits are counted as escapes); k = 2 is the production digest-vote
//! defense; k = 3 shows how the overhead scales with a deeper vote. The
//! headline columns are the makespan overhead relative to a fault-free
//! run of the same app and the replica executions that buy it.
//!
//! The sweep is simulated time, not wall clock, so every number is a
//! pure function of `(seed, app)` and reproducible bit-for-bit. The
//! sweep also re-asserts the defense contract while it measures: every
//! defended point must finish with zero escapes and a store byte-equal
//! to the fault-free run, and the undefended point must replicate
//! nothing.

use il_apps::{circuit, soleil, stencil};
use il_machine::Stage;
use il_runtime::{execute, Program, ReplicationConfig, RuntimeConfig};
use il_testkit::Json;

/// Replication factors swept per app: undefended, digest vote, deep vote.
const FACTORS: [usize; 3] = [1, 2, 3];
/// Nodes in the validation-mode machine.
const NODES: usize = 4;

/// One `(app, k)` cell of the sweep.
#[derive(Clone, Debug)]
pub struct SdcPoint {
    /// Golden app name.
    pub app: String,
    /// Total executions per selected task (1 = defense off).
    pub k: usize,
    /// Simulated makespan of the corrupted run.
    pub makespan_ns: u64,
    /// Makespan of the fault-free run of the same app.
    pub clean_makespan_ns: u64,
    /// `makespan / undefended_makespan - 1`: the defense's headline
    /// cost, relative to the k = 1 run under the *same* corrupting
    /// fault schedule — so the fault runtime's fixed protocol overhead
    /// (heartbeats, recovery checks) cancels and only the replication
    /// cost remains.
    pub overhead_frac: f64,
    /// Simulated node-time spent in the verify stage.
    pub verify_busy_ns: u64,
    /// Tasks the policy selected for replicated execution.
    pub replicated_tasks: u64,
    /// Extra (non-primary) replica executions performed.
    pub replicas: u64,
    /// Corrupted outputs caught by the digest vote.
    pub detected: u64,
    /// Re-executions triggered by quarantined results.
    pub reruns: u64,
    /// Corrupted outputs that committed unverified (k = 1 only).
    pub escaped: u64,
    /// Corrupted payloads caught (defense on) / accepted (defense off).
    pub payload_detected: u64,
    /// Corrupted payloads accepted by receivers (defense off).
    pub payload_escaped: u64,
}

/// The full PR 9 sweep: one [`SdcPoint`] per golden app per factor.
#[derive(Clone, Debug)]
pub struct SdcSweep {
    /// Master corruption seed.
    pub seed: u64,
    /// Sweep cells, grouped by app, ascending k.
    pub points: Vec<SdcPoint>,
}

/// The golden apps at validation-mode sizes (the same shapes the SDC
/// acceptance tests pin).
fn golden_apps() -> Vec<(&'static str, Program)> {
    let stencil = stencil::build(&stencil::StencilConfig {
        iterations: 2,
        ..stencil::StencilConfig::tiny((2, 2))
    });
    let circuit = circuit::build(&circuit::CircuitConfig {
        iterations: 2,
        ..circuit::CircuitConfig::tiny(4)
    });
    let soleil = soleil::build(&soleil::SoleilConfig {
        iterations: 2,
        ..soleil::SoleilConfig::tiny((2, 1, 1))
    });
    vec![
        ("stencil", stencil.program),
        ("circuit", circuit.program),
        ("soleil", soleil.program),
    ]
}

/// Run the replication-overhead sweep under corruption seed `seed`.
pub fn replication_sweep(seed: u64) -> SdcSweep {
    let mut points = Vec::new();
    for (app, program) in golden_apps() {
        let clean_cfg = RuntimeConfig::validate(NODES);
        let clean = execute(&program, &clean_cfg);
        let mut undefended_ns = 0u64;
        for k in FACTORS {
            let cfg = clean_cfg
                .clone()
                .with_corruption(seed)
                .with_replication(ReplicationConfig::all(k));
            let report = execute(&program, &cfg);
            let sdc = report.sdc.clone().expect("corrupting run must carry SDC stats");
            if k >= 2 {
                assert_eq!(
                    sdc.escaped, 0,
                    "{app}/k={k}: corrupted outputs escaped the vote: {sdc:?}"
                );
                assert_eq!(
                    report.store, clean.store,
                    "{app}/k={k}: defended store diverged from fault-free"
                );
            } else {
                assert_eq!(
                    sdc.replicated_tasks + sdc.replicas + sdc.detected,
                    0,
                    "{app}/k={k}: an inert policy must not replicate: {sdc:?}"
                );
            }
            let makespan_ns = report.makespan.as_ns();
            if k == 1 {
                undefended_ns = makespan_ns;
            }
            points.push(SdcPoint {
                app: app.to_string(),
                k,
                makespan_ns,
                clean_makespan_ns: clean.makespan.as_ns(),
                overhead_frac: makespan_ns as f64 / undefended_ns.max(1) as f64 - 1.0,
                verify_busy_ns: report.stage_busy.get(Stage::Verify).as_ns(),
                replicated_tasks: sdc.replicated_tasks,
                replicas: sdc.replicas,
                detected: sdc.detected,
                reruns: sdc.reruns,
                escaped: sdc.escaped,
                payload_detected: sdc.payload_detected,
                payload_escaped: sdc.payload_escaped,
            });
        }
    }
    SdcSweep { seed, points }
}

impl SdcSweep {
    /// Render the sweep as an ASCII table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sdc defense: replication overhead, corruption seed {:#x}\n",
            self.seed
        ));
        out.push_str(
            "  app      k   makespan      overhead  verify-busy   repl  replicas  det  rerun  esc\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {:8} {}  {:>9} ns  {:>7.1}%  {:>8} ns  {:>5}  {:>8}  {:>3}  {:>5}  {:>3}\n",
                p.app,
                p.k,
                p.makespan_ns,
                p.overhead_frac * 100.0,
                p.verify_busy_ns,
                p.replicated_tasks,
                p.replicas,
                p.detected,
                p.reruns,
                p.escaped + p.payload_escaped,
            ));
        }
        out
    }

    /// The sweep as a `BENCH_PR9.json` trajectory document.
    pub fn to_json(&self) -> Json {
        let points: Vec<Json> = self
            .points
            .iter()
            .map(|p| {
                Json::obj()
                    .set("app", p.app.as_str())
                    .set("k", p.k)
                    .set("makespan_ns", p.makespan_ns)
                    .set("clean_makespan_ns", p.clean_makespan_ns)
                    .set("overhead_frac", p.overhead_frac)
                    .set("verify_busy_ns", p.verify_busy_ns)
                    .set("replicated_tasks", p.replicated_tasks)
                    .set("replicas", p.replicas)
                    .set("detected", p.detected)
                    .set("reruns", p.reruns)
                    .set("escaped", p.escaped)
                    .set("payload_detected", p.payload_detected)
                    .set("payload_escaped", p.payload_escaped)
            })
            .collect();
        Json::obj()
            .set("schema", "il-bench-trajectory-v1")
            .set("pr", "PR9")
            .set("corrupt_seed", self.seed)
            .set("replication_overhead", Json::Arr(points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep covers every (app, k) cell, measures real defense work
    /// at k >= 2, and is deterministic.
    #[test]
    fn sweep_shape_and_determinism() {
        let sweep = replication_sweep(0x5DC0);
        assert_eq!(sweep.points.len(), 3 * FACTORS.len());
        for p in &sweep.points {
            if p.k >= 2 {
                assert_eq!(p.escaped, 0, "{}: escape at k={}", p.app, p.k);
                assert!(p.replicas > 0, "{}: no replicas at k={}", p.app, p.k);
                assert!(
                    p.overhead_frac >= 0.0,
                    "{}: defense made the run faster at k={}",
                    p.app,
                    p.k
                );
            }
        }
        // Deeper votes never get cheaper: replicas grow with k per app.
        for app in ["stencil", "circuit", "soleil"] {
            let by_k: Vec<_> = sweep.points.iter().filter(|p| p.app == app).collect();
            assert!(by_k.windows(2).all(|w| w[0].replicas <= w[1].replicas));
        }
        let again = replication_sweep(0x5DC0);
        assert_eq!(format!("{:?}", sweep), format!("{:?}", again));
    }
}
