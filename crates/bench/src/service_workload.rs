//! Service-mode policy sweep: throughput and tail latency of the
//! multi-tenant scheduler under each built-in policy, written to
//! `BENCH_PR8.json` by `figures -- serve`.
//!
//! Two workloads, both pure functions of the seed (the simulated times
//! are DES output, so every number here is reproducible bit-for-bit):
//!
//! * **balanced** — the [`MixConfig::standard`] 8-tenant mix (golden
//!   apps + fuzzer programs, Poisson-like arrivals) run under FIFO,
//!   fair share, and aged priority. Reports per-policy session
//!   throughput and p50/p95/p99 end-to-end latency.
//! * **skewed** — the tail-latency adversary from
//!   [`il_apps::service_mix::skewed_mix`]: one tenant bursts a queue of
//!   moderately long sessions at time zero, hundreds of light sessions
//!   from other tenants arrive behind them. FIFO hands every freed slot
//!   back to the heavy tenant's queued burst, so light sessions wait
//!   for the whole burst to drain; fair share charges the heavy tenant
//!   its accumulated service and drains the light queue first. The
//!   headline number is the p99 gap — `fair_beats_fifo_p99` in the
//!   JSON, asserted by the CI smoke.

use il_apps::service_mix::{generate_mix, skewed_mix, MixConfig};
use il_machine::SimTime;
use il_runtime::{policy_by_name, Service, ServiceConfig, ServiceReport, SessionSpec};
use il_testkit::Json;

/// Slots in the benched service machine.
const SLOTS: usize = 2;
/// Heavy sessions in the skewed burst. Many moderate sessions rather
/// than a few huge ones: FIFO convoys the whole burst (both slots stay
/// heavy until all of it drains), while fair share only pays for the
/// two admitted before the first completion reveals the tenant's usage.
const HEAVY: usize = 10;

/// Latency/throughput digest of one policy over one workload.
#[derive(Clone, Debug)]
pub struct PolicyPoint {
    /// Policy name (`fifo`, `fair`, `aged-priority`).
    pub policy: String,
    /// Sessions that ran to completion.
    pub sessions: usize,
    /// Sessions rejected by queue backpressure.
    pub rejected: usize,
    /// Admission rounds the scheduler executed.
    pub rounds: u64,
    /// Simulated time at which the last session finished.
    pub makespan_ns: u64,
    /// Completed sessions per simulated second.
    pub throughput_per_s: f64,
    /// End-to-end latency percentiles (arrival → completion), nearest
    /// rank, over all completed sessions.
    pub p50_ns: u64,
    /// 95th percentile latency.
    pub p95_ns: u64,
    /// 99th percentile latency.
    pub p99_ns: u64,
    /// Mean admission rounds waited in the pending queue.
    pub mean_wait_rounds: f64,
}

/// The full PR 8 sweep: per-policy digests of the balanced and skewed
/// workloads plus the headline FIFO-vs-fair p99 contrast.
#[derive(Clone, Debug)]
pub struct ServiceSweep {
    /// Master seed of both workloads.
    pub seed: u64,
    /// Tenants in the balanced mix.
    pub tenants: u32,
    /// Balanced-mix digests, one per policy.
    pub balanced: Vec<PolicyPoint>,
    /// Skewed-mix digests, one per policy.
    pub skewed: Vec<PolicyPoint>,
}

/// Nearest-rank percentile of an unsorted latency sample.
fn percentile(latencies: &mut [u64], p: f64) -> u64 {
    assert!(!latencies.is_empty());
    latencies.sort_unstable();
    let rank = ((p / 100.0) * latencies.len() as f64).ceil() as usize;
    latencies[rank.clamp(1, latencies.len()) - 1]
}

fn digest(policy: &str, out: &ServiceReport) -> PolicyPoint {
    let mut latencies: Vec<u64> =
        out.sessions.iter().map(|s| s.latency().as_ns()).collect();
    let makespan_ns = out.makespan.as_ns();
    let secs = makespan_ns as f64 / 1e9;
    let wait_sum: u64 = out.sessions.iter().map(|s| s.wait_rounds).sum();
    PolicyPoint {
        policy: policy.to_string(),
        sessions: out.sessions.len(),
        rejected: out.rejected.len(),
        rounds: out.rounds,
        makespan_ns,
        throughput_per_s: if secs > 0.0 { out.sessions.len() as f64 / secs } else { 0.0 },
        p50_ns: percentile(&mut latencies, 50.0),
        p95_ns: percentile(&mut latencies, 95.0),
        p99_ns: percentile(&mut latencies, 99.0),
        mean_wait_rounds: wait_sum as f64 / out.sessions.len().max(1) as f64,
    }
}

/// Run one policy over a session stream on the standard benched
/// machine (`SLOTS` slots), with a queue deep enough that nothing is
/// rejected — latency comparisons across policies need identical
/// completed-session sets.
pub fn run_policy(sessions: &[SessionSpec], slot_nodes: usize, policy: &str) -> PolicyPoint {
    let mut svc = Service::new(
        ServiceConfig {
            slots: SLOTS,
            slot_nodes,
            queue_cap: sessions.len().max(1),
            faults: None,
            replication_overrides: vec![],
        },
        policy_by_name(policy),
    );
    let out = svc.run(sessions);
    assert!(out.rejected.is_empty(), "bench queue must absorb the whole stream");
    assert_eq!(out.sessions.len(), sessions.len(), "bench lost sessions");
    digest(policy, &out)
}

/// Run the whole sweep. `light` scales the skewed mix's light-session
/// count; at the default size (1500) the p99 rank lands past the heavy
/// burst and fair share's deferred heavies, so the percentile measures
/// the light tail — the population the two policies actually treat
/// differently.
pub fn service_sweep(seed: u64, light: usize) -> ServiceSweep {
    let cfg = MixConfig::standard(seed);
    let balanced_sessions = generate_mix(&cfg);
    let skew_cfg = MixConfig { mean_gap: SimTime::us(900), ..cfg.clone() };
    let skewed_sessions = skewed_mix(&skew_cfg, HEAVY, light);

    let policies = ["fifo", "fair", "aged-priority"];
    ServiceSweep {
        seed,
        tenants: cfg.tenants,
        balanced: policies
            .iter()
            .map(|p| run_policy(&balanced_sessions, cfg.slot_nodes, p))
            .collect(),
        skewed: policies
            .iter()
            .map(|p| run_policy(&skewed_sessions, cfg.slot_nodes, p))
            .collect(),
    }
}

impl ServiceSweep {
    fn point(p: &PolicyPoint) -> Json {
        Json::obj()
            .set("policy", p.policy.as_str())
            .set("sessions", p.sessions)
            .set("rejected", p.rejected)
            .set("rounds", p.rounds)
            .set("makespan_ns", p.makespan_ns)
            .set("throughput_sessions_per_s", p.throughput_per_s)
            .set("p50_ns", p.p50_ns)
            .set("p95_ns", p.p95_ns)
            .set("p99_ns", p.p99_ns)
            .set("mean_wait_rounds", p.mean_wait_rounds)
    }

    /// The skewed-mix p99 of `policy`.
    fn skew_p99(&self, policy: &str) -> u64 {
        self.skewed.iter().find(|p| p.policy == policy).expect("policy benched").p99_ns
    }

    /// Serialize as the `BENCH_PR8.json` trajectory.
    pub fn to_json(&self) -> Json {
        let fifo = self.skew_p99("fifo");
        let fair = self.skew_p99("fair");
        Json::obj()
            .set("schema", "il-bench-trajectory-v1")
            .set("pr", "PR8")
            .set("seed", self.seed)
            .set("tenants", self.tenants as u64)
            .set("slots", SLOTS)
            .set("policies", Json::Arr(self.balanced.iter().map(Self::point).collect()))
            .set("skewed", Json::Arr(self.skewed.iter().map(Self::point).collect()))
            .set("skew_fifo_p99_ns", fifo)
            .set("skew_fair_p99_ns", fair)
            .set("fair_beats_fifo_p99", fair < fifo)
    }

    /// Human-readable summary for stdout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Service-mode policy sweep (seed {:#x}, {} tenants, {} slots)\n",
            self.seed, self.tenants, SLOTS
        ));
        for (name, points) in [("balanced", &self.balanced), ("skewed", &self.skewed)] {
            out.push_str(&format!("  {name} mix:\n"));
            for p in points.iter() {
                out.push_str(&format!(
                    "    {:>13}: {:>4} sessions  {:>9.1}/s  p50 {:>10}ns  p95 {:>10}ns  \
                     p99 {:>10}ns  wait {:.2} rounds\n",
                    p.policy,
                    p.sessions,
                    p.throughput_per_s,
                    p.p50_ns,
                    p.p95_ns,
                    p.p99_ns,
                    p.mean_wait_rounds
                ));
            }
        }
        let (fifo, fair) = (self.skew_p99("fifo"), self.skew_p99("fair"));
        out.push_str(&format!(
            "  skewed p99: fifo {}ns vs fair {}ns ({}, ratio {:.2})\n",
            fifo,
            fair,
            if fair < fifo { "fair wins" } else { "FAIR DID NOT WIN" },
            fifo as f64 / fair.max(1) as f64
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Percentiles are nearest-rank: pinned on a known sample.
    #[test]
    fn percentile_is_nearest_rank() {
        let mut v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&mut v, 50.0), 50);
        assert_eq!(percentile(&mut v, 95.0), 95);
        assert_eq!(percentile(&mut v, 99.0), 99);
        let mut w = vec![7u64];
        assert_eq!(percentile(&mut w, 99.0), 7);
    }

    /// The headline property at a debug-friendly size: under the skewed
    /// mix, fair share's light-session tail beats FIFO's. (The full-size
    /// all-session p99 contrast is measured by `figures -- serve` in
    /// release and recorded in BENCH_PR8.json.)
    #[test]
    fn fair_share_beats_fifo_tail_on_skewed_mix() {
        let cfg = MixConfig { mean_gap: SimTime::us(900), ..MixConfig::standard(11) };
        let sessions = skewed_mix(&cfg, HEAVY, 300);
        let light_p99 = |policy: &str| -> u64 {
            let mut svc = Service::new(
                ServiceConfig {
                    slots: SLOTS,
                    slot_nodes: cfg.slot_nodes,
                    queue_cap: sessions.len(),
                    faults: None,
                    replication_overrides: vec![],
                },
                policy_by_name(policy),
            );
            let out = svc.run(&sessions);
            let mut lat: Vec<u64> = out
                .sessions
                .iter()
                .filter(|s| s.tenant != 0)
                .map(|s| s.latency().as_ns())
                .collect();
            percentile(&mut lat, 99.0)
        };
        let fifo = light_p99("fifo");
        let fair = light_p99("fair");
        assert!(
            fair < fifo,
            "fair share must cap the light tail: fair p99 {fair}ns vs fifo p99 {fifo}ns"
        );
    }
}
