//! Tables 2–3: wall-clock timings of the dynamic projection-functor
//! checks.
//!
//! Unlike the figures, these are *real* measurements of this crate's
//! checker on the host machine — the dynamic checks are plain single-node
//! code, so they are directly comparable to the paper's microsecond
//! numbers. Each cell averages 5 runs (as in §6), and the chosen functors
//! and domains are safe so the early-exit path never triggers, matching
//! the paper's methodology.

use il_analysis::{cross_check, self_check, ArgCheck, ProjExpr};
use il_geometry::Domain;
use std::time::Instant;

/// A functor family: builds the row's functor for a given domain size.
type FunctorFamily = Box<dyn Fn(u64) -> ProjExpr>;

/// One row of a timing table: elapsed microseconds per domain size.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Row label (functor name or argument count).
    pub label: String,
    /// `(domain size, elapsed µs)` cells.
    pub cells: Vec<(u64, f64)>,
}

/// Domain sizes used by the paper's tables.
pub const SIZES: [u64; 4] = [1_000, 10_000, 100_000, 1_000_000];

const RUNS: u32 = 5;

fn time_us<F: FnMut()>(mut f: F) -> f64 {
    // Warm-up run, then the 5-run average of §6.
    f();
    let start = Instant::now();
    for _ in 0..RUNS {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / RUNS as f64
}

/// Table 2: self-check timings for identity, linear, modular, and
/// quadratic functors. The launch domain size equals the number of
/// sub-collections.
pub fn table2() -> Vec<TableRow> {
    let rows: Vec<(&str, FunctorFamily)> = vec![
        ("Identity i", Box::new(|_| ProjExpr::Identity)),
        ("Linear ai+b", Box::new(|_| ProjExpr::linear(1, 3))),
        (
            "Modular (i+k) mod N",
            Box::new(|n| ProjExpr::Modular { a: 1, b: 7, m: n as i64 }),
        ),
        (
            "Quadratic ai^2+bi+c",
            Box::new(|_| ProjExpr::Quadratic { a: 0, b: 1, c: 2 }),
        ),
    ];
    rows.into_iter()
        .map(|(label, make)| {
            let cells = SIZES
                .iter()
                .map(|&n| {
                    let functor = make(n);
                    // Colors sized so every value is in bounds and the
                    // check stays conflict-free (valid launches only).
                    let colors = Domain::range(n as i64 + 16);
                    let domain = Domain::range(n as i64);
                    let us = time_us(|| {
                        let r = self_check(&domain, &functor, &colors);
                        assert!(r.is_safe(), "{label}: check must not early-exit");
                    });
                    (n, us)
                })
                .collect();
            TableRow { label: label.to_string(), cells }
        })
        .collect()
}

/// Table 3: cross-check timings for 2–5 arguments sharing a partition.
/// The launch domain is half the number of sub-collections: one writer on
/// even colors, readers on odd colors (disjoint images, no early exit).
pub fn table3() -> Vec<TableRow> {
    (2usize..=5)
        .map(|nargs| {
            let cells = SIZES
                .iter()
                .map(|&n| {
                    let domain = Domain::range(n as i64);
                    let colors = Domain::range(2 * n as i64);
                    let writer = ProjExpr::linear(2, 0);
                    let reader = ProjExpr::linear(2, 1);
                    let us = time_us(|| {
                        let args: Vec<ArgCheck<'_>> = (0..nargs)
                            .map(|k| ArgCheck {
                                index: k,
                                functor: if k == 0 { &writer } else { &reader },
                                writes: k == 0,
                            })
                            .collect();
                        let r = cross_check(&domain, &args, &colors);
                        assert!(r.is_safe(), "cross-check must not early-exit");
                    });
                    (n, us)
                })
                .collect();
            TableRow { label: format!("{nargs}"), cells }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_and_monotonicity() {
        let rows = table2();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.cells.len(), 4);
            // Linear scaling: the 10^6 cell should be much larger than
            // the 10^3 cell (loose sanity bound, not a benchmark).
            assert!(row.cells[3].1 > row.cells[0].1, "{row:?}");
        }
    }

    #[test]
    fn table3_rows_grow_with_arguments() {
        let rows = table3();
        assert_eq!(rows.len(), 4);
        // More arguments = more work at the largest size.
        let big: Vec<f64> = rows.iter().map(|r| r.cells[3].1).collect();
        assert!(big[3] > big[0], "{big:?}");
    }
}

/// §6.3 extrapolation: the paper argues the dynamic check "can be
/// executed in parallel with the runtime analysis and tasks themselves,
/// so the exact cost of a check is unimportant as long as it is less on
/// average than the application's task granularity" — and that this
/// holds "at the scales of all known current and future supercomputers".
///
/// We measure the real per-evaluation cost of the self-check on this
/// host and project the total check time out to launch domains of 10⁹
/// points (three orders of magnitude beyond a 10⁶-task machine),
/// comparing against representative task granularities.
pub fn extrapolate_checks() -> Vec<TableRow> {
    // Measure per-eval cost at 10⁶ (steady-state, allocation amortized).
    let n = 1_000_000i64;
    let functor = ProjExpr::linear(1, 3);
    let domain = Domain::range(n);
    let colors = Domain::range(n + 16);
    let us = time_us(|| {
        assert!(self_check(&domain, &functor, &colors).is_safe());
    });
    let per_eval_us = us / n as f64;

    let sizes: [u64; 7] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000];
    let mut rows = vec![TableRow {
        label: "projected check time (ms)".into(),
        cells: sizes
            .iter()
            .map(|&d| (d, per_eval_us * d as f64 / 1_000.0)) // report ms in the µs slot
            .collect(),
    }];
    for (label, gran_ms) in [("vs 1 ms tasks (%)", 1.0), ("vs 10 ms tasks (%)", 10.0), ("vs 100 ms tasks (%)", 100.0)] {
        rows.push(TableRow {
            label: label.into(),
            cells: sizes
                .iter()
                .map(|&d| (d, per_eval_us * d as f64 / 1_000.0 / gran_ms * 100.0))
                .collect(),
        });
    }
    rows
}
