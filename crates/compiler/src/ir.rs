//! The task-loop IR.
//!
//! Models the shape the Regent optimizer works on: a counted loop whose
//! body launches one task with region arguments `p[f(i)]` (a partition
//! indexed by a projection-functor expression of the loop variable), plus
//! simple statements that may read, assign, or reduce to scalars.

use il_analysis::ProjExpr;
use il_geometry::Domain;
use il_region::{FieldId, FieldSpaceId, IndexPartitionId, Privilege, RegionTreeId};
use std::fmt;

/// A region argument `p[f(i)]` of the launched task.
#[derive(Clone, Debug)]
pub struct RegionArg {
    /// Display name of the partition variable (diagnostics).
    pub name: String,
    /// The partition `p`.
    pub partition: IndexPartitionId,
    /// The indexing expression `f(i)`.
    pub functor: ProjExpr,
    /// The privilege the task declares on this parameter.
    pub privilege: Privilege,
    /// Fields accessed (empty = all).
    pub fields: Vec<FieldId>,
    /// The region tree of the partitioned collection.
    pub tree: RegionTreeId,
    /// The collection's field space.
    pub field_space: FieldSpaceId,
}

/// How a body statement uses a scalar variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScalarUse {
    /// The scalar is only read.
    Read,
    /// The scalar is assigned a value that does not depend on its prior
    /// value in a reduction pattern (a genuine loop-carried dependence).
    Assign,
    /// The scalar accumulates through a commutative reduction
    /// (`acc += …`), which §4 explicitly permits.
    Reduce,
}

/// A simple (non-launch) statement of the loop body.
#[derive(Clone, Debug)]
pub enum LoopStmt {
    /// A local variable declaration (always allowed).
    LocalDecl {
        /// Variable name.
        name: String,
    },
    /// A use of a scalar defined outside the loop.
    ScalarAccess {
        /// Variable name.
        name: String,
        /// How it is used.
        usage: ScalarUse,
    },
}

/// A counted task-launch loop: `for i in D do T(p₁[f₁(i)], …) end`.
#[derive(Clone, Debug)]
pub struct TaskLoop {
    /// Name of the launched task (diagnostics).
    pub task_name: String,
    /// The loop domain D.
    pub domain: Domain,
    /// The region arguments.
    pub args: Vec<RegionArg>,
    /// Other simple statements in the body.
    pub body: Vec<LoopStmt>,
}

impl TaskLoop {
    /// Names of scalars with genuine loop-carried dependencies (read and
    /// assigned in the body, not as a reduction).
    pub fn loop_carried_scalars(&self) -> Vec<&str> {
        let mut carried = Vec::new();
        for stmt in &self.body {
            if let LoopStmt::ScalarAccess { name, usage } = stmt {
                if *usage == ScalarUse::Assign
                    && !carried.contains(&name.as_str())
                {
                    carried.push(name.as_str());
                }
            }
        }
        carried
    }
}

impl fmt::Display for TaskLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "for i in {:?} do {}(", self.domain, self.task_name)?;
        for (k, arg) in self.args.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}[{:?}]", arg.name, arg.functor)?;
        }
        write!(f, ") end")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_region::{FieldSpaceId, IndexPartitionId, RegionTreeId};

    fn arg(name: &str, functor: ProjExpr) -> RegionArg {
        RegionArg {
            name: name.into(),
            partition: IndexPartitionId(0),
            functor,
            privilege: Privilege::Read,
            fields: vec![],
            tree: RegionTreeId(0),
            field_space: FieldSpaceId(0),
        }
    }

    #[test]
    fn display_renders_listing1_shape() {
        let l = TaskLoop {
            task_name: "foo".into(),
            domain: Domain::range(4),
            args: vec![arg("p", ProjExpr::Identity)],
            body: vec![],
        };
        assert_eq!(format!("{l}"), "for i in [(0)..(3)] do foo(p[λi.i]) end");
    }

    #[test]
    fn loop_carried_detection() {
        let l = TaskLoop {
            task_name: "t".into(),
            domain: Domain::range(4),
            args: vec![],
            body: vec![
                LoopStmt::LocalDecl { name: "tmp".into() },
                LoopStmt::ScalarAccess { name: "acc".into(), usage: ScalarUse::Reduce },
                LoopStmt::ScalarAccess { name: "bad".into(), usage: ScalarUse::Assign },
                LoopStmt::ScalarAccess { name: "cfg".into(), usage: ScalarUse::Read },
            ],
        };
        assert_eq!(l.loop_carried_scalars(), vec!["bad"]);
    }
}
