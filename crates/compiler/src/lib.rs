//! A mini-Regent loop optimizer for index launches.
//!
//! The Regent compiler turns apparently sequential task-launch loops
//! (Listings 1–2 of the paper) into index launches when it can prove — or
//! dynamically check — non-interference (§4). This crate reproduces that
//! pass over a small loop IR:
//!
//! 1. **Eligibility**: the loop body contains a task launch plus simple
//!    statements, and no loop-carried scalar dependencies other than
//!    reductions.
//! 2. **Hybrid analysis**: the §3 self- and cross-checks run per argument
//!    via [`il_analysis`]; statically safe loops become plain index
//!    launches, statically *undecidable* loops become a guarded launch —
//!    a dynamic check (Listing 3) followed by a branch between the index
//!    launch and the original sequential loop — and statically unsafe
//!    loops stay sequential.
//! 3. **Lowering**: plans lower onto [`il_runtime`] launch descriptors.
//!
//! The optimizer also produces compiler-style diagnostics mirroring the
//! paper's walkthrough of Listing 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ir;
pub mod lower;
pub mod optimizer;

pub use ir::{LoopStmt, RegionArg, ScalarUse, TaskLoop};
pub use lower::lower_plan;
pub use optimizer::{optimize_loop, Plan};
