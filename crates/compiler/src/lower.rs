//! Lowering optimizer plans onto runtime launch descriptors.
//!
//! The last step of the Regent pass: a statically-safe or guarded loop
//! becomes a single index-launch API call to the runtime; a sequential
//! loop becomes |D| single-task launches (index launches of singleton
//! domains, issued in loop order). The guarded case corresponds to
//! Listing 3's generated branch — the check itself already ran inside
//! [`optimize_loop`](crate::optimize_loop)'s plan, and the runtime
//! re-charges its cost when dynamic checks are enabled.

use crate::ir::TaskLoop;
use crate::optimizer::Plan;
use il_machine::SimTime;
use il_runtime::{CostSpec, IndexLaunchDesc, ProgramBuilder, RegionReq, TaskId};

/// Lower `plan` for `l` into launch descriptors appended to `builder`.
///
/// `task` is the runtime task variant to invoke and `cost` the modeled
/// kernel duration. Returns the number of operations appended (1 for an
/// index launch, |D| for a sequential loop).
pub fn lower_plan(
    builder: &mut ProgramBuilder,
    plan: &Plan,
    l: &TaskLoop,
    task: TaskId,
    cost: SimTime,
) -> usize {
    let reqs: Vec<RegionReq> = l
        .args
        .iter()
        .map(|a| RegionReq {
            partition: a.partition,
            functor: builder.functor(a.functor.clone()),
            privilege: a.privilege,
            fields: a.fields.clone(),
            tree: a.tree,
            field_space: a.field_space,
        })
        .collect();

    match plan {
        Plan::IndexLaunch { .. } | Plan::Guarded { .. } => {
            builder.index_launch(IndexLaunchDesc {
                task,
                domain: l.domain.clone(),
                reqs,
                scalars: vec![],
                cost: CostSpec::Uniform(cost),
                shard: None,
            });
            1
        }
        Plan::Sequential { .. } => {
            // One singleton launch per point, in loop order. The runtime's
            // dependence analysis still extracts whatever parallelism the
            // data allows, exactly as Legion does for individual task
            // launches.
            let mut count = 0;
            for point in l.domain.iter() {
                let singleton = il_geometry::Domain::sparse(vec![point]);
                builder.index_launch(IndexLaunchDesc {
                    task,
                    domain: singleton,
                    reqs: reqs.clone(),
                    scalars: vec![],
                    cost: CostSpec::Uniform(cost),
                    shard: None,
                });
                count += 1;
            }
            count
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::RegionArg;
    use crate::optimizer::optimize_loop;
    use il_analysis::ProjExpr;
    use il_geometry::Domain;
    use il_region::{equal_partition_1d, FieldKind, FieldSpaceDesc, Privilege};
    use il_runtime::{execute, RuntimeConfig};

    #[test]
    fn lowered_plans_execute() {
        let mut b = ProgramBuilder::new();
        let mut fsd = FieldSpaceDesc::new();
        let f = fsd.add("x", FieldKind::F64);
        let fs = b.forest.create_field_space(fsd);
        let region = b.forest.create_region(Domain::range(20), fs);
        let part = equal_partition_1d(&mut b.forest, region.space, 4);

        let bump = b.task("bump", move |ctx| {
            let pts: Vec<_> = ctx.domain(0).iter().collect();
            for p in pts {
                let v: f64 = ctx.read(0, f, p);
                ctx.write(0, f, p, v + 1.0);
            }
        });

        // A statically-safe loop and a statically-unsafe one (same
        // functor write+read conflict becomes per-point launches).
        let safe = TaskLoop {
            task_name: "bump".into(),
            domain: Domain::range(4),
            args: vec![RegionArg {
                name: "p".into(),
                partition: part,
                functor: ProjExpr::Identity,
                privilege: Privilege::ReadWrite,
                fields: vec![],
                tree: region.tree,
                field_space: fs,
            }],
            body: vec![],
        };
        let unsafe_loop = TaskLoop {
            domain: Domain::range(4),
            args: vec![RegionArg {
                functor: ProjExpr::Modular { a: 1, b: 0, m: 2 },
                ..safe.args[0].clone()
            }],
            ..safe.clone()
        };

        let plan_safe = optimize_loop(&b.forest, &safe);
        let plan_seq = optimize_loop(&b.forest, &unsafe_loop);
        assert!(plan_safe.is_index_launch());
        assert!(!plan_seq.is_index_launch());

        let n1 = lower_plan(&mut b, &plan_safe, &safe, bump, SimTime::us(10));
        let n2 = lower_plan(&mut b, &plan_seq, &unsafe_loop, bump, SimTime::us(10));
        assert_eq!(n1, 1);
        assert_eq!(n2, 4);

        let program = b.build();
        let report = execute(&program, &RuntimeConfig::validate(2));
        // 4 point tasks from the index launch + 4 singleton launches.
        assert_eq!(report.tasks, 8);
        // Safe launch bumps every element once; the sequential loop's
        // tasks bump blocks 0 and 1 twice each (functor i%2 over [0,4)).
        let store = report.store.unwrap();
        let forest = &program.forest;
        let mut total = 0.0;
        for s in 0..forest.num_spaces() as u32 {
            let space = il_region::IndexSpaceId(s);
            if forest.space(space).parent.is_some() {
                if let Some(inst) = store.get((region.tree, space)) {
                    for p in forest.space(space).domain.iter() {
                        total += inst.get::<f64>(f, p);
                    }
                }
            }
        }
        // 20 elements bumped once (20) + blocks 0,1 (10 elements) bumped
        // twice more (20).
        assert_eq!(total, 40.0);
    }
}
