//! The hybrid loop-optimization pass (§4).

use crate::ir::TaskLoop;
use il_analysis::{analyze_launch, DynamicCheckPlan, HybridVerdict, LaunchArg, UnsafeReason};
use il_region::RegionForest;
use std::fmt;

/// The optimizer's decision for one loop.
#[derive(Debug)]
pub enum Plan {
    /// Statically proven safe: emit a plain index launch.
    IndexLaunch {
        /// Compiler-style explanation of the proof.
        diagnostics: Vec<String>,
    },
    /// Statically undecidable: emit the dynamic check of Listing 3
    /// followed by a branch between the index launch and the original
    /// loop.
    Guarded {
        /// The generated dynamic check.
        check: DynamicCheckPlan,
        /// Compiler-style explanation.
        diagnostics: Vec<String>,
    },
    /// Statically proven unsafe: keep the sequential task loop.
    Sequential {
        /// Why the loop cannot be an index launch.
        reason: Option<UnsafeReason>,
        /// Compiler-style explanation (mirrors the paper's Listing 2
        /// walkthrough).
        diagnostics: Vec<String>,
    },
}

impl Plan {
    /// True when the loop executes as an index launch (possibly guarded).
    pub fn is_index_launch(&self) -> bool {
        !matches!(self, Plan::Sequential { .. })
    }

    /// The diagnostics of any variant.
    pub fn diagnostics(&self) -> &[String] {
        match self {
            Plan::IndexLaunch { diagnostics }
            | Plan::Guarded { diagnostics, .. }
            | Plan::Sequential { diagnostics, .. } => diagnostics,
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head = match self {
            Plan::IndexLaunch { .. } => "index launch (statically verified)",
            Plan::Guarded { .. } => "index launch guarded by dynamic check",
            Plan::Sequential { .. } => "sequential task loop",
        };
        writeln!(f, "decision: {head}")?;
        for d in self.diagnostics() {
            writeln!(f, "  note: {d}")?;
        }
        Ok(())
    }
}

/// Optimize one task-launch loop.
///
/// Follows §4: check eligibility (no loop-carried scalar dependencies
/// other than reductions), then run the hybrid §3 analysis over the
/// arguments. Every decision is accompanied by diagnostics.
pub fn optimize_loop(forest: &RegionForest, l: &TaskLoop) -> Plan {
    let mut diagnostics = Vec::new();

    // Eligibility: loop-carried scalar dependencies.
    let carried = l.loop_carried_scalars();
    if !carried.is_empty() {
        diagnostics.push(format!(
            "loop has loop-carried scalar dependence(s) on {:?}; only reductions are permitted",
            carried
        ));
        return Plan::Sequential { reason: None, diagnostics };
    }
    diagnostics.push("no loop-carried dependencies (other than reductions)".into());

    let args: Vec<LaunchArg> = l
        .args
        .iter()
        .map(|a| LaunchArg {
            partition: a.partition,
            functor: a.functor.clone(),
            privilege: a.privilege,
            fields: a.fields.clone(),
        })
        .collect();

    match analyze_launch(forest, &l.domain, &args) {
        HybridVerdict::SafeStatic => {
            for a in &l.args {
                diagnostics.push(format!(
                    "argument {}[{:?}] ({}) verified statically",
                    a.name, a.functor, a.privilege
                ));
            }
            Plan::IndexLaunch { diagnostics }
        }
        HybridVerdict::NeedsDynamic(check) => {
            for group in &check.groups {
                let names: Vec<&str> = group
                    .args
                    .iter()
                    .map(|(i, _, _)| l.args[*i].name.as_str())
                    .collect();
                diagnostics.push(format!(
                    "arguments {names:?} on partition {:?} could not be verified statically; \
                     emitting a dynamic bitmask check over {} sub-collections",
                    group.partition,
                    group.color_bounds.volume()
                ));
            }
            diagnostics.push(format!(
                "dynamic check costs {} functor evaluation(s); on conflict the original loop runs",
                check.planned_evals()
            ));
            Plan::Guarded { check, diagnostics }
        }
        HybridVerdict::Unsafe(reason) => {
            // Mirror the paper's Listing 2 bullet-point reasoning.
            match &reason {
                UnsafeReason::NonInjectiveWrite { arg } => {
                    let a = &l.args[*arg];
                    diagnostics.push(format!(
                        "{} requests {} privileges on its argument {}",
                        l.task_name, a.privilege, a.name
                    ));
                    diagnostics.push(format!(
                        "the projection functor {:?} of {} is non-injective over the launch domain",
                        a.functor, a.name
                    ));
                    diagnostics.push(
                        "therefore two simultaneous invocations would receive the same \
                         sub-collection and race"
                            .into(),
                    );
                }
                other => diagnostics.push(other.to_string()),
            }
            Plan::Sequential { reason: Some(reason), diagnostics }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{LoopStmt, RegionArg, ScalarUse};
    use il_analysis::ProjExpr;
    use il_geometry::Domain;
    use il_region::{
        equal_partition_1d, FieldSpaceDesc, FieldSpaceId, IndexPartitionId, Privilege,
        RegionTreeId,
    };

    struct Fx {
        forest: RegionForest,
        p: IndexPartitionId,
        q: IndexPartitionId,
        tree_p: RegionTreeId,
        tree_q: RegionTreeId,
        fs: FieldSpaceId,
    }

    fn fixture() -> Fx {
        let mut forest = RegionForest::new();
        let fs = forest.create_field_space(FieldSpaceDesc::new());
        let rp = forest.create_region(Domain::range(50), fs);
        let rq = forest.create_region(Domain::range(50), fs);
        let p = equal_partition_1d(&mut forest, rp.space, 5);
        let q = equal_partition_1d(&mut forest, rq.space, 5);
        Fx { forest, p, q, tree_p: rp.tree, tree_q: rq.tree, fs }
    }

    fn arg(fx: &Fx, name: &str, part: IndexPartitionId, functor: ProjExpr, privilege: Privilege) -> RegionArg {
        let tree = if part == fx.p { fx.tree_p } else { fx.tree_q };
        RegionArg {
            name: name.into(),
            partition: part,
            functor,
            privilege,
            fields: vec![],
            tree,
            field_space: fx.fs,
        }
    }

    #[test]
    fn listing1_first_loop_is_static_index_launch() {
        // for i = 0, N do foo(p[i]) — trivial functor.
        let fx = fixture();
        let l = TaskLoop {
            task_name: "foo".into(),
            domain: Domain::range(5),
            args: vec![arg(&fx, "p", fx.p, ProjExpr::Identity, Privilege::ReadWrite)],
            body: vec![],
        };
        let plan = optimize_loop(&fx.forest, &l);
        assert!(matches!(plan, Plan::IndexLaunch { .. }), "{plan}");
    }

    #[test]
    fn listing1_second_loop_is_guarded() {
        // for i = 0, N do bar(q[f(i)]) — opaque functor.
        let fx = fixture();
        let l = TaskLoop {
            task_name: "bar".into(),
            domain: Domain::range(5),
            args: vec![arg(
                &fx,
                "q",
                fx.q,
                ProjExpr::opaque(|p| p), // opaque identity: safe, but only dynamically provable
                Privilege::Write,
            )],
            body: vec![],
        };
        let plan = optimize_loop(&fx.forest, &l);
        let Plan::Guarded { check, .. } = &plan else {
            panic!("expected guarded plan, got {plan}");
        };
        assert!(check.run().is_ok());
    }

    #[test]
    fn listing2_rejected_with_papers_reasoning() {
        // for i = 0, 5 do foo(p[i], q[i%3]) with writes(q).
        let fx = fixture();
        let l = TaskLoop {
            task_name: "foo".into(),
            domain: Domain::range(5),
            args: vec![
                arg(&fx, "p", fx.p, ProjExpr::Identity, Privilege::Read),
                arg(&fx, "q", fx.q, ProjExpr::Modular { a: 1, b: 0, m: 3 }, Privilege::Write),
            ],
            body: vec![],
        };
        let plan = optimize_loop(&fx.forest, &l);
        let Plan::Sequential { reason, diagnostics } = &plan else {
            panic!("expected sequential, got {plan}");
        };
        assert!(matches!(reason, Some(UnsafeReason::NonInjectiveWrite { arg: 1 })));
        let text = diagnostics.join("\n");
        assert!(text.contains("writes"), "{text}");
        assert!(text.contains("non-injective"), "{text}");
    }

    #[test]
    fn loop_carried_scalar_blocks_optimization() {
        let fx = fixture();
        let l = TaskLoop {
            task_name: "foo".into(),
            domain: Domain::range(5),
            args: vec![arg(&fx, "p", fx.p, ProjExpr::Identity, Privilege::Read)],
            body: vec![LoopStmt::ScalarAccess { name: "prev".into(), usage: ScalarUse::Assign }],
        };
        let plan = optimize_loop(&fx.forest, &l);
        assert!(matches!(plan, Plan::Sequential { reason: None, .. }), "{plan}");
    }

    #[test]
    fn reduction_scalar_is_permitted() {
        let fx = fixture();
        let l = TaskLoop {
            task_name: "foo".into(),
            domain: Domain::range(5),
            args: vec![arg(&fx, "p", fx.p, ProjExpr::Identity, Privilege::Read)],
            body: vec![LoopStmt::ScalarAccess { name: "acc".into(), usage: ScalarUse::Reduce }],
        };
        assert!(optimize_loop(&fx.forest, &l).is_index_launch());
    }

    #[test]
    fn guarded_plan_rejects_at_runtime_on_conflict() {
        // Quadratic functor that degenerates: i² mod-like collisions via
        // opaque floor(i/2): dynamic check trips, loop stays sequential at
        // run time (the generated branch takes the task-loop arm).
        let fx = fixture();
        let l = TaskLoop {
            task_name: "bar".into(),
            domain: Domain::range(4),
            args: vec![arg(
                &fx,
                "q",
                fx.q,
                ProjExpr::opaque(|p| il_geometry::DomainPoint::new1(p.x() / 2)),
                Privilege::Write,
            )],
            body: vec![],
        };
        let plan = optimize_loop(&fx.forest, &l);
        let Plan::Guarded { check, .. } = &plan else {
            panic!("expected guarded plan");
        };
        assert!(check.run().is_err());
    }

    #[test]
    fn display_formats_decision() {
        let fx = fixture();
        let l = TaskLoop {
            task_name: "foo".into(),
            domain: Domain::range(5),
            args: vec![arg(&fx, "p", fx.p, ProjExpr::Identity, Privilege::ReadWrite)],
            body: vec![],
        };
        let text = format!("{}", optimize_loop(&fx.forest, &l));
        assert!(text.starts_with("decision: index launch (statically verified)"));
        assert!(text.contains("verified statically"));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::ir::{RegionArg, TaskLoop};
    use il_analysis::ProjExpr;
    use il_geometry::Domain;
    use il_region::{
        equal_partition_1d, FieldSpaceDesc, Privilege, RegionForest, ReductionKind,
    };

    #[test]
    fn mixed_reduction_arguments_stay_static() {
        // distribute_charge's shape: read wires + two same-op reductions
        // through different partitions of the node region.
        let mut forest = RegionForest::new();
        let fs = forest.create_field_space(FieldSpaceDesc::new());
        let wires = forest.create_region(Domain::range(40), fs);
        let nodes = forest.create_region(Domain::range(40), fs);
        let wp = equal_partition_1d(&mut forest, wires.space, 4);
        let np = equal_partition_1d(&mut forest, nodes.space, 4);
        let sum = Privilege::Reduce(ReductionKind::Sum.id());
        let l = TaskLoop {
            task_name: "distribute_charge".into(),
            domain: Domain::range(4),
            args: vec![
                RegionArg {
                    name: "w".into(),
                    partition: wp,
                    functor: ProjExpr::Identity,
                    privilege: Privilege::Read,
                    fields: vec![],
                    tree: wires.tree,
                    field_space: fs,
                },
                RegionArg {
                    name: "own".into(),
                    partition: np,
                    functor: ProjExpr::Identity,
                    privilege: sum,
                    fields: vec![],
                    tree: nodes.tree,
                    field_space: fs,
                },
                RegionArg {
                    name: "ghost".into(),
                    partition: np,
                    functor: ProjExpr::linear(1, 0),
                    privilege: sum,
                    fields: vec![],
                    tree: nodes.tree,
                    field_space: fs,
                },
            ],
            body: vec![],
        };
        let plan = optimize_loop(&forest, &l);
        assert!(matches!(plan, Plan::IndexLaunch { .. }), "{plan}");
    }

    #[test]
    fn composed_functor_verified_statically() {
        let mut forest = RegionForest::new();
        let fs = forest.create_field_space(FieldSpaceDesc::new());
        let region = forest.create_region(Domain::range(64), fs);
        let p = equal_partition_1d(&mut forest, region.space, 8);
        let l = TaskLoop {
            task_name: "t".into(),
            domain: Domain::range(4),
            args: vec![RegionArg {
                name: "p".into(),
                partition: p,
                // (i+4) o (i): injective composition, statically proven.
                functor: ProjExpr::Compose(
                    Box::new(ProjExpr::linear(1, 4)),
                    Box::new(ProjExpr::Identity),
                ),
                privilege: Privilege::Write,
                fields: vec![],
                tree: region.tree,
                field_space: fs,
            }],
            body: vec![],
        };
        assert!(matches!(optimize_loop(&forest, &l), Plan::IndexLaunch { .. }));
    }

    #[test]
    fn guarded_plan_display() {
        let mut forest = RegionForest::new();
        let fs = forest.create_field_space(FieldSpaceDesc::new());
        let region = forest.create_region(Domain::range(64), fs);
        let p = equal_partition_1d(&mut forest, region.space, 8);
        let l = TaskLoop {
            task_name: "t".into(),
            domain: Domain::range(4),
            args: vec![RegionArg {
                name: "q".into(),
                partition: p,
                functor: ProjExpr::opaque(|pt| pt),
                privilege: Privilege::Write,
                fields: vec![],
                tree: region.tree,
                field_space: fs,
            }],
            body: vec![],
        };
        let text = format!("{}", optimize_loop(&forest, &l));
        assert!(text.contains("guarded by dynamic check"), "{text}");
        assert!(text.contains("functor evaluation"), "{text}");
    }
}
