//! The `forall` builder: the §3 surface syntax
//! `forall(D, T, ⟨P₁,f₁⟩, …, ⟨Pₙ,fₙ⟩)` as a fluent API.

use il_analysis::ProjExpr;
use il_geometry::Domain;
use il_machine::SimTime;
use il_region::{FieldId, FieldSpaceId, IndexPartitionId, Privilege, RegionTreeId};
use il_runtime::{CostSpec, IndexLaunchDesc, ProgramBuilder, RegionReq, ShardingFn, TaskId};

/// Fluent builder for one index launch.
///
/// Each [`arg`](Forall::arg) is a ⟨partition, projection functor⟩ pair
/// with a privilege; non-collection arguments pass by value via
/// [`scalars`](Forall::scalars).
pub struct Forall {
    task: TaskId,
    domain: Domain,
    args: Vec<(IndexPartitionId, ProjExpr, Privilege, Vec<FieldId>, RegionTreeId, FieldSpaceId)>,
    scalars: Vec<f64>,
    cost: CostSpec,
    shard: Option<ShardingFn>,
}

impl Forall {
    /// Start a launch of `task` over `domain`.
    pub fn new(task: TaskId, domain: Domain) -> Self {
        Forall {
            task,
            domain,
            args: Vec::new(),
            scalars: Vec::new(),
            cost: CostSpec::Uniform(SimTime::us(10)),
            shard: None,
        }
    }

    /// Add a region argument touching all fields.
    pub fn arg(
        mut self,
        partition: IndexPartitionId,
        functor: ProjExpr,
        privilege: Privilege,
        tree: RegionTreeId,
        field_space: FieldSpaceId,
    ) -> Self {
        self.args.push((partition, functor, privilege, Vec::new(), tree, field_space));
        self
    }

    /// Add a region argument restricted to specific fields.
    pub fn arg_fields(
        mut self,
        partition: IndexPartitionId,
        functor: ProjExpr,
        privilege: Privilege,
        fields: Vec<FieldId>,
        tree: RegionTreeId,
        field_space: FieldSpaceId,
    ) -> Self {
        self.args.push((partition, functor, privilege, fields, tree, field_space));
        self
    }

    /// Pass scalar by-value arguments to every point task.
    pub fn scalars(mut self, scalars: Vec<f64>) -> Self {
        self.scalars = scalars;
        self
    }

    /// Set the modeled kernel duration per point task.
    pub fn cost(mut self, cost: SimTime) -> Self {
        self.cost = CostSpec::Uniform(cost);
        self
    }

    /// Override the sharding functor.
    pub fn shard(mut self, shard: ShardingFn) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Append the launch to a program.
    pub fn launch(self, builder: &mut ProgramBuilder) {
        let reqs = self
            .args
            .into_iter()
            .map(|(partition, functor, privilege, fields, tree, field_space)| RegionReq {
                partition,
                functor: builder.functor(functor),
                privilege,
                fields,
                tree,
                field_space,
            })
            .collect();
        builder.index_launch(IndexLaunchDesc {
            task: self.task,
            domain: self.domain,
            reqs,
            scalars: self.scalars,
            cost: self.cost,
            shard: self.shard,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_region::{equal_partition_1d, FieldKind, FieldSpaceDesc};
    use il_runtime::{execute, RuntimeConfig};

    #[test]
    fn forall_builds_and_runs() {
        let mut b = ProgramBuilder::new();
        let mut fsd = FieldSpaceDesc::new();
        let val = fsd.add("v", FieldKind::F64);
        let fs = b.forest.create_field_space(fsd);
        let region = b.forest.create_region(Domain::range(12), fs);
        let blocks = equal_partition_1d(&mut b.forest, region.space, 3);
        let fill = b.task("fill", move |ctx| {
            let pts: Vec<_> = ctx.domain(0).iter().collect();
            for p in pts {
                ctx.write(0, val, p, ctx.scalar(0));
            }
        });
        Forall::new(fill, Domain::range(3))
            .arg(blocks, ProjExpr::Identity, Privilege::Write, region.tree, fs)
            .scalars(vec![6.5])
            .cost(SimTime::us(25))
            .launch(&mut b);
        let program = b.build();
        let report = execute(&program, &RuntimeConfig::validate(3));
        assert_eq!(report.tasks, 3);
        let store = report.store.unwrap();
        let root = program.forest.tree_root(region.tree);
        let part = program.forest.space(root).partitions[0];
        for &space in program.forest.partition(part).children.values() {
            let inst = store.get((region.tree, space)).unwrap();
            for p in program.forest.domain(space).iter() {
                assert_eq!(inst.get::<f64>(val, p), 6.5);
            }
        }
    }
}
