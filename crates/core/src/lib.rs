//! # index-launch
//!
//! A reproduction of *"Index Launches: Scalable, Flexible Representation
//! of Parallel Task Groups"* (Soi et al., SC '21): a Legion/Regent-style
//! task-based programming model in which a group of |D| parallel tasks is
//! carried as a single O(1) descriptor — `forall(D, T, ⟨P₁,f₁⟩, …,
//! ⟨Pₙ,fₙ⟩)` — through issuance, dependence analysis, and distribution,
//! with a hybrid static/dynamic analysis proving the group
//! non-interfering.
//!
//! The workspace layers:
//!
//! * [`geometry`] — points, rectangles, domains, affine transforms;
//! * [`region`] — collections, partitions, privileges, physical
//!   instances, reductions;
//! * [`machine`] — the deterministic discrete-event machine simulator
//!   standing in for a 1024-node supercomputer;
//! * [`analysis`] — projection functors and the hybrid safety analysis
//!   (static injectivity + the Listing-3 dynamic bitmask checks);
//! * [`runtime`] — the four-stage pipeline (issuance, logical analysis,
//!   distribution, physical analysis) with DCR, tracing, and both task
//!   representations;
//! * [`compiler`] — the mini-Regent loop optimizer that turns sequential
//!   task loops into (guarded) index launches;
//! * [`apps`] — the paper's evaluation codes: Circuit, Stencil,
//!   Soleil-mini.
//!
//! ## Quickstart
//!
//! ```
//! use index_launch::prelude::*;
//!
//! let mut b = ProgramBuilder::new();
//! let mut fsd = FieldSpaceDesc::new();
//! let val = fsd.add("val", FieldKind::F64);
//! let fs = b.forest.create_field_space(fsd);
//! let region = b.forest.create_region(Domain::range(100), fs);
//! let blocks = equal_partition_1d(&mut b.forest, region.space, 4);
//!
//! let fill = b.task("fill", move |ctx| {
//!     let pts: Vec<_> = ctx.domain(0).iter().collect();
//!     for p in pts {
//!         ctx.write(0, val, p, p.x() as f64);
//!     }
//! });
//!
//! // forall(D, fill, ⟨blocks, λi.i⟩) — an index launch of 4 tasks.
//! Forall::new(fill, Domain::range(4))
//!     .arg(blocks, ProjExpr::Identity, Privilege::Write, region.tree, fs)
//!     .launch(&mut b);
//!
//! let program = b.build();
//! let report = execute(&program, &RuntimeConfig::validate(2));
//! assert_eq!(report.tasks, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use il_analysis as analysis;
pub use il_apps as apps;
pub use il_compiler as compiler;
pub use il_geometry as geometry;
pub use il_machine as machine;
pub use il_region as region;
pub use il_runtime as runtime;

pub mod api;

pub use api::Forall;

/// Everything needed to write and run an index-launch program.
pub mod prelude {
    pub use crate::api::Forall;
    pub use il_analysis::{analyze_launch, HybridVerdict, LaunchArg, ProjExpr};
    pub use il_geometry::{Domain, DomainPoint, Point, Rect};
    pub use il_machine::SimTime;
    pub use il_region::{
        block_partition_2d, block_partition_3d, coloring_partition, equal_partition_1d,
        halo_partition_2d, halo_partition_3d, FieldId, FieldKind, FieldSpaceDesc, Privilege,
        RegionForest, ReductionKind,
    };
    pub use il_runtime::{
        execute, CostSpec, ExecutionMode, IndexLaunchDesc, Program, ProgramBuilder, RegionReq,
        RunReport, RuntimeConfig, TaskContext,
    };
}
