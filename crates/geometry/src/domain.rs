//! Rank-erased domains and points.
//!
//! Launch domains, color spaces, and index spaces all have a rank that is
//! only known at runtime. [`DomainPoint`] and [`Domain`] erase the
//! const-generic rank of [`Point`]/[`Rect`] behind a small tagged
//! representation. Sparse domains (explicit point lists) are supported
//! because the DOM radiation sweeps in Soleil-X launch over *diagonal
//! slices* of a 3-D grid, which are not rectangles.

use crate::iter::DomainIter;
use crate::point::Point;
use crate::rect::Rect;
use std::fmt;
use std::sync::Arc;

/// A point of runtime-known rank (1 to [`MAX_DIM`](crate::MAX_DIM)).
///
/// Unused trailing coordinates are zero, so equality and hashing behave.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainPoint {
    dim: u8,
    coords: [i64; 3],
}

impl DomainPoint {
    /// Construct a 1-D point.
    #[inline]
    pub const fn new1(x: i64) -> Self {
        DomainPoint { dim: 1, coords: [x, 0, 0] }
    }

    /// Construct a 2-D point.
    #[inline]
    pub const fn new2(x: i64, y: i64) -> Self {
        DomainPoint { dim: 2, coords: [x, y, 0] }
    }

    /// Construct a 3-D point.
    #[inline]
    pub const fn new3(x: i64, y: i64, z: i64) -> Self {
        DomainPoint { dim: 3, coords: [x, y, z] }
    }

    /// Construct from a slice of 1..=3 coordinates.
    ///
    /// # Panics
    /// Panics if the slice length is not in `1..=3`.
    pub fn from_slice(coords: &[i64]) -> Self {
        assert!(
            (1..=3).contains(&coords.len()),
            "DomainPoint rank must be 1..=3, got {}",
            coords.len()
        );
        let mut c = [0i64; 3];
        c[..coords.len()].copy_from_slice(coords);
        DomainPoint { dim: coords.len() as u8, coords: c }
    }

    /// Rank of the point.
    #[inline]
    pub const fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Coordinate in dimension `d` (zero for `d >= dim()`).
    #[inline]
    pub const fn coord(&self, d: usize) -> i64 {
        self.coords[d]
    }

    /// The coordinates as a slice of length `dim()`.
    #[inline]
    pub fn coords(&self) -> &[i64] {
        &self.coords[..self.dim as usize]
    }

    /// Shorthand for `coord(0)`.
    #[inline]
    pub const fn x(&self) -> i64 {
        self.coords[0]
    }

    /// Shorthand for `coord(1)`.
    #[inline]
    pub const fn y(&self) -> i64 {
        self.coords[1]
    }

    /// Shorthand for `coord(2)`.
    #[inline]
    pub const fn z(&self) -> i64 {
        self.coords[2]
    }

    /// Sum of coordinates (diagonal index for wavefront sweeps).
    #[inline]
    pub fn coord_sum(&self) -> i64 {
        self.coords().iter().sum()
    }

    /// View as a typed point.
    ///
    /// # Panics
    /// Panics when `N != dim()`.
    #[inline]
    pub fn to_point<const N: usize>(&self) -> Point<N> {
        assert_eq!(N, self.dim(), "rank mismatch: point is {}-D, asked for {N}-D", self.dim());
        let mut out = Point::<N>::ZERO;
        for d in 0..N {
            out[d] = self.coords[d];
        }
        out
    }
}

impl fmt::Debug for DomainPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for DomainPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const N: usize> From<Point<N>> for DomainPoint {
    #[inline]
    fn from(p: Point<N>) -> Self {
        DomainPoint::from_slice(&p.0)
    }
}

impl From<i64> for DomainPoint {
    #[inline]
    fn from(x: i64) -> Self {
        DomainPoint::new1(x)
    }
}

/// A set of points of runtime-known rank: either a dense rectangle or an
/// explicit (sparse) point list.
///
/// Domains are used as launch domains, partition color spaces, and index
/// space extents. Sparse domains share their point list via `Arc`, so
/// cloning a `Domain` is always cheap — this is essential for the O(1)
/// in-memory representation of an index launch.
#[derive(Clone, PartialEq, Eq)]
pub enum Domain {
    /// Dense 1-D rectangle.
    Rect1(Rect<1>),
    /// Dense 2-D rectangle.
    Rect2(Rect<2>),
    /// Dense 3-D rectangle.
    Rect3(Rect<3>),
    /// Explicit point list (all points must share the given rank).
    Sparse {
        /// Rank of every point in the list.
        dim: u8,
        /// The points, in iteration order. Duplicates are not allowed
        /// (enforced by [`Domain::sparse`]).
        points: Arc<Vec<DomainPoint>>,
    },
}

impl Domain {
    /// Dense 1-D domain `0..n`.
    #[inline]
    pub fn range(n: i64) -> Self {
        Domain::Rect1(Rect::range(n))
    }

    /// Build a sparse domain from a point list.
    ///
    /// # Panics
    /// Panics if the list is empty, ranks are mixed, or points repeat.
    pub fn sparse(points: Vec<DomainPoint>) -> Self {
        assert!(!points.is_empty(), "sparse domain must be non-empty");
        let dim = points[0].dim() as u8;
        assert!(
            points.iter().all(|p| p.dim() == dim as usize),
            "sparse domain points must share a rank"
        );
        let mut dedup: Vec<DomainPoint> = points.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), points.len(), "sparse domain contains duplicate points");
        Domain::Sparse { dim, points: Arc::new(points) }
    }

    /// Rank of the domain.
    #[inline]
    pub fn dim(&self) -> usize {
        match self {
            Domain::Rect1(_) => 1,
            Domain::Rect2(_) => 2,
            Domain::Rect3(_) => 3,
            Domain::Sparse { dim, .. } => *dim as usize,
        }
    }

    /// Number of points in the domain.
    pub fn volume(&self) -> u64 {
        match self {
            Domain::Rect1(r) => r.volume(),
            Domain::Rect2(r) => r.volume(),
            Domain::Rect3(r) => r.volume(),
            Domain::Sparse { points, .. } => points.len() as u64,
        }
    }

    /// True iff the domain has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.volume() == 0
    }

    /// True iff `p` belongs to the domain. Points of a different rank are
    /// never contained.
    pub fn contains(&self, p: DomainPoint) -> bool {
        if p.dim() != self.dim() {
            return false;
        }
        match self {
            Domain::Rect1(r) => r.contains(p.to_point()),
            Domain::Rect2(r) => r.contains(p.to_point()),
            Domain::Rect3(r) => r.contains(p.to_point()),
            Domain::Sparse { points, .. } => points.contains(&p),
        }
    }

    /// Bounding rectangle of the domain, rank-erased as `(lo, hi)` domain
    /// points. For sparse domains this is the tight bounding box.
    pub fn bounds(&self) -> (DomainPoint, DomainPoint) {
        match self {
            Domain::Rect1(r) => (r.lo.into(), r.hi.into()),
            Domain::Rect2(r) => (r.lo.into(), r.hi.into()),
            Domain::Rect3(r) => (r.lo.into(), r.hi.into()),
            Domain::Sparse { dim, points } => {
                let d = *dim as usize;
                let mut lo = [i64::MAX; 3];
                let mut hi = [i64::MIN; 3];
                for p in points.iter() {
                    for k in 0..d {
                        lo[k] = lo[k].min(p.coord(k));
                        hi[k] = hi[k].max(p.coord(k));
                    }
                }
                (
                    DomainPoint::from_slice(&lo[..d]),
                    DomainPoint::from_slice(&hi[..d]),
                )
            }
        }
    }

    /// Row-major position of `p` within the domain's bounding box, used to
    /// index dynamic-check bitmasks. `None` if out of bounds or rank
    /// mismatch.
    pub fn linearize(&self, p: DomainPoint) -> Option<u64> {
        if p.dim() != self.dim() {
            return None;
        }
        match self {
            Domain::Rect1(r) => r.linearize(p.to_point()),
            Domain::Rect2(r) => r.linearize(p.to_point()),
            Domain::Rect3(r) => r.linearize(p.to_point()),
            Domain::Sparse { .. } => {
                let (lo, hi) = self.bounds();
                match self.dim() {
                    1 => Rect::new1(lo.x(), hi.x()).linearize(p.to_point()),
                    2 => Rect::new2((lo.x(), lo.y()), (hi.x(), hi.y())).linearize(p.to_point()),
                    3 => Rect::new3((lo.x(), lo.y(), lo.z()), (hi.x(), hi.y(), hi.z()))
                        .linearize(p.to_point()),
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Volume of the bounding box (bitmask size for dynamic checks).
    pub fn bbox_volume(&self) -> u64 {
        match self {
            Domain::Rect1(r) => r.volume(),
            Domain::Rect2(r) => r.volume(),
            Domain::Rect3(r) => r.volume(),
            Domain::Sparse { points, .. } => {
                if points.is_empty() {
                    return 0;
                }
                let (lo, hi) = self.bounds();
                let mut v = 1u64;
                for d in 0..self.dim() {
                    v = v.saturating_mul((hi.coord(d) - lo.coord(d)) as u64 + 1);
                }
                v
            }
        }
    }

    /// Iterate the points of the domain.
    pub fn iter(&self) -> DomainIter {
        match self {
            Domain::Rect1(r) => DomainIter::D1(r.iter()),
            Domain::Rect2(r) => DomainIter::D2(r.iter()),
            Domain::Rect3(r) => DomainIter::D3(r.iter()),
            Domain::Sparse { points, .. } => DomainIter::Sparse { points: points.clone(), next: 0 },
        }
    }

    /// Split the domain into `parts` nearly-equal sub-domains (used by the
    /// recursive slicing functor). Dense domains split along the longest
    /// dimension; sparse domains split by contiguous chunks of the point
    /// list.
    pub fn split(&self, parts: usize) -> Vec<Domain> {
        match self {
            Domain::Rect1(r) => r.split(parts).into_iter().map(Domain::Rect1).collect(),
            Domain::Rect2(r) => r.split(parts).into_iter().map(Domain::Rect2).collect(),
            Domain::Rect3(r) => r.split(parts).into_iter().map(Domain::Rect3).collect(),
            Domain::Sparse { dim, points } => {
                if points.is_empty() {
                    return vec![];
                }
                let parts = parts.clamp(1, points.len());
                let base = points.len() / parts;
                let rem = points.len() % parts;
                let mut out = Vec::with_capacity(parts);
                let mut start = 0usize;
                for i in 0..parts {
                    let len = base + usize::from(i < rem);
                    out.push(Domain::Sparse {
                        dim: *dim,
                        points: Arc::new(points[start..start + len].to_vec()),
                    });
                    start += len;
                }
                out
            }
        }
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Rect1(r) => write!(f, "{r:?}"),
            Domain::Rect2(r) => write!(f, "{r:?}"),
            Domain::Rect3(r) => write!(f, "{r:?}"),
            Domain::Sparse { points, .. } => {
                write!(f, "sparse{{{} points}}", points.len())
            }
        }
    }
}

impl From<Rect<1>> for Domain {
    fn from(r: Rect<1>) -> Self {
        Domain::Rect1(r)
    }
}
impl From<Rect<2>> for Domain {
    fn from(r: Rect<2>) -> Self {
        Domain::Rect2(r)
    }
}
impl From<Rect<3>> for Domain {
    fn from(r: Rect<3>) -> Self {
        Domain::Rect3(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_point_basics() {
        let p = DomainPoint::new3(1, 2, 3);
        assert_eq!(p.dim(), 3);
        assert_eq!((p.x(), p.y(), p.z()), (1, 2, 3));
        assert_eq!(p.coords(), &[1, 2, 3]);
        assert_eq!(p.coord_sum(), 6);
        assert_eq!(p.to_point::<3>(), Point::new3(1, 2, 3));
        assert_eq!(DomainPoint::from(Point::new2(4, 5)), DomainPoint::new2(4, 5));
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn to_point_rank_mismatch_panics() {
        DomainPoint::new2(1, 2).to_point::<3>();
    }

    #[test]
    fn dense_domain() {
        let d = Domain::range(10);
        assert_eq!(d.dim(), 1);
        assert_eq!(d.volume(), 10);
        assert!(d.contains(DomainPoint::new1(9)));
        assert!(!d.contains(DomainPoint::new1(10)));
        assert!(!d.contains(DomainPoint::new2(0, 0)));
        assert_eq!(d.iter().count(), 10);
    }

    #[test]
    fn sparse_domain() {
        let pts = vec![
            DomainPoint::new3(0, 1, 2),
            DomainPoint::new3(1, 0, 2),
            DomainPoint::new3(2, 1, 0),
        ];
        let d = Domain::sparse(pts.clone());
        assert_eq!(d.dim(), 3);
        assert_eq!(d.volume(), 3);
        assert!(d.contains(pts[1]));
        assert!(!d.contains(DomainPoint::new3(9, 9, 9)));
        let collected: Vec<_> = d.iter().collect();
        assert_eq!(collected, pts);
        let (lo, hi) = d.bounds();
        assert_eq!(lo, DomainPoint::new3(0, 0, 0));
        assert_eq!(hi, DomainPoint::new3(2, 1, 2));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn sparse_rejects_duplicates() {
        Domain::sparse(vec![DomainPoint::new1(0), DomainPoint::new1(0)]);
    }

    #[test]
    fn linearize_within_domain() {
        let d = Domain::Rect2(Rect::new2((0, 0), (3, 3)));
        assert_eq!(d.linearize(DomainPoint::new2(1, 2)), Some(6));
        assert_eq!(d.linearize(DomainPoint::new2(4, 0)), None);
        assert_eq!(d.linearize(DomainPoint::new1(0)), None);
        assert_eq!(d.bbox_volume(), 16);
    }

    #[test]
    fn split_dense() {
        let d = Domain::range(100);
        let parts = d.split(7);
        assert_eq!(parts.len(), 7);
        let total: u64 = parts.iter().map(|p| p.volume()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn split_sparse() {
        let pts: Vec<_> = (0..10).map(DomainPoint::new1).collect();
        let d = Domain::sparse(pts);
        let parts = d.split(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].volume(), 4);
        let total: u64 = parts.iter().map(|p| p.volume()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn domain_clone_is_cheap_for_sparse() {
        let d = Domain::sparse((0..1000).map(DomainPoint::new1).collect());
        let d2 = d.clone();
        if let (Domain::Sparse { points: a, .. }, Domain::Sparse { points: b, .. }) = (&d, &d2) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            panic!("expected sparse");
        }
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::rect::Rect;

    #[test]
    fn bounds_of_dense_domains() {
        let d: Domain = Rect::new3((1, 2, 3), (4, 5, 6)).into();
        let (lo, hi) = d.bounds();
        assert_eq!(lo, DomainPoint::new3(1, 2, 3));
        assert_eq!(hi, DomainPoint::new3(4, 5, 6));
    }

    #[test]
    fn iter_size_hints_are_exact() {
        let d = Domain::range(7);
        let mut it = d.iter();
        assert_eq!(it.len(), 7);
        it.next();
        it.next();
        assert_eq!(it.len(), 5);
        let s = Domain::sparse(vec![DomainPoint::new1(0), DomainPoint::new1(2)]);
        assert_eq!(s.iter().len(), 2);
    }

    #[test]
    fn single_point_domains() {
        let d: Domain = Rect::new1(5, 5).into();
        assert_eq!(d.volume(), 1);
        assert_eq!(d.iter().next(), Some(DomainPoint::new1(5)));
        let parts = d.split(4);
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn sparse_singleton() {
        let d = Domain::sparse(vec![DomainPoint::new2(3, 4)]);
        assert_eq!(d.volume(), 1);
        assert_eq!(d.bbox_volume(), 1);
        assert_eq!(d.linearize(DomainPoint::new2(3, 4)), Some(0));
    }

    #[test]
    fn split_more_parts_than_points() {
        let d = Domain::range(3);
        let parts = d.split(10);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.volume() == 1));
        let s = Domain::sparse((0..2).map(DomainPoint::new1).collect());
        assert_eq!(s.split(5).len(), 2);
    }
}
