//! Iterators over rectangles and domains.

use crate::domain::{Domain, DomainPoint};
use crate::point::Point;
use crate::rect::Rect;

/// Row-major iterator over the points of a [`Rect`].
#[derive(Clone, Debug)]
pub struct RectIter<const N: usize> {
    rect: Rect<N>,
    next: Option<Point<N>>,
}

impl<const N: usize> RectIter<N> {
    /// Create an iterator over `rect` (yields nothing if empty).
    pub fn new(rect: Rect<N>) -> Self {
        let next = if rect.is_empty() { None } else { Some(rect.lo) };
        RectIter { rect, next }
    }
}

impl<const N: usize> Iterator for RectIter<N> {
    type Item = Point<N>;

    fn next(&mut self) -> Option<Point<N>> {
        let cur = self.next?;
        // Advance: increment the last dimension, carrying.
        let mut nxt = cur;
        let mut d = N;
        loop {
            if d == 0 {
                self.next = None;
                break;
            }
            d -= 1;
            nxt[d] += 1;
            if nxt[d] <= self.rect.hi[d] {
                self.next = Some(nxt);
                break;
            }
            nxt[d] = self.rect.lo[d];
        }
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match self.next {
            None => 0,
            Some(p) => {
                // Volume from p to the end in row-major order.
                let total = self.rect.volume();
                let done = self.rect.linearize(p).unwrap_or(total);
                (total - done) as usize
            }
        };
        (remaining, Some(remaining))
    }
}

impl<const N: usize> ExactSizeIterator for RectIter<N> {}

/// Iterator over the points of a rank-erased [`Domain`].
#[derive(Clone, Debug)]
pub enum DomainIter {
    /// Iterating a 1-D dense rectangle.
    D1(RectIter<1>),
    /// Iterating a 2-D dense rectangle.
    D2(RectIter<2>),
    /// Iterating a 3-D dense rectangle.
    D3(RectIter<3>),
    /// Iterating an explicit point list.
    Sparse {
        /// The shared point list.
        points: std::sync::Arc<Vec<DomainPoint>>,
        /// Next index to yield.
        next: usize,
    },
}

impl Iterator for DomainIter {
    type Item = DomainPoint;

    fn next(&mut self) -> Option<DomainPoint> {
        match self {
            DomainIter::D1(it) => it.next().map(DomainPoint::from),
            DomainIter::D2(it) => it.next().map(DomainPoint::from),
            DomainIter::D3(it) => it.next().map(DomainPoint::from),
            DomainIter::Sparse { points, next } => {
                let p = points.get(*next).copied();
                if p.is_some() {
                    *next += 1;
                }
                p
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            DomainIter::D1(it) => it.size_hint(),
            DomainIter::D2(it) => it.size_hint(),
            DomainIter::D3(it) => it.size_hint(),
            DomainIter::Sparse { points, next } => {
                let rem = points.len() - next;
                (rem, Some(rem))
            }
        }
    }
}

impl ExactSizeIterator for DomainIter {}

impl IntoIterator for &Domain {
    type Item = DomainPoint;
    type IntoIter = DomainIter;
    fn into_iter(self) -> DomainIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_iter_order_and_count() {
        let r = Rect::new2((0, 0), (1, 2));
        let pts: Vec<_> = r.iter().collect();
        assert_eq!(
            pts,
            vec![
                Point::new2(0, 0),
                Point::new2(0, 1),
                Point::new2(0, 2),
                Point::new2(1, 0),
                Point::new2(1, 1),
                Point::new2(1, 2),
            ]
        );
    }

    #[test]
    fn rect_iter_empty() {
        assert_eq!(Rect::<3>::empty().iter().count(), 0);
    }

    #[test]
    fn rect_iter_exact_size() {
        let r = Rect::new3((0, 0, 0), (2, 2, 2));
        let mut it = r.iter();
        assert_eq!(it.len(), 27);
        it.next();
        it.next();
        assert_eq!(it.len(), 25);
    }

    #[test]
    fn negative_coordinates() {
        let r = Rect::new1(-3, -1);
        let pts: Vec<_> = r.iter().map(|p| p[0]).collect();
        assert_eq!(pts, vec![-3, -2, -1]);
    }
}
