//! Geometric primitives for the index-launch workspace.
//!
//! This crate provides the coordinate-space machinery everything else is
//! built on: const-generic [`Point`]s and [`Rect`]s (inclusive bounds, as in
//! Legion), rank-erased [`Domain`]s and [`DomainPoint`]s used where the rank
//! is only known at runtime (launch domains, color spaces), bijective
//! row-major [`linearize`](Rect::linearize) / [`delinearize`](Rect::delinearize)
//! maps used by the dynamic projection-functor checks, and affine
//! [`Transform`]s used by affine projection functors.
//!
//! Coordinates are `i64` throughout; rectangles use *inclusive* upper bounds
//! (`lo..=hi`), matching the conventions of the Legion runtime the paper's
//! system is embedded in. An empty rectangle is any rectangle with
//! `lo[d] > hi[d]` in some dimension.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Matrix/coordinate kernels index fixed-size arrays by dimension; the
// index form is the clearer idiom there.
#![allow(clippy::needless_range_loop)]

pub mod domain;
pub mod iter;
pub mod point;
pub mod rect;
pub mod transform;

pub use domain::{Domain, DomainPoint};
pub use iter::{DomainIter, RectIter};
pub use point::Point;
pub use rect::Rect;
pub use transform::{DynTransform, Transform};

/// Maximum rank supported by the rank-erased [`Domain`] / [`DomainPoint`]
/// types. The paper's applications use 1-D, 2-D and 3-D domains.
pub const MAX_DIM: usize = 3;
