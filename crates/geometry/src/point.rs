//! Const-generic integer points.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// An `N`-dimensional integer point.
///
/// Points are the coordinates of objects in index spaces, colors of
/// sub-regions within a partition, and elements of launch domains. They are
/// `Copy` and cheap: `N` is 1, 2 or 3 everywhere in this workspace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point<const N: usize>(pub [i64; N]);

impl<const N: usize> Point<N> {
    /// The origin (all coordinates zero).
    pub const ZERO: Self = Point([0; N]);

    /// A point with every coordinate equal to `v`.
    #[inline]
    pub const fn splat(v: i64) -> Self {
        Point([v; N])
    }

    /// The rank of the point.
    #[inline]
    pub const fn dim(&self) -> usize {
        N
    }

    /// Coordinate in dimension `d`.
    #[inline]
    pub fn coord(&self, d: usize) -> i64 {
        self.0[d]
    }

    /// Elementwise minimum.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        let mut out = self.0;
        for d in 0..N {
            out[d] = out[d].min(other.0[d]);
        }
        Point(out)
    }

    /// Elementwise maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        let mut out = self.0;
        for d in 0..N {
            out[d] = out[d].max(other.0[d]);
        }
        Point(out)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Self) -> i64 {
        let mut acc = 0i64;
        for d in 0..N {
            acc += self.0[d] * other.0[d];
        }
        acc
    }

    /// Sum of all coordinates (useful for wavefront/diagonal indexing).
    #[inline]
    pub fn coord_sum(self) -> i64 {
        self.0.iter().sum()
    }
}

impl Point<1> {
    /// Construct a 1-D point.
    #[inline]
    pub const fn new1(x: i64) -> Self {
        Point([x])
    }
}

impl Point<2> {
    /// Construct a 2-D point.
    #[inline]
    pub const fn new2(x: i64, y: i64) -> Self {
        Point([x, y])
    }
}

impl Point<3> {
    /// Construct a 3-D point.
    #[inline]
    pub const fn new3(x: i64, y: i64, z: i64) -> Self {
        Point([x, y, z])
    }
}

impl<const N: usize> fmt::Debug for Point<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl<const N: usize> fmt::Display for Point<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const N: usize> From<[i64; N]> for Point<N> {
    #[inline]
    fn from(v: [i64; N]) -> Self {
        Point(v)
    }
}

impl From<i64> for Point<1> {
    #[inline]
    fn from(v: i64) -> Self {
        Point([v])
    }
}

impl<const N: usize> Index<usize> for Point<N> {
    type Output = i64;
    #[inline]
    fn index(&self, d: usize) -> &i64 {
        &self.0[d]
    }
}

impl<const N: usize> IndexMut<usize> for Point<N> {
    #[inline]
    fn index_mut(&mut self, d: usize) -> &mut i64 {
        &mut self.0[d]
    }
}

impl<const N: usize> Add for Point<N> {
    type Output = Self;
    #[inline]
    fn add(mut self, rhs: Self) -> Self {
        for d in 0..N {
            self.0[d] += rhs.0[d];
        }
        self
    }
}

impl<const N: usize> AddAssign for Point<N> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        for d in 0..N {
            self.0[d] += rhs.0[d];
        }
    }
}

impl<const N: usize> Sub for Point<N> {
    type Output = Self;
    #[inline]
    fn sub(mut self, rhs: Self) -> Self {
        for d in 0..N {
            self.0[d] -= rhs.0[d];
        }
        self
    }
}

impl<const N: usize> SubAssign for Point<N> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        for d in 0..N {
            self.0[d] -= rhs.0[d];
        }
    }
}

impl<const N: usize> Mul<i64> for Point<N> {
    type Output = Self;
    #[inline]
    fn mul(mut self, rhs: i64) -> Self {
        for d in 0..N {
            self.0[d] *= rhs;
        }
        self
    }
}

impl<const N: usize> Neg for Point<N> {
    type Output = Self;
    #[inline]
    fn neg(mut self) -> Self {
        for d in 0..N {
            self.0[d] = -self.0[d];
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let p = Point::new3(1, -2, 3);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coord(0), 1);
        assert_eq!(p[1], -2);
        assert_eq!(p.coord_sum(), 2);
        assert_eq!(Point::<2>::ZERO, Point::new2(0, 0));
        assert_eq!(Point::<3>::splat(7), Point::new3(7, 7, 7));
    }

    #[test]
    fn arithmetic() {
        let a = Point::new2(3, 4);
        let b = Point::new2(1, -1);
        assert_eq!(a + b, Point::new2(4, 3));
        assert_eq!(a - b, Point::new2(2, 5));
        assert_eq!(a * 2, Point::new2(6, 8));
        assert_eq!(-a, Point::new2(-3, -4));
        assert_eq!(a.dot(b), -1);
        let mut c = a;
        c += b;
        assert_eq!(c, Point::new2(4, 3));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn min_max() {
        let a = Point::new3(1, 9, 5);
        let b = Point::new3(2, 3, 5);
        assert_eq!(a.min(b), Point::new3(1, 3, 5));
        assert_eq!(a.max(b), Point::new3(2, 9, 5));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Point::new2(1, 5) < Point::new2(2, 0));
        assert!(Point::new2(1, 5) < Point::new2(1, 6));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Point::new3(1, 2, 3)), "(1,2,3)");
        assert_eq!(format!("{:?}", Point::new1(-4)), "(-4)");
    }
}
