//! Axis-aligned rectangles with inclusive bounds.

use crate::iter::RectIter;
use crate::point::Point;
use std::fmt;

/// An `N`-dimensional axis-aligned rectangle with *inclusive* bounds.
///
/// `Rect { lo, hi }` denotes the set of points `p` with
/// `lo[d] <= p[d] <= hi[d]` for every dimension `d`. A rectangle is empty if
/// `lo[d] > hi[d]` in any dimension; all empty rectangles are considered
/// equal for the purposes of [`volume`](Rect::volume) and intersection
/// tests, but retain their coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect<const N: usize> {
    /// Inclusive lower bound.
    pub lo: Point<N>,
    /// Inclusive upper bound.
    pub hi: Point<N>,
}

impl<const N: usize> Rect<N> {
    /// Construct a rectangle from inclusive bounds.
    #[inline]
    pub const fn new(lo: Point<N>, hi: Point<N>) -> Self {
        Rect { lo, hi }
    }

    /// A canonical empty rectangle.
    #[inline]
    pub fn empty() -> Self {
        Rect {
            lo: Point::splat(0),
            hi: Point::splat(-1),
        }
    }

    /// True iff the rectangle contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..N).any(|d| self.lo[d] > self.hi[d])
    }

    /// Number of points contained (0 for empty rectangles).
    ///
    /// Saturates at `u64::MAX` for astronomically large rectangles rather
    /// than overflowing.
    #[inline]
    pub fn volume(&self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let mut v: u64 = 1;
        for d in 0..N {
            let extent = (self.hi[d] - self.lo[d]) as u64 + 1;
            v = v.saturating_mul(extent);
        }
        v
    }

    /// Extent (number of points) along dimension `d`; 0 if empty there.
    #[inline]
    pub fn extent(&self, d: usize) -> u64 {
        if self.lo[d] > self.hi[d] {
            0
        } else {
            (self.hi[d] - self.lo[d]) as u64 + 1
        }
    }

    /// True iff `p` lies inside the rectangle.
    #[inline]
    pub fn contains(&self, p: Point<N>) -> bool {
        (0..N).all(|d| self.lo[d] <= p[d] && p[d] <= self.hi[d])
    }

    /// True iff `other` is entirely inside `self` (empty rects are contained
    /// in everything).
    #[inline]
    pub fn contains_rect(&self, other: &Rect<N>) -> bool {
        if other.is_empty() {
            return true;
        }
        (0..N).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Intersection of two rectangles (possibly empty).
    #[inline]
    pub fn intersection(&self, other: &Rect<N>) -> Rect<N> {
        Rect {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// True iff the rectangles share at least one point.
    #[inline]
    pub fn overlaps(&self, other: &Rect<N>) -> bool {
        !self.intersection(other).is_empty()
    }

    /// Smallest rectangle containing both inputs (bounding-box union).
    #[inline]
    pub fn union_bbox(&self, other: &Rect<N>) -> Rect<N> {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Row-major linearization of `p` within this rectangle: a bijection
    /// from the points of the rectangle onto `0..volume()`.
    ///
    /// The last dimension varies fastest, matching C array layout. This is
    /// the `linearize` primitive of Listing 3 in the paper, used to index
    /// the dynamic-check bitmask for multi-dimensional partitions, and also
    /// the storage layout of physical instances.
    ///
    /// Returns `None` when `p` is outside the rectangle (the dynamic check
    /// treats out-of-bounds functor values as a bounds-check failure).
    #[inline]
    pub fn linearize(&self, p: Point<N>) -> Option<u64> {
        if !self.contains(p) {
            return None;
        }
        let mut idx: u64 = 0;
        for d in 0..N {
            let extent = (self.hi[d] - self.lo[d]) as u64 + 1;
            idx = idx * extent + (p[d] - self.lo[d]) as u64;
        }
        Some(idx)
    }

    /// Inverse of [`linearize`](Rect::linearize).
    ///
    /// Returns `None` when `idx >= volume()`.
    #[inline]
    pub fn delinearize(&self, idx: u64) -> Option<Point<N>> {
        if idx >= self.volume() {
            return None;
        }
        let mut rem = idx;
        let mut out = Point::<N>::ZERO;
        for d in (0..N).rev() {
            let extent = (self.hi[d] - self.lo[d]) as u64 + 1;
            out[d] = self.lo[d] + (rem % extent) as i64;
            rem /= extent;
        }
        Some(out)
    }

    /// Iterate the points of the rectangle in row-major (linearization)
    /// order.
    #[inline]
    pub fn iter(&self) -> RectIter<N> {
        RectIter::new(*self)
    }

    /// Split the rectangle into `parts` nearly-equal blocks along its
    /// longest dimension. Used by the recursive slicing functor in the
    /// non-DCR distribution path. Returns fewer than `parts` pieces if the
    /// rectangle is too small. Pieces are non-empty, disjoint, and cover.
    pub fn split(&self, parts: usize) -> Vec<Rect<N>> {
        if self.is_empty() || parts <= 1 {
            return if self.is_empty() { vec![] } else { vec![*self] };
        }
        // Pick the dimension with the largest extent.
        let dim = (0..N)
            .max_by_key(|&d| self.extent(d))
            .expect("rank >= 1");
        let extent = self.extent(dim);
        let parts = parts.min(extent as usize).max(1);
        let mut out = Vec::with_capacity(parts);
        let base = extent / parts as u64;
        let rem = extent % parts as u64;
        let mut lo = self.lo[dim];
        for i in 0..parts {
            let len = base + if (i as u64) < rem { 1 } else { 0 };
            let hi = lo + len as i64 - 1;
            let mut piece = *self;
            piece.lo[dim] = lo;
            piece.hi[dim] = hi;
            out.push(piece);
            lo = hi + 1;
        }
        out
    }
}

impl Rect<1> {
    /// 1-D rectangle covering `lo..=hi`.
    #[inline]
    pub const fn new1(lo: i64, hi: i64) -> Self {
        Rect::new(Point::new1(lo), Point::new1(hi))
    }

    /// 1-D rectangle covering the half-open range `0..n`.
    #[inline]
    pub const fn range(n: i64) -> Self {
        Rect::new1(0, n - 1)
    }
}

impl Rect<2> {
    /// 2-D rectangle from coordinate bounds.
    #[inline]
    pub const fn new2(lo: (i64, i64), hi: (i64, i64)) -> Self {
        Rect::new(Point::new2(lo.0, lo.1), Point::new2(hi.0, hi.1))
    }
}

impl Rect<3> {
    /// 3-D rectangle from coordinate bounds.
    #[inline]
    pub const fn new3(lo: (i64, i64, i64), hi: (i64, i64, i64)) -> Self {
        Rect::new(
            Point::new3(lo.0, lo.1, lo.2),
            Point::new3(hi.0, hi.1, hi.2),
        )
    }
}

impl<const N: usize> fmt::Debug for Rect<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}..{:?}]", self.lo, self.hi)
    }
}

impl<const N: usize> fmt::Display for Rect<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const N: usize> IntoIterator for Rect<N> {
    type Item = Point<N>;
    type IntoIter = RectIter<N>;
    fn into_iter(self) -> RectIter<N> {
        RectIter::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_empty() {
        let r = Rect::new2((0, 0), (3, 1));
        assert_eq!(r.volume(), 8);
        assert!(!r.is_empty());
        assert_eq!(Rect::<2>::empty().volume(), 0);
        assert!(Rect::<2>::empty().is_empty());
        let degenerate = Rect::new2((5, 5), (5, 5));
        assert_eq!(degenerate.volume(), 1);
    }

    #[test]
    fn contains_and_intersection() {
        let a = Rect::new2((0, 0), (9, 9));
        let b = Rect::new2((5, 5), (14, 14));
        assert!(a.contains(Point::new2(9, 0)));
        assert!(!a.contains(Point::new2(10, 0)));
        let i = a.intersection(&b);
        assert_eq!(i, Rect::new2((5, 5), (9, 9)));
        assert!(a.overlaps(&b));
        let c = Rect::new2((20, 20), (30, 30));
        assert!(!a.overlaps(&c));
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn contains_rect() {
        let a = Rect::new1(0, 9);
        assert!(a.contains_rect(&Rect::new1(3, 5)));
        assert!(!a.contains_rect(&Rect::new1(3, 15)));
        assert!(a.contains_rect(&Rect::<1>::empty()));
    }

    #[test]
    fn union_bbox() {
        let a = Rect::new1(0, 3);
        let b = Rect::new1(10, 12);
        assert_eq!(a.union_bbox(&b), Rect::new1(0, 12));
        assert_eq!(Rect::<1>::empty().union_bbox(&b), b);
    }

    #[test]
    fn linearize_roundtrip_2d() {
        let r = Rect::new2((-2, 3), (1, 5));
        let mut seen = vec![false; r.volume() as usize];
        for p in r.iter() {
            let idx = r.linearize(p).unwrap();
            assert!(!seen[idx as usize], "duplicate index {idx}");
            seen[idx as usize] = true;
            assert_eq!(r.delinearize(idx), Some(p));
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(r.linearize(Point::new2(2, 3)), None);
        assert_eq!(r.delinearize(r.volume()), None);
    }

    #[test]
    fn linearize_is_row_major() {
        let r = Rect::new2((0, 0), (1, 2));
        // Last dimension fastest: (0,0)=0 (0,1)=1 (0,2)=2 (1,0)=3 ...
        assert_eq!(r.linearize(Point::new2(0, 2)), Some(2));
        assert_eq!(r.linearize(Point::new2(1, 0)), Some(3));
    }

    #[test]
    fn split_covers_disjointly() {
        let r = Rect::new2((0, 0), (9, 99));
        let pieces = r.split(4);
        assert_eq!(pieces.len(), 4);
        let total: u64 = pieces.iter().map(|p| p.volume()).sum();
        assert_eq!(total, r.volume());
        for (i, a) in pieces.iter().enumerate() {
            for b in pieces.iter().skip(i + 1) {
                assert!(!a.overlaps(b));
            }
        }
        // Splits along the longest dimension (y, extent 100).
        assert!(pieces.iter().all(|p| p.extent(0) == 10));
    }

    #[test]
    fn split_small_rect() {
        let r = Rect::new1(0, 2);
        let pieces = r.split(10);
        assert_eq!(pieces.len(), 3);
        assert!(Rect::<1>::empty().split(4).is_empty());
        assert_eq!(r.split(1), vec![r]);
    }

    #[test]
    fn range_constructor() {
        assert_eq!(Rect::range(5), Rect::new1(0, 4));
        assert_eq!(Rect::range(0).volume(), 0);
    }
}
