//! Affine transforms between coordinate spaces.
//!
//! Affine projection functors — the statically analyzable fragment in the
//! paper's hybrid design (§4) — are represented as an integer matrix plus
//! offset: `f(p) = A·p + b`. The static analyzer proves injectivity of such
//! functors over a launch domain; everything else falls back to the dynamic
//! check.

use crate::domain::DomainPoint;
use crate::point::Point;
use std::fmt;

/// An affine map from `N`-dimensional points to `M`-dimensional points:
/// `f(p) = A·p + b` with `A : M×N` integer matrix and `b : M` offset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Transform<const M: usize, const N: usize> {
    /// Row-major matrix: `matrix[r][c]` multiplies input coordinate `c`
    /// contributing to output coordinate `r`.
    pub matrix: [[i64; N]; M],
    /// Translation added after the matrix product.
    pub offset: [i64; M],
}

impl<const M: usize, const N: usize> Transform<M, N> {
    /// The zero transform (maps everything to `offset`).
    pub fn constant(offset: [i64; M]) -> Self {
        Transform { matrix: [[0; N]; M], offset }
    }

    /// Apply the transform to a typed point.
    #[inline]
    pub fn apply(&self, p: Point<N>) -> Point<M> {
        let mut out = Point::<M>::ZERO;
        for r in 0..M {
            let mut acc = self.offset[r];
            for c in 0..N {
                acc += self.matrix[r][c] * p[c];
            }
            out[r] = acc;
        }
        out
    }

    /// True iff the transform is injective on all of `Z^N`, i.e. the matrix
    /// has full column rank (requires `M >= N`).
    ///
    /// For the ranks used here (≤ 3) we compute rank by fraction-free
    /// Gaussian elimination over the integers.
    pub fn is_injective(&self) -> bool {
        if M < N {
            return false;
        }
        // Fraction-free elimination on a copy of the matrix (as i128 to
        // avoid overflow while pivoting).
        let mut a = [[0i128; N]; M];
        for r in 0..M {
            for c in 0..N {
                a[r][c] = self.matrix[r][c] as i128;
            }
        }
        let mut rank = 0usize;
        let mut row = 0usize;
        for col in 0..N {
            // Find a pivot.
            let Some(pivot) = (row..M).find(|&r| a[r][col] != 0) else {
                continue;
            };
            a.swap(row, pivot);
            let pv = a[row][col];
            for r in (row + 1)..M {
                let factor = a[r][col];
                if factor == 0 {
                    continue;
                }
                for c in col..N {
                    a[r][c] = a[r][c] * pv - a[row][c] * factor;
                }
            }
            rank += 1;
            row += 1;
            if row == M {
                break;
            }
        }
        rank == N
    }
}

impl<const N: usize> Transform<N, N> {
    /// The identity transform.
    pub fn identity() -> Self {
        let mut matrix = [[0i64; N]; N];
        for (d, matrix_row) in matrix.iter_mut().enumerate() {
            matrix_row[d] = 1;
        }
        Transform { matrix, offset: [0; N] }
    }

    /// A diagonal scale-and-shift: `f(p)[d] = scale[d]*p[d] + shift[d]`.
    pub fn scale_shift(scale: [i64; N], shift: [i64; N]) -> Self {
        let mut matrix = [[0i64; N]; N];
        for (d, matrix_row) in matrix.iter_mut().enumerate() {
            matrix_row[d] = scale[d];
        }
        Transform { matrix, offset: shift }
    }
}

/// A rank-erased affine transform, for contexts (projection functor
/// registries) where input/output ranks are only known at runtime.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DynTransform {
    /// Output rank (rows), 1..=3.
    pub out_dim: u8,
    /// Input rank (columns), 1..=3.
    pub in_dim: u8,
    /// Row-major `out_dim × in_dim` matrix, padded within a 3×3 array.
    pub matrix: [[i64; 3]; 3],
    /// Offset of length `out_dim`, padded within a 3-array.
    pub offset: [i64; 3],
}

impl DynTransform {
    /// Identity transform of rank `dim`.
    pub fn identity(dim: usize) -> Self {
        assert!((1..=3).contains(&dim));
        let mut matrix = [[0i64; 3]; 3];
        for (d, matrix_row) in matrix.iter_mut().enumerate().take(dim) {
            matrix_row[d] = 1;
        }
        DynTransform {
            out_dim: dim as u8,
            in_dim: dim as u8,
            matrix,
            offset: [0; 3],
        }
    }

    /// 1-D affine transform `i ↦ a·i + b`.
    pub fn affine1(a: i64, b: i64) -> Self {
        let mut matrix = [[0i64; 3]; 3];
        matrix[0][0] = a;
        DynTransform { out_dim: 1, in_dim: 1, matrix, offset: [b, 0, 0] }
    }

    /// Build from explicit rows. `rows[r]` lists the coefficients of input
    /// coordinates for output coordinate `r`.
    pub fn from_rows(in_dim: usize, rows: &[&[i64]], offset: &[i64]) -> Self {
        assert!((1..=3).contains(&in_dim));
        assert!((1..=3).contains(&rows.len()));
        assert_eq!(rows.len(), offset.len());
        let mut matrix = [[0i64; 3]; 3];
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), in_dim);
            matrix[r][..in_dim].copy_from_slice(row);
        }
        let mut off = [0i64; 3];
        off[..offset.len()].copy_from_slice(offset);
        DynTransform {
            out_dim: rows.len() as u8,
            in_dim: in_dim as u8,
            matrix,
            offset: off,
        }
    }

    /// Apply to a rank-erased point.
    ///
    /// # Panics
    /// Panics if `p.dim() != in_dim`.
    pub fn apply(&self, p: DomainPoint) -> DomainPoint {
        assert_eq!(p.dim(), self.in_dim as usize, "transform input rank mismatch");
        let mut out = [0i64; 3];
        for (r, out_coord) in out.iter_mut().enumerate().take(self.out_dim as usize) {
            let mut acc = self.offset[r];
            for c in 0..self.in_dim as usize {
                acc += self.matrix[r][c] * p.coord(c);
            }
            *out_coord = acc;
        }
        DomainPoint::from_slice(&out[..self.out_dim as usize])
    }

    /// Composition `self ∘ inner`: the transform applying `inner` first,
    /// then `self`.
    ///
    /// # Panics
    /// Panics if `self.in_dim != inner.out_dim`.
    pub fn compose(&self, inner: &DynTransform) -> DynTransform {
        assert_eq!(
            self.in_dim, inner.out_dim,
            "composition rank mismatch: {}x{} ∘ {}x{}",
            self.out_dim, self.in_dim, inner.out_dim, inner.in_dim
        );
        let (m, k, n) = (
            self.out_dim as usize,
            self.in_dim as usize,
            inner.in_dim as usize,
        );
        let mut matrix = [[0i64; 3]; 3];
        let mut offset = [0i64; 3];
        for r in 0..m {
            for c in 0..n {
                for i in 0..k {
                    matrix[r][c] += self.matrix[r][i] * inner.matrix[i][c];
                }
            }
            offset[r] = self.offset[r];
            for i in 0..k {
                offset[r] += self.matrix[r][i] * inner.offset[i];
            }
        }
        DynTransform {
            out_dim: self.out_dim,
            in_dim: inner.in_dim,
            matrix,
            offset,
        }
    }

    /// Exact inverse of a square transform, when one exists over the
    /// integers: the matrix must be unimodular (determinant ±1), which is
    /// exactly the invertible-over-`Z` case. Returns `None` for
    /// non-square or non-unimodular transforms.
    pub fn inverse(&self) -> Option<DynTransform> {
        if self.out_dim != self.in_dim {
            return None;
        }
        let n = self.in_dim as usize;
        let det = det_n(&self.matrix, n);
        if det != 1 && det != -1 {
            return None;
        }
        // A⁻¹ = adj(A)/det; with det = ±1 this is adj(A)·det, exactly.
        let mut inv = [[0i64; 3]; 3];
        for r in 0..n {
            for c in 0..n {
                // adj[r][c] = cofactor(c, r).
                let sign = if (r + c) % 2 == 0 { 1 } else { -1 };
                inv[r][c] = sign * minor_det(&self.matrix, n, c, r) * det;
            }
        }
        // q = A·p + b  ⇒  p = A⁻¹·q − A⁻¹·b.
        let mut offset = [0i64; 3];
        for (r, off) in offset.iter_mut().enumerate().take(n) {
            for c in 0..n {
                *off -= inv[r][c] * self.offset[c];
            }
        }
        Some(DynTransform {
            out_dim: self.out_dim,
            in_dim: self.in_dim,
            matrix: inv,
            offset,
        })
    }

    /// Injectivity on all of `Z^in_dim` (full column rank, `out >= in`).
    pub fn is_injective(&self) -> bool {
        let (m, n) = (self.out_dim as usize, self.in_dim as usize);
        if m < n {
            return false;
        }
        let mut a = [[0i128; 3]; 3];
        for r in 0..m {
            for c in 0..n {
                a[r][c] = self.matrix[r][c] as i128;
            }
        }
        let mut rank = 0usize;
        let mut row = 0usize;
        for col in 0..n {
            let Some(pivot) = (row..m).find(|&r| a[r][col] != 0) else {
                continue;
            };
            a.swap(row, pivot);
            let pv = a[row][col];
            for r in (row + 1)..m {
                let factor = a[r][col];
                if factor == 0 {
                    continue;
                }
                for c in col..n {
                    a[r][c] = a[r][c] * pv - a[row][c] * factor;
                }
            }
            rank += 1;
            row += 1;
            if row == m {
                break;
            }
        }
        rank == n
    }
}

/// Determinant of the leading `n × n` block of a padded matrix.
fn det_n(m: &[[i64; 3]; 3], n: usize) -> i64 {
    match n {
        1 => m[0][0],
        2 => m[0][0] * m[1][1] - m[0][1] * m[1][0],
        3 => {
            m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
                - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
                + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
        }
        _ => panic!("rank {n} out of range"),
    }
}

/// Determinant of the `(n−1) × (n−1)` minor dropping row `dr`, column `dc`.
fn minor_det(m: &[[i64; 3]; 3], n: usize, dr: usize, dc: usize) -> i64 {
    let mut sub = [[0i64; 3]; 3];
    let rows: Vec<usize> = (0..n).filter(|&r| r != dr).collect();
    let cols: Vec<usize> = (0..n).filter(|&c| c != dc).collect();
    for (i, &r) in rows.iter().enumerate() {
        for (j, &c) in cols.iter().enumerate() {
            sub[i][j] = m[r][c];
        }
    }
    if n == 1 {
        1 // 0×0 minor: the empty product
    } else {
        det_n(&sub, n - 1)
    }
}

impl fmt::Debug for DynTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "affine[{}x{}]", self.out_dim, self.in_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_apply() {
        let t = Transform::<2, 2>::identity();
        assert_eq!(t.apply(Point::new2(3, -4)), Point::new2(3, -4));
        assert!(t.is_injective());
    }

    #[test]
    fn constant_not_injective() {
        let t = Transform::<2, 2>::constant([5, 6]);
        assert_eq!(t.apply(Point::new2(3, -4)), Point::new2(5, 6));
        assert!(!t.is_injective());
    }

    #[test]
    fn scale_shift() {
        let t = Transform::scale_shift([2, 3], [1, -1]);
        assert_eq!(t.apply(Point::new2(4, 5)), Point::new2(9, 14));
        assert!(t.is_injective());
        let degenerate = Transform::scale_shift([2, 0], [0, 0]);
        assert!(!degenerate.is_injective());
    }

    #[test]
    fn projection_to_lower_rank_not_injective() {
        // (x, y, z) -> (x, y): 2x3 matrix, M < N.
        let t = Transform::<2, 3> {
            matrix: [[1, 0, 0], [0, 1, 0]],
            offset: [0, 0],
        };
        assert!(!t.is_injective());
        assert_eq!(t.apply(Point::new3(7, 8, 9)), Point::new2(7, 8));
    }

    #[test]
    fn embedding_to_higher_rank_injective() {
        // i -> (i, 2i): full column rank.
        let t = Transform::<2, 1> { matrix: [[1], [2]], offset: [0, 3] };
        assert!(t.is_injective());
        assert_eq!(t.apply(Point::new1(5)), Point::new2(5, 13));
    }

    #[test]
    fn rank_deficient_square_matrix() {
        // Rows are linearly dependent.
        let t = Transform::<2, 2> { matrix: [[1, 2], [2, 4]], offset: [0, 0] };
        assert!(!t.is_injective());
        // Shear: full rank.
        let s = Transform::<2, 2> { matrix: [[1, 1], [0, 1]], offset: [0, 0] };
        assert!(s.is_injective());
    }

    #[test]
    fn dyn_transform_matches_typed() {
        let t = DynTransform::affine1(3, 7);
        assert_eq!(t.apply(DomainPoint::new1(5)), DomainPoint::new1(22));
        assert!(t.is_injective());
        assert!(!DynTransform::affine1(0, 7).is_injective());

        let id = DynTransform::identity(3);
        assert_eq!(
            id.apply(DomainPoint::new3(1, 2, 3)),
            DomainPoint::new3(1, 2, 3)
        );
        assert!(id.is_injective());
    }

    #[test]
    fn dyn_transform_plane_projection() {
        // (x,y,z) -> (x,y): the DOM exchange-plane shape.
        let t = DynTransform::from_rows(3, &[&[1, 0, 0], &[0, 1, 0]], &[0, 0]);
        assert_eq!(t.apply(DomainPoint::new3(4, 5, 6)), DomainPoint::new2(4, 5));
        assert!(!t.is_injective());
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn dyn_transform_rank_mismatch_panics() {
        DynTransform::identity(2).apply(DomainPoint::new3(0, 0, 0));
    }

    #[test]
    fn compose_applies_inner_first() {
        // g(i) = i + 1, f(i) = 2i: (g ∘ f)(5) = 11.
        let g = DynTransform::affine1(1, 1);
        let f = DynTransform::affine1(2, 0);
        let c = g.compose(&f);
        assert_eq!(c.apply(DomainPoint::new1(5)), DomainPoint::new1(11));
        // Mixed ranks: project 3-D → 2-D, then shear 2-D → 2-D.
        let proj = DynTransform::from_rows(3, &[&[1, 0, 0], &[0, 0, 1]], &[0, 0]);
        let shear = DynTransform::from_rows(2, &[&[1, 1], &[0, 1]], &[4, -2]);
        let sc = shear.compose(&proj);
        let p = DomainPoint::new3(2, 9, 7);
        assert_eq!(sc.apply(p), shear.apply(proj.apply(p)));
    }

    #[test]
    fn inverse_of_unimodular_round_trips() {
        // 2-D shear + swap with offsets: determinant −1.
        let t = DynTransform::from_rows(2, &[&[2, 1], &[1, 1]], &[5, -3]);
        let inv = t.inverse().expect("unimodular");
        for (x, y) in [(0, 0), (3, -4), (17, 29)] {
            let p = DomainPoint::new2(x, y);
            assert_eq!(inv.apply(t.apply(p)), p);
            assert_eq!(t.apply(inv.apply(p)), p);
        }
    }

    #[test]
    fn inverse_rejects_non_unimodular_and_non_square() {
        assert!(DynTransform::affine1(2, 0).inverse().is_none()); // det 2
        assert!(DynTransform::affine1(0, 7).inverse().is_none()); // det 0
        assert!(DynTransform::from_rows(3, &[&[1, 0, 0], &[0, 1, 0]], &[0, 0])
            .inverse()
            .is_none()); // 2×3
        assert!(DynTransform::affine1(-1, 9).inverse().is_some()); // det −1
    }
}
