//! Property-based tests for the geometry primitives.

use il_geometry::{Domain, DomainPoint, Point, Rect};
use proptest::prelude::*;

fn small_rect2() -> impl Strategy<Value = Rect<2>> {
    (-20i64..20, -20i64..20, 0i64..12, 0i64..12)
        .prop_map(|(x, y, w, h)| Rect::new2((x, y), (x + w, y + h)))
}

fn small_rect3() -> impl Strategy<Value = Rect<3>> {
    (-8i64..8, -8i64..8, -8i64..8, 0i64..5, 0i64..5, 0i64..5)
        .prop_map(|(x, y, z, w, h, d)| Rect::new3((x, y, z), (x + w, y + h, z + d)))
}

proptest! {
    #[test]
    fn linearize_is_bijective_2d(r in small_rect2()) {
        let mut seen = vec![false; r.volume() as usize];
        for p in r.iter() {
            let idx = r.linearize(p).unwrap() as usize;
            prop_assert!(!seen[idx]);
            seen[idx] = true;
            prop_assert_eq!(r.delinearize(idx as u64), Some(p));
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn linearize_is_bijective_3d(r in small_rect3()) {
        let mut seen = vec![false; r.volume() as usize];
        for p in r.iter() {
            let idx = r.linearize(p).unwrap() as usize;
            prop_assert!(!seen[idx]);
            seen[idx] = true;
            prop_assert_eq!(r.delinearize(idx as u64), Some(p));
        }
    }

    #[test]
    fn iteration_order_matches_linearization(r in small_rect2()) {
        for (i, p) in r.iter().enumerate() {
            prop_assert_eq!(r.linearize(p), Some(i as u64));
        }
    }

    #[test]
    fn intersection_symmetric_and_contained(a in small_rect2(), b in small_rect2()) {
        let i1 = a.intersection(&b);
        let i2 = b.intersection(&a);
        prop_assert_eq!(i1, i2);
        if !i1.is_empty() {
            prop_assert!(a.contains_rect(&i1));
            prop_assert!(b.contains_rect(&i1));
        }
        // Every point in both rects is in the intersection, and vice versa.
        for p in a.iter() {
            prop_assert_eq!(b.contains(p), i1.contains(p));
        }
    }

    #[test]
    fn union_bbox_contains_both(a in small_rect2(), b in small_rect2()) {
        let u = a.union_bbox(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn split_partitions_rect(r in small_rect2(), parts in 1usize..10) {
        let pieces = r.split(parts);
        let total: u64 = pieces.iter().map(|p| p.volume()).sum();
        prop_assert_eq!(total, r.volume());
        for (i, a) in pieces.iter().enumerate() {
            prop_assert!(!a.is_empty());
            prop_assert!(r.contains_rect(a));
            for b in pieces.iter().skip(i + 1) {
                prop_assert!(!a.overlaps(b));
            }
        }
    }

    #[test]
    fn domain_split_preserves_points(n in 1i64..200, parts in 1usize..10) {
        let d = Domain::range(n);
        let pieces = d.split(parts);
        let mut collected: Vec<DomainPoint> = pieces.iter().flat_map(|p| p.iter()).collect();
        collected.sort_unstable();
        let expected: Vec<DomainPoint> = d.iter().collect();
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn domain_linearize_in_bbox(pts in proptest::collection::btree_set((0i64..10, 0i64..10, 0i64..10), 1..40)) {
        let points: Vec<DomainPoint> =
            pts.iter().map(|&(x, y, z)| DomainPoint::new3(x, y, z)).collect();
        let d = Domain::sparse(points.clone());
        let vol = d.bbox_volume();
        for p in &points {
            let idx = d.linearize(*p).unwrap();
            prop_assert!(idx < vol);
        }
        // Distinct points get distinct indices.
        let mut ids: Vec<u64> = points.iter().map(|p| d.linearize(*p).unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), points.len());
    }

    #[test]
    fn point_arithmetic_laws(ax in -100i64..100, ay in -100i64..100, bx in -100i64..100, by in -100i64..100) {
        let a = Point::new2(ax, ay);
        let b = Point::new2(bx, by);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a + b - b, a);
        prop_assert_eq!(a.dot(b), b.dot(a));
        prop_assert_eq!(a.min(b).min(a), a.min(b));
        prop_assert_eq!(a.max(b), b.max(a));
    }
}

mod transform_props {
    use il_geometry::{DomainPoint, DynTransform};
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        /// `DynTransform::is_injective` agrees with brute-force evaluation
        /// over a grid large enough to expose rank deficiency.
        #[test]
        fn dyn_transform_injectivity_matches_bruteforce(
            m00 in -2i64..3, m01 in -2i64..3,
            m10 in -2i64..3, m11 in -2i64..3,
            b0 in -5i64..5, b1 in -5i64..5,
        ) {
            let t = DynTransform::from_rows(2, &[&[m00, m01], &[m10, m11]], &[b0, b1]);
            let claimed = t.is_injective();
            let mut seen = HashSet::new();
            let mut actually = true;
            for x in -4..=4i64 {
                for y in -4..=4i64 {
                    if !seen.insert(t.apply(DomainPoint::new2(x, y))) {
                        actually = false;
                    }
                }
            }
            // Injectivity over Z^2 implies injectivity over the grid; a
            // rank-deficient integer matrix always collides within the
            // [-4,4]^2 window for coefficients in [-2,2].
            prop_assert_eq!(claimed, actually, "matrix [[{},{}],[{},{}]]", m00, m01, m10, m11);
        }

        /// Applying a transform is linear: f(p) - f(0) is additive.
        #[test]
        fn dyn_transform_is_affine(
            a in -3i64..4, b in -3i64..4,
            x in -50i64..50, y in -50i64..50,
        ) {
            let t = DynTransform::affine1(a, b);
            let f = |v: i64| t.apply(DomainPoint::new1(v)).x();
            prop_assert_eq!(f(x + y) - f(0), (f(x) - f(0)) + (f(y) - f(0)));
        }
    }
}
