//! Property-based tests for the geometry primitives, on the hermetic
//! `il-testkit` harness. Each failing property prints its seed and a
//! greedily-shrunk minimal input; rerun with `IL_TESTKIT_SEED=<seed>`.

use il_geometry::{Domain, DomainPoint, Point, Rect};
use il_testkit::prop::{check, i64s, usizes, vec_of};
use il_testkit::{prop_assert, prop_assert_eq};

/// `(x, y, w, h)` → a small 2-D rect anchored at `(x, y)`.
fn rect2(v: &(i64, i64, i64, i64)) -> Rect<2> {
    let (x, y, w, h) = *v;
    Rect::new2((x, y), (x + w, y + h))
}

fn rect2_gen() -> (
    il_testkit::prop::I64Range,
    il_testkit::prop::I64Range,
    il_testkit::prop::I64Range,
    il_testkit::prop::I64Range,
) {
    (i64s(-20..20), i64s(-20..20), i64s(0..12), i64s(0..12))
}

#[test]
fn linearize_is_bijective_2d() {
    check("linearize_is_bijective_2d", &rect2_gen(), |v| {
        let r = rect2(v);
        let mut seen = vec![false; r.volume() as usize];
        for p in r.iter() {
            let idx = r.linearize(p).unwrap() as usize;
            prop_assert!(!seen[idx]);
            seen[idx] = true;
            prop_assert_eq!(r.delinearize(idx as u64), Some(p));
        }
        prop_assert!(seen.iter().all(|&b| b));
        Ok(())
    });
}

#[test]
fn linearize_is_bijective_3d() {
    let gen = (
        i64s(-8..8),
        i64s(-8..8),
        i64s(-8..8),
        i64s(0..5),
        i64s(0..5),
        i64s(0..5),
    );
    check("linearize_is_bijective_3d", &gen, |&(x, y, z, w, h, d)| {
        let r = Rect::new3((x, y, z), (x + w, y + h, z + d));
        let mut seen = vec![false; r.volume() as usize];
        for p in r.iter() {
            let idx = r.linearize(p).unwrap() as usize;
            prop_assert!(!seen[idx]);
            seen[idx] = true;
            prop_assert_eq!(r.delinearize(idx as u64), Some(p));
        }
        Ok(())
    });
}

#[test]
fn iteration_order_matches_linearization() {
    check("iteration_order_matches_linearization", &rect2_gen(), |v| {
        let r = rect2(v);
        for (i, p) in r.iter().enumerate() {
            prop_assert_eq!(r.linearize(p), Some(i as u64));
        }
        Ok(())
    });
}

#[test]
fn intersection_symmetric_and_contained() {
    check(
        "intersection_symmetric_and_contained",
        &(rect2_gen(), rect2_gen()),
        |(va, vb)| {
            let (a, b) = (rect2(va), rect2(vb));
            let i1 = a.intersection(&b);
            let i2 = b.intersection(&a);
            prop_assert_eq!(i1, i2);
            if !i1.is_empty() {
                prop_assert!(a.contains_rect(&i1));
                prop_assert!(b.contains_rect(&i1));
            }
            // Every point in both rects is in the intersection, and vice versa.
            for p in a.iter() {
                prop_assert_eq!(b.contains(p), i1.contains(p));
            }
            Ok(())
        },
    );
}

#[test]
fn union_bbox_contains_both() {
    check("union_bbox_contains_both", &(rect2_gen(), rect2_gen()), |(va, vb)| {
        let (a, b) = (rect2(va), rect2(vb));
        let u = a.union_bbox(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        Ok(())
    });
}

#[test]
fn split_partitions_rect() {
    check("split_partitions_rect", &(rect2_gen(), usizes(1..10)), |(v, parts)| {
        let r = rect2(v);
        let pieces = r.split(*parts);
        let total: u64 = pieces.iter().map(|p| p.volume()).sum();
        prop_assert_eq!(total, r.volume());
        for (i, a) in pieces.iter().enumerate() {
            prop_assert!(!a.is_empty());
            prop_assert!(r.contains_rect(a));
            for b in pieces.iter().skip(i + 1) {
                prop_assert!(!a.overlaps(b));
            }
        }
        Ok(())
    });
}

#[test]
fn domain_split_preserves_points() {
    check("domain_split_preserves_points", &(i64s(1..200), usizes(1..10)), |&(n, parts)| {
        let d = Domain::range(n);
        let pieces = d.split(parts);
        let mut collected: Vec<DomainPoint> = pieces.iter().flat_map(|p| p.iter()).collect();
        collected.sort_unstable();
        let expected: Vec<DomainPoint> = d.iter().collect();
        prop_assert_eq!(collected, expected);
        Ok(())
    });
}

#[test]
fn domain_linearize_in_bbox() {
    let gen = vec_of((i64s(0..10), i64s(0..10), i64s(0..10)), 1..40);
    check("domain_linearize_in_bbox", &gen, |pts| {
        // Deduplicate (the proptest original drew from a BTreeSet).
        let set: std::collections::BTreeSet<(i64, i64, i64)> = pts.iter().copied().collect();
        let points: Vec<DomainPoint> =
            set.iter().map(|&(x, y, z)| DomainPoint::new3(x, y, z)).collect();
        let d = Domain::sparse(points.clone());
        let vol = d.bbox_volume();
        for p in &points {
            let idx = d.linearize(*p).unwrap();
            prop_assert!(idx < vol);
        }
        // Distinct points get distinct indices.
        let mut ids: Vec<u64> = points.iter().map(|p| d.linearize(*p).unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), points.len());
        Ok(())
    });
}

#[test]
fn point_arithmetic_laws() {
    let coord = || i64s(-100..100);
    check(
        "point_arithmetic_laws",
        &(coord(), coord(), coord(), coord()),
        |&(ax, ay, bx, by)| {
            let a = Point::new2(ax, ay);
            let b = Point::new2(bx, by);
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a + b - b, a);
            prop_assert_eq!(a.dot(b), b.dot(a));
            prop_assert_eq!(a.min(b).min(a), a.min(b));
            prop_assert_eq!(a.max(b), b.max(a));
            Ok(())
        },
    );
}

mod transform_props {
    use il_geometry::{DomainPoint, DynTransform};
    use il_testkit::prop::{check, i64s};
    use il_testkit::{prop_assert, prop_assert_eq};
    use std::collections::HashSet;

    /// `DynTransform::is_injective` agrees with brute-force evaluation
    /// over a grid large enough to expose rank deficiency.
    #[test]
    fn dyn_transform_injectivity_matches_bruteforce() {
        let gen = (
            i64s(-2..3),
            i64s(-2..3),
            i64s(-2..3),
            i64s(-2..3),
            i64s(-5..5),
            i64s(-5..5),
        );
        check(
            "dyn_transform_injectivity_matches_bruteforce",
            &gen,
            |&(m00, m01, m10, m11, b0, b1)| {
                let t = DynTransform::from_rows(2, &[&[m00, m01], &[m10, m11]], &[b0, b1]);
                let claimed = t.is_injective();
                let mut seen = HashSet::new();
                let mut actually = true;
                for x in -4..=4i64 {
                    for y in -4..=4i64 {
                        if !seen.insert(t.apply(DomainPoint::new2(x, y))) {
                            actually = false;
                        }
                    }
                }
                // Injectivity over Z^2 implies injectivity over the grid; a
                // rank-deficient integer matrix always collides within the
                // [-4,4]^2 window for coefficients in [-2,2].
                prop_assert_eq!(claimed, actually, "matrix [[{},{}],[{},{}]]", m00, m01, m10, m11);
                Ok(())
            },
        );
    }

    /// Applying a transform is linear: f(p) - f(0) is additive.
    #[test]
    fn dyn_transform_is_affine() {
        let gen = (i64s(-3..4), i64s(-3..4), i64s(-50..50), i64s(-50..50));
        check("dyn_transform_is_affine", &gen, |&(a, b, x, y)| {
            let t = DynTransform::affine1(a, b);
            let f = |v: i64| t.apply(DomainPoint::new1(v)).x();
            prop_assert_eq!(f(x + y) - f(0), (f(x) - f(0)) + (f(y) - f(0)));
            Ok(())
        });
    }

    /// compose/inverse round-trip: a random unimodular 2-D transform
    /// (built from elementary shears, an optional axis swap, an optional
    /// sign flip, and an offset — all determinant ±1) has an inverse, and
    /// `inverse ∘ t` and `t ∘ inverse` are both the identity pointwise.
    #[test]
    fn compose_invert_round_trip() {
        let gen = (
            (i64s(-3..4), i64s(-3..4)),   // upper/lower shears
            (i64s(0..2), i64s(0..2)),     // swap axes? flip sign?
            (i64s(-9..10), i64s(-9..10)), // offset
            (i64s(-40..40), i64s(-40..40)),
        );
        check(
            "compose_invert_round_trip",
            &gen,
            |&((a, b), (swap, flip), (ox, oy), (px, py))| {
                let upper = DynTransform::from_rows(2, &[&[1, a], &[0, 1]], &[0, 0]);
                let lower = DynTransform::from_rows(2, &[&[1, 0], &[b, 1]], &[ox, oy]);
                let perm = if swap == 1 {
                    DynTransform::from_rows(2, &[&[0, 1], &[1, 0]], &[0, 0])
                } else {
                    DynTransform::identity(2)
                };
                let sign = if flip == 1 {
                    DynTransform::from_rows(2, &[&[-1, 0], &[0, 1]], &[0, 0])
                } else {
                    DynTransform::identity(2)
                };
                let t = upper.compose(&lower).compose(&perm).compose(&sign);
                let p = DomainPoint::new2(px, py);
                // compose really is function composition (inner first).
                prop_assert_eq!(
                    t.apply(p),
                    upper.apply(lower.apply(perm.apply(sign.apply(p))))
                );
                let inv = t.inverse().expect("product of unimodular factors is unimodular");
                prop_assert_eq!(inv.apply(t.apply(p)), p);
                prop_assert_eq!(t.apply(inv.apply(p)), p);
                // Round-trip through compose as well: inv ∘ t is the identity map.
                let id = inv.compose(&t);
                prop_assert_eq!(id.apply(p), p);
                Ok(())
            },
        );
    }

    /// 1-D round-trip, including the degenerate `a = ±1` cases.
    #[test]
    fn compose_invert_round_trip_1d() {
        let gen = (i64s(0..2), i64s(-20..20), i64s(-100..100));
        check("compose_invert_round_trip_1d", &gen, |&(neg, b, x)| {
            let a = if neg == 1 { -1 } else { 1 };
            let t = DynTransform::affine1(a, b);
            let inv = t.inverse().expect("|a| = 1 is unimodular");
            let p = DomainPoint::new1(x);
            prop_assert_eq!(inv.apply(t.apply(p)), p);
            prop_assert_eq!(t.apply(inv.apply(p)), p);
            Ok(())
        });
    }

    /// The affine image of a rect, computed as the bbox of the transformed
    /// corners, equals the bbox of the pointwise image — and every
    /// pointwise image lands inside it. This is the interval-analysis
    /// shortcut `il-analysis` relies on for projection-functor bounds.
    #[test]
    fn affine_rect_image_equals_pointwise_image() {
        let gen = (
            (i64s(-3..4), i64s(-3..4), i64s(-3..4), i64s(-3..4)),
            (i64s(-10..10), i64s(-10..10)),
            (i64s(-8..8), i64s(-8..8), i64s(0..6), i64s(0..6)),
        );
        check(
            "affine_rect_image_equals_pointwise_image",
            &gen,
            |&((m00, m01, m10, m11), (b0, b1), (x, y, w, h))| {
                let t = DynTransform::from_rows(2, &[&[m00, m01], &[m10, m11]], &[b0, b1]);
                let r = il_geometry::Rect::new2((x, y), (x + w, y + h));
                // Interval image: transform the 4 corners, take the bbox.
                let corners = [
                    DomainPoint::new2(x, y),
                    DomainPoint::new2(x + w, y),
                    DomainPoint::new2(x, y + h),
                    DomainPoint::new2(x + w, y + h),
                ];
                let mut clo = [i64::MAX; 2];
                let mut chi = [i64::MIN; 2];
                for c in corners {
                    let q = t.apply(c);
                    for d in 0..2 {
                        clo[d] = clo[d].min(q.coord(d));
                        chi[d] = chi[d].max(q.coord(d));
                    }
                }
                // Pointwise image bbox.
                let mut plo = [i64::MAX; 2];
                let mut phi = [i64::MIN; 2];
                for p in r.iter() {
                    let q = t.apply(DomainPoint::new2(p.0[0], p.0[1]));
                    for d in 0..2 {
                        prop_assert!(q.coord(d) >= clo[d] && q.coord(d) <= chi[d]);
                        plo[d] = plo[d].min(q.coord(d));
                        phi[d] = phi[d].max(q.coord(d));
                    }
                }
                prop_assert_eq!(plo, clo);
                prop_assert_eq!(phi, chi);
                Ok(())
            },
        );
    }
}

mod domain_props {
    use il_geometry::{Domain, Rect};
    use il_testkit::prop::{check, i64s};
    use il_testkit::{prop_assert, prop_assert_eq};

    /// For a dense domain, `linearize` is a bijection from the point set
    /// onto `0..volume()`, in iteration order.
    fn assert_bijective(d: &Domain) -> Result<(), String> {
        let vol = d.volume() as usize;
        let mut seen = vec![false; vol];
        let mut n = 0usize;
        for (i, p) in d.iter().enumerate() {
            let idx = d.linearize(p).expect("point in its own domain") as usize;
            prop_assert_eq!(idx, i); // iteration order IS linearization order
            prop_assert!(idx < vol);
            prop_assert!(!seen[idx]);
            seen[idx] = true;
            n += 1;
        }
        prop_assert_eq!(n, vol);
        prop_assert!(seen.iter().all(|&b| b));
        Ok(())
    }

    #[test]
    fn domain_linearize_bijective_on_volume() {
        let gen = (i64s(-6..6), i64s(-6..6), i64s(0..5), i64s(0..5), i64s(0..4));
        check("domain_linearize_bijective_on_volume", &gen, |&(x, y, w, h, d)| {
            assert_bijective(&Domain::Rect1(Rect::new1(x, x + w)))?;
            assert_bijective(&Domain::Rect2(Rect::new2((x, y), (x + w, y + h))))?;
            assert_bijective(&Domain::Rect3(Rect::new3((x, y, 0), (x + w, y + h, d))))?;
            Ok(())
        });
    }
}
