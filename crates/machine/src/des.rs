//! The discrete-event simulation core.
//!
//! A [`Simulator`] owns one behavior object per node plus a per-node clock
//! tracking when the node's runtime thread, NIC, and processors become free.
//! Events (messages) are processed in deterministic `(time, sequence)`
//! order: ties in time break by the sequence number assigned at enqueue, so
//! same-timestamp events (common under injected faults) always pop in the
//! order they were sent, regardless of queue internals or host parallelism.
//! A node handles a message no earlier than both its arrival time and
//! the time the node's runtime thread frees up, which is what makes a
//! centralized control node processing O(|D|) messages an honest bottleneck
//! in the simulation.
//!
//! The simulator is built for machines far beyond the paper's 1024 nodes:
//!
//! - the pending-event queue is pluggable ([`QueueKind`]): a binary heap at
//!   paper scale, a calendar queue ([`crate::queue`]) at 10⁵–10⁶ nodes,
//!   both producing the identical dispatch sequence;
//! - per-node clocks live in a slot arena ([`ClockArena`]): a node gets
//!   mutable state the first time an event reaches it, so stepping, the
//!   makespan, and report assembly cost O(active nodes), not O(machine),
//!   and an idle node costs 4 bytes;
//! - the interconnect is pluggable ([`Interconnect`]): flat α–β by default
//!   (byte-identical to the original model), hierarchical with per-level
//!   link contention on request.
//!
//! An optional [`FaultPlan`] (see [`crate::fault`]) makes the machine
//! adversarial: crashed nodes silently discard every event addressed to
//! them, the network drops or duplicates data-plane messages, and slow
//! nodes pay a multiplier on all charged work. With no plan installed every
//! fault hook is a no-op and the simulation is byte-identical to one built
//! before faults existed. Fault lookups are O(1) table reads, so a dense
//! fault schedule does not slow the per-event hot path.

use crate::fault::{FaultCounters, FaultPlan};
use crate::machine::MachineDesc;
use crate::network::{Interconnect, Network};
use crate::queue::{BinaryHeapQueue, CalendarQueue, Event, EventQueue, QueueKind};
use crate::stage::{Stage, StageTotals, StageTraffic};
use crate::time::SimTime;
use crate::NodeId;
use std::fmt;

/// Behavior of one simulated node: a message handler invoked by the
/// simulator whenever a message addressed to this node comes due.
pub trait NodeBehavior<M> {
    /// Handle `msg`. Use `ctx` to charge simulated time, send messages, and
    /// run work on processors.
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, M>, msg: M);
}

/// The queue implementation actually in force, dispatched statically.
enum ActiveQueue<M> {
    Heap(BinaryHeapQueue<M>),
    Calendar(CalendarQueue<M>),
}

impl<M> ActiveQueue<M> {
    fn new(kind: QueueKind, nodes: usize) -> Self {
        match kind.resolve(nodes) {
            QueueKind::Calendar => ActiveQueue::Calendar(CalendarQueue::new()),
            _ => ActiveQueue::Heap(BinaryHeapQueue::new()),
        }
    }

    fn kind(&self) -> QueueKind {
        match self {
            ActiveQueue::Heap(_) => QueueKind::BinaryHeap,
            ActiveQueue::Calendar(_) => QueueKind::Calendar,
        }
    }
}

impl<M> EventQueue<M> for ActiveQueue<M> {
    fn push(&mut self, ev: Event<M>) {
        match self {
            ActiveQueue::Heap(q) => q.push(ev),
            ActiveQueue::Calendar(q) => q.push(ev),
        }
    }

    fn pop(&mut self) -> Option<Event<M>> {
        match self {
            ActiveQueue::Heap(q) => q.pop(),
            ActiveQueue::Calendar(q) => q.pop(),
        }
    }

    fn len(&self) -> usize {
        match self {
            ActiveQueue::Heap(q) => q.len(),
            ActiveQueue::Calendar(q) => q.len(),
        }
    }
}

/// Per-node availability clocks (a by-value snapshot; see
/// [`Simulator::clock`]).
#[derive(Clone, Debug, Default)]
pub struct NodeClock {
    /// When the node's (single) runtime/analysis thread is next free.
    pub runtime_free: SimTime,
    /// When the node's NIC finishes injecting its last message.
    pub nic_free: SimTime,
    /// When each local processor is next free.
    pub proc_free: Vec<SimTime>,
    /// Total busy time accumulated by the runtime thread.
    pub runtime_busy: SimTime,
    /// Busy time by pipeline stage: runtime-thread charges land in the
    /// stage the handler declared ([`NodeCtx::set_stage`]); processor
    /// work accrues under [`Stage::Exec`].
    pub stage_busy: StageTotals,
}

/// Sentinel slot meaning "node never touched".
const UNTRACKED: u32 = u32::MAX;

/// Struct-of-arrays storage for per-node clocks, allocated per *active*
/// node rather than per node.
///
/// `slot[node]` maps a node to its arena slot (4 bytes per node, the only
/// O(machine) allocation); every other array is indexed by slot and grows
/// only when an event first reaches a node. A 1M-node machine where 10k
/// nodes participate carries 10k clock records, and every full-machine
/// aggregate (makespan, stage totals, per-node report rows) walks the
/// active list — O(active), not O(nodes).
struct ClockArena {
    procs_per_node: usize,
    /// Node → arena slot, `UNTRACKED` when the node was never dispatched.
    slot: Vec<u32>,
    /// Slot → node, in first-touch order.
    active: Vec<NodeId>,
    runtime_free: Vec<SimTime>,
    nic_free: Vec<SimTime>,
    runtime_busy: Vec<SimTime>,
    stage_busy: Vec<StageTotals>,
    /// Flat `active × procs_per_node` arena.
    proc_free: Vec<SimTime>,
}

impl ClockArena {
    fn new(nodes: usize, procs_per_node: usize) -> Self {
        ClockArena {
            procs_per_node,
            slot: vec![UNTRACKED; nodes],
            active: Vec::new(),
            runtime_free: Vec::new(),
            nic_free: Vec::new(),
            runtime_busy: Vec::new(),
            stage_busy: Vec::new(),
            proc_free: Vec::new(),
        }
    }

    /// The node's slot, allocating one on first touch.
    fn touch(&mut self, node: NodeId) -> usize {
        let s = self.slot[node];
        if s != UNTRACKED {
            return s as usize;
        }
        let s = self.active.len();
        assert!(s < UNTRACKED as usize, "active-node slot space exhausted");
        self.slot[node] = s as u32;
        self.active.push(node);
        self.runtime_free.push(SimTime::ZERO);
        self.nic_free.push(SimTime::ZERO);
        self.runtime_busy.push(SimTime::ZERO);
        self.stage_busy.push(StageTotals::new());
        self.proc_free
            .resize(self.proc_free.len() + self.procs_per_node, SimTime::ZERO);
        s
    }

    fn procs(&self, slot: usize) -> &[SimTime] {
        &self.proc_free[slot * self.procs_per_node..(slot + 1) * self.procs_per_node]
    }

    fn snapshot(&self, node: NodeId) -> NodeClock {
        assert!(node < self.slot.len(), "node {node} out of range");
        match self.slot[node] {
            UNTRACKED => NodeClock {
                proc_free: vec![SimTime::ZERO; self.procs_per_node],
                ..NodeClock::default()
            },
            s => {
                let s = s as usize;
                NodeClock {
                    runtime_free: self.runtime_free[s],
                    nic_free: self.nic_free[s],
                    proc_free: self.procs(s).to_vec(),
                    runtime_busy: self.runtime_busy[s],
                    stage_busy: self.stage_busy[s],
                }
            }
        }
    }
}

/// Aggregate statistics of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Events dispatched.
    pub events: u64,
    /// Cross-node messages sent.
    pub messages: u64,
    /// Total bytes injected into the network.
    pub bytes: u64,
    /// Messages/bytes broken down by the sending handler's stage.
    pub traffic: StageTraffic,
    /// Fault activity (all zero when no [`FaultPlan`] is installed).
    pub faults: FaultCounters,
}

/// Per-lane aggregate counters: the slice of [`SimStats`] attributable to
/// one group of nodes (a service-mode session slot). Maintained only when
/// [`Simulator::enable_lanes`] was called; with a single lane covering the
/// whole machine the lane counters equal the global ones field for field.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Cross-node messages sent by nodes of this lane.
    pub messages: u64,
    /// Bytes injected by nodes of this lane.
    pub bytes: u64,
    /// Messages/bytes by the sending handler's stage.
    pub traffic: StageTraffic,
    /// Fault activity charged to this lane (drops/dups by the sending
    /// node's lane, crash-discards by the dead destination's lane).
    pub faults: FaultCounters,
}

/// Lane bookkeeping: the node→lane map, per-lane counters, and the number
/// of pending events addressed to each lane's nodes (`outstanding`). A
/// lane with zero outstanding events has fully drained — nothing in the
/// queue can ever reach its nodes again without a new injection.
struct LaneTable {
    of_node: Vec<u32>,
    stats: Vec<LaneStats>,
    outstanding: Vec<u64>,
}

/// A structural invariant violation detected by the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// An event came due earlier than the current simulation time: the
    /// `(time, seq)` queue invariant was violated. This can only happen if
    /// an event was enqueued in the past (e.g. [`Simulator::inject`] called
    /// mid-run with a stale timestamp) — handlers cannot produce one.
    TimeRegression {
        /// The offending event's timestamp.
        event: SimTime,
        /// The simulation clock when it popped.
        now: SimTime,
        /// The event's destination node.
        dst: NodeId,
        /// The event's enqueue sequence number.
        seq: u64,
    },
    /// The run dispatched more events than its runaway guard allows —
    /// almost always a livelocked protocol (a handler re-sending to
    /// itself without progress). Reported as data instead of a panic so
    /// large sweeps can size caps from the machine
    /// ([`Simulator::default_event_cap`]) and fail cleanly.
    RunawayGuard {
        /// The event cap that was exceeded.
        limit: u64,
        /// Events still pending when the guard tripped.
        pending: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TimeRegression { event, now, dst, seq } => write!(
                f,
                "time went backwards: event seq {seq} for node {dst} due at {event} \
                 popped at simulation time {now}"
            ),
            SimError::RunawayGuard { limit, pending } => write!(
                f,
                "simulation exceeded {limit} events ({pending} still pending): \
                 runaway guard tripped"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Handle given to a node's message handler.
///
/// The `cursor` is the node-local current time: it starts at
/// `max(arrival, runtime_free)` and advances as the handler charges work.
/// All sends are injected at the cursor (serialized through the NIC).
pub struct NodeCtx<'a, M> {
    node: NodeId,
    /// The node's slot in the clock arena (touched before dispatch).
    slot: usize,
    arrival: SimTime,
    cursor: SimTime,
    stage: Stage,
    clocks: &'a mut ClockArena,
    net: &'a mut dyn Interconnect,
    nodes: usize,
    outbox: Vec<(SimTime, NodeId, M)>,
    stats: &'a mut SimStats,
    /// This node's lane counters, when lanes are enabled.
    lane: Option<&'a mut LaneStats>,
    /// The fault plan, if one is installed (None → every hook is a no-op).
    plan: Option<&'a FaultPlan>,
    /// Counter indexing the plan's per-message drop/duplication draws.
    fault_nonce: &'a mut u64,
    /// Charge multiplier for this node (1 unless the plan marks it slow).
    slow: u64,
}

impl<'a, M> NodeCtx<'a, M> {
    /// The node this handler runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the machine.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The time the message arrived at the node.
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// Node-local current time (arrival, plus queueing behind earlier work,
    /// plus work charged so far in this handler).
    pub fn now(&self) -> SimTime {
        self.cursor
    }

    /// The stage subsequent charges/sends are attributed to.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// Declare the pipeline stage for subsequent charges and sends.
    /// Handlers start each dispatch in [`Stage::Other`].
    pub fn set_stage(&mut self, stage: Stage) {
        self.stage = stage;
    }

    /// Charge `duration` of sequential runtime work (advances the cursor).
    /// On a fault-plan slow node the charge is inflated by the plan's
    /// multiplier.
    pub fn charge(&mut self, duration: SimTime) {
        let duration = duration * self.slow;
        self.cursor += duration;
        self.clocks.runtime_busy[self.slot] += duration;
        self.clocks.stage_busy[self.slot].add(self.stage, duration);
    }

    /// Send `msg` to another node through the network; `bytes` sets the
    /// transfer cost. Sending to self delivers after loopback latency
    /// without touching the NIC.
    ///
    /// This is the *data-plane* path: when a fault plan is installed the
    /// network may drop the message (NIC occupancy is still paid — the
    /// message was injected, then lost) or deliver a duplicate copy one
    /// extra wire latency later. Use
    /// [`send_control`](NodeCtx::send_control) for messages that must not
    /// be faulted.
    pub fn send(&mut self, dst: NodeId, msg: M, bytes: u64)
    where
        M: Clone,
    {
        assert!(dst < self.nodes, "destination {dst} out of range");
        if dst == self.node {
            self.outbox.push((self.cursor, dst, msg));
            return;
        }
        let nic_done = self.inject_to_nic(bytes);
        let arrival = self.net.deliver(self.node, dst, bytes, nic_done);
        if let Some(plan) = self.plan {
            let nonce = *self.fault_nonce;
            *self.fault_nonce += 1;
            if plan.drop_message(nonce) {
                self.stats.faults.dropped += 1;
                if let Some(lane) = self.lane.as_deref_mut() {
                    lane.faults.dropped += 1;
                }
                return;
            }
            if plan.duplicate_message(nonce) {
                self.stats.faults.duplicated += 1;
                if let Some(lane) = self.lane.as_deref_mut() {
                    lane.faults.duplicated += 1;
                }
                self.outbox
                    .push((arrival + self.net.base().latency, dst, msg.clone()));
            }
        }
        self.outbox.push((arrival, dst, msg));
    }

    /// Data-plane send whose payload a corrupt sender may silently flip.
    ///
    /// Identical to [`send`](NodeCtx::send) — same NIC charging, same
    /// drop/duplication draws, same single fault nonce per remote send —
    /// except the message is built by `make(corrupted)`, where `corrupted`
    /// is true when the installed fault plan marks this node as corrupt
    /// *and* its payload-corruption draw fires for this nonce. Self-sends
    /// bypass the NIC and are never corrupted (no wire, no flip). With no
    /// plan, or a plan without a Corrupt schedule, this is byte-identical
    /// to `send(dst, make(false), bytes)`.
    ///
    /// Returns whether the payload was corrupted.
    pub fn send_data(&mut self, dst: NodeId, make: impl FnOnce(bool) -> M, bytes: u64) -> bool
    where
        M: Clone,
    {
        assert!(dst < self.nodes, "destination {dst} out of range");
        if dst == self.node {
            let msg = make(false);
            self.outbox.push((self.cursor, dst, msg));
            return false;
        }
        let nic_done = self.inject_to_nic(bytes);
        let arrival = self.net.deliver(self.node, dst, bytes, nic_done);
        if let Some(plan) = self.plan {
            let nonce = *self.fault_nonce;
            *self.fault_nonce += 1;
            let corrupted = plan.corrupt_message(self.node, nonce);
            let msg = make(corrupted);
            if plan.drop_message(nonce) {
                self.stats.faults.dropped += 1;
                if let Some(lane) = self.lane.as_deref_mut() {
                    lane.faults.dropped += 1;
                }
                return corrupted;
            }
            if plan.duplicate_message(nonce) {
                self.stats.faults.duplicated += 1;
                if let Some(lane) = self.lane.as_deref_mut() {
                    lane.faults.duplicated += 1;
                }
                self.outbox
                    .push((arrival + self.net.base().latency, dst, msg.clone()));
            }
            self.outbox.push((arrival, dst, msg));
            return corrupted;
        }
        self.outbox.push((arrival, dst, make(false)));
        false
    }

    /// Send `msg` to another node over the *control channel*: identical
    /// charging and accounting to [`send`](NodeCtx::send), but exempt from
    /// fault-plan drop/duplication. The runtime's recovery protocol
    /// (completion reports, retry directives) rides on this channel — the
    /// standard reliable-control-transport assumption (see
    /// [`crate::fault`]). With no fault plan installed the two paths are
    /// indistinguishable.
    pub fn send_control(&mut self, dst: NodeId, msg: M, bytes: u64) {
        assert!(dst < self.nodes, "destination {dst} out of range");
        if dst == self.node {
            self.outbox.push((self.cursor, dst, msg));
            return;
        }
        let nic_done = self.inject_to_nic(bytes);
        let arrival = self.net.deliver(self.node, dst, bytes, nic_done);
        self.outbox.push((arrival, dst, msg));
    }

    /// Serialize a `bytes`-byte message through the NIC: advances
    /// `nic_free`, records stats, returns the time injection completes
    /// (the [`Interconnect`] decides the remote arrival from there).
    fn inject_to_nic(&mut self, bytes: u64) -> SimTime {
        let start = self.cursor.max(self.clocks.nic_free[self.slot]);
        let occupancy = self.net.base().occupancy(bytes);
        self.clocks.nic_free[self.slot] = start + occupancy;
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        self.stats.traffic.record(self.stage, bytes);
        if let Some(lane) = self.lane.as_deref_mut() {
            lane.messages += 1;
            lane.bytes += bytes;
            lane.traffic.record(self.stage, bytes);
        }
        start + occupancy
    }

    /// Schedule a message to this node at an absolute future time (used for
    /// completion notifications of processor work).
    pub fn send_self_at(&mut self, time: SimTime, msg: M) {
        let t = time.max(self.cursor);
        self.outbox.push((t, self.node, msg));
    }

    /// Run `duration` of work on local processor `local`, starting no
    /// earlier than the cursor. Returns the completion time. Does not
    /// advance the cursor: processors run asynchronously beside the runtime
    /// thread; pair with [`send_self_at`](NodeCtx::send_self_at) to observe
    /// completion.
    pub fn exec_on_proc(&mut self, local: usize, duration: SimTime) -> SimTime {
        assert!(local < self.clocks.procs_per_node, "processor {local} out of range");
        let duration = duration * self.slow;
        let idx = self.slot * self.clocks.procs_per_node + local;
        let start = self.cursor.max(self.clocks.proc_free[idx]);
        let done = start + duration;
        self.clocks.proc_free[idx] = done;
        self.clocks.stage_busy[self.slot].add(Stage::Exec, duration);
        done
    }

    /// When processor `local` is next free.
    pub fn proc_free(&self, local: usize) -> SimTime {
        assert!(local < self.clocks.procs_per_node, "processor {local} out of range");
        self.clocks.proc_free[self.slot * self.clocks.procs_per_node + local]
    }

    /// The flat α–β parameters of the network model in force.
    pub fn network(&self) -> &Network {
        self.net.base()
    }
}

/// The deterministic discrete-event simulator.
pub struct Simulator<M, B> {
    machine: MachineDesc,
    net: Box<dyn Interconnect>,
    nodes: Vec<B>,
    clocks: ClockArena,
    queue: ActiveQueue<M>,
    now: SimTime,
    seq: u64,
    stats: SimStats,
    fault_plan: Option<FaultPlan>,
    fault_nonce: u64,
    lanes: Option<LaneTable>,
}

impl<M, B: NodeBehavior<M>> Simulator<M, B> {
    /// Build a simulator over `machine` with one behavior per node, the
    /// flat α–β `network`, and the [`QueueKind::Auto`] event queue.
    ///
    /// # Panics
    /// Panics if `behaviors.len() != machine.nodes`.
    pub fn new(machine: MachineDesc, network: Network, behaviors: Vec<B>) -> Self {
        assert_eq!(behaviors.len(), machine.nodes, "one behavior per node required");
        let clocks = ClockArena::new(machine.nodes, machine.procs_per_node());
        let queue = ActiveQueue::new(QueueKind::Auto, machine.nodes);
        Simulator {
            machine,
            net: Box::new(network),
            nodes: behaviors,
            clocks,
            queue,
            now: SimTime::ZERO,
            seq: 0,
            stats: SimStats::default(),
            fault_plan: None,
            fault_nonce: 0,
            lanes: None,
        }
    }

    /// Partition the machine into `lanes` groups of nodes (`of_node[n]` =
    /// the lane node `n` belongs to) and start maintaining per-lane
    /// counters ([`LaneStats`]) plus per-lane outstanding-event counts.
    /// Service mode uses one lane per session slot so each session's
    /// report carries exactly its own traffic and fault slice, and drains
    /// (`lane_outstanding` = 0) signal a slot can be reused.
    ///
    /// # Panics
    /// Panics if events were already injected, `of_node` is not one entry
    /// per node, or an entry names a lane `>= lanes`.
    pub fn enable_lanes(&mut self, of_node: Vec<u32>, lanes: usize) {
        assert_eq!(self.seq, 0, "enable lanes before injecting events");
        assert_eq!(of_node.len(), self.nodes.len(), "one lane entry per node required");
        assert!(
            of_node.iter().all(|&l| (l as usize) < lanes),
            "lane id out of range"
        );
        self.lanes = Some(LaneTable {
            of_node,
            stats: vec![LaneStats::default(); lanes],
            outstanding: vec![0; lanes],
        });
    }

    /// Aggregate counters of `lane` so far.
    ///
    /// # Panics
    /// Panics if lanes were not enabled or `lane` is out of range.
    pub fn lane_stats(&self, lane: usize) -> LaneStats {
        self.lanes.as_ref().expect("lanes not enabled").stats[lane]
    }

    /// Events still pending for `lane`'s nodes. Zero means the lane has
    /// fully drained: no queued event can reach its nodes again.
    ///
    /// # Panics
    /// Panics if lanes were not enabled or `lane` is out of range.
    pub fn lane_outstanding(&self, lane: usize) -> u64 {
        self.lanes.as_ref().expect("lanes not enabled").outstanding[lane]
    }

    /// Replace the event queue implementation. Both kinds dispatch in the
    /// identical `(time, seq)` order; this only selects the data structure.
    ///
    /// # Panics
    /// Panics if events were already injected.
    pub fn with_queue(mut self, kind: QueueKind) -> Self {
        assert_eq!(self.seq, 0, "select the event queue before injecting events");
        self.queue = ActiveQueue::new(kind, self.machine.nodes);
        self
    }

    /// Replace the interconnect model (e.g. with
    /// [`HierNetwork`](crate::network::HierNetwork)). The default flat
    /// model is byte-identical to the pre-trait simulator.
    ///
    /// # Panics
    /// Panics if events were already injected.
    pub fn with_interconnect(mut self, net: Box<dyn Interconnect>) -> Self {
        assert_eq!(self.seq, 0, "select the interconnect before injecting events");
        self.net = net;
        self
    }

    /// The event-queue implementation in force (`Auto` already resolved).
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Install a fault plan. Every subsequent dispatch consults it; with no
    /// plan installed (the default) the fault hooks are no-ops.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Inject an initial message for `dst` at absolute time `time`.
    pub fn inject(&mut self, time: SimTime, dst: NodeId, msg: M) {
        assert!(dst < self.nodes.len(), "destination out of range");
        if let Some(lanes) = &mut self.lanes {
            lanes.outstanding[lanes.of_node[dst] as usize] += 1;
        }
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, dst, msg });
    }

    /// Timestamp of the next due event without dispatching it, or `None`
    /// when the queue is empty. Implemented as a pop immediately undone by
    /// a push: the re-pushed event keeps its sequence number, so dispatch
    /// order is unchanged on either queue kind, and lane outstanding
    /// counts are deliberately left untouched.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let ev = self.queue.pop()?;
        let time = ev.time;
        self.queue.push(ev);
        Some(time)
    }

    /// Dispatch the next event. `Ok(false)` when the queue is empty;
    /// [`SimError::TimeRegression`] if the due event predates the clock.
    pub fn try_step(&mut self) -> Result<bool, SimError> {
        let Some(ev) = self.queue.pop() else {
            return Ok(false);
        };
        if let Some(lanes) = &mut self.lanes {
            lanes.outstanding[lanes.of_node[ev.dst] as usize] -= 1;
        }
        if ev.time < self.now {
            return Err(SimError::TimeRegression {
                event: ev.time,
                now: self.now,
                dst: ev.dst,
                seq: ev.seq,
            });
        }
        self.now = ev.time;
        self.stats.events += 1;
        if let Some(plan) = &self.fault_plan {
            if plan.is_crashed(ev.dst, ev.time) {
                // A dead node silently discards everything addressed to it.
                self.stats.faults.crash_dropped += 1;
                if let Some(lanes) = &mut self.lanes {
                    lanes.stats[lanes.of_node[ev.dst] as usize].faults.crash_dropped += 1;
                }
                return Ok(true);
            }
        }
        let slow = self
            .fault_plan
            .as_ref()
            .map_or(1, |p| p.slow_factor(ev.dst));
        let slot = self.clocks.touch(ev.dst);
        let start = ev.time.max(self.clocks.runtime_free[slot]);
        let lane = self
            .lanes
            .as_mut()
            .map(|lanes| &mut lanes.stats[lanes.of_node[ev.dst] as usize]);
        let mut ctx = NodeCtx {
            node: ev.dst,
            slot,
            arrival: ev.time,
            cursor: start,
            stage: Stage::Other,
            clocks: &mut self.clocks,
            net: self.net.as_mut(),
            nodes: self.nodes.len(),
            outbox: Vec::new(),
            stats: &mut self.stats,
            lane,
            plan: self.fault_plan.as_ref(),
            fault_nonce: &mut self.fault_nonce,
            slow,
        };
        self.nodes[ev.dst].on_message(&mut ctx, ev.msg);
        let cursor = ctx.cursor;
        let outbox = std::mem::take(&mut ctx.outbox);
        self.clocks.runtime_free[slot] = cursor;
        for (time, dst, msg) in outbox {
            if let Some(lanes) = &mut self.lanes {
                lanes.outstanding[lanes.of_node[dst] as usize] += 1;
            }
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Event { time, seq, dst, msg });
        }
        Ok(true)
    }

    /// Dispatch the next event. Returns `false` when the queue is empty.
    ///
    /// # Panics
    /// Panics with the [`SimError`] if the queue invariant is violated.
    pub fn step(&mut self) -> bool {
        self.try_step().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run until the event queue drains, dispatching at most `max_events`
    /// events. Returns the number dispatched, or
    /// [`SimError::RunawayGuard`] once the cap is exceeded (use
    /// [`default_event_cap`](Simulator::default_event_cap) for a
    /// machine-sized cap).
    pub fn try_run(&mut self, max_events: u64) -> Result<u64, SimError> {
        let mut dispatched = 0u64;
        while self.try_step()? {
            dispatched += 1;
            if dispatched > max_events {
                return Err(SimError::RunawayGuard {
                    limit: max_events,
                    pending: self.queue.len() as u64,
                });
            }
        }
        Ok(dispatched)
    }

    /// Run until the event queue drains.
    ///
    /// # Panics
    /// Panics with the [`SimError`] after `max_events` dispatches (runaway
    /// guard) or if the queue invariant is violated. Use
    /// [`try_run`](Simulator::try_run) to handle either as data.
    pub fn run(&mut self, max_events: u64) {
        if let Err(e) = self.try_run(max_events) {
            panic!("{e}");
        }
    }

    /// A runaway-guard cap proportional to the machine: 4096 events per
    /// node, at least 2²⁰. Callers with a tighter estimate of their
    /// protocol's event count should take the max of the two — a fixed
    /// constant tuned at paper scale will trip spuriously at 65k+ nodes.
    pub fn default_event_cap(&self) -> u64 {
        (self.machine.nodes as u64)
            .saturating_mul(4_096)
            .max(1 << 20)
    }

    /// Current simulated time (time of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events currently pending in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// The makespan: the latest time any runtime thread, NIC, or processor
    /// is busy until. A crashed node's contribution is clamped to its crash
    /// time — work it had booked past that instant died with it. O(active
    /// nodes): untouched nodes hold no clock state and contribute zero.
    pub fn makespan(&self) -> SimTime {
        let plan = self.fault_plan.as_ref();
        self.clocks
            .active
            .iter()
            .map(|&id| {
                let busy_until = self.node_busy_until(id);
                match plan.and_then(|pl| pl.crash_time(id)) {
                    Some(crash) => busy_until.min(crash),
                    None => busy_until,
                }
            })
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The raw time `node`'s runtime thread, NIC, and processors are all
    /// free — *unclamped* by any crash schedule (use [`makespan`]'s clamp
    /// semantics for "work that actually happened"). Untouched nodes
    /// report zero. Service mode uses the per-range maximum both for
    /// per-session makespans and to decide when a slot's clocks have gone
    /// quiet enough to admit the next session without cross-session
    /// queueing.
    ///
    /// [`makespan`]: Simulator::makespan
    pub fn node_busy_until(&self, node: NodeId) -> SimTime {
        match self.clocks.slot.get(node) {
            Some(&s) if s != UNTRACKED => {
                let slot = s as usize;
                let p = self
                    .clocks
                    .procs(slot)
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(SimTime::ZERO);
                self.clocks.runtime_free[slot]
                    .max(self.clocks.nic_free[slot])
                    .max(p)
            }
            _ => SimTime::ZERO,
        }
    }

    /// Per-stage busy time of one node (all-zero for untouched nodes).
    /// Cheaper than [`clock`](Simulator::clock) — no `proc_free`
    /// allocation — for walking a node range during report assembly.
    pub fn node_stage(&self, node: NodeId) -> StageTotals {
        match self.clocks.slot.get(node) {
            Some(&s) if s != UNTRACKED => self.clocks.stage_busy[s as usize],
            _ => StageTotals::new(),
        }
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Per-stage busy time summed across every node (runtime threads plus
    /// [`Stage::Exec`] processor work). O(active nodes).
    pub fn stage_totals(&self) -> StageTotals {
        let mut totals = StageTotals::new();
        for sb in &self.clocks.stage_busy {
            totals.merge(sb);
        }
        totals
    }

    /// Per-node stage attribution, sparse: `(node, totals)` for exactly
    /// the nodes with nonzero accumulated stage time, sorted by node.
    /// O(active nodes) to assemble — a 1M-node run where 10k nodes worked
    /// yields 10k rows, not 1M.
    pub fn node_stage_busy(&self) -> Vec<(NodeId, StageTotals)> {
        let mut rows: Vec<(NodeId, StageTotals)> = self
            .clocks
            .active
            .iter()
            .enumerate()
            .filter(|&(slot, _)| self.clocks.stage_busy[slot].sum() != SimTime::ZERO)
            .map(|(slot, &id)| (id, self.clocks.stage_busy[slot]))
            .collect();
        rows.sort_unstable_by_key(|&(id, _)| id);
        rows
    }

    /// The machine description.
    pub fn machine(&self) -> &MachineDesc {
        &self.machine
    }

    /// Immutable access to a node's behavior.
    pub fn node(&self, id: NodeId) -> &B {
        &self.nodes[id]
    }

    /// Mutable access to a node's behavior (for seeding state before a run
    /// or collecting results afterwards).
    pub fn node_mut(&mut self, id: NodeId) -> &mut B {
        &mut self.nodes[id]
    }

    /// A snapshot of a node's clocks. Nodes no event ever reached report
    /// all-zero clocks (they hold no arena slot).
    pub fn clock(&self, id: NodeId) -> NodeClock {
        self.clocks.snapshot(id)
    }

    /// Consume the simulator, returning the node behaviors.
    pub fn into_nodes(self) -> Vec<B> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    #[derive(Default)]
    struct PingPong {
        seen: Vec<u32>,
    }

    impl NodeBehavior<Msg> for PingPong {
        fn on_message(&mut self, ctx: &mut NodeCtx<'_, Msg>, msg: Msg) {
            match msg {
                Msg::Ping(k) => {
                    self.seen.push(k);
                    ctx.charge(SimTime::us(1));
                    if ctx.node() == 0 && k < 3 {
                        ctx.send(1, Msg::Ping(k), 100);
                    } else if ctx.node() == 1 {
                        ctx.send(0, Msg::Pong(k), 100);
                    }
                }
                Msg::Pong(k) => {
                    self.seen.push(1000 + k);
                    ctx.charge(SimTime::us(1));
                    if k + 1 < 3 {
                        ctx.send(0, Msg::Ping(k + 1), 100);
                    }
                }
            }
        }
    }

    fn sim2() -> Simulator<Msg, PingPong> {
        Simulator::new(
            MachineDesc::piz_daint(2),
            Network::aries(),
            vec![PingPong::default(), PingPong::default()],
        )
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut sim = sim2();
        sim.inject(SimTime::ZERO, 0, Msg::Ping(0));
        sim.run(1_000);
        assert_eq!(sim.node(0).seen, vec![0, 1000, 1, 1001, 2, 1002]);
        assert_eq!(sim.node(1).seen, vec![0, 1, 2]);
        // 6 cross-node messages of 100 bytes each.
        assert_eq!(sim.stats().messages, 6);
        assert_eq!(sim.stats().bytes, 600);
        assert!(sim.makespan() > SimTime::us(6));
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut sim = sim2();
            sim.inject(SimTime::ZERO, 0, Msg::Ping(0));
            sim.run(1_000);
            (sim.makespan(), sim.stats().events)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn runtime_thread_serializes_handlers() {
        // Two messages arriving simultaneously are processed back-to-back.
        let mut sim = sim2();
        sim.inject(SimTime::ZERO, 1, Msg::Ping(7));
        sim.inject(SimTime::ZERO, 1, Msg::Ping(8));
        sim.run(100);
        // Each handler charges 1us and replies; replies are injected at
        // 1us and 2us respectively (plus NIC costs), so node 1's runtime
        // was busy 2us total.
        assert_eq!(sim.clock(1).runtime_busy, SimTime::us(2));
        assert_eq!(sim.node(1).seen, vec![7, 8]);
    }

    #[test]
    fn nic_serialization_orders_sends() {
        struct Burst;
        impl NodeBehavior<u64> for Burst {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u64>, msg: u64) {
                if msg == 0 && ctx.node() == 0 {
                    // Inject 10 large messages back-to-back.
                    for _ in 0..10 {
                        ctx.send(1, 1, 10_000); // 1us occupancy each + 0.4us overhead
                    }
                }
            }
        }
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            Network::aries(),
            vec![Burst, Burst],
        );
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(100);
        // NIC occupancy: 10 * (1us + 0.4us) = 14us; last arrival adds latency.
        assert_eq!(sim.clock(0).nic_free, SimTime::ns(14_000));
        assert_eq!(sim.makespan(), SimTime::ns(14_000) + SimTime::ns(1_300));
    }

    #[test]
    fn proc_execution_is_async() {
        struct Exec {
            done_at: Option<SimTime>,
        }
        impl NodeBehavior<u8> for Exec {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, msg: u8) {
                match msg {
                    0 => {
                        let done = ctx.exec_on_proc(12, SimTime::ms(1)); // the GPU
                        ctx.charge(SimTime::us(5)); // runtime keeps working
                        ctx.send_self_at(done, 1);
                    }
                    1 => self.done_at = Some(ctx.arrival()),
                    _ => unreachable!(),
                }
            }
        }
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(1),
            Network::ideal(),
            vec![Exec { done_at: None }],
        );
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(10);
        assert_eq!(sim.node(0).done_at, Some(SimTime::ms(1)));
        // Runtime thread only accumulated its 5us of charged work.
        assert_eq!(sim.clock(0).runtime_busy, SimTime::us(5));
    }

    #[test]
    fn charges_and_sends_attribute_to_declared_stage() {
        struct Staged;
        impl NodeBehavior<u8> for Staged {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, msg: u8) {
                if msg != 0 {
                    return;
                }
                assert_eq!(ctx.stage(), Stage::Other);
                ctx.charge(SimTime::us(1)); // untagged
                ctx.set_stage(Stage::Distribution);
                ctx.charge(SimTime::us(2));
                ctx.send(1, 1, 100);
                ctx.set_stage(Stage::Physical);
                ctx.charge(SimTime::us(3));
                let done = ctx.exec_on_proc(0, SimTime::us(10));
                ctx.set_stage(Stage::Network);
                ctx.send_self_at(done, 2);
                ctx.send(1, 1, 50);
            }
        }
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            Network::aries(),
            vec![Staged, Staged],
        );
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(10);
        let c = sim.clock(0);
        assert_eq!(c.stage_busy.get(Stage::Other), SimTime::us(1));
        assert_eq!(c.stage_busy.get(Stage::Distribution), SimTime::us(2));
        assert_eq!(c.stage_busy.get(Stage::Physical), SimTime::us(3));
        assert_eq!(c.stage_busy.get(Stage::Exec), SimTime::us(10));
        assert_eq!(c.runtime_busy, SimTime::us(6));
        let traffic = &sim.stats().traffic;
        assert_eq!(traffic.messages[Stage::Distribution.index()], 1);
        assert_eq!(traffic.bytes[Stage::Distribution.index()], 100);
        assert_eq!(traffic.messages[Stage::Network.index()], 1);
        assert_eq!(traffic.bytes[Stage::Network.index()], 50);
        // Aggregates and the per-stage split agree.
        assert_eq!(sim.stats().messages, 2);
        assert_eq!(sim.stats().bytes, 150);
        assert_eq!(sim.stage_totals().get(Stage::Exec), SimTime::us(10));
    }

    /// Recorder behavior: logs every received payload, charges nothing.
    #[derive(Default)]
    struct Recorder {
        seen: Vec<u64>,
    }
    impl NodeBehavior<u64> for Recorder {
        fn on_message(&mut self, _ctx: &mut NodeCtx<'_, u64>, msg: u64) {
            self.seen.push(msg);
        }
    }

    #[test]
    fn same_timestamp_events_pop_in_enqueue_order() {
        // The documented tie-break: equal-time events dispatch in the order
        // they were enqueued (sequence number), independent of payload,
        // destination, or queue implementation.
        for kind in [QueueKind::BinaryHeap, QueueKind::Calendar] {
            let mut sim = Simulator::new(
                MachineDesc::piz_daint(2),
                Network::ideal(),
                vec![Recorder::default(), Recorder::default()],
            )
            .with_queue(kind);
            let t = SimTime::us(5);
            for k in [9u64, 3, 7, 1, 8, 2] {
                sim.inject(t, 0, k);
            }
            sim.inject(t, 1, 100);
            sim.inject(t, 1, 99);
            sim.run(100);
            assert_eq!(sim.node(0).seen, vec![9, 3, 7, 1, 8, 2]);
            assert_eq!(sim.node(1).seen, vec![100, 99]);
        }
    }

    #[test]
    fn time_regression_is_a_structured_error() {
        for kind in [QueueKind::BinaryHeap, QueueKind::Calendar] {
            let mut sim = Simulator::new(
                MachineDesc::piz_daint(1),
                Network::ideal(),
                vec![Recorder::default()],
            )
            .with_queue(kind);
            sim.inject(SimTime::us(10), 0, 1);
            assert_eq!(sim.try_step(), Ok(true)); // clock now at 10us
            sim.inject(SimTime::us(2), 0, 2); // stale injection
            let err = sim.try_step().unwrap_err();
            assert_eq!(
                err,
                SimError::TimeRegression {
                    event: SimTime::us(2),
                    now: SimTime::us(10),
                    dst: 0,
                    seq: 1,
                }
            );
            assert!(err.to_string().contains("time went backwards"));
        }
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn step_panics_on_time_regression() {
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(1),
            Network::ideal(),
            vec![Recorder::default()],
        );
        sim.inject(SimTime::us(10), 0, 1);
        sim.step();
        sim.inject(SimTime::us(2), 0, 2);
        sim.step();
    }

    #[test]
    fn crashed_node_discards_events_and_clamps_makespan() {
        use crate::fault::{FaultPlan, FaultSpec};
        // Find a seed whose plan crashes node 1 inside the window.
        let spec = FaultSpec {
            drop_per_mille: 0,
            dup_per_mille: 0,
            crash_window: (SimTime::us(1), SimTime::us(1)),
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(0, 2, &spec);
        assert_eq!(plan.crashes(), &[(1, SimTime::us(1))]);
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            Network::ideal(),
            vec![Recorder::default(), Recorder::default()],
        );
        sim.set_fault_plan(plan);
        sim.inject(SimTime::ZERO, 1, 7); // before the crash: delivered
        sim.inject(SimTime::us(2), 1, 8); // after the crash: dropped
        sim.inject(SimTime::us(3), 0, 9); // node 0 unaffected
        sim.run(10);
        assert_eq!(sim.node(1).seen, vec![7]);
        assert_eq!(sim.node(0).seen, vec![9]);
        assert_eq!(sim.stats().faults.crash_dropped, 1);
        assert_eq!(sim.stats().events, 3);
    }

    #[test]
    fn slow_nodes_pay_the_charge_multiplier() {
        use crate::fault::{FaultPlan, FaultSpec};
        struct Worker;
        impl NodeBehavior<u8> for Worker {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, _msg: u8) {
                ctx.charge(SimTime::us(1));
                ctx.exec_on_proc(0, SimTime::us(10));
            }
        }
        let spec = FaultSpec {
            drop_per_mille: 0,
            dup_per_mille: 0,
            max_crashes: 0,
            slow_nodes: 1,
            slow_factor: 4,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(0, 2, &spec);
        assert_eq!(plan.slow_factor(1), 4);
        let mut sim =
            Simulator::new(MachineDesc::piz_daint(2), Network::ideal(), vec![Worker, Worker]);
        sim.set_fault_plan(plan);
        sim.inject(SimTime::ZERO, 0, 0);
        sim.inject(SimTime::ZERO, 1, 0);
        sim.run(10);
        assert_eq!(sim.clock(0).runtime_busy, SimTime::us(1));
        assert_eq!(sim.clock(1).runtime_busy, SimTime::us(4));
        assert_eq!(sim.clock(0).proc_free[0], SimTime::us(11));
        assert_eq!(sim.clock(1).proc_free[0], SimTime::us(44));
    }

    #[test]
    fn control_channel_is_exempt_from_drops() {
        use crate::fault::{FaultPlan, FaultSpec};
        #[derive(Default)]
        struct Sender {
            got_control: bool,
        }
        impl NodeBehavior<u64> for Sender {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u64>, msg: u64) {
                if ctx.node() == 0 && msg == 0 {
                    for k in 1..=64 {
                        ctx.send(1, k, 64); // data plane: subject to drops
                    }
                    ctx.send_control(1, 999, 64); // control: always delivered
                } else if ctx.node() == 1 && msg == 999 {
                    self.got_control = true;
                }
            }
        }
        let spec = FaultSpec {
            drop_per_mille: 1000, // clamped to 500 by generate()
            dup_per_mille: 0,
            max_crashes: 0,
            slow_nodes: 0,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(0, 2, &spec);
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            Network::aries(),
            vec![Sender::default(), Sender::default()],
        );
        sim.set_fault_plan(plan);
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(1_000);
        let f = sim.stats().faults;
        // At the 50% clamp a good chunk of the 64 data messages drop
        // (deterministic for this seed); the control message never does.
        assert!(f.dropped > 0);
        assert!(f.dropped <= 64);
        assert!(sim.node(1).got_control);
        assert_eq!(sim.stats().messages, 65); // all 65 paid NIC injection
    }

    #[test]
    fn duplicated_messages_deliver_twice() {
        use crate::fault::{FaultPlan, FaultSpec};
        struct Dup;
        impl NodeBehavior<u64> for Dup {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u64>, msg: u64) {
                if ctx.node() == 0 && msg == 0 {
                    for k in 1..=64 {
                        ctx.send(1, k, 16);
                    }
                }
            }
        }
        let spec = FaultSpec {
            drop_per_mille: 0,
            dup_per_mille: 500,
            max_crashes: 0,
            slow_nodes: 0,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(11, 2, &spec);
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            Network::aries(),
            vec![Dup, Dup],
        );
        sim.set_fault_plan(plan);
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(1_000);
        let dups = sim.stats().faults.duplicated;
        assert!(dups > 0, "expected some duplicates at 50%");
        // Dispatched events: the initial inject + 64 deliveries + one per dup.
        assert_eq!(sim.stats().events, 1 + 64 + dups);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn runaway_guard() {
        struct Loopy;
        impl NodeBehavior<u8> for Loopy {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, _msg: u8) {
                ctx.charge(SimTime::us(1));
                let t = ctx.now();
                ctx.send_self_at(t, 0);
            }
        }
        let mut sim = Simulator::new(MachineDesc::piz_daint(1), Network::ideal(), vec![Loopy]);
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(50);
    }

    #[test]
    fn try_run_reports_runaway_as_data() {
        struct Loopy;
        impl NodeBehavior<u8> for Loopy {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, _msg: u8) {
                ctx.charge(SimTime::us(1));
                let t = ctx.now();
                ctx.send_self_at(t, 0);
            }
        }
        let mut sim = Simulator::new(MachineDesc::piz_daint(1), Network::ideal(), vec![Loopy]);
        sim.inject(SimTime::ZERO, 0, 0);
        let err = sim.try_run(50).unwrap_err();
        assert_eq!(err, SimError::RunawayGuard { limit: 50, pending: 1 });
        assert!(err.to_string().contains("exceeded"));
        // A finishing run reports its dispatch count.
        let mut ok = sim2();
        ok.inject(SimTime::ZERO, 0, Msg::Ping(0));
        assert_eq!(ok.try_run(1_000), Ok(ok.stats().events));
    }

    #[test]
    fn default_event_cap_scales_with_machine_size() {
        let small = Simulator::new(
            MachineDesc::piz_daint(2),
            Network::ideal(),
            vec![Recorder::default(), Recorder::default()],
        );
        // Paper scale: floor of 2^20 events.
        assert_eq!(small.default_event_cap(), 1 << 20);
        let big = Simulator::new(
            MachineDesc::piz_daint(65_536),
            Network::ideal(),
            (0..65_536).map(|_| Recorder::default()).collect(),
        );
        assert_eq!(big.default_event_cap(), 65_536 * 4_096);
        assert!(big.default_event_cap() > small.default_event_cap());
    }

    #[test]
    fn auto_queue_selects_by_machine_size() {
        let small = sim2();
        assert_eq!(small.queue_kind(), QueueKind::BinaryHeap);
        let big = Simulator::new(
            MachineDesc::piz_daint(4_096),
            Network::ideal(),
            (0..4_096).map(|_| Recorder::default()).collect(),
        );
        assert_eq!(big.queue_kind(), QueueKind::Calendar);
    }

    #[test]
    fn clock_storage_is_o_active_and_reports_are_sparse() {
        struct Worker;
        impl NodeBehavior<u8> for Worker {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, _msg: u8) {
                ctx.set_stage(Stage::Exec);
                ctx.charge(SimTime::us(ctx.node() as u64 + 1));
            }
        }
        let nodes = 10_000;
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(nodes),
            Network::ideal(),
            (0..nodes).map(|_| Worker).collect(),
        );
        // Only three nodes ever see an event (injected out of node order).
        for n in [7_777, 3, 512] {
            sim.inject(SimTime::ZERO, n, 0);
        }
        sim.run(100);
        assert_eq!(sim.clocks.active.len(), 3);
        // Sparse per-node rows: sorted by node, only active nodes.
        let rows = sim.node_stage_busy();
        let ids: Vec<NodeId> = rows.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![3, 512, 7_777]);
        for &(id, totals) in &rows {
            assert_eq!(totals.get(Stage::Exec), SimTime::us(id as u64 + 1));
        }
        // Untouched nodes still answer clock() with zeros.
        let idle = sim.clock(9_999);
        assert_eq!(idle.runtime_busy, SimTime::ZERO);
        assert_eq!(idle.proc_free.len(), sim.machine().procs_per_node());
        // Aggregates agree with the sparse rows.
        let merged: SimTime = rows.iter().map(|&(_, t)| t.sum()).sum();
        assert_eq!(sim.stage_totals().sum(), merged);
        assert_eq!(sim.makespan(), SimTime::us(7_778));
    }

    #[test]
    fn single_lane_counters_match_global_stats() {
        use crate::fault::{FaultPlan, FaultSpec};
        // One lane over the whole machine must reproduce SimStats field
        // for field — the service-mode n=1 transparency anchor. Faults on
        // so the fault counters are exercised too.
        #[derive(Default)]
        struct Chat;
        impl NodeBehavior<u64> for Chat {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u64>, msg: u64) {
                ctx.charge(SimTime::us(1));
                if msg > 0 {
                    ctx.set_stage(Stage::Distribution);
                    ctx.send(ctx.node() ^ 1, msg - 1, 128);
                }
            }
        }
        let spec = FaultSpec {
            drop_per_mille: 200,
            dup_per_mille: 200,
            max_crashes: 0,
            slow_nodes: 0,
            ..FaultSpec::default()
        };
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            Network::aries(),
            vec![Chat, Chat],
        );
        sim.set_fault_plan(FaultPlan::generate(9, 2, &spec));
        sim.enable_lanes(vec![0, 0], 1);
        sim.inject(SimTime::ZERO, 0, 64);
        sim.run(10_000);
        let lane = sim.lane_stats(0);
        let stats = sim.stats();
        assert_eq!(lane.messages, stats.messages);
        assert_eq!(lane.bytes, stats.bytes);
        assert_eq!(lane.traffic, stats.traffic);
        assert_eq!(lane.faults, stats.faults);
        assert!(lane.faults.dropped > 0 || lane.faults.duplicated > 0);
        assert_eq!(sim.lane_outstanding(0), 0);
    }

    #[test]
    fn lanes_attribute_traffic_and_drain_independently() {
        struct Relay;
        impl NodeBehavior<u64> for Relay {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u64>, msg: u64) {
                ctx.charge(SimTime::us(1));
                if msg > 0 {
                    ctx.send(ctx.node() ^ 1, msg - 1, 100);
                }
            }
        }
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(4),
            Network::aries(),
            (0..4).map(|_| Relay).collect(),
        );
        sim.enable_lanes(vec![0, 0, 1, 1], 2);
        sim.inject(SimTime::ZERO, 0, 4);
        sim.inject(SimTime::ZERO, 2, 2);
        assert_eq!(sim.lane_outstanding(0), 1);
        assert_eq!(sim.lane_outstanding(1), 1);
        sim.run(100);
        let (a, b) = (sim.lane_stats(0), sim.lane_stats(1));
        assert_eq!(a.messages, 4);
        assert_eq!(a.bytes, 400);
        assert_eq!(b.messages, 2);
        assert_eq!(b.bytes, 200);
        assert_eq!(a.messages + b.messages, sim.stats().messages);
        assert_eq!(sim.lane_outstanding(0), 0);
        assert_eq!(sim.lane_outstanding(1), 0);
    }

    #[test]
    fn peek_time_is_nonperturbing() {
        for kind in [QueueKind::BinaryHeap, QueueKind::Calendar] {
            let mut sim = Simulator::new(
                MachineDesc::piz_daint(2),
                Network::ideal(),
                vec![Recorder::default(), Recorder::default()],
            )
            .with_queue(kind);
            let t = SimTime::us(5);
            for k in [9u64, 3, 7] {
                sim.inject(t, 0, k);
            }
            sim.inject(SimTime::us(6), 1, 42);
            // Peeking is idempotent and preserves the (time, seq) order.
            assert_eq!(sim.peek_time(), Some(t));
            assert_eq!(sim.peek_time(), Some(t));
            while sim.peek_time().is_some() {
                sim.step();
            }
            assert_eq!(sim.node(0).seen, vec![9, 3, 7]);
            assert_eq!(sim.node(1).seen, vec![42]);
        }
    }

    #[test]
    fn node_busy_until_is_raw_and_node_stage_is_per_node() {
        use crate::fault::{FaultPlan, FaultSpec};
        struct Worker;
        impl NodeBehavior<u8> for Worker {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, _msg: u8) {
                ctx.charge(SimTime::us(10));
            }
        }
        let spec = FaultSpec {
            drop_per_mille: 0,
            dup_per_mille: 0,
            slow_nodes: 0,
            crash_window: (SimTime::us(1), SimTime::us(1)),
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(0, 2, &spec);
        assert_eq!(plan.crashes(), &[(1, SimTime::us(1))]);
        let mut sim =
            Simulator::new(MachineDesc::piz_daint(2), Network::ideal(), vec![Worker, Worker]);
        sim.set_fault_plan(plan);
        sim.inject(SimTime::ZERO, 1, 0); // delivered before the crash
        sim.run(10);
        // The makespan clamps the crashed node to its crash time; the raw
        // per-node query reports the booked work unclamped.
        assert_eq!(sim.makespan(), SimTime::us(1));
        assert_eq!(sim.node_busy_until(1), SimTime::us(10));
        assert_eq!(sim.node_busy_until(0), SimTime::ZERO); // untouched
        assert_eq!(sim.node_stage(1).get(Stage::Other), SimTime::us(10));
        assert_eq!(sim.node_stage(0), StageTotals::new());
    }

    #[test]
    fn exempt_nodes_are_removed_from_fault_schedules() {
        use crate::fault::{FaultPlan, FaultSpec};
        let spec = FaultSpec {
            max_crashes: 6,
            slow_nodes: 6,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(5, 16, &spec);
        assert!(!plan.crashes().is_empty());
        let exempted = plan.clone().with_exempt_nodes(|n| n % 4 == 0);
        for n in 0..16 {
            if n % 4 == 0 {
                assert_eq!(exempted.crash_time(n), None);
                assert_eq!(exempted.slow_factor(n), 1);
            } else {
                assert_eq!(exempted.crash_time(n), plan.crash_time(n));
                assert_eq!(exempted.slow_factor(n), plan.slow_factor(n));
            }
        }
        // Drop/duplication draws are untouched.
        for nonce in 0..256 {
            assert_eq!(exempted.drop_message(nonce), plan.drop_message(nonce));
            assert_eq!(exempted.duplicate_message(nonce), plan.duplicate_message(nonce));
        }
        // A predicate matching nothing leaves the schedule unchanged.
        let same = plan.clone().with_exempt_nodes(|_| false);
        assert_eq!(same.crashes(), plan.crashes());
        assert_eq!(same.slow_nodes(), plan.slow_nodes());
    }

    #[test]
    fn hierarchical_interconnect_is_opt_in_and_slower() {
        use crate::network::HierNetwork;
        use crate::topology::HierarchySpec;
        struct Fan;
        impl NodeBehavior<u64> for Fan {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u64>, msg: u64) {
                if msg == 0 && ctx.node() == 0 {
                    for dst in 1..ctx.nodes() {
                        ctx.send(dst, dst as u64, 4_096);
                    }
                }
            }
        }
        let run = |hier: bool| {
            let machine = MachineDesc::piz_daint(64);
            let behaviors = (0..64).map(|_| Fan).collect();
            let mut sim = Simulator::new(machine, Network::aries(), behaviors);
            if hier {
                sim = sim.with_interconnect(Box::new(HierNetwork::new(
                    Network::aries(),
                    HierarchySpec::two_level(4, 4),
                )));
            }
            sim.inject(SimTime::ZERO, 0, 0);
            sim.run(1_000);
            (sim.stats().events, sim.makespan())
        };
        let (flat_events, flat_makespan) = run(false);
        let (hier_events, hier_makespan) = run(true);
        // Same traffic either way; the hierarchy only delays arrivals.
        assert_eq!(flat_events, hier_events);
        assert!(hier_makespan > flat_makespan);
    }
}
