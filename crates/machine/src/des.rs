//! The discrete-event simulation core.
//!
//! A [`Simulator`] owns one behavior object per node plus a per-node clock
//! tracking when the node's runtime thread, NIC, and processors become free.
//! Events (messages) are processed in deterministic `(time, sequence)`
//! order: ties in time break by the sequence number assigned at enqueue, so
//! same-timestamp events (common under injected faults) always pop in the
//! order they were sent, regardless of heap internals or host parallelism.
//! A node handles a message no earlier than both its arrival time and
//! the time the node's runtime thread frees up, which is what makes a
//! centralized control node processing O(|D|) messages an honest bottleneck
//! in the simulation.
//!
//! An optional [`FaultPlan`] (see [`crate::fault`]) makes the machine
//! adversarial: crashed nodes silently discard every event addressed to
//! them, the network drops or duplicates data-plane messages, and slow
//! nodes pay a multiplier on all charged work. With no plan installed every
//! fault hook is a no-op and the simulation is byte-identical to one built
//! before faults existed.

use crate::fault::{FaultCounters, FaultPlan};
use crate::machine::MachineDesc;
use crate::network::Network;
use crate::stage::{Stage, StageTotals, StageTraffic};
use crate::time::SimTime;
use crate::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Behavior of one simulated node: a message handler invoked by the
/// simulator whenever a message addressed to this node comes due.
pub trait NodeBehavior<M> {
    /// Handle `msg`. Use `ctx` to charge simulated time, send messages, and
    /// run work on processors.
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, M>, msg: M);
}

#[derive(Debug)]
struct Event<M> {
    time: SimTime,
    seq: u64,
    dst: NodeId,
    msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Per-node availability clocks.
#[derive(Clone, Debug, Default)]
pub struct NodeClock {
    /// When the node's (single) runtime/analysis thread is next free.
    pub runtime_free: SimTime,
    /// When the node's NIC finishes injecting its last message.
    pub nic_free: SimTime,
    /// When each local processor is next free.
    pub proc_free: Vec<SimTime>,
    /// Total busy time accumulated by the runtime thread.
    pub runtime_busy: SimTime,
    /// Busy time by pipeline stage: runtime-thread charges land in the
    /// stage the handler declared ([`NodeCtx::set_stage`]); processor
    /// work accrues under [`Stage::Exec`].
    pub stage_busy: StageTotals,
}

/// Aggregate statistics of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Events dispatched.
    pub events: u64,
    /// Cross-node messages sent.
    pub messages: u64,
    /// Total bytes injected into the network.
    pub bytes: u64,
    /// Messages/bytes broken down by the sending handler's stage.
    pub traffic: StageTraffic,
    /// Fault activity (all zero when no [`FaultPlan`] is installed).
    pub faults: FaultCounters,
}

/// A structural invariant violation detected by the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// An event came due earlier than the current simulation time: the
    /// `(time, seq)` queue invariant was violated. This can only happen if
    /// an event was enqueued in the past (e.g. [`Simulator::inject`] called
    /// mid-run with a stale timestamp) — handlers cannot produce one.
    TimeRegression {
        /// The offending event's timestamp.
        event: SimTime,
        /// The simulation clock when it popped.
        now: SimTime,
        /// The event's destination node.
        dst: NodeId,
        /// The event's enqueue sequence number.
        seq: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TimeRegression { event, now, dst, seq } => write!(
                f,
                "time went backwards: event seq {seq} for node {dst} due at {event} \
                 popped at simulation time {now}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Handle given to a node's message handler.
///
/// The `cursor` is the node-local current time: it starts at
/// `max(arrival, runtime_free)` and advances as the handler charges work.
/// All sends are injected at the cursor (serialized through the NIC).
pub struct NodeCtx<'a, M> {
    node: NodeId,
    arrival: SimTime,
    cursor: SimTime,
    stage: Stage,
    clock: &'a mut NodeClock,
    network: &'a Network,
    nodes: usize,
    outbox: Vec<(SimTime, NodeId, M)>,
    stats: &'a mut SimStats,
    /// The fault plan, if one is installed (None → every hook is a no-op).
    plan: Option<&'a FaultPlan>,
    /// Counter indexing the plan's per-message drop/duplication draws.
    fault_nonce: &'a mut u64,
    /// Charge multiplier for this node (1 unless the plan marks it slow).
    slow: u64,
}

impl<'a, M> NodeCtx<'a, M> {
    /// The node this handler runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the machine.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The time the message arrived at the node.
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// Node-local current time (arrival, plus queueing behind earlier work,
    /// plus work charged so far in this handler).
    pub fn now(&self) -> SimTime {
        self.cursor
    }

    /// The stage subsequent charges/sends are attributed to.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// Declare the pipeline stage for subsequent charges and sends.
    /// Handlers start each dispatch in [`Stage::Other`].
    pub fn set_stage(&mut self, stage: Stage) {
        self.stage = stage;
    }

    /// Charge `duration` of sequential runtime work (advances the cursor).
    /// On a fault-plan slow node the charge is inflated by the plan's
    /// multiplier.
    pub fn charge(&mut self, duration: SimTime) {
        let duration = duration * self.slow;
        self.cursor += duration;
        self.clock.runtime_busy += duration;
        self.clock.stage_busy.add(self.stage, duration);
    }

    /// Send `msg` to another node through the network; `bytes` sets the
    /// transfer cost. Sending to self delivers after loopback latency
    /// without touching the NIC.
    ///
    /// This is the *data-plane* path: when a fault plan is installed the
    /// network may drop the message (NIC occupancy is still paid — the
    /// message was injected, then lost) or deliver a duplicate copy one
    /// extra wire latency later. Use
    /// [`send_control`](NodeCtx::send_control) for messages that must not
    /// be faulted.
    pub fn send(&mut self, dst: NodeId, msg: M, bytes: u64)
    where
        M: Clone,
    {
        assert!(dst < self.nodes, "destination {dst} out of range");
        if dst == self.node {
            self.outbox.push((self.cursor, dst, msg));
            return;
        }
        let arrival = self.inject_to_nic(bytes);
        if let Some(plan) = self.plan {
            let nonce = *self.fault_nonce;
            *self.fault_nonce += 1;
            if plan.drop_message(nonce) {
                self.stats.faults.dropped += 1;
                return;
            }
            if plan.duplicate_message(nonce) {
                self.stats.faults.duplicated += 1;
                self.outbox
                    .push((arrival + self.network.latency, dst, msg.clone()));
            }
        }
        self.outbox.push((arrival, dst, msg));
    }

    /// Send `msg` to another node over the *control channel*: identical
    /// charging and accounting to [`send`](NodeCtx::send), but exempt from
    /// fault-plan drop/duplication. The runtime's recovery protocol
    /// (completion reports, retry directives) rides on this channel — the
    /// standard reliable-control-transport assumption (see
    /// [`crate::fault`]). With no fault plan installed the two paths are
    /// indistinguishable.
    pub fn send_control(&mut self, dst: NodeId, msg: M, bytes: u64) {
        assert!(dst < self.nodes, "destination {dst} out of range");
        if dst == self.node {
            self.outbox.push((self.cursor, dst, msg));
            return;
        }
        let arrival = self.inject_to_nic(bytes);
        self.outbox.push((arrival, dst, msg));
    }

    /// Serialize a `bytes`-byte message through the NIC: advances
    /// `nic_free`, records stats, returns the arrival time at the remote
    /// node.
    fn inject_to_nic(&mut self, bytes: u64) -> SimTime {
        let start = self.cursor.max(self.clock.nic_free);
        let occupancy = self.network.occupancy(bytes);
        self.clock.nic_free = start + occupancy;
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        self.stats.traffic.record(self.stage, bytes);
        start + occupancy + self.network.latency
    }

    /// Schedule a message to this node at an absolute future time (used for
    /// completion notifications of processor work).
    pub fn send_self_at(&mut self, time: SimTime, msg: M) {
        let t = time.max(self.cursor);
        self.outbox.push((t, self.node, msg));
    }

    /// Run `duration` of work on local processor `local`, starting no
    /// earlier than the cursor. Returns the completion time. Does not
    /// advance the cursor: processors run asynchronously beside the runtime
    /// thread; pair with [`send_self_at`](NodeCtx::send_self_at) to observe
    /// completion.
    pub fn exec_on_proc(&mut self, local: usize, duration: SimTime) -> SimTime {
        assert!(local < self.clock.proc_free.len(), "processor {local} out of range");
        let duration = duration * self.slow;
        let start = self.cursor.max(self.clock.proc_free[local]);
        let done = start + duration;
        self.clock.proc_free[local] = done;
        self.clock.stage_busy.add(Stage::Exec, duration);
        done
    }

    /// When processor `local` is next free.
    pub fn proc_free(&self, local: usize) -> SimTime {
        self.clock.proc_free[local]
    }

    /// The network model in force.
    pub fn network(&self) -> &Network {
        self.network
    }
}

/// The deterministic discrete-event simulator.
pub struct Simulator<M, B> {
    machine: MachineDesc,
    network: Network,
    nodes: Vec<B>,
    clocks: Vec<NodeClock>,
    queue: BinaryHeap<Reverse<Event<M>>>,
    now: SimTime,
    seq: u64,
    stats: SimStats,
    fault_plan: Option<FaultPlan>,
    fault_nonce: u64,
}

impl<M, B: NodeBehavior<M>> Simulator<M, B> {
    /// Build a simulator over `machine` with one behavior per node.
    ///
    /// # Panics
    /// Panics if `behaviors.len() != machine.nodes`.
    pub fn new(machine: MachineDesc, network: Network, behaviors: Vec<B>) -> Self {
        assert_eq!(behaviors.len(), machine.nodes, "one behavior per node required");
        let clocks = (0..machine.nodes)
            .map(|_| NodeClock {
                proc_free: vec![SimTime::ZERO; machine.procs_per_node()],
                ..NodeClock::default()
            })
            .collect();
        Simulator {
            machine,
            network,
            nodes: behaviors,
            clocks,
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            stats: SimStats::default(),
            fault_plan: None,
            fault_nonce: 0,
        }
    }

    /// Install a fault plan. Every subsequent dispatch consults it; with no
    /// plan installed (the default) the fault hooks are no-ops.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Inject an initial message for `dst` at absolute time `time`.
    pub fn inject(&mut self, time: SimTime, dst: NodeId, msg: M) {
        assert!(dst < self.nodes.len(), "destination out of range");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { time, seq, dst, msg }));
    }

    /// Dispatch the next event. `Ok(false)` when the queue is empty;
    /// [`SimError::TimeRegression`] if the due event predates the clock.
    pub fn try_step(&mut self) -> Result<bool, SimError> {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return Ok(false);
        };
        if ev.time < self.now {
            return Err(SimError::TimeRegression {
                event: ev.time,
                now: self.now,
                dst: ev.dst,
                seq: ev.seq,
            });
        }
        self.now = ev.time;
        self.stats.events += 1;
        if let Some(plan) = &self.fault_plan {
            if plan.is_crashed(ev.dst, ev.time) {
                // A dead node silently discards everything addressed to it.
                self.stats.faults.crash_dropped += 1;
                return Ok(true);
            }
        }
        let slow = self
            .fault_plan
            .as_ref()
            .map_or(1, |p| p.slow_factor(ev.dst));
        let clock = &mut self.clocks[ev.dst];
        let start = ev.time.max(clock.runtime_free);
        let mut ctx = NodeCtx {
            node: ev.dst,
            arrival: ev.time,
            cursor: start,
            stage: Stage::Other,
            clock,
            network: &self.network,
            nodes: self.nodes.len(),
            outbox: Vec::new(),
            stats: &mut self.stats,
            plan: self.fault_plan.as_ref(),
            fault_nonce: &mut self.fault_nonce,
            slow,
        };
        self.nodes[ev.dst].on_message(&mut ctx, ev.msg);
        let cursor = ctx.cursor;
        let outbox = std::mem::take(&mut ctx.outbox);
        self.clocks[ev.dst].runtime_free = cursor;
        for (time, dst, msg) in outbox {
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Reverse(Event { time, seq, dst, msg }));
        }
        Ok(true)
    }

    /// Dispatch the next event. Returns `false` when the queue is empty.
    ///
    /// # Panics
    /// Panics with the [`SimError`] if the queue invariant is violated.
    pub fn step(&mut self) -> bool {
        self.try_step().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run until the event queue drains.
    ///
    /// # Panics
    /// Panics after `max_events` dispatches as a runaway guard, or with the
    /// [`SimError`] if the queue invariant is violated.
    pub fn run(&mut self, max_events: u64) {
        let mut dispatched = 0u64;
        while self.step() {
            dispatched += 1;
            assert!(dispatched <= max_events, "simulation exceeded {max_events} events");
        }
    }

    /// Current simulated time (time of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The makespan: the latest time any runtime thread, NIC, or processor
    /// is busy until. A crashed node's contribution is clamped to its crash
    /// time — work it had booked past that instant died with it.
    pub fn makespan(&self) -> SimTime {
        self.clocks
            .iter()
            .enumerate()
            .map(|(id, c)| {
                let p = c.proc_free.iter().copied().max().unwrap_or(SimTime::ZERO);
                let busy_until = c.runtime_free.max(c.nic_free).max(p);
                match self.fault_plan.as_ref().and_then(|pl| pl.crash_time(id)) {
                    Some(crash) => busy_until.min(crash),
                    None => busy_until,
                }
            })
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Per-stage busy time summed across every node (runtime threads plus
    /// [`Stage::Exec`] processor work).
    pub fn stage_totals(&self) -> StageTotals {
        let mut totals = StageTotals::new();
        for c in &self.clocks {
            totals.merge(&c.stage_busy);
        }
        totals
    }

    /// The machine description.
    pub fn machine(&self) -> &MachineDesc {
        &self.machine
    }

    /// Immutable access to a node's behavior.
    pub fn node(&self, id: NodeId) -> &B {
        &self.nodes[id]
    }

    /// Mutable access to a node's behavior (for seeding state before a run
    /// or collecting results afterwards).
    pub fn node_mut(&mut self, id: NodeId) -> &mut B {
        &mut self.nodes[id]
    }

    /// Per-node clocks (read-only).
    pub fn clock(&self, id: NodeId) -> &NodeClock {
        &self.clocks[id]
    }

    /// Consume the simulator, returning the node behaviors.
    pub fn into_nodes(self) -> Vec<B> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    #[derive(Default)]
    struct PingPong {
        seen: Vec<u32>,
    }

    impl NodeBehavior<Msg> for PingPong {
        fn on_message(&mut self, ctx: &mut NodeCtx<'_, Msg>, msg: Msg) {
            match msg {
                Msg::Ping(k) => {
                    self.seen.push(k);
                    ctx.charge(SimTime::us(1));
                    if ctx.node() == 0 && k < 3 {
                        ctx.send(1, Msg::Ping(k), 100);
                    } else if ctx.node() == 1 {
                        ctx.send(0, Msg::Pong(k), 100);
                    }
                }
                Msg::Pong(k) => {
                    self.seen.push(1000 + k);
                    ctx.charge(SimTime::us(1));
                    if k + 1 < 3 {
                        ctx.send(0, Msg::Ping(k + 1), 100);
                    }
                }
            }
        }
    }

    fn sim2() -> Simulator<Msg, PingPong> {
        Simulator::new(
            MachineDesc::piz_daint(2),
            Network::aries(),
            vec![PingPong::default(), PingPong::default()],
        )
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut sim = sim2();
        sim.inject(SimTime::ZERO, 0, Msg::Ping(0));
        sim.run(1_000);
        assert_eq!(sim.node(0).seen, vec![0, 1000, 1, 1001, 2, 1002]);
        assert_eq!(sim.node(1).seen, vec![0, 1, 2]);
        // 6 cross-node messages of 100 bytes each.
        assert_eq!(sim.stats().messages, 6);
        assert_eq!(sim.stats().bytes, 600);
        assert!(sim.makespan() > SimTime::us(6));
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut sim = sim2();
            sim.inject(SimTime::ZERO, 0, Msg::Ping(0));
            sim.run(1_000);
            (sim.makespan(), sim.stats().events)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn runtime_thread_serializes_handlers() {
        // Two messages arriving simultaneously are processed back-to-back.
        let mut sim = sim2();
        sim.inject(SimTime::ZERO, 1, Msg::Ping(7));
        sim.inject(SimTime::ZERO, 1, Msg::Ping(8));
        sim.run(100);
        // Each handler charges 1us and replies; replies are injected at
        // 1us and 2us respectively (plus NIC costs), so node 1's runtime
        // was busy 2us total.
        assert_eq!(sim.clock(1).runtime_busy, SimTime::us(2));
        assert_eq!(sim.node(1).seen, vec![7, 8]);
    }

    #[test]
    fn nic_serialization_orders_sends() {
        struct Burst;
        impl NodeBehavior<u64> for Burst {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u64>, msg: u64) {
                if msg == 0 && ctx.node() == 0 {
                    // Inject 10 large messages back-to-back.
                    for _ in 0..10 {
                        ctx.send(1, 1, 10_000); // 1us occupancy each + 0.4us overhead
                    }
                }
            }
        }
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            Network::aries(),
            vec![Burst, Burst],
        );
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(100);
        // NIC occupancy: 10 * (1us + 0.4us) = 14us; last arrival adds latency.
        assert_eq!(sim.clock(0).nic_free, SimTime::ns(14_000));
        assert_eq!(sim.makespan(), SimTime::ns(14_000) + SimTime::ns(1_300));
    }

    #[test]
    fn proc_execution_is_async() {
        struct Exec {
            done_at: Option<SimTime>,
        }
        impl NodeBehavior<u8> for Exec {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, msg: u8) {
                match msg {
                    0 => {
                        let done = ctx.exec_on_proc(12, SimTime::ms(1)); // the GPU
                        ctx.charge(SimTime::us(5)); // runtime keeps working
                        ctx.send_self_at(done, 1);
                    }
                    1 => self.done_at = Some(ctx.arrival()),
                    _ => unreachable!(),
                }
            }
        }
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(1),
            Network::ideal(),
            vec![Exec { done_at: None }],
        );
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(10);
        assert_eq!(sim.node(0).done_at, Some(SimTime::ms(1)));
        // Runtime thread only accumulated its 5us of charged work.
        assert_eq!(sim.clock(0).runtime_busy, SimTime::us(5));
    }

    #[test]
    fn charges_and_sends_attribute_to_declared_stage() {
        struct Staged;
        impl NodeBehavior<u8> for Staged {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, msg: u8) {
                if msg != 0 {
                    return;
                }
                assert_eq!(ctx.stage(), Stage::Other);
                ctx.charge(SimTime::us(1)); // untagged
                ctx.set_stage(Stage::Distribution);
                ctx.charge(SimTime::us(2));
                ctx.send(1, 1, 100);
                ctx.set_stage(Stage::Physical);
                ctx.charge(SimTime::us(3));
                let done = ctx.exec_on_proc(0, SimTime::us(10));
                ctx.set_stage(Stage::Network);
                ctx.send_self_at(done, 2);
                ctx.send(1, 1, 50);
            }
        }
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            Network::aries(),
            vec![Staged, Staged],
        );
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(10);
        let c = sim.clock(0);
        assert_eq!(c.stage_busy.get(Stage::Other), SimTime::us(1));
        assert_eq!(c.stage_busy.get(Stage::Distribution), SimTime::us(2));
        assert_eq!(c.stage_busy.get(Stage::Physical), SimTime::us(3));
        assert_eq!(c.stage_busy.get(Stage::Exec), SimTime::us(10));
        assert_eq!(c.runtime_busy, SimTime::us(6));
        let traffic = &sim.stats().traffic;
        assert_eq!(traffic.messages[Stage::Distribution.index()], 1);
        assert_eq!(traffic.bytes[Stage::Distribution.index()], 100);
        assert_eq!(traffic.messages[Stage::Network.index()], 1);
        assert_eq!(traffic.bytes[Stage::Network.index()], 50);
        // Aggregates and the per-stage split agree.
        assert_eq!(sim.stats().messages, 2);
        assert_eq!(sim.stats().bytes, 150);
        assert_eq!(sim.stage_totals().get(Stage::Exec), SimTime::us(10));
    }

    /// Recorder behavior: logs every received payload, charges nothing.
    #[derive(Default)]
    struct Recorder {
        seen: Vec<u64>,
    }
    impl NodeBehavior<u64> for Recorder {
        fn on_message(&mut self, _ctx: &mut NodeCtx<'_, u64>, msg: u64) {
            self.seen.push(msg);
        }
    }

    #[test]
    fn same_timestamp_events_pop_in_enqueue_order() {
        // The documented tie-break: equal-time events dispatch in the order
        // they were enqueued (sequence number), independent of payload,
        // destination, or heap internals.
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            Network::ideal(),
            vec![Recorder::default(), Recorder::default()],
        );
        let t = SimTime::us(5);
        for k in [9u64, 3, 7, 1, 8, 2] {
            sim.inject(t, 0, k);
        }
        sim.inject(t, 1, 100);
        sim.inject(t, 1, 99);
        sim.run(100);
        assert_eq!(sim.node(0).seen, vec![9, 3, 7, 1, 8, 2]);
        assert_eq!(sim.node(1).seen, vec![100, 99]);
    }

    #[test]
    fn time_regression_is_a_structured_error() {
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(1),
            Network::ideal(),
            vec![Recorder::default()],
        );
        sim.inject(SimTime::us(10), 0, 1);
        assert_eq!(sim.try_step(), Ok(true)); // clock now at 10us
        sim.inject(SimTime::us(2), 0, 2); // stale injection
        let err = sim.try_step().unwrap_err();
        assert_eq!(
            err,
            SimError::TimeRegression {
                event: SimTime::us(2),
                now: SimTime::us(10),
                dst: 0,
                seq: 1,
            }
        );
        assert!(err.to_string().contains("time went backwards"));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn step_panics_on_time_regression() {
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(1),
            Network::ideal(),
            vec![Recorder::default()],
        );
        sim.inject(SimTime::us(10), 0, 1);
        sim.step();
        sim.inject(SimTime::us(2), 0, 2);
        sim.step();
    }

    #[test]
    fn crashed_node_discards_events_and_clamps_makespan() {
        use crate::fault::{FaultPlan, FaultSpec};
        // Find a seed whose plan crashes node 1 inside the window.
        let spec = FaultSpec {
            drop_per_mille: 0,
            dup_per_mille: 0,
            crash_window: (SimTime::us(1), SimTime::us(1)),
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(0, 2, &spec);
        assert_eq!(plan.crashes(), &[(1, SimTime::us(1))]);
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            Network::ideal(),
            vec![Recorder::default(), Recorder::default()],
        );
        sim.set_fault_plan(plan);
        sim.inject(SimTime::ZERO, 1, 7); // before the crash: delivered
        sim.inject(SimTime::us(2), 1, 8); // after the crash: dropped
        sim.inject(SimTime::us(3), 0, 9); // node 0 unaffected
        sim.run(10);
        assert_eq!(sim.node(1).seen, vec![7]);
        assert_eq!(sim.node(0).seen, vec![9]);
        assert_eq!(sim.stats().faults.crash_dropped, 1);
        assert_eq!(sim.stats().events, 3);
    }

    #[test]
    fn slow_nodes_pay_the_charge_multiplier() {
        use crate::fault::{FaultPlan, FaultSpec};
        struct Worker;
        impl NodeBehavior<u8> for Worker {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, _msg: u8) {
                ctx.charge(SimTime::us(1));
                ctx.exec_on_proc(0, SimTime::us(10));
            }
        }
        let spec = FaultSpec {
            drop_per_mille: 0,
            dup_per_mille: 0,
            max_crashes: 0,
            slow_nodes: 1,
            slow_factor: 4,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(0, 2, &spec);
        assert_eq!(plan.slow_factor(1), 4);
        let mut sim =
            Simulator::new(MachineDesc::piz_daint(2), Network::ideal(), vec![Worker, Worker]);
        sim.set_fault_plan(plan);
        sim.inject(SimTime::ZERO, 0, 0);
        sim.inject(SimTime::ZERO, 1, 0);
        sim.run(10);
        assert_eq!(sim.clock(0).runtime_busy, SimTime::us(1));
        assert_eq!(sim.clock(1).runtime_busy, SimTime::us(4));
        assert_eq!(sim.clock(0).proc_free[0], SimTime::us(11));
        assert_eq!(sim.clock(1).proc_free[0], SimTime::us(44));
    }

    #[test]
    fn control_channel_is_exempt_from_drops() {
        use crate::fault::{FaultPlan, FaultSpec};
        #[derive(Default)]
        struct Sender {
            got_control: bool,
        }
        impl NodeBehavior<u64> for Sender {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u64>, msg: u64) {
                if ctx.node() == 0 && msg == 0 {
                    for k in 1..=64 {
                        ctx.send(1, k, 64); // data plane: subject to drops
                    }
                    ctx.send_control(1, 999, 64); // control: always delivered
                } else if ctx.node() == 1 && msg == 999 {
                    self.got_control = true;
                }
            }
        }
        let spec = FaultSpec {
            drop_per_mille: 1000, // clamped to 500 by generate()
            dup_per_mille: 0,
            max_crashes: 0,
            slow_nodes: 0,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(0, 2, &spec);
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            Network::aries(),
            vec![Sender::default(), Sender::default()],
        );
        sim.set_fault_plan(plan);
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(1_000);
        let f = sim.stats().faults;
        // At the 50% clamp a good chunk of the 64 data messages drop
        // (deterministic for this seed); the control message never does.
        assert!(f.dropped > 0);
        assert!(f.dropped <= 64);
        assert!(sim.node(1).got_control);
        assert_eq!(sim.stats().messages, 65); // all 65 paid NIC injection
    }

    #[test]
    fn duplicated_messages_deliver_twice() {
        use crate::fault::{FaultPlan, FaultSpec};
        struct Dup;
        impl NodeBehavior<u64> for Dup {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u64>, msg: u64) {
                if ctx.node() == 0 && msg == 0 {
                    for k in 1..=64 {
                        ctx.send(1, k, 16);
                    }
                }
            }
        }
        let spec = FaultSpec {
            drop_per_mille: 0,
            dup_per_mille: 500,
            max_crashes: 0,
            slow_nodes: 0,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(11, 2, &spec);
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            Network::aries(),
            vec![Dup, Dup],
        );
        sim.set_fault_plan(plan);
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(1_000);
        let dups = sim.stats().faults.duplicated;
        assert!(dups > 0, "expected some duplicates at 50%");
        // Dispatched events: the initial inject + 64 deliveries + one per dup.
        assert_eq!(sim.stats().events, 1 + 64 + dups);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn runaway_guard() {
        struct Loopy;
        impl NodeBehavior<u8> for Loopy {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, _msg: u8) {
                ctx.charge(SimTime::us(1));
                let t = ctx.now();
                ctx.send_self_at(t, 0);
            }
        }
        let mut sim = Simulator::new(MachineDesc::piz_daint(1), Network::ideal(), vec![Loopy]);
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(50);
    }
}
