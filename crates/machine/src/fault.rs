//! Seeded, deterministic fault plans for the DES machine.
//!
//! A [`FaultPlan`] is derived *up front* from a seed and the node count: it
//! fixes, before the simulation starts, which nodes crash (and when), which
//! nodes run slow, and — via a counter-indexed hash — which data-plane
//! messages the network drops or duplicates. Because every decision is a
//! pure function of `(seed, index)`, a faulted run is exactly as
//! reproducible as a fault-free one: identical `(seed, config)` inputs
//! produce byte-identical simulations.
//!
//! The plan models a *survivable* fault environment by construction:
//!
//! - node 0 never crashes (the runtime uses it as the recovery
//!   coordinator, mirroring the paper's top-level control node);
//! - at most `nodes - 1` nodes crash, so at least one survivor exists;
//! - drop/duplication probabilities are bounded (≤ 50% drop), so retried
//!   messages eventually get through;
//! - control-plane traffic (completion reports, retry directives) is
//!   exempt from drop/duplication — see `NodeCtx::send_control` — which is
//!   the standard "reliable transport for the control channel" assumption
//!   of distributed task runtimes (cf. TaskTorrent's MPI control messages).
//!
//! This crate has zero dependencies, so the plan uses an inline
//! SplitMix64-style finalizer rather than `il-testkit`'s PRNG.

use crate::time::SimTime;
use crate::NodeId;

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit value.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Domain-separated draw: a deterministic u64 from `(seed, salt, index)`.
#[inline]
fn draw(seed: u64, salt: u64, index: u64) -> u64 {
    mix64(seed ^ mix64(salt.wrapping_mul(0xA076_1D64_78BD_642F) ^ index))
}

/// Parameters a [`FaultPlan`] is generated from. The runtime layer owns
/// the user-facing configuration and maps it onto this machine-level spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Per-message drop probability for data-plane traffic, in ‰.
    /// Clamped to 500 (50%) so retries make progress.
    pub drop_per_mille: u16,
    /// Per-message duplication probability for data-plane traffic, in ‰.
    pub dup_per_mille: u16,
    /// Maximum number of node crashes to schedule (never node 0; capped
    /// at `nodes - 1`).
    pub max_crashes: usize,
    /// Absolute time window crash instants are drawn from.
    pub crash_window: (SimTime, SimTime),
    /// Number of slow nodes to select (never node 0).
    pub slow_nodes: usize,
    /// Multiplier applied to every charge/execution on a slow node.
    pub slow_factor: u64,
    /// Number of silently-corrupting nodes to select (never node 0).
    /// Defaults to 0 so pre-existing plans are byte-identical.
    pub corrupt_nodes: usize,
    /// Per-task-output corruption probability on a corrupt node, in ‰.
    pub corrupt_per_mille: u16,
    /// Per-message payload corruption probability for data-plane traffic
    /// sent *from* a corrupt node, in ‰.
    pub corrupt_payload_per_mille: u16,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            drop_per_mille: 50,
            dup_per_mille: 25,
            max_crashes: 1,
            crash_window: (SimTime::us(200), SimTime::ms(20)),
            slow_nodes: 1,
            slow_factor: 3,
            corrupt_nodes: 0,
            corrupt_per_mille: 0,
            corrupt_payload_per_mille: 0,
        }
    }
}

/// A fully materialized, deterministic fault schedule.
///
/// Per-node queries (`crash_time`, `slow_factor`, …) are answered from
/// dense lookup tables built once at [`generate`](FaultPlan::generate)
/// time, so the simulator's per-event fault hooks are O(1) regardless of
/// how many faults the plan schedules. The pre-table linear scans are kept
/// behind [`with_scan_lookups`](FaultPlan::with_scan_lookups) as the
/// reference implementation for equivalence tests and the PR 7
/// before/after benchmark.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    drop_per_mille: u16,
    dup_per_mille: u16,
    /// `(node, crash time)`, sorted by node; node 0 never appears.
    crashes: Vec<(NodeId, SimTime)>,
    /// `(node, charge multiplier)`, sorted by node.
    slow: Vec<(NodeId, u64)>,
    /// Nodes that silently corrupt data, sorted; node 0 never appears.
    corrupt: Vec<NodeId>,
    corrupt_per_mille: u16,
    corrupt_payload_per_mille: u16,
    /// Per-node crash time, `SimTime::MAX` = never (len = nodes).
    crash_at: Vec<SimTime>,
    /// Per-node charge multiplier, 1 = full speed (len = nodes).
    slow_at: Vec<u64>,
    /// Per-node corruption flag (len = nodes).
    corrupt_at: Vec<bool>,
    /// Answer queries with the original O(faults) list scans instead of
    /// the tables (benchmark baseline; results are identical).
    scan_mode: bool,
}

impl FaultPlan {
    /// Materialize the plan for a `nodes`-node machine.
    ///
    /// Build time is O(nodes + faults): candidate deduplication consults
    /// the per-node tables rather than rescanning the fault lists, and the
    /// draw sequence is unchanged from the scan-based builder, so plans
    /// are bit-identical to those generated before the tables existed.
    pub fn generate(seed: u64, nodes: usize, spec: &FaultSpec) -> FaultPlan {
        let mut crashes: Vec<(NodeId, SimTime)> = Vec::new();
        let mut crash_at = vec![SimTime::MAX; nodes];
        let (lo, hi) = spec.crash_window;
        let span = hi.0.saturating_sub(lo.0).max(1);
        if nodes > 1 {
            let want = spec.max_crashes.min(nodes - 1);
            let mut i = 0u64;
            while crashes.len() < want && i < 16 * want as u64 + 16 {
                let node = 1 + (draw(seed, 0xC4A5, i) as usize) % (nodes - 1);
                if crash_at[node] == SimTime::MAX {
                    let t = lo + SimTime::ns(draw(seed, 0x71BE, i) % span);
                    crashes.push((node, t));
                    crash_at[node] = t;
                }
                i += 1;
            }
            crashes.sort_unstable_by_key(|&(n, _)| n);
        }
        let mut slow: Vec<(NodeId, u64)> = Vec::new();
        let mut slow_at = vec![1u64; nodes];
        if nodes > 1 && spec.slow_factor > 1 {
            let want = spec.slow_nodes.min(nodes - 1);
            let mut i = 0u64;
            while slow.len() < want && i < 16 * want as u64 + 16 {
                let node = 1 + (draw(seed, 0x510E, i) as usize) % (nodes - 1);
                if slow_at[node] == 1 {
                    slow.push((node, spec.slow_factor));
                    slow_at[node] = spec.slow_factor;
                }
                i += 1;
            }
            slow.sort_unstable_by_key(|&(n, _)| n);
        }
        let mut corrupt: Vec<NodeId> = Vec::new();
        let mut corrupt_at = vec![false; nodes];
        if nodes > 1 && spec.corrupt_nodes > 0 {
            let want = spec.corrupt_nodes.min(nodes - 1);
            let mut i = 0u64;
            while corrupt.len() < want && i < 16 * want as u64 + 16 {
                let node = 1 + (draw(seed, 0x5DC0, i) as usize) % (nodes - 1);
                if !corrupt_at[node] {
                    corrupt.push(node);
                    corrupt_at[node] = true;
                }
                i += 1;
            }
            corrupt.sort_unstable();
        }
        FaultPlan {
            seed,
            drop_per_mille: spec.drop_per_mille.min(500),
            dup_per_mille: spec.dup_per_mille.min(1000),
            crashes,
            slow,
            corrupt,
            corrupt_per_mille: spec.corrupt_per_mille.min(1000),
            corrupt_payload_per_mille: spec.corrupt_payload_per_mille.min(1000),
            crash_at,
            slow_at,
            corrupt_at,
            scan_mode: false,
        }
    }

    /// Remove every crash and slow entry whose node satisfies `exempt`,
    /// keeping the rest of the schedule (and the drop/duplication draw
    /// sequence) untouched. Service mode exempts the per-slot coordinator
    /// nodes the same way a single-machine plan never crashes node 0 —
    /// each session keeps a live recovery coordinator by construction.
    /// With a predicate no scheduled fault matches, the plan is unchanged.
    pub fn with_exempt_nodes(mut self, exempt: impl Fn(NodeId) -> bool) -> Self {
        let crash_at = &mut self.crash_at;
        self.crashes.retain(|&(n, _)| {
            if exempt(n) {
                crash_at[n] = SimTime::MAX;
                false
            } else {
                true
            }
        });
        let slow_at = &mut self.slow_at;
        self.slow.retain(|&(n, _)| {
            if exempt(n) {
                slow_at[n] = 1;
                false
            } else {
                true
            }
        });
        let corrupt_at = &mut self.corrupt_at;
        self.corrupt.retain(|&n| {
            if exempt(n) {
                corrupt_at[n] = false;
                false
            } else {
                true
            }
        });
        self
    }

    /// The slow-node schedule as `(node, multiplier)`, sorted by node.
    pub fn slow_nodes(&self) -> &[(NodeId, u64)] {
        &self.slow
    }

    /// Switch per-node queries to the original O(faults) linear scans.
    ///
    /// The answers are identical to the table path (locked by tests);
    /// this exists so the weak-scaling benchmark can measure the pre-PR 7
    /// per-event cost, and as an oracle for the lookup tables.
    pub fn with_scan_lookups(mut self) -> Self {
        self.scan_mode = true;
        self
    }

    /// The seed the plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All scheduled crashes as `(node, time)`, sorted by node.
    pub fn crashes(&self) -> &[(NodeId, SimTime)] {
        &self.crashes
    }

    /// Number of nodes the plan marks slow.
    pub fn slow_count(&self) -> usize {
        self.slow.len()
    }

    /// The time `node` crashes, if it ever does. O(1) table lookup.
    pub fn crash_time(&self, node: NodeId) -> Option<SimTime> {
        if self.scan_mode {
            return self
                .crashes
                .iter()
                .find(|&&(n, _)| n == node)
                .map(|&(_, t)| t);
        }
        match self.crash_at.get(node) {
            Some(&t) if t != SimTime::MAX => Some(t),
            _ => None,
        }
    }

    /// Whether `node` is down at time `at` (crashes are permanent).
    pub fn is_crashed(&self, node: NodeId, at: SimTime) -> bool {
        self.crash_time(node).is_some_and(|t| at >= t)
    }

    /// Whether `node` crashes at any point in the schedule. Used by the
    /// runtime's (modeled-perfect) failure detector before re-sharding.
    pub fn ever_crashes(&self, node: NodeId) -> bool {
        self.crash_time(node).is_some()
    }

    /// The charge multiplier for `node` (1 = full speed). O(1) table
    /// lookup.
    pub fn slow_factor(&self, node: NodeId) -> u64 {
        if self.scan_mode {
            return self
                .slow
                .iter()
                .find(|&&(n, _)| n == node)
                .map_or(1, |&(_, f)| f);
        }
        self.slow_at.get(node).copied().unwrap_or(1)
    }

    /// Whether the network drops the `nonce`-th data-plane message.
    pub fn drop_message(&self, nonce: u64) -> bool {
        (draw(self.seed, 0xD409, nonce) % 1000) < u64::from(self.drop_per_mille)
    }

    /// Whether the network duplicates the `nonce`-th data-plane message
    /// (only consulted when the message is not dropped).
    pub fn duplicate_message(&self, nonce: u64) -> bool {
        (draw(self.seed, 0xD0B1, nonce) % 1000) < u64::from(self.dup_per_mille)
    }

    /// The nodes the plan marks as silently corrupting, sorted.
    pub fn corrupt_nodes(&self) -> &[NodeId] {
        &self.corrupt
    }

    /// Number of nodes the plan marks as corrupting.
    pub fn corrupt_count(&self) -> usize {
        self.corrupt.len()
    }

    /// Whether `node` silently corrupts data. O(1) table lookup (or the
    /// retained scan in [`with_scan_lookups`](FaultPlan::with_scan_lookups)
    /// mode).
    pub fn is_corrupt_node(&self, node: NodeId) -> bool {
        if self.scan_mode {
            return self.corrupt.contains(&node);
        }
        self.corrupt_at.get(node).copied().unwrap_or(false)
    }

    /// The nonzero XOR delta a corrupt `node` applies to the `nonce`-th
    /// task output it produces, if the draw says this one flips. Distinct
    /// `(node, nonce)` pairs draw independently, so two replicas of the
    /// same task on different corrupt nodes (and two attempts of the same
    /// task on one node) corrupt — or not — independently, and when both
    /// do, their deltas differ with overwhelming probability.
    pub fn corrupt_task_output(&self, node: NodeId, nonce: u64) -> Option<u64> {
        if !self.is_corrupt_node(node) || self.corrupt_per_mille == 0 {
            return None;
        }
        let idx = mix64((node as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ nonce);
        if (draw(self.seed, 0xB17F, idx) % 1000) < u64::from(self.corrupt_per_mille) {
            // `| 1` guarantees the delta is nonzero (a zero delta would be
            // a no-op flip, i.e. no corruption at all).
            Some(draw(self.seed, 0xDE1A, idx) | 1)
        } else {
            None
        }
    }

    /// Whether a corrupt `node` flips bits in the payload of the
    /// `nonce`-th data-plane message it sends. Honest nodes never do.
    pub fn corrupt_message(&self, node: NodeId, nonce: u64) -> bool {
        self.is_corrupt_node(node)
            && self.corrupt_payload_per_mille > 0
            && (draw(self.seed, 0xFA1C, nonce) % 1000)
                < u64::from(self.corrupt_payload_per_mille)
    }
}

/// Counters of machine-level fault activity during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Data-plane messages the network dropped.
    pub dropped: u64,
    /// Extra copies the network delivered.
    pub duplicated: u64,
    /// Events discarded because their destination node had crashed.
    pub crash_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let spec = FaultSpec::default();
        let a = FaultPlan::generate(42, 8, &spec);
        let b = FaultPlan::generate(42, 8, &spec);
        assert_eq!(a.crashes(), b.crashes());
        assert_eq!(a.slow, b.slow);
        for n in 0..4096 {
            assert_eq!(a.drop_message(n), b.drop_message(n));
            assert_eq!(a.duplicate_message(n), b.duplicate_message(n));
        }
    }

    #[test]
    fn node_zero_never_crashes_and_survivors_exist() {
        for seed in 0..200 {
            for nodes in [1usize, 2, 3, 8] {
                let spec = FaultSpec {
                    max_crashes: nodes, // ask for more than allowed
                    ..FaultSpec::default()
                };
                let plan = FaultPlan::generate(seed, nodes, &spec);
                assert!(plan.crashes().iter().all(|&(n, _)| n != 0 && n < nodes));
                assert!(plan.crashes().len() < nodes.max(1));
                assert!(!plan.ever_crashes(0));
                assert_eq!(plan.slow_factor(0), 1);
            }
        }
    }

    #[test]
    fn crash_times_fall_in_the_window() {
        let spec = FaultSpec::default();
        for seed in 0..100 {
            let plan = FaultPlan::generate(seed, 4, &spec);
            for &(_, t) in plan.crashes() {
                assert!(t >= spec.crash_window.0 && t <= spec.crash_window.1);
            }
        }
    }

    #[test]
    fn drop_rate_is_roughly_calibrated_and_bounded() {
        let spec = FaultSpec {
            drop_per_mille: 900, // clamped to 500
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(7, 4, &spec);
        let n = 100_000u64;
        let drops = (0..n).filter(|&i| plan.drop_message(i)).count();
        let rate = drops as f64 / n as f64;
        assert!(rate > 0.45 && rate < 0.55, "clamped drop rate was {rate}");
    }

    #[test]
    fn crash_state_is_permanent() {
        let plan = FaultPlan::generate(3, 4, &FaultSpec::default());
        if let Some(&(node, t)) = plan.crashes().first() {
            assert!(!plan.is_crashed(node, t.saturating_sub(SimTime::ns(1))));
            assert!(plan.is_crashed(node, t));
            assert!(plan.is_crashed(node, t + SimTime::ms(100)));
        }
    }

    #[test]
    fn table_lookups_match_the_scan_oracle() {
        // The O(1) tables must answer every query exactly like the
        // original linear scans, across seeds and fault densities.
        for seed in 0..50 {
            let spec = FaultSpec {
                max_crashes: 5,
                slow_nodes: 5,
                ..FaultSpec::default()
            };
            let plan = FaultPlan::generate(seed, 32, &spec);
            let oracle = plan.clone().with_scan_lookups();
            for node in 0..40 {
                // (includes out-of-range nodes 32..40)
                assert_eq!(plan.crash_time(node), oracle.crash_time(node));
                assert_eq!(plan.slow_factor(node), oracle.slow_factor(node));
                assert_eq!(plan.ever_crashes(node), oracle.ever_crashes(node));
                assert_eq!(
                    plan.is_crashed(node, SimTime::ms(1)),
                    oracle.is_crashed(node, SimTime::ms(1))
                );
            }
            assert_eq!(plan.slow_count(), oracle.slow.len());
        }
    }

    #[test]
    fn corruption_defaults_to_off() {
        // The default spec schedules no corruption, so plans generated
        // before the Corrupt schedule existed are bit-identical.
        let plan = FaultPlan::generate(42, 8, &FaultSpec::default());
        assert_eq!(plan.corrupt_count(), 0);
        for node in 0..8 {
            assert!(!plan.is_corrupt_node(node));
            for nonce in 0..64 {
                assert_eq!(plan.corrupt_task_output(node, nonce), None);
                assert!(!plan.corrupt_message(node, nonce));
            }
        }
    }

    #[test]
    fn corrupt_schedules_are_deterministic_and_survivable() {
        for seed in 0..100u64 {
            for nodes in [1usize, 2, 3, 8, 32] {
                let spec = FaultSpec {
                    corrupt_nodes: nodes, // ask for more than allowed
                    corrupt_per_mille: 400,
                    corrupt_payload_per_mille: 200,
                    ..FaultSpec::default()
                };
                let a = FaultPlan::generate(seed, nodes, &spec);
                let b = FaultPlan::generate(seed, nodes, &spec);
                assert_eq!(a.corrupt_nodes(), b.corrupt_nodes());
                // Node 0 (the recovery coordinator) never corrupts, and at
                // least one honest node always exists.
                assert!(!a.is_corrupt_node(0));
                assert!(a.corrupt_nodes().iter().all(|&n| n != 0 && n < nodes));
                assert!(a.corrupt_count() < nodes.max(1));
                for node in 0..nodes {
                    for nonce in 0..32 {
                        assert_eq!(
                            a.corrupt_task_output(node, nonce),
                            b.corrupt_task_output(node, nonce)
                        );
                        assert_eq!(a.corrupt_message(node, nonce), b.corrupt_message(node, nonce));
                    }
                }
            }
        }
    }

    #[test]
    fn corrupt_deltas_are_nonzero_and_node_independent() {
        let spec = FaultSpec {
            corrupt_nodes: 6,
            corrupt_per_mille: 1000, // every output flips
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(9, 8, &spec);
        assert!(plan.corrupt_count() >= 2);
        let nodes = plan.corrupt_nodes().to_vec();
        for nonce in 0..256u64 {
            let mut deltas = Vec::new();
            for &n in &nodes {
                let d = plan.corrupt_task_output(n, nonce).expect("rate 1000‰ always flips");
                assert_ne!(d, 0);
                deltas.push(d);
            }
            // Same task output on different corrupt nodes: distinct flips,
            // so a digest vote cannot be fooled by matching corruption.
            deltas.sort_unstable();
            deltas.dedup();
            assert_eq!(deltas.len(), nodes.len(), "delta collision at nonce {nonce}");
        }
    }

    #[test]
    fn corruption_draws_leave_existing_schedules_untouched() {
        // Adding corruption to a spec must not move the crash/slow/drop/
        // duplication schedules: the Corrupt schedule uses its own salts.
        let base = FaultSpec::default();
        let with_corruption = FaultSpec {
            corrupt_nodes: 3,
            corrupt_per_mille: 500,
            corrupt_payload_per_mille: 250,
            ..base.clone()
        };
        for seed in 0..50u64 {
            let a = FaultPlan::generate(seed, 16, &base);
            let b = FaultPlan::generate(seed, 16, &with_corruption);
            assert_eq!(a.crashes(), b.crashes());
            assert_eq!(a.slow, b.slow);
            for nonce in 0..512 {
                assert_eq!(a.drop_message(nonce), b.drop_message(nonce));
                assert_eq!(a.duplicate_message(nonce), b.duplicate_message(nonce));
            }
        }
    }

    #[test]
    fn corrupt_table_lookups_match_the_scan_oracle() {
        for seed in 0..50 {
            let spec = FaultSpec {
                corrupt_nodes: 5,
                corrupt_per_mille: 300,
                corrupt_payload_per_mille: 150,
                ..FaultSpec::default()
            };
            let plan = FaultPlan::generate(seed, 32, &spec);
            let oracle = plan.clone().with_scan_lookups();
            for node in 0..40 {
                // (includes out-of-range nodes 32..40)
                assert_eq!(plan.is_corrupt_node(node), oracle.is_corrupt_node(node));
                for nonce in 0..16 {
                    assert_eq!(
                        plan.corrupt_task_output(node, nonce),
                        oracle.corrupt_task_output(node, nonce)
                    );
                    assert_eq!(plan.corrupt_message(node, nonce), oracle.corrupt_message(node, nonce));
                }
            }
            assert_eq!(plan.corrupt_count(), oracle.corrupt.len());
        }
    }

    #[test]
    fn exemption_clears_corruption_too() {
        let spec = FaultSpec {
            corrupt_nodes: 8,
            corrupt_per_mille: 500,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(11, 16, &spec).with_exempt_nodes(|n| n % 4 == 0);
        assert!(plan.corrupt_nodes().iter().all(|&n| n % 4 != 0));
        for node in (0..16).step_by(4) {
            assert!(!plan.is_corrupt_node(node));
            assert_eq!(plan.corrupt_task_output(node, 0), None);
        }
    }

    #[test]
    fn dense_plan_lookups_are_constant_time() {
        // Regression for the PR 7 bugfix: a 100k-node plan with 10k
        // crashes and 10k slow nodes used to cost O(faults) list scans on
        // every dispatched event. Build the plan (O(nodes + faults)) and
        // answer one million mixed queries; with the tables this is a few
        // milliseconds even in debug builds, while the old scans needed
        // ~20k comparisons per query (tens of billions total — minutes).
        let nodes = 100_000;
        let spec = FaultSpec {
            max_crashes: 10_000,
            slow_nodes: 10_000,
            slow_factor: 3,
            ..FaultSpec::default()
        };
        let start = std::time::Instant::now();
        let plan = FaultPlan::generate(42, nodes, &spec);
        assert_eq!(plan.crashes().len(), 10_000);
        assert_eq!(plan.slow_count(), 10_000);
        let mut acc = 0u64;
        for i in 0..1_000_000usize {
            let node = (i * 2_654_435_761) % nodes;
            acc = acc
                .wrapping_add(plan.slow_factor(node))
                .wrapping_add(u64::from(plan.is_crashed(node, SimTime::ms(1))));
        }
        assert!(acc > 0);
        let elapsed = start.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(5),
            "per-event fault lookups regressed to O(faults): 1M queries took {elapsed:?}"
        );
    }
}
