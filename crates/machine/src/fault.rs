//! Seeded, deterministic fault plans for the DES machine.
//!
//! A [`FaultPlan`] is derived *up front* from a seed and the node count: it
//! fixes, before the simulation starts, which nodes crash (and when), which
//! nodes run slow, and — via a counter-indexed hash — which data-plane
//! messages the network drops or duplicates. Because every decision is a
//! pure function of `(seed, index)`, a faulted run is exactly as
//! reproducible as a fault-free one: identical `(seed, config)` inputs
//! produce byte-identical simulations.
//!
//! The plan models a *survivable* fault environment by construction:
//!
//! - node 0 never crashes (the runtime uses it as the recovery
//!   coordinator, mirroring the paper's top-level control node);
//! - at most `nodes - 1` nodes crash, so at least one survivor exists;
//! - drop/duplication probabilities are bounded (≤ 50% drop), so retried
//!   messages eventually get through;
//! - control-plane traffic (completion reports, retry directives) is
//!   exempt from drop/duplication — see `NodeCtx::send_control` — which is
//!   the standard "reliable transport for the control channel" assumption
//!   of distributed task runtimes (cf. TaskTorrent's MPI control messages).
//!
//! This crate has zero dependencies, so the plan uses an inline
//! SplitMix64-style finalizer rather than `il-testkit`'s PRNG.

use crate::time::SimTime;
use crate::NodeId;

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit value.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Domain-separated draw: a deterministic u64 from `(seed, salt, index)`.
#[inline]
fn draw(seed: u64, salt: u64, index: u64) -> u64 {
    mix64(seed ^ mix64(salt.wrapping_mul(0xA076_1D64_78BD_642F) ^ index))
}

/// Parameters a [`FaultPlan`] is generated from. The runtime layer owns
/// the user-facing configuration and maps it onto this machine-level spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Per-message drop probability for data-plane traffic, in ‰.
    /// Clamped to 500 (50%) so retries make progress.
    pub drop_per_mille: u16,
    /// Per-message duplication probability for data-plane traffic, in ‰.
    pub dup_per_mille: u16,
    /// Maximum number of node crashes to schedule (never node 0; capped
    /// at `nodes - 1`).
    pub max_crashes: usize,
    /// Absolute time window crash instants are drawn from.
    pub crash_window: (SimTime, SimTime),
    /// Number of slow nodes to select (never node 0).
    pub slow_nodes: usize,
    /// Multiplier applied to every charge/execution on a slow node.
    pub slow_factor: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            drop_per_mille: 50,
            dup_per_mille: 25,
            max_crashes: 1,
            crash_window: (SimTime::us(200), SimTime::ms(20)),
            slow_nodes: 1,
            slow_factor: 3,
        }
    }
}

/// A fully materialized, deterministic fault schedule.
///
/// Per-node queries (`crash_time`, `slow_factor`, …) are answered from
/// dense lookup tables built once at [`generate`](FaultPlan::generate)
/// time, so the simulator's per-event fault hooks are O(1) regardless of
/// how many faults the plan schedules. The pre-table linear scans are kept
/// behind [`with_scan_lookups`](FaultPlan::with_scan_lookups) as the
/// reference implementation for equivalence tests and the PR 7
/// before/after benchmark.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    drop_per_mille: u16,
    dup_per_mille: u16,
    /// `(node, crash time)`, sorted by node; node 0 never appears.
    crashes: Vec<(NodeId, SimTime)>,
    /// `(node, charge multiplier)`, sorted by node.
    slow: Vec<(NodeId, u64)>,
    /// Per-node crash time, `SimTime::MAX` = never (len = nodes).
    crash_at: Vec<SimTime>,
    /// Per-node charge multiplier, 1 = full speed (len = nodes).
    slow_at: Vec<u64>,
    /// Answer queries with the original O(faults) list scans instead of
    /// the tables (benchmark baseline; results are identical).
    scan_mode: bool,
}

impl FaultPlan {
    /// Materialize the plan for a `nodes`-node machine.
    ///
    /// Build time is O(nodes + faults): candidate deduplication consults
    /// the per-node tables rather than rescanning the fault lists, and the
    /// draw sequence is unchanged from the scan-based builder, so plans
    /// are bit-identical to those generated before the tables existed.
    pub fn generate(seed: u64, nodes: usize, spec: &FaultSpec) -> FaultPlan {
        let mut crashes: Vec<(NodeId, SimTime)> = Vec::new();
        let mut crash_at = vec![SimTime::MAX; nodes];
        let (lo, hi) = spec.crash_window;
        let span = hi.0.saturating_sub(lo.0).max(1);
        if nodes > 1 {
            let want = spec.max_crashes.min(nodes - 1);
            let mut i = 0u64;
            while crashes.len() < want && i < 16 * want as u64 + 16 {
                let node = 1 + (draw(seed, 0xC4A5, i) as usize) % (nodes - 1);
                if crash_at[node] == SimTime::MAX {
                    let t = lo + SimTime::ns(draw(seed, 0x71BE, i) % span);
                    crashes.push((node, t));
                    crash_at[node] = t;
                }
                i += 1;
            }
            crashes.sort_unstable_by_key(|&(n, _)| n);
        }
        let mut slow: Vec<(NodeId, u64)> = Vec::new();
        let mut slow_at = vec![1u64; nodes];
        if nodes > 1 && spec.slow_factor > 1 {
            let want = spec.slow_nodes.min(nodes - 1);
            let mut i = 0u64;
            while slow.len() < want && i < 16 * want as u64 + 16 {
                let node = 1 + (draw(seed, 0x510E, i) as usize) % (nodes - 1);
                if slow_at[node] == 1 {
                    slow.push((node, spec.slow_factor));
                    slow_at[node] = spec.slow_factor;
                }
                i += 1;
            }
            slow.sort_unstable_by_key(|&(n, _)| n);
        }
        FaultPlan {
            seed,
            drop_per_mille: spec.drop_per_mille.min(500),
            dup_per_mille: spec.dup_per_mille.min(1000),
            crashes,
            slow,
            crash_at,
            slow_at,
            scan_mode: false,
        }
    }

    /// Remove every crash and slow entry whose node satisfies `exempt`,
    /// keeping the rest of the schedule (and the drop/duplication draw
    /// sequence) untouched. Service mode exempts the per-slot coordinator
    /// nodes the same way a single-machine plan never crashes node 0 —
    /// each session keeps a live recovery coordinator by construction.
    /// With a predicate no scheduled fault matches, the plan is unchanged.
    pub fn with_exempt_nodes(mut self, exempt: impl Fn(NodeId) -> bool) -> Self {
        let crash_at = &mut self.crash_at;
        self.crashes.retain(|&(n, _)| {
            if exempt(n) {
                crash_at[n] = SimTime::MAX;
                false
            } else {
                true
            }
        });
        let slow_at = &mut self.slow_at;
        self.slow.retain(|&(n, _)| {
            if exempt(n) {
                slow_at[n] = 1;
                false
            } else {
                true
            }
        });
        self
    }

    /// The slow-node schedule as `(node, multiplier)`, sorted by node.
    pub fn slow_nodes(&self) -> &[(NodeId, u64)] {
        &self.slow
    }

    /// Switch per-node queries to the original O(faults) linear scans.
    ///
    /// The answers are identical to the table path (locked by tests);
    /// this exists so the weak-scaling benchmark can measure the pre-PR 7
    /// per-event cost, and as an oracle for the lookup tables.
    pub fn with_scan_lookups(mut self) -> Self {
        self.scan_mode = true;
        self
    }

    /// The seed the plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All scheduled crashes as `(node, time)`, sorted by node.
    pub fn crashes(&self) -> &[(NodeId, SimTime)] {
        &self.crashes
    }

    /// Number of nodes the plan marks slow.
    pub fn slow_count(&self) -> usize {
        self.slow.len()
    }

    /// The time `node` crashes, if it ever does. O(1) table lookup.
    pub fn crash_time(&self, node: NodeId) -> Option<SimTime> {
        if self.scan_mode {
            return self
                .crashes
                .iter()
                .find(|&&(n, _)| n == node)
                .map(|&(_, t)| t);
        }
        match self.crash_at.get(node) {
            Some(&t) if t != SimTime::MAX => Some(t),
            _ => None,
        }
    }

    /// Whether `node` is down at time `at` (crashes are permanent).
    pub fn is_crashed(&self, node: NodeId, at: SimTime) -> bool {
        self.crash_time(node).is_some_and(|t| at >= t)
    }

    /// Whether `node` crashes at any point in the schedule. Used by the
    /// runtime's (modeled-perfect) failure detector before re-sharding.
    pub fn ever_crashes(&self, node: NodeId) -> bool {
        self.crash_time(node).is_some()
    }

    /// The charge multiplier for `node` (1 = full speed). O(1) table
    /// lookup.
    pub fn slow_factor(&self, node: NodeId) -> u64 {
        if self.scan_mode {
            return self
                .slow
                .iter()
                .find(|&&(n, _)| n == node)
                .map_or(1, |&(_, f)| f);
        }
        self.slow_at.get(node).copied().unwrap_or(1)
    }

    /// Whether the network drops the `nonce`-th data-plane message.
    pub fn drop_message(&self, nonce: u64) -> bool {
        (draw(self.seed, 0xD409, nonce) % 1000) < u64::from(self.drop_per_mille)
    }

    /// Whether the network duplicates the `nonce`-th data-plane message
    /// (only consulted when the message is not dropped).
    pub fn duplicate_message(&self, nonce: u64) -> bool {
        (draw(self.seed, 0xD0B1, nonce) % 1000) < u64::from(self.dup_per_mille)
    }
}

/// Counters of machine-level fault activity during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Data-plane messages the network dropped.
    pub dropped: u64,
    /// Extra copies the network delivered.
    pub duplicated: u64,
    /// Events discarded because their destination node had crashed.
    pub crash_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let spec = FaultSpec::default();
        let a = FaultPlan::generate(42, 8, &spec);
        let b = FaultPlan::generate(42, 8, &spec);
        assert_eq!(a.crashes(), b.crashes());
        assert_eq!(a.slow, b.slow);
        for n in 0..4096 {
            assert_eq!(a.drop_message(n), b.drop_message(n));
            assert_eq!(a.duplicate_message(n), b.duplicate_message(n));
        }
    }

    #[test]
    fn node_zero_never_crashes_and_survivors_exist() {
        for seed in 0..200 {
            for nodes in [1usize, 2, 3, 8] {
                let spec = FaultSpec {
                    max_crashes: nodes, // ask for more than allowed
                    ..FaultSpec::default()
                };
                let plan = FaultPlan::generate(seed, nodes, &spec);
                assert!(plan.crashes().iter().all(|&(n, _)| n != 0 && n < nodes));
                assert!(plan.crashes().len() < nodes.max(1));
                assert!(!plan.ever_crashes(0));
                assert_eq!(plan.slow_factor(0), 1);
            }
        }
    }

    #[test]
    fn crash_times_fall_in_the_window() {
        let spec = FaultSpec::default();
        for seed in 0..100 {
            let plan = FaultPlan::generate(seed, 4, &spec);
            for &(_, t) in plan.crashes() {
                assert!(t >= spec.crash_window.0 && t <= spec.crash_window.1);
            }
        }
    }

    #[test]
    fn drop_rate_is_roughly_calibrated_and_bounded() {
        let spec = FaultSpec {
            drop_per_mille: 900, // clamped to 500
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(7, 4, &spec);
        let n = 100_000u64;
        let drops = (0..n).filter(|&i| plan.drop_message(i)).count();
        let rate = drops as f64 / n as f64;
        assert!(rate > 0.45 && rate < 0.55, "clamped drop rate was {rate}");
    }

    #[test]
    fn crash_state_is_permanent() {
        let plan = FaultPlan::generate(3, 4, &FaultSpec::default());
        if let Some(&(node, t)) = plan.crashes().first() {
            assert!(!plan.is_crashed(node, t.saturating_sub(SimTime::ns(1))));
            assert!(plan.is_crashed(node, t));
            assert!(plan.is_crashed(node, t + SimTime::ms(100)));
        }
    }

    #[test]
    fn table_lookups_match_the_scan_oracle() {
        // The O(1) tables must answer every query exactly like the
        // original linear scans, across seeds and fault densities.
        for seed in 0..50 {
            let spec = FaultSpec {
                max_crashes: 5,
                slow_nodes: 5,
                ..FaultSpec::default()
            };
            let plan = FaultPlan::generate(seed, 32, &spec);
            let oracle = plan.clone().with_scan_lookups();
            for node in 0..40 {
                // (includes out-of-range nodes 32..40)
                assert_eq!(plan.crash_time(node), oracle.crash_time(node));
                assert_eq!(plan.slow_factor(node), oracle.slow_factor(node));
                assert_eq!(plan.ever_crashes(node), oracle.ever_crashes(node));
                assert_eq!(
                    plan.is_crashed(node, SimTime::ms(1)),
                    oracle.is_crashed(node, SimTime::ms(1))
                );
            }
            assert_eq!(plan.slow_count(), oracle.slow.len());
        }
    }

    #[test]
    fn dense_plan_lookups_are_constant_time() {
        // Regression for the PR 7 bugfix: a 100k-node plan with 10k
        // crashes and 10k slow nodes used to cost O(faults) list scans on
        // every dispatched event. Build the plan (O(nodes + faults)) and
        // answer one million mixed queries; with the tables this is a few
        // milliseconds even in debug builds, while the old scans needed
        // ~20k comparisons per query (tens of billions total — minutes).
        let nodes = 100_000;
        let spec = FaultSpec {
            max_crashes: 10_000,
            slow_nodes: 10_000,
            slow_factor: 3,
            ..FaultSpec::default()
        };
        let start = std::time::Instant::now();
        let plan = FaultPlan::generate(42, nodes, &spec);
        assert_eq!(plan.crashes().len(), 10_000);
        assert_eq!(plan.slow_count(), 10_000);
        let mut acc = 0u64;
        for i in 0..1_000_000usize {
            let node = (i * 2_654_435_761) % nodes;
            acc = acc
                .wrapping_add(plan.slow_factor(node))
                .wrapping_add(u64::from(plan.is_crashed(node, SimTime::ms(1))));
        }
        assert!(acc > 0);
        let elapsed = start.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(5),
            "per-event fault lookups regressed to O(faults): 1M queries took {elapsed:?}"
        );
    }
}
