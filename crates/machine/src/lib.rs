//! Deterministic discrete-event machine simulator.
//!
//! The paper evaluates index launches on up to 1024 nodes of Piz Daint, a
//! Cray XC50. We do not have a supercomputer; instead the runtime executes
//! on a *simulated* distributed machine. Every node hosts a real runtime
//! instance; messages between nodes are delivered by a deterministic
//! discrete-event simulation ([`Simulator`]) with an α–β [`Network`] cost
//! model and per-node NIC serialization, and each node's sequential runtime
//! work is accounted on a per-node node clock.
//!
//! The simulation is fully deterministic: events are ordered by
//! `(timestamp, sequence number)`, so two runs of the same program produce
//! identical event interleavings, simulated times, and results. This is what
//! makes the scaling experiments (Figures 4–10) reproducible and lets the
//! integration tests assert bit-identical application output across all
//! runtime configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod fault;
pub mod machine;
pub mod network;
pub mod queue;
pub mod stage;
pub mod time;
pub mod topology;

pub use des::{LaneStats, NodeBehavior, NodeCtx, SimError, SimStats, Simulator};
pub use fault::{FaultCounters, FaultPlan, FaultSpec};
pub use machine::{MachineDesc, ProcId, ProcKind};
pub use network::{HierNetwork, Interconnect, Network};
pub use queue::{BinaryHeapQueue, CalendarQueue, Event, EventQueue, QueueKind};
pub use stage::{Stage, StageTotals, StageTraffic};
pub use time::SimTime;
pub use topology::{binomial_children, binomial_parent, broadcast_depth, HierarchySpec};

/// Identifier of a node in the simulated machine.
pub type NodeId = usize;
