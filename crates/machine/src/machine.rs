//! Description of the simulated machine.

use crate::NodeId;

/// The kind of a processor within a node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProcKind {
    /// A latency-optimized CPU core.
    Cpu,
    /// A throughput-optimized accelerator (the P100 of Piz Daint).
    Gpu,
}

/// Identifier of a processor: a node plus a processor index local to the
/// node. CPU cores come first (indices `0..cpus`), then GPUs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProcId {
    /// Owning node.
    pub node: NodeId,
    /// Processor index within the node.
    pub local: usize,
}

/// Static description of the simulated machine, patterned on a Piz Daint
/// XC50 node: one 12-core Xeon E5-2690 v3 and one P100 per node.
#[derive(Clone, Debug)]
pub struct MachineDesc {
    /// Number of nodes.
    pub nodes: usize,
    /// CPU cores per node.
    pub cpus_per_node: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
}

impl MachineDesc {
    /// A Piz-Daint-like machine: 12 CPU cores + 1 GPU per node.
    pub fn piz_daint(nodes: usize) -> Self {
        assert!(nodes > 0, "machine must have at least one node");
        MachineDesc {
            nodes,
            cpus_per_node: 12,
            gpus_per_node: 1,
        }
    }

    /// Total processors per node.
    pub fn procs_per_node(&self) -> usize {
        self.cpus_per_node + self.gpus_per_node
    }

    /// The kind of local processor `local` within any node.
    pub fn proc_kind(&self, local: usize) -> ProcKind {
        assert!(local < self.procs_per_node(), "processor index out of range");
        if local < self.cpus_per_node {
            ProcKind::Cpu
        } else {
            ProcKind::Gpu
        }
    }

    /// Iterator over the GPU processor ids of a node.
    pub fn gpus(&self, node: NodeId) -> impl Iterator<Item = ProcId> + '_ {
        (self.cpus_per_node..self.procs_per_node()).map(move |local| ProcId { node, local })
    }

    /// Iterator over the CPU processor ids of a node.
    pub fn cpus(&self, node: NodeId) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.cpus_per_node).map(move |local| ProcId { node, local })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piz_daint_shape() {
        let m = MachineDesc::piz_daint(4);
        assert_eq!(m.nodes, 4);
        assert_eq!(m.procs_per_node(), 13);
        assert_eq!(m.proc_kind(0), ProcKind::Cpu);
        assert_eq!(m.proc_kind(11), ProcKind::Cpu);
        assert_eq!(m.proc_kind(12), ProcKind::Gpu);
        assert_eq!(m.gpus(2).count(), 1);
        assert_eq!(m.gpus(2).next(), Some(ProcId { node: 2, local: 12 }));
        assert_eq!(m.cpus(0).count(), 12);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        MachineDesc::piz_daint(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn proc_kind_bounds() {
        MachineDesc::piz_daint(1).proc_kind(13);
    }
}
