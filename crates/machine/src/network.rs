//! α–β network cost models with per-node NIC serialization.
//!
//! Two models sit behind the [`Interconnect`] trait: the flat [`Network`]
//! (every cross-node message pays one latency — the model the paper-scale
//! figures were calibrated against) and [`HierNetwork`], which routes
//! messages through a [`HierarchySpec`] and accounts per-level link
//! contention. The simulator defaults to the flat model, so existing runs
//! stay byte-identical; the hierarchical model is strictly opt-in.

use crate::time::SimTime;
use crate::topology::HierarchySpec;
use crate::NodeId;
use std::collections::HashMap;

/// An α–β (latency–bandwidth) model of the interconnect.
///
/// Transferring a `b`-byte message costs `α + b·β` where `α` is the
/// per-message latency and `β` the inverse bandwidth. In addition, each
/// node's NIC injects messages serially: a node sending many messages
/// back-to-back pays the injection cost (`α_inject + b·β`) sequentially,
/// which is what makes a centralized (non-DCR) control node a bottleneck at
/// scale — exactly the effect the paper's non-DCR configurations exhibit.
#[derive(Clone, Debug)]
pub struct Network {
    /// One-way wire latency per message (charged to the receiver's arrival
    /// time, not the sender's occupancy).
    pub latency: SimTime,
    /// Per-message injection overhead at the sender (NIC occupancy).
    pub injection_overhead: SimTime,
    /// Bandwidth in bytes per microsecond (per-NIC).
    pub bytes_per_us: u64,
}

impl Network {
    /// A Cray-Aries-like interconnect: ~1.3 µs latency, ~0.4 µs injection
    /// overhead, ~10 GB/s per NIC.
    pub fn aries() -> Self {
        Network {
            latency: SimTime::ns(1_300),
            injection_overhead: SimTime::ns(400),
            bytes_per_us: 10_000,
        }
    }

    /// An idealized zero-cost network (useful in unit tests).
    pub fn ideal() -> Self {
        Network {
            latency: SimTime::ZERO,
            injection_overhead: SimTime::ZERO,
            bytes_per_us: u64::MAX,
        }
    }

    /// Serialization (occupancy) time of a `bytes`-byte message on the NIC.
    pub fn occupancy(&self, bytes: u64) -> SimTime {
        let xfer = if self.bytes_per_us == u64::MAX {
            0
        } else {
            // ceil(bytes * 1000 / bytes_per_us) nanoseconds, in u128 so
            // transfers ≥ ~1.8e16 bytes can't wrap the intermediate
            // product; saturate at the u64 horizon (~584 simulated years).
            u64::try_from(
                (u128::from(bytes) * 1_000).div_ceil(u128::from(self.bytes_per_us)),
            )
            .unwrap_or(u64::MAX)
        };
        self.injection_overhead + SimTime::ns(xfer)
    }

    /// Total one-way time from injection start to delivery.
    pub fn delivery(&self, bytes: u64) -> SimTime {
        self.occupancy(bytes) + self.latency
    }
}

/// The interconnect model the simulator delivers cross-node messages
/// through.
///
/// The sender-side cost (NIC occupancy, α_inject + b·β) is charged by the
/// simulator against the flat [`base`](Interconnect::base) parameters;
/// `deliver` then decides when the message *arrives*, given the time the
/// NIC finished injecting it. Implementations may keep mutable state
/// (link busy-until times) — delivery order is the deterministic event
/// dispatch order, so stateful contention accounting stays reproducible.
pub trait Interconnect {
    /// The flat α–β parameters: NIC injection overhead, per-NIC
    /// bandwidth, and the endpoint latency component.
    fn base(&self) -> &Network;

    /// Arrival time at `dst` of a `bytes`-byte message from `src` whose
    /// NIC injection completed at `nic_done`.
    fn deliver(&mut self, src: NodeId, dst: NodeId, bytes: u64, nic_done: SimTime) -> SimTime;
}

/// The flat model: every cross-node message arrives one wire latency
/// after its NIC injection completes, regardless of endpoints. This is
/// byte-for-byte the original simulator behavior.
impl Interconnect for Network {
    fn base(&self) -> &Network {
        self
    }

    fn deliver(&mut self, _src: NodeId, _dst: NodeId, _bytes: u64, nic_done: SimTime) -> SimTime {
        nic_done + self.latency
    }
}

/// A hierarchical α–β interconnect with per-level link contention.
///
/// A `src → dst` message climbs the [`HierarchySpec`] to the endpoints'
/// lowest common group and back down. For every crossed level `j` it
/// serializes through the source group's up-link and the destination
/// group's down-link — each link is busy for the message's level-`j`
/// serialization time, and concurrent messages sharing a link queue
/// behind each other (`busy-until` per link, stored sparsely) — and pays
/// `latency[j]` of propagation. The flat [`Network`] contributes the NIC
/// injection cost (charged by the simulator) and the endpoint latency.
///
/// Contention state is keyed by `(level, group, direction)` and only
/// materializes for links actually used, so memory is O(links touched),
/// not O(machine).
#[derive(Clone, Debug)]
pub struct HierNetwork {
    base: Network,
    spec: HierarchySpec,
    links: HashMap<(u8, u64, bool), SimTime>,
}

impl HierNetwork {
    /// Build the hierarchical model over `base` endpoint parameters.
    ///
    /// # Panics
    /// Panics if `spec` is malformed (see [`HierarchySpec::validate`]).
    pub fn new(base: Network, spec: HierarchySpec) -> Self {
        spec.validate();
        assert!(spec.levels() <= u8::MAX as usize, "too many hierarchy levels");
        HierNetwork { base, spec, links: HashMap::new() }
    }

    /// The hierarchy being modeled.
    pub fn spec(&self) -> &HierarchySpec {
        &self.spec
    }

    /// Serialization time of `bytes` on a level-`level` link.
    fn link_occupancy(&self, level: usize, bytes: u64) -> SimTime {
        let bpu = self.bytes_per_us_at(level);
        if bpu == u64::MAX {
            return SimTime::ZERO;
        }
        let ns = u64::try_from((u128::from(bytes) * 1_000).div_ceil(u128::from(bpu)))
            .unwrap_or(u64::MAX);
        SimTime::ns(ns)
    }

    fn bytes_per_us_at(&self, level: usize) -> u64 {
        self.spec.bytes_per_us[level]
    }

    /// Serialize through one link: wait for it to free, occupy it, return
    /// the time the message clears it.
    fn traverse(&mut self, level: usize, group: u64, up: bool, bytes: u64, at: SimTime) -> SimTime {
        let occupancy = self.link_occupancy(level, bytes);
        let free = self.links.entry((level as u8, group, up)).or_insert(SimTime::ZERO);
        let start = at.max(*free);
        let done = start + occupancy;
        *free = done;
        done
    }
}

impl Interconnect for HierNetwork {
    fn base(&self) -> &Network {
        &self.base
    }

    fn deliver(&mut self, src: NodeId, dst: NodeId, bytes: u64, nic_done: SimTime) -> SimTime {
        let crossed = self.spec.crossed(src, dst);
        if crossed == 0 {
            return nic_done + self.base.latency;
        }
        let mut t = nic_done;
        let mut propagation = self.base.latency;
        for j in 0..crossed {
            propagation += self.spec.latency[j];
            t = self.traverse(j, self.spec.group(src, j), true, bytes, t);
        }
        for j in (0..crossed).rev() {
            t = self.traverse(j, self.spec.group(dst, j), false, bytes, t);
        }
        t + propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aries_costs() {
        let n = Network::aries();
        // 10 KB at 10 GB/s = 1 us transfer.
        assert_eq!(n.occupancy(10_000), SimTime::ns(400) + SimTime::us(1));
        assert_eq!(
            n.delivery(10_000),
            SimTime::ns(400) + SimTime::us(1) + SimTime::ns(1_300)
        );
    }

    #[test]
    fn zero_byte_message_still_pays_overheads() {
        let n = Network::aries();
        assert_eq!(n.occupancy(0), SimTime::ns(400));
        assert_eq!(n.delivery(0), SimTime::ns(1_700));
    }

    #[test]
    fn ideal_network_is_free() {
        let n = Network::ideal();
        assert_eq!(n.delivery(1 << 30), SimTime::ZERO);
    }

    #[test]
    fn occupancy_survives_huge_transfers() {
        // Regression: `bytes * 1_000` wrapped u64 for bytes ≥ ~1.8e16
        // (u64::MAX / 1000 ≈ 1.8446e16), silently making petabyte-scale
        // transfers near-free. The boundary where the old math first wrapped:
        let n = Network::aries();
        let boundary = u64::MAX / 1_000 + 1; // smallest bytes where old math wrapped
        let just_below = boundary - 1;
        // Monotonic across the boundary (the old code collapsed here).
        assert!(n.occupancy(boundary) >= n.occupancy(just_below));
        // Exact value: ceil(bytes * 1000 / 10_000) ns = ceil(bytes / 10).
        assert_eq!(
            n.occupancy(boundary),
            n.injection_overhead + SimTime::ns(boundary.div_ceil(10))
        );
        // Far past the boundary: saturates instead of wrapping.
        assert_eq!(
            n.occupancy(u64::MAX),
            n.injection_overhead + SimTime::ns(u64::MAX.div_ceil(10))
        );
        // A 1-byte/us network saturates the u64 horizon rather than wrap.
        let slow = Network {
            latency: SimTime::ZERO,
            injection_overhead: SimTime::ZERO,
            bytes_per_us: 1,
        };
        assert_eq!(slow.occupancy(u64::MAX), SimTime::ns(u64::MAX));
    }

    #[test]
    fn occupancy_rounds_up() {
        let n = Network {
            latency: SimTime::ZERO,
            injection_overhead: SimTime::ZERO,
            bytes_per_us: 3,
        };
        // 1 byte at 3 bytes/us = 333.33..ns, rounded up to 334.
        assert_eq!(n.occupancy(1), SimTime::ns(334));
    }

    #[test]
    fn flat_interconnect_matches_original_delivery() {
        let mut n = Network::aries();
        let latency = n.latency;
        let t = SimTime::us(5);
        assert_eq!(n.deliver(0, 9, 10_000, t), t + latency);
        // Stateless: repeated deliveries through the same path never queue.
        assert_eq!(n.deliver(0, 9, 10_000, t), t + latency);
    }

    #[test]
    fn hierarchy_latency_grows_with_distance() {
        // Three levels of 4: groups of 4 / 16 / 64 nodes.
        let spec = HierarchySpec {
            arity: vec![4, 4, 4],
            latency: vec![SimTime::ns(100), SimTime::ns(300), SimTime::ns(900)],
            bytes_per_us: vec![25_000, 12_000, 6_000],
        };
        let mut h = HierNetwork::new(Network::aries(), spec);
        let t = SimTime::ZERO;
        // Same switch (0→3) < same level-1 group (0→5) < cross level-2
        // (0→20): each extra crossed level adds latency and serialization.
        let local = h.clone().deliver(0, 3, 1_000, t);
        let mid = h.clone().deliver(0, 5, 1_000, t);
        let far = h.deliver(0, 20, 1_000, t);
        assert!(local < mid && mid < far);
        assert!(local > t + Network::aries().latency);
    }

    #[test]
    fn shared_uplink_contention_serializes() {
        let spec = HierarchySpec::two_level(16, 32);
        let mut h = HierNetwork::new(Network::aries(), spec);
        // Nodes 0 and 1 share the level-0 router; both send to the same
        // remote router at the same instant. The second message queues
        // behind the first on every shared link, arriving strictly later.
        let a = h.deliver(0, 5_000, 10_000, SimTime::ZERO);
        let b = h.deliver(1, 5_001, 10_000, SimTime::ZERO);
        assert!(b > a, "expected contention on the shared up-link");
        // A transfer between completely different pods shares no link
        // with the congested route, so it sees first-message timing:
        // contention is per-link, not global.
        let c = h.deliver(600, 1_200, 10_000, SimTime::ZERO);
        assert_eq!(c, a);
    }

    #[test]
    fn hier_delivery_is_deterministic() {
        let run = || {
            let spec = HierarchySpec::two_level(4, 4);
            let mut h = HierNetwork::new(Network::aries(), spec);
            (0..64)
                .map(|i| h.deliver(i % 16, (i * 7) % 16, 512 * i as u64, SimTime::us(i as u64)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
