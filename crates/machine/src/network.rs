//! α–β network cost model with per-node NIC serialization.

use crate::time::SimTime;

/// An α–β (latency–bandwidth) model of the interconnect.
///
/// Transferring a `b`-byte message costs `α + b·β` where `α` is the
/// per-message latency and `β` the inverse bandwidth. In addition, each
/// node's NIC injects messages serially: a node sending many messages
/// back-to-back pays the injection cost (`α_inject + b·β`) sequentially,
/// which is what makes a centralized (non-DCR) control node a bottleneck at
/// scale — exactly the effect the paper's non-DCR configurations exhibit.
#[derive(Clone, Debug)]
pub struct Network {
    /// One-way wire latency per message (charged to the receiver's arrival
    /// time, not the sender's occupancy).
    pub latency: SimTime,
    /// Per-message injection overhead at the sender (NIC occupancy).
    pub injection_overhead: SimTime,
    /// Bandwidth in bytes per microsecond (per-NIC).
    pub bytes_per_us: u64,
}

impl Network {
    /// A Cray-Aries-like interconnect: ~1.3 µs latency, ~0.4 µs injection
    /// overhead, ~10 GB/s per NIC.
    pub fn aries() -> Self {
        Network {
            latency: SimTime::ns(1_300),
            injection_overhead: SimTime::ns(400),
            bytes_per_us: 10_000,
        }
    }

    /// An idealized zero-cost network (useful in unit tests).
    pub fn ideal() -> Self {
        Network {
            latency: SimTime::ZERO,
            injection_overhead: SimTime::ZERO,
            bytes_per_us: u64::MAX,
        }
    }

    /// Serialization (occupancy) time of a `bytes`-byte message on the NIC.
    pub fn occupancy(&self, bytes: u64) -> SimTime {
        let xfer = if self.bytes_per_us == u64::MAX {
            0
        } else {
            // ceil(bytes * 1000 / bytes_per_us) nanoseconds, in u128 so
            // transfers ≥ ~1.8e16 bytes can't wrap the intermediate
            // product; saturate at the u64 horizon (~584 simulated years).
            u64::try_from(
                (u128::from(bytes) * 1_000).div_ceil(u128::from(self.bytes_per_us)),
            )
            .unwrap_or(u64::MAX)
        };
        self.injection_overhead + SimTime::ns(xfer)
    }

    /// Total one-way time from injection start to delivery.
    pub fn delivery(&self, bytes: u64) -> SimTime {
        self.occupancy(bytes) + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aries_costs() {
        let n = Network::aries();
        // 10 KB at 10 GB/s = 1 us transfer.
        assert_eq!(n.occupancy(10_000), SimTime::ns(400) + SimTime::us(1));
        assert_eq!(
            n.delivery(10_000),
            SimTime::ns(400) + SimTime::us(1) + SimTime::ns(1_300)
        );
    }

    #[test]
    fn zero_byte_message_still_pays_overheads() {
        let n = Network::aries();
        assert_eq!(n.occupancy(0), SimTime::ns(400));
        assert_eq!(n.delivery(0), SimTime::ns(1_700));
    }

    #[test]
    fn ideal_network_is_free() {
        let n = Network::ideal();
        assert_eq!(n.delivery(1 << 30), SimTime::ZERO);
    }

    #[test]
    fn occupancy_survives_huge_transfers() {
        // Regression: `bytes * 1_000` wrapped u64 for bytes ≥ ~1.8e16
        // (u64::MAX / 1000 ≈ 1.8446e16), silently making petabyte-scale
        // transfers near-free. The boundary where the old math first wrapped:
        let n = Network::aries();
        let boundary = u64::MAX / 1_000 + 1; // smallest bytes where old math wrapped
        let just_below = boundary - 1;
        // Monotonic across the boundary (the old code collapsed here).
        assert!(n.occupancy(boundary) >= n.occupancy(just_below));
        // Exact value: ceil(bytes * 1000 / 10_000) ns = ceil(bytes / 10).
        assert_eq!(
            n.occupancy(boundary),
            n.injection_overhead + SimTime::ns(boundary.div_ceil(10))
        );
        // Far past the boundary: saturates instead of wrapping.
        assert_eq!(
            n.occupancy(u64::MAX),
            n.injection_overhead + SimTime::ns(u64::MAX.div_ceil(10))
        );
        // A 1-byte/us network saturates the u64 horizon rather than wrap.
        let slow = Network {
            latency: SimTime::ZERO,
            injection_overhead: SimTime::ZERO,
            bytes_per_us: 1,
        };
        assert_eq!(slow.occupancy(u64::MAX), SimTime::ns(u64::MAX));
    }

    #[test]
    fn occupancy_rounds_up() {
        let n = Network {
            latency: SimTime::ZERO,
            injection_overhead: SimTime::ZERO,
            bytes_per_us: 3,
        };
        // 1 byte at 3 bytes/us = 333.33..ns, rounded up to 334.
        assert_eq!(n.occupancy(1), SimTime::ns(334));
    }
}
