//! Pending-event queues for the simulator.
//!
//! The DES dispatches events in `(time, seq)` order. At paper scale
//! (≤ 1024 nodes) a [`BinaryHeap`] is unbeatable; at 10⁵–10⁶ nodes the
//! queue holds hundreds of thousands of pending events and every
//! push/pop pays `O(log n)` pointer-chasing over a cache-hostile heap.
//! [`CalendarQueue`] (R. Brown, CACM 1988) buckets events by timestamp
//! so the common near-future operations touch one small bucket —
//! amortized O(1) when event times are spread, never worse than
//! `O(log bucket)` because each bucket is itself a small heap.
//!
//! Both implementations sit behind the [`EventQueue`] trait and produce
//! the **identical dispatch sequence**, including the same-timestamp
//! sequence-number tie-break — locked by unit tests here and by the
//! seeded equivalence property tests in `tests/queue_props.rs`. The
//! simulator picks an implementation per [`QueueKind`]; `Auto` selects
//! by machine size so paper-scale runs keep the exact code path (and
//! byte-identical figure CSVs) they always had.

use crate::time::SimTime;
use crate::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending message: due `time`, enqueue sequence number `seq` (the
/// deterministic tie-break), destination node, payload.
#[derive(Debug)]
pub struct Event<M> {
    /// When the event comes due.
    pub time: SimTime,
    /// Enqueue sequence number; ties in `time` dispatch in `seq` order.
    pub seq: u64,
    /// Destination node.
    pub dst: NodeId,
    /// The message payload.
    pub msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A priority queue of simulator events, popped in `(time, seq)` order.
///
/// Implementations must be totally deterministic: for any push/pop
/// interleaving, `pop` returns the globally minimal pending event under
/// the `(time, seq)` order — never an approximation.
pub trait EventQueue<M> {
    /// Enqueue an event.
    fn push(&mut self, ev: Event<M>);
    /// Dequeue the `(time, seq)`-minimal pending event.
    fn pop(&mut self) -> Option<Event<M>>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which [`EventQueue`] implementation a simulator uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueKind {
    /// Pick by machine size: [`BinaryHeap`] below
    /// [`QueueKind::AUTO_CALENDAR_NODES`] nodes, calendar at or above.
    /// Safe because both produce the identical dispatch sequence.
    #[default]
    Auto,
    /// Always the binary heap (the pre-calendar code path).
    BinaryHeap,
    /// Always the calendar queue.
    Calendar,
}

impl QueueKind {
    /// Machine size at which `Auto` switches to the calendar queue.
    pub const AUTO_CALENDAR_NODES: usize = 4096;

    /// Resolve `Auto` against a machine size.
    pub fn resolve(self, nodes: usize) -> QueueKind {
        match self {
            QueueKind::Auto => {
                if nodes >= Self::AUTO_CALENDAR_NODES {
                    QueueKind::Calendar
                } else {
                    QueueKind::BinaryHeap
                }
            }
            other => other,
        }
    }
}

/// The classic heap-backed queue: `O(log n)` push/pop over one global
/// binary heap. This is byte-for-byte the simulator's original queue.
#[derive(Debug, Default)]
pub struct BinaryHeapQueue<M> {
    heap: BinaryHeap<Reverse<Event<M>>>,
}

impl<M> BinaryHeapQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue { heap: BinaryHeap::new() }
    }
}

impl<M> EventQueue<M> for BinaryHeapQueue<M> {
    fn push(&mut self, ev: Event<M>) {
        self.heap.push(Reverse(ev));
    }

    fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

const MIN_BUCKETS: usize = 4;
const MAX_BUCKETS: usize = 1 << 22;

/// A calendar queue: events hash into `nbuckets` circular "days" of
/// `width` nanoseconds each; dequeue scans forward from the bucket of
/// the last-popped timestamp and only accepts events due within the
/// current day's window, so it finds the global `(time, seq)` minimum
/// without consulting the other buckets.
///
/// Deviations from the textbook that matter here:
///
/// - each bucket is a small binary heap rather than a sorted list, so a
///   burst of same-timestamp events (a 65k-node DCR injection wave all
///   landing at one frontier instant) costs `O(log bucket)` per pop
///   instead of `O(bucket)`;
/// - a push whose timestamp precedes the last pop (only
///   `Simulator::inject` can produce one; handlers cannot) rewinds the
///   scan cursor, preserving exact global `(time, seq)` pop order even
///   for stale events — the simulator still reports them as
///   [`TimeRegression`](crate::SimError::TimeRegression), but in the
///   same order the heap would have;
/// - resizing re-estimates the bucket width from the live events'
///   average inter-event gap, a pure function of queue content, so the
///   structure (and therefore the pop sequence) is deterministic.
#[derive(Debug)]
pub struct CalendarQueue<M> {
    buckets: Vec<BinaryHeap<Reverse<Event<M>>>>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: usize,
    /// Nanoseconds per bucket (≥ 1).
    width: u64,
    len: usize,
    /// Bucket the dequeue scan resumes at.
    cur: usize,
    /// Exclusive upper time bound of `cur`'s current-day window.
    bucket_top: u64,
    /// Timestamp of the last popped event.
    last: u64,
}

impl<M> Default for CalendarQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> CalendarQueue<M> {
    /// An empty queue with the default initial geometry.
    pub fn new() -> Self {
        let width = 1_024;
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| BinaryHeap::new()).collect(),
            mask: MIN_BUCKETS - 1,
            width,
            len: 0,
            cur: 0,
            bucket_top: width,
            last: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, time: u64) -> usize {
        ((time / self.width) as usize) & self.mask
    }

    /// Point the scan cursor at `time`'s bucket/window.
    fn seek(&mut self, time: u64) {
        self.last = time;
        self.cur = self.bucket_of(time);
        self.bucket_top = (time / self.width).saturating_add(1).saturating_mul(self.width);
    }

    /// Rebuild with a bucket count proportional to the population and a
    /// width matching the live events' average spacing. Deterministic:
    /// both are pure functions of the queued events.
    fn resize(&mut self) {
        let target = self
            .len
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let mut events: Vec<Event<M>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            events.extend(b.drain().map(|Reverse(e)| e));
        }
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for e in &events {
            lo = lo.min(e.time.0);
            hi = hi.max(e.time.0);
        }
        if events.len() >= 2 && hi > lo {
            self.width = ((hi - lo) / events.len() as u64).max(1);
        }
        self.buckets = (0..target).map(|_| BinaryHeap::new()).collect();
        self.mask = target - 1;
        let last = self.last;
        self.seek(last);
        for ev in events {
            let i = self.bucket_of(ev.time.0);
            self.buckets[i].push(Reverse(ev));
        }
    }
}

impl<M> EventQueue<M> for CalendarQueue<M> {
    fn push(&mut self, ev: Event<M>) {
        if ev.time.0 < self.last {
            // Stale injection: rewind the scan so the pop order stays
            // the exact global (time, seq) order.
            self.seek(ev.time.0);
        }
        let i = self.bucket_of(ev.time.0);
        self.buckets[i].push(Reverse(ev));
        self.len += 1;
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.resize();
        }
    }

    fn pop(&mut self) -> Option<Event<M>> {
        if self.len == 0 {
            return None;
        }
        // Scan one full "year" starting at the cursor. A bucket's heap
        // top is its (time, seq) minimum, so peeking suffices: if the
        // top is outside the current day's window, every event in the
        // bucket is.
        let nbuckets = self.buckets.len();
        let mut cur = self.cur;
        let mut top = self.bucket_top;
        for _ in 0..nbuckets {
            if let Some(Reverse(head)) = self.buckets[cur].peek() {
                if head.time.0 < top {
                    let Reverse(ev) = self.buckets[cur].pop().expect("peeked");
                    self.len -= 1;
                    self.last = ev.time.0;
                    self.cur = cur;
                    self.bucket_top = top;
                    if self.len < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
                        self.resize();
                    }
                    return Some(ev);
                }
            }
            cur = (cur + 1) & self.mask;
            top = top.saturating_add(self.width);
        }
        // Sparse tail: nothing due within a year of the cursor. Find the
        // globally minimal bucket head directly and jump the calendar to
        // it (O(nbuckets), rare by construction).
        let best = (0..nbuckets)
            .filter_map(|i| {
                self.buckets[i]
                    .peek()
                    .map(|Reverse(e)| ((e.time, e.seq), i))
            })
            .min()
            .map(|(_, i)| i)
            .expect("len > 0 but no bucket head");
        let Reverse(ev) = self.buckets[best].pop().expect("chosen head");
        self.len -= 1;
        self.seek(ev.time.0);
        Some(ev)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, seq: u64) -> Event<u32> {
        Event { time: SimTime::ns(time), seq, dst: 0, msg: 0 }
    }

    /// Drain both queues after identical pushes; sequences must match.
    fn drain_matches(times: &[u64]) {
        let mut heap = BinaryHeapQueue::new();
        let mut cal = CalendarQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            heap.push(ev(t, seq as u64));
            cal.push(ev(t, seq as u64));
        }
        assert_eq!(heap.len(), cal.len());
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    assert_eq!((x.time, x.seq), (y.time, y.seq), "pop order diverged")
                }
                (None, None) => break,
                _ => panic!("queue lengths diverged"),
            }
        }
    }

    #[test]
    fn empty_pops_none() {
        let mut cal: CalendarQueue<u32> = CalendarQueue::new();
        assert!(cal.pop().is_none());
        assert!(cal.is_empty());
    }

    #[test]
    fn spread_times_pop_in_order() {
        let times: Vec<u64> = (0..500).map(|i| (i * 7919) % 100_000).collect();
        drain_matches(&times);
    }

    #[test]
    fn clustered_and_tied_times_break_by_seq() {
        // Heavy ties: only 4 distinct timestamps across 400 events.
        let times: Vec<u64> = (0..400).map(|i| (i % 4) * 1_000).collect();
        drain_matches(&times);
    }

    #[test]
    fn sparse_far_future_uses_direct_search() {
        // Events separated by much more than nbuckets × width force the
        // direct-search fallback.
        drain_matches(&[0, 10_000_000_000, 20_000_000_000, 5]);
    }

    #[test]
    fn growth_and_shrink_preserve_order() {
        let mut cal = CalendarQueue::new();
        let mut heap = BinaryHeapQueue::new();
        let mut seq = 0u64;
        // Grow to thousands (forces upsizing), interleave pops (forces
        // downsizing), then drain.
        for round in 0..4u64 {
            for i in 0..2_000u64 {
                let t = round * 50_000 + (i * 37) % 45_000;
                cal.push(ev(t, seq));
                heap.push(ev(t, seq));
                seq += 1;
            }
            for _ in 0..1_500 {
                let (a, b) = (heap.pop().unwrap(), cal.pop().unwrap());
                assert_eq!((a.time, a.seq), (b.time, b.seq));
            }
        }
        while let Some(a) = heap.pop() {
            let b = cal.pop().unwrap();
            assert_eq!((a.time, a.seq), (b.time, b.seq));
        }
        assert!(cal.pop().is_none());
    }

    #[test]
    fn stale_push_rewinds_and_pops_global_min() {
        let mut cal = CalendarQueue::new();
        cal.push(ev(10_000, 0));
        assert_eq!(cal.pop().unwrap().time, SimTime::ns(10_000));
        // Stale relative to the last pop, plus a future event: the stale
        // one must come out first (exact heap order).
        cal.push(ev(12_000, 1));
        cal.push(ev(2_000, 2));
        assert_eq!(cal.pop().unwrap().time, SimTime::ns(2_000));
        assert_eq!(cal.pop().unwrap().time, SimTime::ns(12_000));
    }

    #[test]
    fn auto_resolves_by_machine_size() {
        assert_eq!(QueueKind::Auto.resolve(1024), QueueKind::BinaryHeap);
        assert_eq!(QueueKind::Auto.resolve(4096), QueueKind::Calendar);
        assert_eq!(QueueKind::Auto.resolve(1 << 20), QueueKind::Calendar);
        assert_eq!(QueueKind::BinaryHeap.resolve(1 << 20), QueueKind::BinaryHeap);
        assert_eq!(QueueKind::Calendar.resolve(2), QueueKind::Calendar);
    }
}
