//! Pipeline stages for per-stage time and traffic attribution.
//!
//! The paper's evaluation (§6) attributes runtime cost to the stages of
//! the §5 pipeline — issuance, logical analysis, distribution, physical
//! analysis, execution — plus the network and the §4 dynamic safety
//! checks. [`Stage`] names those buckets; [`StageTotals`] accumulates
//! simulated durations per bucket. The simulator tags every charged
//! duration, sent message, and processor execution with the stage the
//! node's handler declared via [`NodeCtx::set_stage`](crate::NodeCtx::set_stage),
//! so a run can report an honest per-stage breakdown instead of a single
//! aggregate makespan.

use crate::time::SimTime;

/// The pipeline stage a unit of simulated work or communication is
/// attributed to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Stage {
    /// Task issuance: the application thread handing launches to the
    /// runtime.
    Issuance,
    /// Logical (whole-partition or per-task) dependence analysis.
    Logical,
    /// Distribution: sharding, slice scatter, task-launch messages.
    Distribution,
    /// Physical analysis and mapping of local tasks.
    Physical,
    /// Task execution on processors.
    Exec,
    /// Network-side completion/credit/coordination processing.
    Network,
    /// Dynamic projection-functor safety checks (§4).
    DynamicChecks,
    /// Fault recovery: completion journaling, acknowledgement timeouts,
    /// retries, and re-sharding after node failures. Only accrues when a
    /// fault plan is installed.
    Recovery,
    /// Trace replay: re-issuing a previously captured task-graph fragment
    /// instead of re-running its logical analysis (the Legion tracing
    /// cost model, charged per replayed task when `tracing` is on).
    TraceReplay,
    /// Silent-data-corruption defense: replica execution, output digest
    /// computation, and checksum voting. Only accrues when a replication
    /// policy is active.
    Verify,
    /// Untagged work (handlers that never declared a stage).
    Other,
}

impl Stage {
    /// Number of stages (length of [`Stage::ALL`]).
    pub const COUNT: usize = 11;

    /// Every stage, in display order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Issuance,
        Stage::Logical,
        Stage::Distribution,
        Stage::Physical,
        Stage::Exec,
        Stage::Network,
        Stage::DynamicChecks,
        Stage::Recovery,
        Stage::TraceReplay,
        Stage::Verify,
        Stage::Other,
    ];

    /// Dense index of this stage (for array-backed counters).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (used as JSON keys and trace thread names).
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Issuance => "issuance",
            Stage::Logical => "logical",
            Stage::Distribution => "distribution",
            Stage::Physical => "physical",
            Stage::Exec => "exec",
            Stage::Network => "network",
            Stage::DynamicChecks => "dynamic_checks",
            Stage::Recovery => "recovery",
            Stage::TraceReplay => "trace_replay",
            Stage::Verify => "verify",
            Stage::Other => "other",
        }
    }
}

/// Accumulated simulated busy time per stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTotals([SimTime; Stage::COUNT]);

impl StageTotals {
    /// All-zero totals.
    pub const fn new() -> Self {
        StageTotals([SimTime::ZERO; Stage::COUNT])
    }

    /// The accumulated time of `stage`.
    #[inline]
    pub fn get(&self, stage: Stage) -> SimTime {
        self.0[stage.index()]
    }

    /// Add `duration` to `stage`.
    #[inline]
    pub fn add(&mut self, stage: Stage, duration: SimTime) {
        self.0[stage.index()] += duration;
    }

    /// Add every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &StageTotals) {
        for s in Stage::ALL {
            self.0[s.index()] += other.0[s.index()];
        }
    }

    /// Sum across all stages.
    pub fn sum(&self) -> SimTime {
        self.0.iter().copied().sum()
    }

    /// Iterate `(stage, accumulated time)` in display order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, SimTime)> + '_ {
        Stage::ALL.into_iter().map(move |s| (s, self.get(s)))
    }
}

/// Per-stage counters of cross-node messages and bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTraffic {
    /// Messages sent while each stage was active.
    pub messages: [u64; Stage::COUNT],
    /// Bytes injected while each stage was active.
    pub bytes: [u64; Stage::COUNT],
}

impl StageTraffic {
    /// Record one message of `bytes` under `stage`.
    #[inline]
    pub fn record(&mut self, stage: Stage, bytes: u64) {
        self.messages[stage.index()] += 1;
        self.bytes[stage.index()] += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn totals_accumulate_and_merge() {
        let mut a = StageTotals::new();
        a.add(Stage::Exec, SimTime::us(3));
        a.add(Stage::Exec, SimTime::us(2));
        a.add(Stage::Network, SimTime::us(1));
        assert_eq!(a.get(Stage::Exec), SimTime::us(5));
        let mut b = StageTotals::new();
        b.add(Stage::Exec, SimTime::us(10));
        b.merge(&a);
        assert_eq!(b.get(Stage::Exec), SimTime::us(15));
        assert_eq!(b.get(Stage::Network), SimTime::us(1));
        assert_eq!(b.sum(), SimTime::us(16));
    }

    #[test]
    fn traffic_records_per_stage() {
        let mut t = StageTraffic::default();
        t.record(Stage::Distribution, 256);
        t.record(Stage::Distribution, 256);
        t.record(Stage::Network, 64);
        assert_eq!(t.messages[Stage::Distribution.index()], 2);
        assert_eq!(t.bytes[Stage::Distribution.index()], 512);
        assert_eq!(t.messages[Stage::Network.index()], 1);
        assert_eq!(t.bytes[Stage::Other.index()], 0);
    }
}
