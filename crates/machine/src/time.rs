//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, in nanoseconds.
///
/// `SimTime` is used both as an absolute timestamp within a simulation run
/// and as a duration; the arithmetic provided covers both uses. Nanosecond
/// resolution with `u64` gives ~584 simulated years of range, far beyond any
/// experiment here.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From nanoseconds.
    #[inline]
    pub const fn ns(v: u64) -> Self {
        SimTime(v)
    }

    /// From microseconds.
    #[inline]
    pub const fn us(v: u64) -> Self {
        SimTime(v * 1_000)
    }

    /// From milliseconds.
    #[inline]
    pub const fn ms(v: u64) -> Self {
        SimTime(v * 1_000_000)
    }

    /// From seconds.
    #[inline]
    pub const fn secs(v: u64) -> Self {
        SimTime(v * 1_000_000_000)
    }

    /// From fractional seconds (rounds to nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(v: f64) -> Self {
        assert!(v >= 0.0 && v.is_finite(), "negative or non-finite duration");
        SimTime((v * 1e9).round() as u64)
    }

    /// As nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// As fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// As fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction (durations never go negative).
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::us(3).as_ns(), 3_000);
        assert_eq!(SimTime::ms(2), SimTime::us(2000));
        assert_eq!(SimTime::secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::ms(500));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::us(10);
        let b = SimTime::us(4);
        assert_eq!(a + b, SimTime::us(14));
        assert_eq!(a - b, SimTime::us(6));
        assert_eq!(a * 3, SimTime::us(30));
        assert_eq!(a / 2, SimTime::us(5));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let total: SimTime = [a, b, b].into_iter().sum();
        assert_eq!(total, SimTime::us(18));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::ns(17)), "17ns");
        assert_eq!(format!("{}", SimTime::us(2)), "2.000us");
        assert_eq!(format!("{}", SimTime::ms(5)), "5.000ms");
        assert_eq!(format!("{}", SimTime::secs(3)), "3.000s");
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn from_secs_rejects_negative() {
        SimTime::from_secs_f64(-1.0);
    }
}
