//! Broadcast-tree topology helpers.
//!
//! The non-DCR distribution path ships slices of an index launch around the
//! machine "in a broadcast tree-like manner" (§5), achieving O(log |D|)
//! depth. A binomial tree rooted at an arbitrary node provides that
//! schedule: in round `r`, every node that already holds the message
//! forwards it to one new node, so `N` nodes are covered in `⌈log2 N⌉`
//! rounds.

use crate::NodeId;

/// The children of `me` in a binomial broadcast tree over nodes `0..n`
/// rooted at `root`.
///
/// Node ranks are rotated so that `root` behaves as rank 0. Children are
/// returned in send order (largest subtree first), which gives the classic
/// `⌈log2 n⌉`-round schedule.
pub fn binomial_children(root: NodeId, me: NodeId, n: usize) -> Vec<NodeId> {
    assert!(n > 0 && root < n && me < n, "invalid tree parameters");
    let vrank = (me + n - root) % n; // virtual rank, root == 0
    let mut children = Vec::new();
    // The lowest set bit of vrank bounds the subtree this node owns.
    let limit = if vrank == 0 {
        // Root owns the whole range; its "lowest set bit" is above n.
        n.next_power_of_two()
    } else {
        1 << vrank.trailing_zeros()
    };
    let mut mask = limit >> 1;
    while mask > 0 {
        let child = vrank + mask;
        if child < n {
            children.push((child + root) % n);
        }
        mask >>= 1;
    }
    children
}

/// The parent of `me` in the binomial tree (None for the root).
pub fn binomial_parent(root: NodeId, me: NodeId, n: usize) -> Option<NodeId> {
    assert!(n > 0 && root < n && me < n, "invalid tree parameters");
    let vrank = (me + n - root) % n;
    if vrank == 0 {
        return None;
    }
    let parent = vrank & (vrank - 1); // clear lowest set bit
    Some((parent + root) % n)
}

/// Number of rounds (tree depth) needed to broadcast to `n` nodes.
pub fn broadcast_depth(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Simulate the broadcast and check every node is reached exactly once,
    /// with parent/child relations consistent.
    fn check_tree(root: NodeId, n: usize) {
        let mut reached = BTreeSet::new();
        reached.insert(root);
        let mut frontier = vec![root];
        let mut rounds = 0usize;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &node in &frontier {
                for child in binomial_children(root, node, n) {
                    assert!(reached.insert(child), "node {child} reached twice");
                    assert_eq!(binomial_parent(root, child, n), Some(node));
                    next.push(child);
                }
            }
            frontier = next;
            rounds += 1;
        }
        assert_eq!(reached.len(), n, "not all nodes reached from root {root}");
        // Depth bound: a binomial tree delivers within ceil(log2 n) + 1
        // frontier expansions (the last round may be empty).
        assert!(rounds <= broadcast_depth(n) as usize + 1);
    }

    #[test]
    fn trees_cover_all_nodes() {
        for n in [1, 2, 3, 4, 5, 7, 8, 16, 31, 32, 100, 1024] {
            check_tree(0, n);
        }
    }

    #[test]
    fn rotated_roots() {
        for n in [5, 8, 13] {
            for root in 0..n {
                check_tree(root, n);
            }
        }
    }

    #[test]
    fn depth_values() {
        assert_eq!(broadcast_depth(1), 0);
        assert_eq!(broadcast_depth(2), 1);
        assert_eq!(broadcast_depth(3), 2);
        assert_eq!(broadcast_depth(4), 2);
        assert_eq!(broadcast_depth(1024), 10);
        assert_eq!(broadcast_depth(1025), 11);
    }

    #[test]
    fn root_children_of_pow2() {
        // Root of an 8-node tree sends to vranks 4, 2, 1.
        assert_eq!(binomial_children(0, 0, 8), vec![4, 2, 1]);
        assert_eq!(binomial_children(0, 4, 8), vec![6, 5]);
        assert_eq!(binomial_children(0, 6, 8), vec![7]);
        assert_eq!(binomial_children(0, 7, 8), Vec::<usize>::new());
    }
}
