//! Broadcast-tree topology helpers and machine hierarchy descriptions.
//!
//! The non-DCR distribution path ships slices of an index launch around the
//! machine "in a broadcast tree-like manner" (§5), achieving O(log |D|)
//! depth. A binomial tree rooted at an arbitrary node provides that
//! schedule: in round `r`, every node that already holds the message
//! forwards it to one new node, so `N` nodes are covered in `⌈log2 N⌉`
//! rounds.
//!
//! [`HierarchySpec`] describes a machine's physical grouping (nodes per
//! switch, switches per pod, …) for the hierarchical α–β network model in
//! [`crate::network`]: each level has a group size, a traversal latency,
//! and a link bandwidth, and a message pays for every level between its
//! endpoints' lowest common group.

use crate::time::SimTime;
use crate::NodeId;

/// A multi-level grouping of the machine for the hierarchical network
/// model, innermost level first.
///
/// Level `j` partitions the machine into groups of
/// `arity[0] · … · arity[j]` nodes; `latency[j]` is the extra propagation
/// latency a message pays when its route crosses level `j`, and
/// `bytes_per_us[j]` is the bandwidth of each level-`j` link (one up- and
/// one down-link per group). Nodes outside the product of all arities
/// simply land in higher-numbered top-level groups — the spec does not
/// need to cover the node count exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchySpec {
    /// Group size multiplier per level (each entry ≥ 2).
    pub arity: Vec<usize>,
    /// Per-level traversal latency, same length as `arity`.
    pub latency: Vec<SimTime>,
    /// Per-level link bandwidth in bytes per microsecond, same length as
    /// `arity`.
    pub bytes_per_us: Vec<u64>,
}

impl HierarchySpec {
    /// A dragonfly-flavored two-level hierarchy: `leaf` nodes share a
    /// router (fast local links), `pod` routers form a group, and
    /// everything above rides the group-to-group links. Reasonable
    /// Cray-XC-like constants; pair with [`crate::Network::aries`].
    pub fn two_level(leaf: usize, pod: usize) -> Self {
        HierarchySpec {
            arity: vec![leaf, pod],
            latency: vec![SimTime::ns(100), SimTime::ns(500)],
            bytes_per_us: vec![25_000, 12_000],
        }
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.arity.len()
    }

    /// Check internal consistency (equal array lengths, arities ≥ 2,
    /// nonzero bandwidths). Panics on a malformed spec.
    pub fn validate(&self) {
        assert!(!self.arity.is_empty(), "hierarchy needs at least one level");
        assert_eq!(self.arity.len(), self.latency.len(), "latency per level");
        assert_eq!(self.arity.len(), self.bytes_per_us.len(), "bandwidth per level");
        assert!(self.arity.iter().all(|&a| a >= 2), "arities must be >= 2");
        assert!(self.bytes_per_us.iter().all(|&b| b > 0), "bandwidths must be > 0");
    }

    /// The level-`level` group `node` belongs to.
    pub fn group(&self, node: NodeId, level: usize) -> u64 {
        let mut size = 1u64;
        for &a in &self.arity[..=level] {
            size = size.saturating_mul(a as u64);
        }
        node as u64 / size
    }

    /// Number of levels a `src → dst` message crosses: 1 if the endpoints
    /// share a level-0 group (they still traverse that group's switch),
    /// up to [`levels`](Self::levels) when only the machine root joins
    /// them. `src == dst` crosses nothing.
    pub fn crossed(&self, src: NodeId, dst: NodeId) -> usize {
        if src == dst {
            return 0;
        }
        let mut size = 1u64;
        for (j, &a) in self.arity.iter().enumerate() {
            size = size.saturating_mul(a as u64);
            if src as u64 / size == dst as u64 / size {
                return j + 1;
            }
        }
        self.arity.len()
    }
}

/// The children of `me` in a binomial broadcast tree over nodes `0..n`
/// rooted at `root`.
///
/// Node ranks are rotated so that `root` behaves as rank 0. Children are
/// returned in send order (largest subtree first), which gives the classic
/// `⌈log2 n⌉`-round schedule.
pub fn binomial_children(root: NodeId, me: NodeId, n: usize) -> Vec<NodeId> {
    assert!(n > 0 && root < n && me < n, "invalid tree parameters");
    let vrank = (me + n - root) % n; // virtual rank, root == 0
    let mut children = Vec::new();
    // The lowest set bit of vrank bounds the subtree this node owns.
    let limit = if vrank == 0 {
        // Root owns the whole range; its "lowest set bit" is above n.
        n.next_power_of_two()
    } else {
        1 << vrank.trailing_zeros()
    };
    let mut mask = limit >> 1;
    while mask > 0 {
        let child = vrank + mask;
        if child < n {
            children.push((child + root) % n);
        }
        mask >>= 1;
    }
    children
}

/// The parent of `me` in the binomial tree (None for the root).
pub fn binomial_parent(root: NodeId, me: NodeId, n: usize) -> Option<NodeId> {
    assert!(n > 0 && root < n && me < n, "invalid tree parameters");
    let vrank = (me + n - root) % n;
    if vrank == 0 {
        return None;
    }
    let parent = vrank & (vrank - 1); // clear lowest set bit
    Some((parent + root) % n)
}

/// Number of rounds (tree depth) needed to broadcast to `n` nodes.
pub fn broadcast_depth(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Simulate the broadcast and check every node is reached exactly once,
    /// with parent/child relations consistent.
    fn check_tree(root: NodeId, n: usize) {
        let mut reached = BTreeSet::new();
        reached.insert(root);
        let mut frontier = vec![root];
        let mut rounds = 0usize;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &node in &frontier {
                for child in binomial_children(root, node, n) {
                    assert!(reached.insert(child), "node {child} reached twice");
                    assert_eq!(binomial_parent(root, child, n), Some(node));
                    next.push(child);
                }
            }
            frontier = next;
            rounds += 1;
        }
        assert_eq!(reached.len(), n, "not all nodes reached from root {root}");
        // Depth bound: a binomial tree delivers within ceil(log2 n) + 1
        // frontier expansions (the last round may be empty).
        assert!(rounds <= broadcast_depth(n) as usize + 1);
    }

    #[test]
    fn trees_cover_all_nodes() {
        for n in [1, 2, 3, 4, 5, 7, 8, 16, 31, 32, 100, 1024] {
            check_tree(0, n);
        }
    }

    #[test]
    fn rotated_roots() {
        for n in [5, 8, 13] {
            for root in 0..n {
                check_tree(root, n);
            }
        }
    }

    #[test]
    fn depth_values() {
        assert_eq!(broadcast_depth(1), 0);
        assert_eq!(broadcast_depth(2), 1);
        assert_eq!(broadcast_depth(3), 2);
        assert_eq!(broadcast_depth(4), 2);
        assert_eq!(broadcast_depth(1024), 10);
        assert_eq!(broadcast_depth(1025), 11);
    }

    #[test]
    fn root_children_of_pow2() {
        // Root of an 8-node tree sends to vranks 4, 2, 1.
        assert_eq!(binomial_children(0, 0, 8), vec![4, 2, 1]);
        assert_eq!(binomial_children(0, 4, 8), vec![6, 5]);
        assert_eq!(binomial_children(0, 6, 8), vec![7]);
        assert_eq!(binomial_children(0, 7, 8), Vec::<usize>::new());
    }

    #[test]
    fn hierarchy_groups_and_crossings() {
        let spec = HierarchySpec::two_level(16, 32);
        spec.validate();
        assert_eq!(spec.levels(), 2);
        // Level 0: 16-node routers; level 1: 512-node pods.
        assert_eq!(spec.group(0, 0), 0);
        assert_eq!(spec.group(15, 0), 0);
        assert_eq!(spec.group(16, 0), 1);
        assert_eq!(spec.group(511, 1), 0);
        assert_eq!(spec.group(512, 1), 1);
        // Same node: no crossing. Same router: one level. Same pod but
        // different routers: two. Different pods: still two (top level).
        assert_eq!(spec.crossed(3, 3), 0);
        assert_eq!(spec.crossed(3, 12), 1);
        assert_eq!(spec.crossed(3, 100), 2);
        assert_eq!(spec.crossed(3, 5_000), 2);
        // Nodes beyond 16*32 land in higher top-level groups, not UB.
        assert_eq!(spec.crossed(3, 100_000), 2);
        assert_eq!(spec.group(100_000, 1), 195);
    }
}
