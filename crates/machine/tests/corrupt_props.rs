//! Corruption-schedule property tests.
//!
//! The silent-data-corruption schedule added to [`FaultPlan`] must obey
//! the same determinism contract as the crash/slow/drop schedules it
//! rides beside:
//!
//! * a plan is a pure function of `(seed, nodes, spec)` — byte-identical
//!   no matter how many threads generate it concurrently;
//! * the O(1) corruption tables agree with the retained-scan oracle
//!   (`with_scan_lookups`) on every node and nonce;
//! * a full simulation whose messages draw from the corruption schedule
//!   dispatches identically on `QueueKind::BinaryHeap` and
//!   `QueueKind::Calendar`.

use il_machine::{
    FaultPlan, FaultSpec, MachineDesc, Network, NodeBehavior, NodeCtx, QueueKind, SimTime,
    Simulator, Stage,
};
use il_testkit::prop::{check, i64s, usizes, vec_of};
use il_testkit::prop_assert_eq;

/// A spec that schedules every fault class at once, so corruption draws
/// are checked in the presence of the schedules they must not perturb.
fn corrupting_spec(nodes: usize) -> FaultSpec {
    FaultSpec {
        drop_per_mille: 20,
        dup_per_mille: 20,
        max_crashes: nodes / 8,
        slow_nodes: nodes / 8,
        crash_window: (SimTime::us(5), SimTime::us(500)),
        slow_factor: 3,
        corrupt_nodes: (nodes / 4).max(1),
        corrupt_per_mille: 300,
        corrupt_payload_per_mille: 150,
    }
}

/// Everything the corruption schedule can be asked, flattened to one
/// comparable value: the corrupt-node set plus a dense sample of the
/// output and payload draws.
fn corruption_observations(plan: &FaultPlan, nodes: usize) -> Vec<(usize, bool, Vec<Option<u64>>, Vec<bool>)> {
    (0..nodes)
        .map(|node| {
            (
                node,
                plan.is_corrupt_node(node),
                (0..64).map(|nonce| plan.corrupt_task_output(node, nonce)).collect(),
                (0..64).map(|nonce| plan.corrupt_message(node, nonce)).collect(),
            )
        })
        .collect()
}

/// Purity across pool widths: `w` worker threads generating the same 50
/// seeded plans concurrently observe exactly what a serial generator
/// observes — there is no hidden global state in plan generation.
#[test]
fn corrupt_plans_are_byte_identical_across_pool_widths() {
    const NODES: usize = 24;
    let serial: Vec<_> = (0..50u64)
        .map(|seed| {
            let plan = FaultPlan::generate(seed, NODES, &corrupting_spec(NODES));
            (plan.corrupt_nodes().to_vec(), corruption_observations(&plan, NODES))
        })
        .collect();
    for width in [1usize, 2, 4, 8] {
        let results = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..width)
                .map(|_| {
                    scope.spawn(|| {
                        (0..50u64)
                            .map(|seed| {
                                let plan =
                                    FaultPlan::generate(seed, NODES, &corrupting_spec(NODES));
                                (
                                    plan.corrupt_nodes().to_vec(),
                                    corruption_observations(&plan, NODES),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().expect("worker panicked")).collect::<Vec<_>>()
        });
        for observed in results {
            assert_eq!(observed, serial, "pool width {width} perturbed plan generation");
        }
    }
}

/// The O(1) per-node corruption table and the per-draw salted hashes
/// must agree with the retained-scan oracle on every node and nonce,
/// over 50 seeds and several machine sizes.
#[test]
fn table_lookups_agree_with_scan_oracle() {
    for nodes in [2usize, 5, 16, 64] {
        for seed in 0..50u64 {
            let plan = FaultPlan::generate(seed, nodes, &corrupting_spec(nodes));
            let oracle = plan.clone().with_scan_lookups();
            assert_eq!(plan.corrupt_nodes(), oracle.corrupt_nodes());
            assert_eq!(
                corruption_observations(&plan, nodes),
                corruption_observations(&oracle, nodes),
                "table/scan disagreement at nodes={nodes} seed={seed}"
            );
        }
    }
}

/// Relay that ships every hop through the corruption-aware data channel
/// and logs what arrived — so any divergence in the corruption draws or
/// the dispatch order between queue kinds is observable.
struct Relay {
    log: Vec<(u64, u32, bool)>,
}

#[derive(Clone, Debug)]
struct Hop {
    ttl: u32,
    stride: usize,
    corrupt: bool,
}

impl NodeBehavior<Hop> for Relay {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, Hop>, msg: Hop) {
        self.log.push((ctx.arrival().as_ns(), msg.ttl, msg.corrupt));
        ctx.set_stage(Stage::Network);
        ctx.charge(SimTime::us(1));
        if msg.ttl > 0 {
            let dst = (ctx.node() + msg.stride) % ctx.nodes();
            let ttl = msg.ttl - 1;
            let stride = msg.stride;
            ctx.send_data(dst, |corrupt| Hop { ttl, stride, corrupt }, 256);
        }
    }
}

type Storm = Vec<(i64, i64, i64, i64)>;

fn run_with(kind: QueueKind, nodes: usize, storm: &Storm) -> impl Eq + std::fmt::Debug {
    let behaviors = (0..nodes).map(|_| Relay { log: Vec::new() }).collect();
    let mut sim = Simulator::new(MachineDesc::piz_daint(nodes), Network::aries(), behaviors)
        .with_queue(kind);
    sim.set_fault_plan(FaultPlan::generate(0x5DC0, nodes, &corrupting_spec(nodes)));
    for &(dst, ttl, stride, at) in storm {
        sim.inject(
            SimTime::ns((at as u64 % 8) * 1_000),
            dst as usize % nodes,
            Hop { ttl: ttl as u32, stride: stride as usize % nodes + 1, corrupt: false },
        );
    }
    sim.run(1_000_000);
    let logs: Vec<Vec<(u64, u32, bool)>> = (0..nodes).map(|n| sim.node(n).log.clone()).collect();
    (
        sim.stats().events,
        sim.stats().messages,
        sim.stats().bytes,
        sim.stats().faults,
        sim.makespan(),
        logs,
    )
}

/// Full-simulation equivalence under a corrupting schedule: the heap and
/// calendar queues must deliver the same hops with the same corruption
/// flags in the same order.
#[test]
fn queue_kinds_agree_under_corruption_schedules() {
    let gen = (
        usizes(2..12),
        vec_of((i64s(0..12), i64s(0..25), i64s(0..12), i64s(0..8)), 1..8),
    );
    check("queue_kinds_agree_under_corruption_schedules", &gen, |(nodes, storm)| {
        prop_assert_eq!(
            run_with(QueueKind::BinaryHeap, *nodes, storm),
            run_with(QueueKind::Calendar, *nodes, storm)
        );
        Ok(())
    });
}
