//! Property tests for the machine simulator: determinism, causality, and
//! broadcast-tree coverage under randomized inputs. Runs on the hermetic
//! `il-testkit` harness; failures print a rerunnable `IL_TESTKIT_SEED`.

use il_machine::{
    binomial_children, binomial_parent, broadcast_depth, MachineDesc, Network, NodeBehavior,
    NodeCtx, SimTime, Simulator,
};
use il_testkit::prop::{check, i64s, usizes, vec_of};
use il_testkit::{prop_assert, prop_assert_eq};
use std::collections::BTreeSet;

/// A behavior that relays each message a random-but-deterministic number
/// of hops and records everything it sees.
struct Relay {
    hops_seen: Vec<(u64, u32)>, // (arrival ns, ttl)
}

#[derive(Clone, Debug)]
struct Hop {
    ttl: u32,
    stride: usize,
    bytes: u64,
}

impl NodeBehavior<Hop> for Relay {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, Hop>, msg: Hop) {
        self.hops_seen.push((ctx.arrival().as_ns(), msg.ttl));
        ctx.charge(SimTime::us(1));
        if msg.ttl > 0 {
            let dst = (ctx.node() + msg.stride) % ctx.nodes();
            ctx.send(dst, Hop { ttl: msg.ttl - 1, ..msg }, msg.bytes);
        }
    }
}

/// One injected message, generated as plain integers: (dst, ttl, stride,
/// bytes) — kept as i64 so tuple shrinking applies, narrowed in `run`.
type Seed = (i64, i64, i64, i64);

fn seeds_gen() -> il_testkit::prop::VecGen<(
    il_testkit::prop::I64Range,
    il_testkit::prop::I64Range,
    il_testkit::prop::I64Range,
    il_testkit::prop::I64Range,
)> {
    vec_of((i64s(0..10), i64s(0..20), i64s(0..10), i64s(0..10_000)), 1..6)
}

fn run(nodes: usize, seeds: &[Seed]) -> (u64, u64, u64, Vec<Vec<(u64, u32)>>) {
    let behaviors = (0..nodes).map(|_| Relay { hops_seen: Vec::new() }).collect();
    let mut sim = Simulator::new(MachineDesc::piz_daint(nodes), Network::aries(), behaviors);
    for &(dst, ttl, stride, bytes) in seeds {
        let (dst, ttl, stride, bytes) = (dst as usize, ttl as u32, stride as usize, bytes as u64);
        sim.inject(
            SimTime::ZERO,
            dst % nodes,
            Hop { ttl, stride: stride % nodes.max(1) + 1, bytes: bytes % 10_000 },
        );
    }
    sim.run(1_000_000);
    let makespan = sim.makespan().as_ns();
    let stats = sim.stats().clone();
    let logs = (0..nodes).map(|n| sim.node(n).hops_seen.clone()).collect();
    (makespan, stats.messages, stats.bytes, logs)
}

/// Two runs of the same schedule are bit-identical.
#[test]
fn simulation_is_deterministic() {
    check("simulation_is_deterministic", &(usizes(1..10), seeds_gen()), |(nodes, seeds)| {
        prop_assert_eq!(run(*nodes, seeds), run(*nodes, seeds));
        Ok(())
    });
}

/// Causality: every node observes non-decreasing arrival times in its
/// own processing order, and total hops match the injected TTLs.
#[test]
fn causality_and_conservation() {
    let gen = (
        usizes(1..8),
        vec_of((i64s(0..8), i64s(0..15), i64s(0..8), i64s(0..5_000)), 1..5),
    );
    check("causality_and_conservation", &gen, |(nodes, seeds)| {
        let (makespan, _msgs, _bytes, logs) = run(*nodes, seeds);
        let mut total_hops = 0usize;
        for log in &logs {
            total_hops += log.len();
            for (t, _) in log {
                prop_assert!(*t <= makespan);
            }
        }
        let expected: usize = seeds.iter().map(|(_, ttl, _, _)| *ttl as usize + 1).sum();
        prop_assert_eq!(total_hops, expected);
        Ok(())
    });
}

/// Binomial trees cover all nodes exactly once from any root, within
/// the theoretical depth bound.
#[test]
fn broadcast_tree_coverage() {
    check("broadcast_tree_coverage", &(usizes(1..200), usizes(0..200)), |&(n, root_raw)| {
        let root = root_raw % n;
        let mut reached = BTreeSet::new();
        reached.insert(root);
        let mut frontier = vec![root];
        let mut rounds = 0u32;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &node in &frontier {
                for child in binomial_children(root, node, n) {
                    prop_assert!(reached.insert(child), "node {child} reached twice");
                    prop_assert_eq!(binomial_parent(root, child, n), Some(node));
                    next.push(child);
                }
            }
            frontier = next;
            rounds += 1;
        }
        prop_assert_eq!(reached.len(), n);
        prop_assert!(rounds <= broadcast_depth(n) + 1);
        Ok(())
    });
}

/// NIC serialization: sending k messages back-to-back occupies the
/// NIC for at least k × occupancy(bytes).
#[test]
fn nic_occupancy_accumulates() {
    struct Burst {
        k: u64,
        bytes: u64,
    }
    impl NodeBehavior<u8> for Burst {
        fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, msg: u8) {
            if msg == 0 && ctx.node() == 0 {
                for _ in 0..self.k {
                    ctx.send(1, 1, self.bytes);
                }
            }
        }
    }
    check("nic_occupancy_accumulates", &(i64s(1..20), i64s(0..50_000)), |&(k, bytes)| {
        let (k, bytes) = (k as u64, bytes as u64);
        let net = Network::aries();
        let per_msg = net.occupancy(bytes);
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            net,
            vec![Burst { k, bytes }, Burst { k: 0, bytes: 0 }],
        );
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(10_000);
        prop_assert_eq!(sim.clock(0).nic_free, per_msg * k);
        Ok(())
    });
}
