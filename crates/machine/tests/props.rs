//! Property tests for the machine simulator: determinism, causality, and
//! broadcast-tree coverage under randomized inputs.

use il_machine::{
    binomial_children, binomial_parent, broadcast_depth, MachineDesc, Network, NodeBehavior,
    NodeCtx, SimTime, Simulator,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A behavior that relays each message a random-but-deterministic number
/// of hops and records everything it sees.
struct Relay {
    hops_seen: Vec<(u64, u32)>, // (arrival ns, ttl)
}

#[derive(Clone, Debug)]
struct Hop {
    ttl: u32,
    stride: usize,
    bytes: u64,
}

impl NodeBehavior<Hop> for Relay {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, Hop>, msg: Hop) {
        self.hops_seen.push((ctx.arrival().as_ns(), msg.ttl));
        ctx.charge(SimTime::us(1));
        if msg.ttl > 0 {
            let dst = (ctx.node() + msg.stride) % ctx.nodes();
            ctx.send(dst, Hop { ttl: msg.ttl - 1, ..msg }, msg.bytes);
        }
    }
}

fn run(nodes: usize, seeds: &[(usize, u32, usize, u64)]) -> (u64, u64, u64, Vec<Vec<(u64, u32)>>) {
    let behaviors = (0..nodes).map(|_| Relay { hops_seen: Vec::new() }).collect();
    let mut sim = Simulator::new(MachineDesc::piz_daint(nodes), Network::aries(), behaviors);
    for &(dst, ttl, stride, bytes) in seeds {
        sim.inject(SimTime::ZERO, dst % nodes, Hop { ttl, stride: stride % nodes.max(1) + 1, bytes: bytes % 10_000 });
    }
    sim.run(1_000_000);
    let makespan = sim.makespan().as_ns();
    let stats = sim.stats().clone();
    let logs = (0..nodes).map(|n| sim.node(n).hops_seen.clone()).collect();
    (makespan, stats.messages, stats.bytes, logs)
}

proptest! {
    /// Two runs of the same schedule are bit-identical.
    #[test]
    fn simulation_is_deterministic(
        nodes in 1usize..10,
        seeds in proptest::collection::vec((0usize..10, 0u32..20, 0usize..10, 0u64..10_000), 1..6),
    ) {
        prop_assert_eq!(run(nodes, &seeds), run(nodes, &seeds));
    }

    /// Causality: every node observes non-decreasing arrival times in its
    /// own processing order, and total hops match the injected TTLs.
    #[test]
    fn causality_and_conservation(
        nodes in 1usize..8,
        seeds in proptest::collection::vec((0usize..8, 0u32..15, 0usize..8, 0u64..5_000), 1..5),
    ) {
        let (makespan, _msgs, _bytes, logs) = run(nodes, &seeds);
        let mut total_hops = 0usize;
        for log in &logs {
            total_hops += log.len();
            for (t, _) in log {
                prop_assert!(*t <= makespan);
            }
        }
        let expected: usize = seeds.iter().map(|(_, ttl, _, _)| *ttl as usize + 1).sum();
        prop_assert_eq!(total_hops, expected);
    }

    /// Binomial trees cover all nodes exactly once from any root, within
    /// the theoretical depth bound.
    #[test]
    fn broadcast_tree_coverage(n in 1usize..200, root_raw in 0usize..200) {
        let root = root_raw % n;
        let mut reached = BTreeSet::new();
        reached.insert(root);
        let mut frontier = vec![root];
        let mut rounds = 0u32;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &node in &frontier {
                for child in binomial_children(root, node, n) {
                    prop_assert!(reached.insert(child), "node {child} reached twice");
                    prop_assert_eq!(binomial_parent(root, child, n), Some(node));
                    next.push(child);
                }
            }
            frontier = next;
            rounds += 1;
        }
        prop_assert_eq!(reached.len(), n);
        prop_assert!(rounds <= broadcast_depth(n) + 1);
    }

    /// NIC serialization: sending k messages back-to-back occupies the
    /// NIC for at least k × occupancy(bytes).
    #[test]
    fn nic_occupancy_accumulates(k in 1u64..20, bytes in 0u64..50_000) {
        struct Burst {
            k: u64,
            bytes: u64,
        }
        impl NodeBehavior<u8> for Burst {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, msg: u8) {
                if msg == 0 && ctx.node() == 0 {
                    for _ in 0..self.k {
                        ctx.send(1, 1, self.bytes);
                    }
                }
            }
        }
        let net = Network::aries();
        let per_msg = net.occupancy(bytes);
        let mut sim = Simulator::new(
            MachineDesc::piz_daint(2),
            net,
            vec![Burst { k, bytes }, Burst { k: 0, bytes: 0 }],
        );
        sim.inject(SimTime::ZERO, 0, 0);
        sim.run(10_000);
        prop_assert_eq!(sim.clock(0).nic_free, per_msg * k);
    }
}
