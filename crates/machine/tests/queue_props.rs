//! Event-queue equivalence property tests: the calendar queue and the
//! binary heap must produce the *identical* dispatch sequence — same
//! `(time, seq)` pop order, including the same-timestamp sequence-number
//! tie-break — over seeded random event storms, both as bare queues and
//! under a full simulation. This is the lock that makes `QueueKind::Auto`
//! safe: switching data structures at 4096+ nodes cannot change results.

use il_machine::{
    BinaryHeapQueue, CalendarQueue, Event, EventQueue, FaultPlan, FaultSpec, MachineDesc,
    Network, NodeBehavior, NodeCtx, QueueKind, SimTime, Simulator, Stage,
};
use il_testkit::prop::{check, i64s, usizes, vec_of};
use il_testkit::{prop_assert, prop_assert_eq};

/// Interleaved storm on the bare queues: each `(t, burst, pops)` entry
/// pushes a burst of events (several sharing timestamp `t`, to exercise
/// the tie-break) then pops a few from both queues, comparing order.
#[test]
fn bare_queues_pop_identically() {
    let gen = vec_of((i64s(0..200), i64s(1..5), i64s(0..5)), 1..40);
    check("bare_queues_pop_identically", &gen, |ops| {
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut seq = 0u64;
        for &(t_raw, burst, pops) in ops {
            // Mostly clustered timestamps (heavy ties, shared buckets),
            // occasionally a far-future jump (direct-search fallback).
            let t = if t_raw < 180 { t_raw as u64 * 500 } else { t_raw as u64 * 50_000_000 };
            for b in 0..burst as u64 {
                let ev = |seq| Event { time: SimTime::ns(t), seq, dst: 0, msg: b };
                heap.push(ev(seq));
                cal.push(ev(seq));
                seq += 1;
            }
            for _ in 0..pops {
                let (a, b) = (heap.pop(), cal.pop());
                match (&a, &b) {
                    (Some(x), Some(y)) => {
                        prop_assert_eq!((x.time, x.seq), (y.time, y.seq));
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "queue lengths diverged"),
                }
            }
            prop_assert_eq!(heap.len(), cal.len());
        }
        // Drain: the remaining sequences must match exactly.
        while let Some(a) = heap.pop() {
            let b = cal.pop().expect("calendar drained early");
            prop_assert_eq!((a.time, a.seq), (b.time, b.seq));
        }
        prop_assert!(cal.pop().is_none());
        Ok(())
    });
}

/// A relay that records every `(arrival, ttl)` it sees — any divergence
/// in dispatch order between queue kinds shows up in some node's log.
struct Relay {
    log: Vec<(u64, u32)>,
}

#[derive(Clone, Debug)]
struct Hop {
    ttl: u32,
    stride: usize,
    bytes: u64,
}

impl NodeBehavior<Hop> for Relay {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, Hop>, msg: Hop) {
        self.log.push((ctx.arrival().as_ns(), msg.ttl));
        ctx.set_stage(Stage::Network);
        ctx.charge(SimTime::us(1));
        if msg.ttl > 0 {
            let dst = (ctx.node() + msg.stride) % ctx.nodes();
            ctx.send(dst, Hop { ttl: msg.ttl - 1, ..msg }, msg.bytes);
        }
    }
}

type Storm = Vec<(i64, i64, i64, i64)>;

fn run_with(kind: QueueKind, nodes: usize, storm: &Storm, faults: bool) -> impl Eq + std::fmt::Debug {
    let behaviors = (0..nodes).map(|_| Relay { log: Vec::new() }).collect();
    let mut sim = Simulator::new(MachineDesc::piz_daint(nodes), Network::aries(), behaviors)
        .with_queue(kind);
    if faults {
        let spec = FaultSpec {
            max_crashes: 2,
            slow_nodes: 2,
            crash_window: (SimTime::us(5), SimTime::us(500)),
            ..FaultSpec::default()
        };
        sim.set_fault_plan(FaultPlan::generate(0xF00D, nodes, &spec));
    }
    for &(dst, ttl, stride, at) in storm {
        // Injections at assorted absolute times, many colliding.
        sim.inject(
            SimTime::ns((at as u64 % 8) * 1_000),
            dst as usize % nodes,
            Hop { ttl: ttl as u32, stride: stride as usize % nodes + 1, bytes: 256 },
        );
    }
    sim.run(1_000_000);
    let logs: Vec<Vec<(u64, u32)>> = (0..nodes).map(|n| sim.node(n).log.clone()).collect();
    (
        sim.stats().events,
        sim.stats().messages,
        sim.stats().bytes,
        sim.stats().faults,
        sim.makespan(),
        sim.stage_totals(),
        sim.node_stage_busy(),
        logs,
    )
}

/// Full-simulation equivalence: calendar vs. heap over random relay
/// storms, fault-free and under a fault plan (crashes, slow nodes,
/// drops, duplicates — duplicates create same-timestamp collisions).
#[test]
fn simulations_dispatch_identically_across_queue_kinds() {
    let gen = (
        usizes(2..12),
        vec_of((i64s(0..12), i64s(0..25), i64s(0..12), i64s(0..8)), 1..8),
    );
    check("simulations_dispatch_identically_across_queue_kinds", &gen, |(nodes, storm)| {
        for faults in [false, true] {
            prop_assert_eq!(
                run_with(QueueKind::BinaryHeap, *nodes, storm, faults),
                run_with(QueueKind::Calendar, *nodes, storm, faults)
            );
        }
        Ok(())
    });
}
