//! The differential driver.
//!
//! Runs a program through both pipelines and demands they agree:
//!
//! 1. **Verdict class** — every op's [`OpSafety`] from the runtime
//!    expansion must match an independent re-analysis via
//!    [`analyze_launch`] (`Static` ↔ `SafeStatic`, `Dynamic{evals}` ↔
//!    `NeedsDynamic` whose plan passes with the same eval count,
//!    `Sequential` ↔ `Unsafe` or a failing plan).
//! 2. **Soundness** — an op the fast path index-launches (`Static` or
//!    `Dynamic`) must have zero intra-op interference in the oracle's
//!    brute-force graph.
//! 3. **Task labeling** — both sides expand to the same `(op, point_idx,
//!    point)` sequence.
//! 4. **Dependence graph** — equal transitive closures under that
//!    labeling. Direct edges may differ (the runtime retires readers
//!    once a covering writer orders past them; same-epoch reducers are
//!    deliberately unordered on both sides); the *orderings enforced*
//!    may not.
//! 5. **Serial makespan** — the critical path weighted by per-task cost,
//!    computed independently on each graph, must be identical. This pins
//!    the cost labeling on top of the structure.
//!
//! Finally the program is executed on the simulated machine and must run
//! exactly as many point tasks as the expansion predicted.
//!
//! Every case is a pure function of one `u64` seed; a divergence report
//! carries that seed, which alone reproduces the failure.

use crate::genprog::generate_program;
use crate::reference::{reference_expand, serial_makespan, transitive_closure};
use il_analysis::{analyze_launch, HybridVerdict, LaunchArg, UnsafeReason};
use il_runtime::depgraph::{expand_program, OpSafety};
use il_runtime::{execute, Program, ReplicationConfig, RuntimeConfig, ThreadPool};
use il_testkit::SplitMix64;
use std::fmt;

/// Configuration of a differential fuzzing run.
#[derive(Clone, Copy, Debug)]
pub struct DiffConfig {
    /// Number of seeded cases to run.
    pub cases: u64,
    /// Base seed; case `i` uses `SplitMix64::mix(seed, i)`.
    pub seed: u64,
    /// Machine size for the fast-path expansion/execution.
    pub nodes: usize,
    /// Inject a cost perturbation into the oracle of every case (self
    /// test: each case must then report a divergence).
    pub inject: bool,
    /// Worker threads for the corpus sweep (0 = one per hardware thread).
    /// Every case is a pure function of its seed and results are folded
    /// in case order, so the report is identical for any thread count.
    pub threads: usize,
    /// Base fault seed. `Some(base)` adds a chaos leg to every case: the
    /// program is re-executed under the survivable fault schedule derived
    /// from `SplitMix64::mix(base, case_seed)` and must run the same
    /// tasks, take at least the fault-free makespan, and replay
    /// byte-identically.
    pub faults: Option<u64>,
    /// Base corruption seed. `Some(base)` adds a silent-data-corruption
    /// leg to every case: the program is re-executed in validation mode
    /// under the corruption schedule derived from
    /// `SplitMix64::mix(base, case_seed)` with replicate-2 defense on,
    /// and must detect every flip (zero escapes), converge to the
    /// fault-free final store byte-for-byte, and replay byte-identically.
    pub corrupt: Option<u64>,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            cases: 64,
            seed: 0xD1FF,
            nodes: 2,
            inject: false,
            threads: 0,
            faults: None,
            corrupt: None,
        }
    }
}

/// How many ops of each verdict class a run (or case) exercised.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// `SafeStatic` ops.
    pub safe_static: u64,
    /// `NeedsDynamic` ops whose check passed.
    pub dynamic_pass: u64,
    /// `NeedsDynamic` ops whose check found a conflict (`DynamicConflict`).
    pub dynamic_conflict: u64,
    /// `Unsafe(AliasedWritePartition)` ops.
    pub aliased_write: u64,
    /// `Unsafe(NonInjectiveWrite)` ops.
    pub non_injective_write: u64,
    /// `Unsafe(ConflictingImages)` ops.
    pub conflicting_images: u64,
    /// `Unsafe(CrossPartitionConflict)` ops.
    pub cross_partition: u64,
}

impl Coverage {
    fn record(&mut self, verdict: &HybridVerdict) {
        match verdict {
            HybridVerdict::SafeStatic => self.safe_static += 1,
            HybridVerdict::NeedsDynamic(plan) => match plan.run() {
                Ok(_) => self.dynamic_pass += 1,
                Err(_) => self.dynamic_conflict += 1,
            },
            HybridVerdict::Unsafe(reason) => match reason {
                UnsafeReason::AliasedWritePartition { .. } => self.aliased_write += 1,
                UnsafeReason::NonInjectiveWrite { .. } => self.non_injective_write += 1,
                UnsafeReason::ConflictingImages { .. } => self.conflicting_images += 1,
                UnsafeReason::CrossPartitionConflict { .. } => self.cross_partition += 1,
                UnsafeReason::DynamicConflict { .. } => self.dynamic_conflict += 1,
            },
        }
    }

    /// Fold another coverage tally into this one.
    pub fn merge(&mut self, other: &Coverage) {
        self.safe_static += other.safe_static;
        self.dynamic_pass += other.dynamic_pass;
        self.dynamic_conflict += other.dynamic_conflict;
        self.aliased_write += other.aliased_write;
        self.non_injective_write += other.non_injective_write;
        self.conflicting_images += other.conflicting_images;
        self.cross_partition += other.cross_partition;
    }

    fn classes(&self) -> [(&'static str, u64); 7] {
        [
            ("SafeStatic", self.safe_static),
            ("NeedsDynamic(pass)", self.dynamic_pass),
            ("DynamicConflict", self.dynamic_conflict),
            ("AliasedWritePartition", self.aliased_write),
            ("NonInjectiveWrite", self.non_injective_write),
            ("ConflictingImages", self.conflicting_images),
            ("CrossPartitionConflict", self.cross_partition),
        ]
    }

    /// Verdict classes this tally never saw.
    pub fn missing(&self) -> Vec<&'static str> {
        self.classes().iter().filter(|(_, n)| *n == 0).map(|(name, _)| *name).collect()
    }

    /// True iff every verdict class was exercised at least once.
    pub fn complete(&self) -> bool {
        self.missing().is_empty()
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, n)) in self.classes().iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "  {name:<24} {n}")?;
        }
        Ok(())
    }
}

/// Outcome of one seeded case.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Verdict classes the case's ops hit.
    pub coverage: Coverage,
    /// Point tasks in the expanded program.
    pub tasks: u64,
    /// First disagreement between the fast path and the oracle, if any.
    pub error: Option<String>,
}

/// One reproducible disagreement.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Case index within the run.
    pub case: u64,
    /// The seed that alone reproduces the failure
    /// (`run_case(seed, nodes, inject, faults, corrupt)`).
    pub seed: u64,
    /// What disagreed.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "case {} (seed {:#018x}): {}", self.case, self.seed, self.detail)
    }
}

/// Aggregate result of a differential run.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Cases executed.
    pub cases: u64,
    /// Total point tasks across all cases.
    pub tasks: u64,
    /// Aggregate verdict-class coverage.
    pub coverage: Coverage,
    /// All disagreements found.
    pub divergences: Vec<Divergence>,
}

/// Run `program` through the fast path and the oracle and compare.
/// `Err` carries the first disagreement found.
pub fn check_program(program: &Program, nodes: usize) -> Result<(), String> {
    let (_, _, error) = compare(program, nodes, false, None, None);
    match error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Generate the program for `seed` and differentially check it. With
/// `inject`, the oracle's first task cost is perturbed by one second —
/// far beyond any generated cost — so the serial-makespan comparison
/// must flag a divergence; this proves end-to-end that a real divergence
/// would be caught and reproduced from the seed alone.
///
/// With `fault_base = Some(base)`, the case additionally executes under
/// the fault schedule seeded by `SplitMix64::mix(base, seed)` — a pure
/// function of the two seeds, so a chaos divergence also reproduces from
/// `(seed, base)` alone. `corrupt_base` works the same way for the
/// silent-data-corruption leg.
pub fn run_case(
    seed: u64,
    nodes: usize,
    inject: bool,
    fault_base: Option<u64>,
    corrupt_base: Option<u64>,
) -> CaseResult {
    let program = generate_program(seed);
    let fault_seed = fault_base.map(|base| SplitMix64::mix(base, seed));
    let corrupt_seed = corrupt_base.map(|base| SplitMix64::mix(base, seed));
    let (coverage, tasks, error) = compare(&program, nodes, inject, fault_seed, corrupt_seed);
    CaseResult { coverage, tasks, error }
}

/// Run the whole corpus described by `cfg`, fanning the independent case
/// seeds across a thread pool sized by `cfg.threads`.
pub fn run_differential(cfg: &DiffConfig) -> DiffReport {
    let pool = if cfg.threads == 0 {
        ThreadPool::with_default_parallelism()
    } else {
        ThreadPool::new(cfg.threads)
    };
    run_differential_on(cfg, &pool)
}

/// [`run_differential`] on a caller-supplied pool (the `figures` driver
/// and the sweep-determinism tests share one pool across sweeps).
///
/// Each case is generated and checked entirely inside its job — the jobs
/// capture only the `Copy` seed parameters — and `ThreadPool::map`
/// returns results in submission order, so the folded report (coverage,
/// task totals, divergence order) is byte-identical no matter how many
/// workers the pool has.
pub fn run_differential_on(cfg: &DiffConfig, pool: &ThreadPool) -> DiffReport {
    let (nodes, inject, faults, corrupt) = (cfg.nodes, cfg.inject, cfg.faults, cfg.corrupt);
    let jobs: Vec<_> = (0..cfg.cases)
        .map(|case| {
            let seed = SplitMix64::mix(cfg.seed, case);
            move || run_case(seed, nodes, inject, faults, corrupt)
        })
        .collect();
    let mut report = DiffReport {
        cases: cfg.cases,
        tasks: 0,
        coverage: Coverage::default(),
        divergences: Vec::new(),
    };
    for (case, result) in pool.map(jobs).into_iter().enumerate() {
        let case = case as u64;
        report.tasks += result.tasks;
        report.coverage.merge(&result.coverage);
        if let Some(detail) = result.error {
            report.divergences.push(Divergence {
                case,
                seed: SplitMix64::mix(cfg.seed, case),
                detail,
            });
        }
    }
    report
}

/// The five comparisons plus a full simulated execution (twice more
/// under a fault schedule when `fault_seed` is set, and three more in
/// validation mode when `corrupt_seed` is set). Returns
/// (coverage, task count, first disagreement).
fn compare(
    program: &Program,
    nodes: usize,
    inject: bool,
    fault_seed: Option<u64>,
    corrupt_seed: Option<u64>,
) -> (Coverage, u64, Option<String>) {
    let mut coverage = Coverage::default();

    // Independent re-analysis of every op (the runtime's verdict cache
    // is a different code path; both must agree).
    let mut verdicts: Vec<HybridVerdict> = Vec::with_capacity(program.ops.len());
    for op in &program.ops {
        let launch = op.launch();
        let args: Vec<LaunchArg> = launch
            .reqs
            .iter()
            .map(|r| LaunchArg {
                partition: r.partition,
                functor: program.functor(r.functor).clone(),
                privilege: r.privilege,
                fields: r.fields.clone(),
            })
            .collect();
        let verdict = analyze_launch(&program.forest, &launch.domain, &args);
        coverage.record(&verdict);
        verdicts.push(verdict);
    }

    let config = RuntimeConfig::scale(nodes);
    let expanded = expand_program(program, &config);
    let mut oracle = reference_expand(program);
    if inject {
        oracle.tasks[0].cost_ns += 1_000_000_000;
    }
    let tasks = expanded.len() as u64;

    let error = (|| {
        // (3) Canonical task labeling.
        if expanded.len() != oracle.tasks.len() {
            return Some(format!(
                "task count: fast path {} vs oracle {}",
                expanded.len(),
                oracle.tasks.len()
            ));
        }
        for (t, (fast, slow)) in expanded.tasks.iter().zip(&oracle.tasks).enumerate() {
            if (fast.op, fast.point_idx, fast.point) != (slow.op, slow.point_idx, slow.point) {
                return Some(format!(
                    "task {t} labeling: fast path (op {}, idx {}, {:?}) vs oracle (op {}, idx {}, {:?})",
                    fast.op, fast.point_idx, fast.point, slow.op, slow.point_idx, slow.point
                ));
            }
        }

        // (1) Verdict classes, (2) soundness against ground truth.
        for (op, (safety, verdict)) in expanded.safety.iter().zip(&verdicts).enumerate() {
            let consistent = match (safety, verdict) {
                (OpSafety::Static, HybridVerdict::SafeStatic) => true,
                (OpSafety::Dynamic { evals }, HybridVerdict::NeedsDynamic(plan)) => {
                    plan.run() == Ok(*evals)
                }
                (OpSafety::Sequential, HybridVerdict::Unsafe(_)) => true,
                (OpSafety::Sequential, HybridVerdict::NeedsDynamic(plan)) => plan.run().is_err(),
                _ => false,
            };
            if !consistent {
                return Some(format!(
                    "op {op} verdict class: runtime {safety:?} vs analysis {verdict:?}"
                ));
            }
            if !matches!(safety, OpSafety::Sequential) && oracle.interfering[op] {
                return Some(format!(
                    "op {op} unsound: fast path verdict {safety:?} but the oracle found \
                     intra-launch interference"
                ));
            }
        }

        // (4) Equal transitive closures.
        if transitive_closure(&expanded.deps) != transitive_closure(&oracle.deps) {
            let detail = first_closure_diff(&expanded.deps, &oracle.deps);
            return Some(format!("dependence closure mismatch: {detail}"));
        }

        // (5) Serial makespan, costs read independently per side.
        let fast_costs: Vec<u64> = expanded
            .tasks
            .iter()
            .map(|t| program.ops[t.op as usize].launch().cost.at(t.point).as_ns())
            .collect();
        let slow_costs: Vec<u64> = oracle.tasks.iter().map(|t| t.cost_ns).collect();
        let fast_span = serial_makespan(&fast_costs, &expanded.deps);
        let slow_span = serial_makespan(&slow_costs, &oracle.deps);
        if fast_span != slow_span {
            return Some(format!(
                "serial makespan: fast path {fast_span} ns vs oracle {slow_span} ns"
            ));
        }

        // Full simulated run: every expanded task must actually execute.
        let report = execute(program, &config);
        if report.tasks != tasks {
            return Some(format!(
                "execution ran {} tasks but the expansion has {tasks}",
                report.tasks
            ));
        }

        // Trace replay is host-side memoization of the expansion
        // pipeline, so disabling it must not change anything the
        // simulation observes: same makespan, same traffic, same
        // per-stage attribution.
        let no_replay = execute(program, &config.clone().with_trace_replay(false));
        let observable = |r: &il_runtime::RunReport| {
            (r.makespan, r.messages, r.bytes, r.stage_json().to_string())
        };
        if observable(&report) != observable(&no_replay) {
            return Some(format!(
                "trace replay is not transparent: on {:?} vs off {:?}",
                observable(&report),
                observable(&no_replay)
            ));
        }

        // Chaos leg: the same program under a survivable fault schedule
        // must still run every task, take no less time than the clean
        // run, and — being a pure function of `(seed, config)` — replay
        // byte-identically.
        if let Some(fseed) = fault_seed {
            let fcfg = config.clone().with_faults(fseed);
            let faulted = execute(program, &fcfg);
            if faulted.tasks != tasks {
                return Some(format!(
                    "faulted execution (fault seed {fseed:#018x}) ran {} tasks \
                     but the expansion has {tasks}",
                    faulted.tasks
                ));
            }
            if faulted.makespan < report.makespan {
                return Some(format!(
                    "faulted makespan {} ns beat fault-free {} ns (fault seed {fseed:#018x})",
                    faulted.makespan.as_ns(),
                    report.makespan.as_ns()
                ));
            }
            let replay = execute(program, &fcfg);
            let fp = |r: &il_runtime::RunReport| {
                (
                    r.makespan,
                    r.messages,
                    r.bytes,
                    r.stage_json().to_string(),
                    r.recovery.clone(),
                )
            };
            if fp(&faulted) != fp(&replay) {
                return Some(format!(
                    "faulted execution is not deterministic for fault seed {fseed:#018x}: \
                     {:?} vs {:?}",
                    fp(&faulted),
                    fp(&replay)
                ));
            }
        }

        // SDC leg: re-execute in validation mode under a seeded
        // corruption schedule with replicate-2 defense. The vote must
        // catch every flip (zero escapes) and the final data must
        // converge byte-for-byte to the fault-free store; being a pure
        // function of `(seed, config)`, the defended run must also
        // replay byte-identically.
        if let Some(cseed) = corrupt_seed {
            let vcfg = RuntimeConfig::validate(nodes);
            let clean = execute(program, &vcfg);
            let ccfg = vcfg
                .clone()
                .with_corruption(cseed)
                .with_replication(ReplicationConfig::all(2));
            let defended = execute(program, &ccfg);
            if defended.tasks != tasks {
                return Some(format!(
                    "defended execution (corrupt seed {cseed:#018x}) ran {} tasks \
                     but the expansion has {tasks}",
                    defended.tasks
                ));
            }
            let Some(sdc) = defended.sdc.clone() else {
                return Some(format!(
                    "corrupt seed {cseed:#018x}: defended run reported no SDC stats"
                ));
            };
            if sdc.escaped != 0 {
                return Some(format!(
                    "corrupt seed {cseed:#018x}: {} corrupted outputs escaped the \
                     replicate-2 vote",
                    sdc.escaped
                ));
            }
            if defended.store != clean.store {
                return Some(format!(
                    "corrupt seed {cseed:#018x}: defended final store diverged from \
                     the fault-free store ({} detections, {} re-runs)",
                    sdc.detected, sdc.reruns
                ));
            }
            let replay = execute(program, &ccfg);
            let fp = |r: &il_runtime::RunReport| {
                (r.makespan, r.messages, r.bytes, r.stage_json().to_string(), r.sdc.clone())
            };
            if fp(&defended) != fp(&replay) {
                return Some(format!(
                    "defended execution is not deterministic for corrupt seed \
                     {cseed:#018x}: {:?} vs {:?}",
                    fp(&defended),
                    fp(&replay)
                ));
            }
        }
        None
    })();

    (coverage, tasks, error)
}

/// Locate the first (task, predecessor) bit on which two closures differ,
/// for a readable divergence message.
fn first_closure_diff(a: &[Vec<u32>], b: &[Vec<u32>]) -> String {
    let (ca, cb) = (transitive_closure(a), transitive_closure(b));
    for t in 0..ca.len().min(cb.len()) {
        for w in 0..ca[t].len() {
            let diff = ca[t][w] ^ cb[t][w];
            if diff != 0 {
                let d = w * 64 + diff.trailing_zeros() as usize;
                let fast = ca[t][w] >> (d % 64) & 1 == 1;
                return format!(
                    "task {t} {} depend on task {d} in the fast path, oracle disagrees",
                    if fast { "does" } else { "does not" }
                );
            }
        }
    }
    "graphs have different sizes".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_is_clean() {
        let report = run_differential(&DiffConfig { cases: 24, ..DiffConfig::default() });
        assert!(
            report.divergences.is_empty(),
            "divergences: {:#?}",
            report.divergences
        );
        assert!(report.tasks > 0);
    }

    #[test]
    fn injected_divergence_is_always_caught() {
        let report = run_differential(&DiffConfig {
            cases: 8,
            inject: true,
            ..DiffConfig::default()
        });
        assert_eq!(report.divergences.len(), 8, "every injected case must diverge");
        for d in &report.divergences {
            assert!(d.detail.contains("makespan"), "unexpected detail: {}", d.detail);
        }
    }

    #[test]
    fn divergence_reproduces_from_seed_alone() {
        let cfg = DiffConfig { cases: 4, inject: true, ..DiffConfig::default() };
        let report = run_differential(&cfg);
        for d in &report.divergences {
            let again = run_case(d.seed, cfg.nodes, true, None, None);
            assert_eq!(again.error.as_deref(), Some(d.detail.as_str()));
        }
    }

    #[test]
    fn chaos_corpus_is_clean() {
        let report = run_differential(&DiffConfig {
            cases: 16,
            faults: Some(0xFA17),
            ..DiffConfig::default()
        });
        assert!(
            report.divergences.is_empty(),
            "chaos divergences: {:#?}",
            report.divergences
        );
    }

    #[test]
    fn corruption_corpus_is_clean() {
        let report = run_differential(&DiffConfig {
            cases: 12,
            corrupt: Some(0x5DC0),
            ..DiffConfig::default()
        });
        assert!(
            report.divergences.is_empty(),
            "SDC divergences: {:#?}",
            report.divergences
        );
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        // Same corpus on 1 and 4 workers: identical aggregate report,
        // including divergence (case, seed) order under --inject.
        for inject in [false, true] {
            let base = DiffConfig { cases: 12, inject, ..DiffConfig::default() };
            let serial = run_differential(&DiffConfig { threads: 1, ..base });
            let parallel = run_differential(&DiffConfig { threads: 4, ..base });
            assert_eq!(serial.cases, parallel.cases);
            assert_eq!(serial.tasks, parallel.tasks);
            assert_eq!(serial.coverage, parallel.coverage);
            let key = |d: &Divergence| (d.case, d.seed, d.detail.clone());
            assert_eq!(
                serial.divergences.iter().map(key).collect::<Vec<_>>(),
                parallel.divergences.iter().map(key).collect::<Vec<_>>(),
            );
        }
    }
}
