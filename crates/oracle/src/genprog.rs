//! Seeded random launch-program generator.
//!
//! Builds small but structurally diverse [`Program`]s: one region with a
//! disjoint block partition, an aliased halo partition, and a second
//! disjoint partition of different granularity; an unrelated region; an
//! occasional 2-D region with a tile partition; 1–4 launches over dense,
//! sparse, and 2-D domains; identity / constant / affine / modular /
//! quadratic / composed / swizzled / opaque projection functors; mixed
//! read / write / read-write / reduce privileges; per-requirement field
//! subsets; uniform and per-point cost models; block and round-robin
//! sharding.
//!
//! Everything is a pure function of the seed. The low bits of the seed
//! select a *scenario bias* — one launch shaped to hit a specific
//! verdict class (aliased write, non-injective write, conflicting
//! images, mismatched reductions, cross-partition conflict, dynamic
//! pass, dynamic conflict) — so a modest corpus provably covers every
//! `HybridVerdict` / `UnsafeReason` class while the rest of each program
//! stays fully random.
//!
//! Generated functors are kept *valid* (every color they select over the
//! launch domain has a subspace): a candidate that escapes its
//! partition's color space is replaced by `Modular { m: colors }`, which
//! is always in bounds. Validity is what the runtime's expansion
//! requires; safety is exactly what is being fuzzed, so both safe and
//! unsafe programs are produced on purpose.

use il_analysis::ProjExpr;
use il_geometry::{Domain, DomainPoint, Rect};
use il_machine::SimTime;
use il_region::{
    block_partition_2d, coloring_partition, equal_partition_1d, FieldId, FieldKind, FieldSpaceDesc,
    FieldSpaceId, IndexPartitionId, Privilege, RegionTreeId, ReductionKind,
};
use il_runtime::{
    round_robin_shard, CostSpec, IndexLaunchDesc, Program, ProgramBuilder, RegionReq,
};
use il_testkit::TestRng;
use std::sync::Arc;

/// A partition a generated requirement can target.
#[derive(Clone, Copy)]
struct Target {
    partition: IndexPartitionId,
    tree: RegionTreeId,
    field_space: FieldSpaceId,
    /// Number of colors (all our partitions color `0..colors` in 1-D).
    colors: i64,
}

/// Generate a complete program from `seed`. Deterministic: the same seed
/// always yields the same program, including opaque functor behavior and
/// per-point cost curves. `seed % 8` picks the scenario bias (see module
/// docs); the remaining launches are generic.
pub fn generate_program(seed: u64) -> Program {
    let mut rng = TestRng::seed_from_u64(seed);
    let scenario = (seed % 8) as usize;
    let mut b = ProgramBuilder::new();

    let nfields = rng.gen_range_usize(1, 4);
    let mut fsd = FieldSpaceDesc::new();
    for i in 0..nfields {
        fsd.add(&format!("f{i}"), FieldKind::F64);
    }
    let fs = b.forest.create_field_space(fsd);

    // Region 1: the main battleground — three partitions of one space.
    let blocks = rng.gen_range_usize(2, 7);
    let bsize = rng.gen_range_usize(1, 5);
    let len = (blocks * bsize) as i64;
    let r1 = b.forest.create_region(Domain::range(len), fs);
    let d1 = equal_partition_1d(&mut b.forest, r1.space, blocks);
    let a1 = {
        let coloring: Vec<_> = (0..blocks as i64)
            .map(|c| {
                let lo = (c * bsize as i64 - 1).max(0);
                let hi = ((c + 1) * bsize as i64).min(len - 1);
                (DomainPoint::new1(c), Domain::Rect1(Rect::new1(lo, hi)))
            })
            .collect();
        coloring_partition(&mut b.forest, r1.space, Domain::range(blocks as i64), coloring)
    };
    let d1b = equal_partition_1d(&mut b.forest, r1.space, rng.gen_range_usize(1, (len as usize).min(6) + 1));

    // Region 2: unrelated data (launches touching only r2 never conflict
    // with r1 traffic).
    let len2 = rng.gen_range_i64(4, 25);
    let r2 = b.forest.create_region(Domain::range(len2), fs);
    let d2 = equal_partition_1d(&mut b.forest, r2.space, rng.gen_range_usize(2, (len2 as usize).min(6) + 1));

    let colors = |b: &ProgramBuilder, p: IndexPartitionId| b.forest.partition(p).color_space.volume() as i64;
    let t_d1 = Target { partition: d1, tree: r1.tree, field_space: fs, colors: colors(&b, d1) };
    let t_a1 = Target { partition: a1, tree: r1.tree, field_space: fs, colors: colors(&b, a1) };
    let t_d1b = Target { partition: d1b, tree: r1.tree, field_space: fs, colors: colors(&b, d1b) };
    let t_d2 = Target { partition: d2, tree: r2.tree, field_space: fs, colors: colors(&b, d2) };
    let targets = [t_d1, t_a1, t_d1b, t_d2];

    let mut launches: Vec<IndexLaunchDesc> = Vec::new();
    let n_generic = rng.gen_range_usize(1, 4);
    for li in 0..n_generic {
        launches.push(generic_launch(&mut b, &mut rng, &targets, nfields, li));
    }

    // Occasional 2-D launch: tile partition of a 2-D region, identity
    // functor over the tile color space.
    if rng.gen_bool(0.25) {
        let (w, h) = (rng.gen_range_i64(2, 5), rng.gen_range_i64(2, 5));
        let r2d = b.forest.create_region(Domain::Rect2(Rect::new2((0, 0), (w - 1, h - 1))), fs);
        let tiles = (rng.gen_range_usize(1, 3), rng.gen_range_usize(1, 3));
        let p2d = block_partition_2d(&mut b.forest, r2d.space, tiles);
        let domain = b.forest.partition(p2d).color_space.clone();
        let task = b.task_modeled("tiles2d");
        let functor = b.functor(ProjExpr::Identity);
        let privilege = pick_privilege(&mut rng);
        launches.push(IndexLaunchDesc {
            task,
            domain,
            reqs: vec![RegionReq {
                partition: p2d,
                functor,
                privilege,
                fields: pick_fields(&mut rng, nfields),
                tree: r2d.tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::us(rng.gen_range_i64(1, 50) as u64)),
            shard: None,
        });
    }

    if let Some(biased) = scenario_launch(&mut b, &mut rng, scenario, &targets, fs) {
        let at = rng.gen_range_usize(0, launches.len() + 1);
        launches.insert(at, biased);
    }

    b.start_timing();
    for launch in launches {
        b.index_launch(launch);
    }
    b.build()
}

/// One launch biased toward a specific verdict class; `None` for the
/// fully-generic scenario.
fn scenario_launch(
    b: &mut ProgramBuilder,
    rng: &mut TestRng,
    scenario: usize,
    targets: &[Target; 4],
    fs: FieldSpaceId,
) -> Option<IndexLaunchDesc> {
    let [d1, a1, d1b, _] = *targets;
    let req = |b: &mut ProgramBuilder, t: Target, f: ProjExpr, p: Privilege| RegionReq {
        partition: t.partition,
        functor: b.functor(f),
        privilege: p,
        fields: vec![],
        tree: t.tree,
        field_space: t.field_space,
    };
    let (name, domain, reqs): (&str, Domain, Vec<RegionReq>) = match scenario {
        // Write through the aliased halo partition: AliasedWritePartition.
        1 => {
            let n = rng.gen_range_i64(1, a1.colors + 1);
            let w = if rng.gen_bool(0.5) { Privilege::Write } else { Privilege::ReadWrite };
            ("aliased_write", Domain::range(n), vec![req(b, a1, ProjExpr::Identity, w)])
        }
        // Listing 2: q[i % m] written over a larger domain:
        // NonInjectiveWrite (statically provable).
        2 => {
            let n = rng.gen_range_i64(2, 9);
            let m = rng.gen_range_i64(1, d1.colors.min(n - 1).max(1) + 1);
            ("modular_write", Domain::range(n), vec![req(b, d1, ProjExpr::Modular { a: 1, b: 0, m }, Privilege::Write)])
        }
        // Same functor on the same disjoint partition with conflicting
        // privileges: ConflictingImages.
        3 => {
            let n = rng.gen_range_i64(1, d1.colors + 1);
            let (pa, pb) = if rng.gen_bool(0.5) {
                (Privilege::Write, Privilege::Read)
            } else {
                (Privilege::ReadWrite, Privilege::ReadWrite)
            };
            let f = ProjExpr::Identity;
            ("same_image_conflict", Domain::range(n), vec![req(b, d1, f.clone(), pa), req(b, d1, f, pb)])
        }
        // Mismatched reduction operators on the same sub-collections:
        // ConflictingImages (reductions only commute with themselves).
        4 => {
            let n = rng.gen_range_i64(1, d1.colors + 1);
            let ops = [ReductionKind::Sum, ReductionKind::Prod, ReductionKind::Min, ReductionKind::Max];
            let i = rng.gen_range_usize(0, ops.len());
            let j = (i + 1 + rng.gen_range_usize(0, ops.len() - 1)) % ops.len();
            (
                "mixed_reductions",
                Domain::range(n),
                vec![
                    req(b, d1, ProjExpr::Identity, Privilege::Reduce(ops[i].id())),
                    req(b, d1, ProjExpr::Identity, Privilege::Reduce(ops[j].id())),
                ],
            )
        }
        // Conflicting privileges through two different partitions of the
        // same region: CrossPartitionConflict.
        5 => {
            let n = rng.gen_range_i64(1, d1.colors.min(d1b.colors) + 1);
            (
                "cross_partition",
                Domain::range(n),
                vec![
                    req(b, d1, ProjExpr::Identity, Privilege::Write),
                    req(b, d1b, ProjExpr::Identity, Privilege::Read),
                ],
            )
        }
        // Statically unresolvable but actually injective writers: the
        // dynamic bitmask check runs and passes (NeedsDynamic -> launch).
        6 => {
            if rng.gen_bool(0.5) {
                // i² over [0,3) into a 10-color partition.
                let extra = rng.gen_range_i64(10, 13);
                let rq = b.forest.create_region(Domain::range(extra), fs);
                let pq = equal_partition_1d(&mut b.forest, rq.space, 10);
                let t = Target { partition: pq, tree: rq.tree, field_space: fs, colors: 10 };
                ("quadratic_pass", Domain::range(3), vec![req(b, t, ProjExpr::Quadratic { a: 1, b: 0, c: 0 }, Privilege::Write)])
            } else {
                // Opaque reversal i -> k-1-i: injective, invisible to the
                // static analyzer.
                let k = d1.colors;
                let f = ProjExpr::opaque(move |p| DomainPoint::new1(k - 1 - p.x()));
                ("opaque_pass", Domain::range(k), vec![req(b, d1, f, Privilege::Write)])
            }
        }
        // Opaque collision i -> i/2: the dynamic check fires
        // (DynamicConflict) and the launch degrades to a sequential loop.
        7 => {
            let n = rng.gen_range_i64(2, (2 * d1.colors).min(8) + 1);
            let f = ProjExpr::opaque(|p| DomainPoint::new1(p.x() / 2));
            ("opaque_collision", Domain::range(n), vec![req(b, d1, f, Privilege::Write)])
        }
        _ => return None,
    };
    let task = b.task_modeled(name);
    Some(IndexLaunchDesc {
        task,
        domain,
        reqs,
        scalars: vec![],
        cost: CostSpec::Uniform(SimTime::us(rng.gen_range_i64(1, 100) as u64)),
        shard: None,
    })
}

/// A fully random launch over 1-D targets.
fn generic_launch(
    b: &mut ProgramBuilder,
    rng: &mut TestRng,
    targets: &[Target; 4],
    nfields: usize,
    li: usize,
) -> IndexLaunchDesc {
    let domain = if rng.gen_bool(0.2) {
        // Sparse subset of [0, 8).
        let mut pts: Vec<i64> = (0..8).filter(|_| rng.gen_bool(0.4)).collect();
        if pts.is_empty() {
            pts.push(rng.gen_range_i64(0, 8));
        }
        Domain::sparse(pts.into_iter().map(DomainPoint::new1).collect())
    } else {
        Domain::range(rng.gen_range_i64(1, 9))
    };

    let nreqs = rng.gen_range_usize(1, 4);
    let reqs: Vec<RegionReq> = (0..nreqs)
        .map(|_| {
            let t = targets[rng.gen_range_usize(0, targets.len())];
            let mut functor = pick_functor(rng, t.colors);
            if !functor_in_bounds(b, t.partition, &functor, &domain) {
                functor = ProjExpr::Modular { a: 1, b: 0, m: t.colors };
            }
            RegionReq {
                partition: t.partition,
                functor: b.functor(functor),
                privilege: pick_privilege(rng),
                fields: pick_fields(rng, nfields),
                tree: t.tree,
                field_space: t.field_space,
            }
        })
        .collect();

    let cost = if rng.gen_bool(0.3) {
        let base = rng.gen_range_i64(1, 50) as u64;
        CostSpec::PerPoint(Arc::new(move |p: DomainPoint| {
            SimTime::us(base + p.coord_sum().unsigned_abs() % 13)
        }))
    } else {
        CostSpec::Uniform(SimTime::us(rng.gen_range_i64(1, 100) as u64))
    };
    let task = b.task_modeled(&format!("gen{li}"));
    IndexLaunchDesc {
        task,
        domain,
        reqs,
        scalars: vec![],
        cost,
        shard: if rng.gen_bool(0.3) { Some(round_robin_shard()) } else { None },
    }
}

/// A candidate functor into a `k`-color 1-D color space. May be out of
/// bounds for the eventual domain — the caller validates and falls back.
fn pick_functor(rng: &mut TestRng, k: i64) -> ProjExpr {
    match rng.gen_range_usize(0, 9) {
        0 => ProjExpr::Identity,
        1 => ProjExpr::Constant(DomainPoint::new1(rng.gen_range_i64(0, k))),
        2 => ProjExpr::linear(1, rng.gen_range_i64(0, k)),
        3 => ProjExpr::linear(-1, rng.gen_range_i64(0, k)),
        4 => ProjExpr::Modular {
            a: rng.gen_range_i64(1, 3),
            b: rng.gen_range_i64(0, 3),
            m: rng.gen_range_i64(1, k + 1),
        },
        5 => ProjExpr::Quadratic { a: 1, b: rng.gen_range_i64(0, 2), c: rng.gen_range_i64(0, 2) },
        // Nested: shift after a modulus (inner functor applied first).
        6 => ProjExpr::Compose(
            Box::new(ProjExpr::linear(1, rng.gen_range_i64(0, 2))),
            Box::new(ProjExpr::Modular { a: 1, b: 0, m: (k - 2).max(1) }),
        ),
        7 => ProjExpr::Swizzle(vec![0]),
        _ => {
            let m = k.max(1);
            ProjExpr::opaque(move |p| DomainPoint::new1(p.x().rem_euclid(m)))
        }
    }
}

/// Every color the functor selects over the domain has a subspace.
fn functor_in_bounds(
    b: &ProgramBuilder,
    partition: IndexPartitionId,
    functor: &ProjExpr,
    domain: &Domain,
) -> bool {
    domain
        .iter()
        .all(|p| b.forest.try_subspace(partition, functor.eval(p)).is_some())
}

fn pick_privilege(rng: &mut TestRng) -> Privilege {
    match rng.gen_range_usize(0, 10) {
        0..=3 => Privilege::Read,
        4 | 5 => Privilege::Write,
        6 => Privilege::ReadWrite,
        _ => {
            let kinds = [ReductionKind::Sum, ReductionKind::Prod, ReductionKind::Min, ReductionKind::Max];
            Privilege::Reduce(kinds[rng.gen_range_usize(0, kinds.len())].id())
        }
    }
}

/// A random field subset; empty means "all fields".
fn pick_fields(rng: &mut TestRng, nfields: usize) -> Vec<FieldId> {
    if rng.gen_bool(0.4) {
        return Vec::new();
    }
    (0..nfields)
        .filter(|_| rng.gen_bool(0.5))
        .map(|i| FieldId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            let a = generate_program(seed);
            let c = generate_program(seed);
            assert_eq!(a.ops.len(), c.ops.len());
            assert_eq!(a.total_tasks(), c.total_tasks());
            for (x, y) in a.ops.iter().zip(&c.ops) {
                let (lx, ly) = (x.launch(), y.launch());
                assert_eq!(lx.domain, ly.domain);
                assert_eq!(lx.reqs.len(), ly.reqs.len());
                for (rx, ry) in lx.reqs.iter().zip(&ly.reqs) {
                    assert_eq!(rx.partition, ry.partition);
                    assert_eq!(rx.privilege, ry.privilege);
                    assert_eq!(rx.fields, ry.fields);
                }
            }
        }
    }

    #[test]
    fn every_generated_functor_is_in_bounds() {
        for seed in 0..64u64 {
            let p = generate_program(seed);
            for op in &p.ops {
                let launch = op.launch();
                for req in &launch.reqs {
                    for point in launch.domain.iter() {
                        let color = p.functor(req.functor).eval(point);
                        assert!(
                            p.forest.try_subspace(req.partition, color).is_some(),
                            "seed {seed}: color {color:?} out of bounds"
                        );
                    }
                }
            }
        }
    }
}
