//! Differential oracle for the index-launch fast path.
//!
//! The paper's core semantic claim (§2, Fig. 1) is that an index launch
//! is *equivalent* to the loop of individual task launches it replaces:
//! the O(1) descriptor plus the hybrid static/dynamic analysis must
//! produce exactly the dependences the desugared loop would. This crate
//! checks that equivalence end-to-end, with three pieces:
//!
//! * [`reference`] — a reference executor that desugars every
//!   [`IndexLaunchDesc`](il_runtime::IndexLaunchDesc) into |D| individual
//!   launches and computes ground-truth interference by brute-force
//!   pairwise (point, field, privilege) intersection. No projection-
//!   functor shortcuts, no bitmask checks, no partition metadata — just
//!   the definition of a conflict.
//! * [`genprog`] — a seeded random launch-program generator: random
//!   domains (dense, sparse, 2-D), nested/affine/opaque projection
//!   functors, mixed read/write/reduce privileges, multi-field region
//!   requirements, multi-launch programs.
//! * [`diff`] — the differential driver that runs each generated program
//!   through both the fast path (`il-analysis` hybrid verdicts +
//!   `il-runtime` depgraph expansion) and the oracle, asserting identical
//!   verdict classes, isomorphic dependence graphs (equal transitive
//!   closures under the canonical task labeling), and identical makespan
//!   under a serial machine model. Any divergence carries the single
//!   case seed that reproduces it.
//!
//! The generator lives here rather than in `il-testkit` because it
//! builds [`il_runtime::Program`]s, and `il-runtime` already depends on
//! `il-testkit` (dev) — putting it in the testkit would create a cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod genprog;
pub mod reference;

pub use diff::{
    check_program, run_case, run_differential, run_differential_on, CaseResult, Coverage,
    DiffConfig, DiffReport, Divergence,
};
pub use genprog::generate_program;
pub use reference::{reference_expand, serial_makespan, transitive_closure, OracleGraph, OracleTask};
