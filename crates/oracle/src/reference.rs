//! The desugared-launch reference executor.
//!
//! Expands every index launch into |D| individual point launches (the
//! loop of Fig. 1) and computes the ground-truth dependence graph by
//! brute force: task `b` depends on an earlier task `a` iff they access
//! a common (region tree, element point, field) with privileges that do
//! not commute. No projection-functor analysis, no partition
//! disjointness metadata, no bitmask pass — every access is materialized
//! point by point and every pair is tested. This is deliberately the
//! slowest possible implementation of §2's semantics, so it can serve as
//! the oracle the fast path is differentially checked against.

use il_geometry::DomainPoint;
use il_region::{FieldId, Privilege, RegionTreeId};
use il_runtime::{Program, RegionReq};
use std::collections::HashMap;

/// One desugared point launch.
#[derive(Clone, Debug)]
pub struct OracleTask {
    /// Index of the originating operation.
    pub op: u32,
    /// Iteration-order position within the launch domain.
    pub point_idx: u32,
    /// The launch-domain point.
    pub point: DomainPoint,
    /// Modeled kernel duration in nanoseconds (for the serial-machine
    /// makespan comparison).
    pub cost_ns: u64,
}

/// The ground-truth dependence graph of a program's desugared launches.
#[derive(Clone, Debug)]
pub struct OracleGraph {
    /// All point tasks, op-major then domain iteration order — the same
    /// canonical labeling the runtime expansion uses, so graphs can be
    /// compared index-by-index.
    pub tasks: Vec<OracleTask>,
    /// Task range `[lo, hi)` of each operation.
    pub op_tasks: Vec<(u32, u32)>,
    /// Predecessors of each task (every entry is `< t`), sorted and
    /// deduplicated.
    pub deps: Vec<Vec<u32>>,
    /// Per operation: whether any two of its own point tasks interfere
    /// (the non-interference verdict of §3, decided by brute force).
    pub interfering: Vec<bool>,
}

/// The explicit field list of a requirement (empty = all fields of the
/// field space).
fn fields_of(program: &Program, req: &RegionReq) -> Vec<FieldId> {
    if req.fields.is_empty() {
        let len = program.forest.field_space(req.field_space).len();
        (0..len as u32).map(FieldId).collect()
    } else {
        req.fields.clone()
    }
}

/// Desugar `program` and compute its ground-truth dependence graph.
///
/// # Panics
/// Panics if a projection functor selects a color with no subspace
/// (invalid program — the runtime expansion rejects it the same way).
pub fn reference_expand(program: &Program) -> OracleGraph {
    let forest = &program.forest;
    let mut tasks: Vec<OracleTask> = Vec::new();
    let mut op_tasks: Vec<(u32, u32)> = Vec::with_capacity(program.ops.len());
    // Every materialized access: (tree, element, field) -> touching
    // (task, privilege) records, in task order.
    let mut incidences: HashMap<(RegionTreeId, DomainPoint, FieldId), Vec<(u32, Privilege)>> =
        HashMap::new();

    for (op_idx, op) in program.ops.iter().enumerate() {
        let launch = op.launch();
        let lo = tasks.len() as u32;
        for (point_idx, point) in launch.domain.iter().enumerate() {
            let t = tasks.len() as u32;
            for req in &launch.reqs {
                let color = program.functor(req.functor).eval(point);
                let space = forest.try_subspace(req.partition, color).unwrap_or_else(|| {
                    panic!("functor selected color {color:?} with no subspace")
                });
                for field in fields_of(program, req) {
                    for elem in forest.domain(space).iter() {
                        incidences
                            .entry((req.tree, elem, field))
                            .or_default()
                            .push((t, req.privilege));
                    }
                }
            }
            tasks.push(OracleTask {
                op: op_idx as u32,
                point_idx: point_idx as u32,
                point,
                cost_ns: launch.cost.at(point).as_ns(),
            });
        }
        op_tasks.push((lo, tasks.len() as u32));
    }

    // Pairwise conflicts per shared access: an edge from the earlier to
    // the later task whenever the privileges do not commute.
    let mut deps: Vec<Vec<u32>> = vec![Vec::new(); tasks.len()];
    for list in incidences.values() {
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let (a, pa) = list[i];
                let (b, pb) = list[j];
                if a == b || pa.parallel_with(&pb) {
                    continue;
                }
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                deps[hi as usize].push(lo);
            }
        }
    }
    for d in &mut deps {
        d.sort_unstable();
        d.dedup();
    }

    let interfering = op_tasks
        .iter()
        .map(|&(lo, hi)| {
            (lo..hi).any(|t| deps[t as usize].iter().any(|&d| d >= lo && d < hi))
        })
        .collect();

    OracleGraph { tasks, op_tasks, deps, interfering }
}

/// Transitive closure of a predecessor list as bitset rows: bit `d` of
/// row `t` is set iff `d` must run before `t`. Requires every entry of
/// `deps[t]` to be `< t` (both the runtime expansion and the oracle
/// satisfy this by construction).
///
/// Two dependence graphs over the same task labeling are *equivalent*
/// (enforce the same orderings) iff their closures are equal — direct
/// edges may legitimately differ when one side elides an edge that is
/// implied transitively (e.g. the runtime retires a reader once a
/// covering write has ordered past it).
pub fn transitive_closure(deps: &[Vec<u32>]) -> Vec<Vec<u64>> {
    let n = deps.len();
    let words = n.div_ceil(64);
    let mut rows: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
    for t in 0..n {
        let (before, rest) = rows.split_at_mut(t);
        let row = &mut rest[0];
        for &d in &deps[t] {
            let d = d as usize;
            assert!(d < t, "dependence {d} of task {t} is not earlier");
            for (acc, w) in row.iter_mut().zip(&before[d]) {
                *acc |= w;
            }
            row[d / 64] |= 1u64 << (d % 64);
        }
    }
    rows
}

/// Makespan of the graph on a serial machine model: tasks run one at a
/// time except that independent tasks overlap perfectly — i.e. the
/// longest dependence chain, weighted by per-task cost. Equal closures
/// with equal costs imply equal serial makespans; comparing the value
/// computed *independently* on each graph additionally pins the cost
/// labeling.
pub fn serial_makespan(cost_ns: &[u64], deps: &[Vec<u32>]) -> u64 {
    let mut finish = vec![0u64; cost_ns.len()];
    let mut best = 0u64;
    for t in 0..cost_ns.len() {
        let start = deps[t].iter().map(|&d| finish[d as usize]).max().unwrap_or(0);
        finish[t] = start + cost_ns[t];
        best = best.max(finish[t]);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_includes_transitive_edges() {
        // 0 <- 1 <- 2: closure of 2 must include 0.
        let deps = vec![vec![], vec![0], vec![1]];
        let c = transitive_closure(&deps);
        assert_eq!(c[2][0] & 0b111, 0b011);
        assert_eq!(c[1][0] & 0b111, 0b001);
        assert_eq!(c[0][0], 0);
    }

    #[test]
    fn closure_equates_direct_and_implied_graphs() {
        // {2<-1<-0} and {2<-{0,1}, 1<-0} have the same closure.
        let a = vec![vec![], vec![0], vec![1]];
        let b = vec![vec![], vec![0], vec![0, 1]];
        assert_eq!(transitive_closure(&a), transitive_closure(&b));
    }

    #[test]
    fn serial_makespan_is_critical_path() {
        // Chain 0->1 costs 3+4, independent task 2 costs 5.
        let deps = vec![vec![], vec![0], vec![]];
        assert_eq!(serial_makespan(&[3, 4, 5], &deps), 7);
        assert_eq!(serial_makespan(&[3, 4, 9], &deps), 9);
    }
}
