//! A bounding-volume hierarchy over subregion bounding boxes.
//!
//! "Legion uses a distributed bounding volume hierarchy to perform this
//! check in logarithmic time with respect to partition size" (§5): the
//! physical analysis must find, among all sub-collections touched so far,
//! the ones overlapping a new access. [`BvhSet`] provides that query:
//! items (bounding boxes with payloads) are inserted incrementally; a
//! static median-split BVH is rebuilt lazily when enough inserts
//! accumulate, keeping amortized insert cost O(log n) and query cost
//! O(log n + k).

use il_geometry::DomainPoint;

/// A rank-erased bounding box (inclusive), rank 1–3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BBox {
    /// Lower corner.
    pub lo: DomainPoint,
    /// Upper corner.
    pub hi: DomainPoint,
}

impl BBox {
    /// Construct from corners.
    ///
    /// # Panics
    /// Panics when ranks differ.
    pub fn new(lo: DomainPoint, hi: DomainPoint) -> Self {
        assert_eq!(lo.dim(), hi.dim(), "bbox corner ranks differ");
        BBox { lo, hi }
    }

    /// Rank of the box.
    pub fn dim(&self) -> usize {
        self.lo.dim()
    }

    /// True iff the boxes share at least one point (same-rank only;
    /// different ranks never overlap).
    pub fn overlaps(&self, other: &BBox) -> bool {
        if self.dim() != other.dim() {
            return false;
        }
        (0..self.dim()).all(|d| {
            self.lo.coord(d) <= other.hi.coord(d) && other.lo.coord(d) <= self.hi.coord(d)
        })
    }

    /// Smallest box containing both (same rank required).
    fn merge(&self, other: &BBox) -> BBox {
        debug_assert_eq!(self.dim(), other.dim());
        let d = self.dim();
        let lo: Vec<i64> = (0..d).map(|k| self.lo.coord(k).min(other.lo.coord(k))).collect();
        let hi: Vec<i64> = (0..d).map(|k| self.hi.coord(k).max(other.hi.coord(k))).collect();
        BBox::new(DomainPoint::from_slice(&lo), DomainPoint::from_slice(&hi))
    }

    /// Center coordinate along dimension `d` (doubled, to stay integral).
    fn center2(&self, d: usize) -> i64 {
        self.lo.coord(d) + self.hi.coord(d)
    }
}

enum Node {
    Leaf {
        /// Range of the level's `items` covered by this leaf.
        start: u32,
        len: u32,
        bbox: BBox,
    },
    Inner {
        left: u32,
        right: u32,
        bbox: BBox,
    },
}

/// One static sub-tree of the level structure: items of one rank in the
/// tree proper, the (rare) other ranks linear-scanned.
struct Level<T> {
    /// The level's items, reordered by the build.
    items: Vec<(BBox, T)>,
    /// Items `[0, tree_count)` are covered by `nodes`; the rest are
    /// other-rank strays scanned linearly.
    tree_count: usize,
    nodes: Vec<Node>,
    root: Option<u32>,
}

const LEAF_SIZE: usize = 8;
/// Inserts buffered before they are merged into the level structure.
const PENDING_LIMIT: usize = 64;

impl<T: Copy> Level<T> {
    fn build(items: Vec<(BBox, T)>) -> Self {
        let mut lvl = Level { items, tree_count: 0, nodes: Vec::new(), root: None };
        if lvl.items.is_empty() {
            return lvl;
        }
        // Mixed-rank content can't share one tree; keep same-rank items in
        // the tree and scan the (rare) other ranks linearly.
        let major_dim = lvl.items[0].0.dim();
        lvl.items.sort_by_key(|(b, _)| usize::from(b.dim() != major_dim));
        lvl.tree_count = lvl.items.iter().take_while(|(b, _)| b.dim() == major_dim).count();
        let root = lvl.build_range(0, lvl.tree_count);
        lvl.root = Some(root);
        lvl
    }

    fn build_range(&mut self, start: usize, len: usize) -> u32 {
        let bbox = self.items[start..start + len]
            .iter()
            .map(|(b, _)| *b)
            .reduce(|a, b| a.merge(&b))
            .expect("non-empty range");
        if len <= LEAF_SIZE {
            self.nodes.push(Node::Leaf { start: start as u32, len: len as u32, bbox });
            return (self.nodes.len() - 1) as u32;
        }
        // Split along the widest dimension at the median center.
        let dim = (0..bbox.dim())
            .max_by_key(|&d| bbox.hi.coord(d) - bbox.lo.coord(d))
            .expect("rank >= 1");
        self.items[start..start + len].sort_by_key(|(b, _)| b.center2(dim));
        let mid = len / 2;
        let left = self.build_range(start, mid);
        let right = self.build_range(start + mid, len - mid);
        let node = Node::Inner { left, right, bbox };
        self.nodes.push(node);
        (self.nodes.len() - 1) as u32
    }

    fn query(&self, query: &BBox, out: &mut Vec<T>) {
        if let Some(root) = self.root {
            self.query_node(root, query, out);
        }
        for (bbox, payload) in &self.items[self.tree_count..] {
            if bbox.overlaps(query) {
                out.push(*payload);
            }
        }
    }

    fn query_node(&self, node: u32, query: &BBox, out: &mut Vec<T>) {
        match &self.nodes[node as usize] {
            Node::Leaf { start, len, bbox } => {
                if bbox.overlaps(query) {
                    for (b, payload) in &self.items[*start as usize..(*start + *len) as usize] {
                        if b.overlaps(query) {
                            out.push(*payload);
                        }
                    }
                }
            }
            Node::Inner { left, right, bbox } => {
                if bbox.overlaps(query) {
                    self.query_node(*left, query, out);
                    self.query_node(*right, query, out);
                }
            }
        }
    }
}

/// An incrementally-filled BVH set with payloads of type `T`.
///
/// Dynamized with the Bentley–Saxe logarithmic method: static sub-trees
/// of geometrically growing sizes, merged binary-counter style as
/// inserts accumulate. A naive "rebuild the one tree every K inserts"
/// policy costs Θ(n²/K · log n) to fill incrementally — measurably
/// quadratic once an app registers 10⁵+ subregions — while the level
/// structure amortizes to O(log² n) per insert and keeps queries at
/// O(log² n + k).
pub struct BvhSet<T> {
    /// Occupied levels, in carry order (level i holds ~`PENDING_LIMIT ·
    /// 2^i` items or is empty).
    levels: Vec<Level<T>>,
    /// Items inserted since the last carry (linear-scanned by queries).
    pending: Vec<(BBox, T)>,
    len: usize,
}

impl<T: Copy> BvhSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        BvhSet { levels: Vec::new(), pending: Vec::new(), len: 0 }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an item; merges into the level structure once enough
    /// inserts accumulate.
    pub fn insert(&mut self, bbox: BBox, payload: T) {
        self.pending.push((bbox, payload));
        self.len += 1;
        if self.pending.len() >= PENDING_LIMIT {
            self.carry();
        }
    }

    /// Merge the pending buffer into the first empty level, folding in
    /// every occupied level below it (the binary-counter carry).
    fn carry(&mut self) {
        let mut items = std::mem::take(&mut self.pending);
        let mut i = 0;
        loop {
            if i == self.levels.len() {
                self.levels.push(Level::build(items));
                break;
            }
            if self.levels[i].items.is_empty() {
                self.levels[i] = Level::build(items);
                break;
            }
            let lower = std::mem::replace(&mut self.levels[i], Level::build(Vec::new()));
            items.extend(lower.items);
            i += 1;
        }
    }

    /// Collect payloads of all items whose boxes overlap `query`.
    pub fn query(&self, query: &BBox, out: &mut Vec<T>) {
        for level in &self.levels {
            level.query(query, out);
        }
        for (bbox, payload) in &self.pending {
            if bbox.overlaps(query) {
                out.push(*payload);
            }
        }
    }
}

impl<T: Copy> Default for BvhSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Boxes ≥ the number of runs force adjacent-run merging (bounds BVH
/// fan-out per sparse domain).
pub const MAX_COVERAGE_BOXES: usize = 8;

/// The BVH boxes a domain is indexed and queried under. A rect domain is
/// its own box. A sparse domain's bounding box can span nearly the whole
/// tree (a ghost set holding a far hub window *and* a local neighbor),
/// which would make everything in between a bbox candidate — so split it
/// at the [`MAX_COVERAGE_BOXES`]` - 1` widest first-coordinate gaps into
/// tight cluster boxes instead. The boxes jointly cover every point, so
/// no genuine overlap is lost; anything the big box would have hit
/// between clusters was an exact-test reject anyway.
pub fn coverage_boxes(domain: &il_geometry::Domain) -> Vec<BBox> {
    if domain.is_empty() {
        return Vec::new();
    }
    if let il_geometry::Domain::Sparse { points, .. } = domain {
        if points.len() > 1 {
            let mut pts: Vec<DomainPoint> = points.to_vec();
            pts.sort_by_key(|p| p.coord(0));
            // Split indices by gap width (descending, then position for
            // determinism), keep the widest few.
            let mut gaps: Vec<(i64, usize)> = (1..pts.len())
                .filter_map(|i| {
                    let g = pts[i].coord(0) - pts[i - 1].coord(0);
                    (g > 1).then_some((g, i))
                })
                .collect();
            gaps.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            gaps.truncate(MAX_COVERAGE_BOXES - 1);
            let mut splits: Vec<usize> = gaps.into_iter().map(|(_, i)| i).collect();
            splits.sort_unstable();
            splits.push(pts.len());
            let dim = pts[0].dim();
            let mut boxes = Vec::with_capacity(splits.len());
            let mut start = 0;
            for end in splits {
                let run = &pts[start..end];
                let lo: Vec<i64> =
                    (0..dim).map(|d| run.iter().map(|p| p.coord(d)).min().unwrap()).collect();
                let hi: Vec<i64> =
                    (0..dim).map(|d| run.iter().map(|p| p.coord(d)).max().unwrap()).collect();
                boxes.push(BBox::new(DomainPoint::from_slice(&lo), DomainPoint::from_slice(&hi)));
                start = end;
            }
            return boxes;
        }
    }
    let (lo, hi) = domain.bounds();
    vec![BBox::new(lo, hi)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb1(lo: i64, hi: i64) -> BBox {
        BBox::new(DomainPoint::new1(lo), DomainPoint::new1(hi))
    }

    #[test]
    fn insert_and_query_small() {
        let mut set = BvhSet::new();
        set.insert(bb1(0, 4), 'a');
        set.insert(bb1(5, 9), 'b');
        set.insert(bb1(3, 6), 'c');
        let mut out = Vec::new();
        set.query(&bb1(4, 4), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec!['a', 'c']);
    }

    #[test]
    fn query_after_rebuild() {
        let mut set = BvhSet::new();
        for i in 0..200i64 {
            set.insert(bb1(i * 10, i * 10 + 5), i);
        }
        assert!(set.len() == 200);
        let mut out = Vec::new();
        set.query(&bb1(42, 103), &mut out);
        out.sort_unstable();
        // Boxes [40,45], [50,55], ..., [100,105] overlap [42,103].
        assert_eq!(out, vec![4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn mixed_rank_items() {
        let mut set = BvhSet::new();
        for i in 0..100i64 {
            set.insert(bb1(i, i), i);
        }
        set.insert(
            BBox::new(DomainPoint::new2(0, 0), DomainPoint::new2(9, 9)),
            1000,
        );
        let mut out = Vec::new();
        set.query(&bb1(50, 50), &mut out);
        assert_eq!(out, vec![50]);
        out.clear();
        set.query(
            &BBox::new(DomainPoint::new2(5, 5), DomainPoint::new2(5, 5)),
            &mut out,
        );
        assert_eq!(out, vec![1000]);
    }

    #[test]
    fn empty_set() {
        let set: BvhSet<u32> = BvhSet::new();
        let mut out = Vec::new();
        set.query(&bb1(0, 10), &mut out);
        assert!(out.is_empty());
        assert!(set.is_empty());
    }

    #[test]
    fn incremental_queries_agree_with_linear_scan() {
        // Interleave inserts and queries so every Bentley–Saxe shape is
        // exercised: partially filled pending buffer, single level, and
        // multi-level states after several binary-counter carries.
        let mut set = BvhSet::new();
        let mut items: Vec<(BBox, i64)> = Vec::new();
        let mut x = 7i64;
        for i in 0..600i64 {
            // Deterministic LCG spread with varied widths.
            x = (x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)) >> 33;
            let lo = x.rem_euclid(10_000);
            let b = bb1(lo, lo + i % 17);
            set.insert(b.clone(), i);
            items.push((b, i));
            if i % 37 == 0 {
                let probe = bb1(lo - 20, lo + 20);
                let mut got = Vec::new();
                set.query(&probe, &mut got);
                got.sort_unstable();
                let mut want: Vec<i64> = items
                    .iter()
                    .filter(|(bb, _)| bb.overlaps(&probe))
                    .map(|&(_, v)| v)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "after {} inserts", i + 1);
            }
        }
        assert_eq!(set.len(), 600);
    }

    #[test]
    fn coverage_boxes_cluster_sparse_domains() {
        use il_geometry::Domain;
        // Two tight clusters far apart: one wide bbox would overlap
        // everything in between; the decomposition must split them.
        let mut pts: Vec<DomainPoint> =
            (0..6).map(|i| DomainPoint::new1(i)).collect();
        pts.extend((0..6).map(|i| DomainPoint::new1(1_000_000 + i)));
        let boxes = coverage_boxes(&Domain::sparse(pts.clone()));
        assert!(boxes.len() >= 2 && boxes.len() <= MAX_COVERAGE_BOXES);
        // Every point is covered, and no box spans the gap.
        for p in &pts {
            let probe = BBox::new(p.clone(), p.clone());
            assert!(boxes.iter().any(|b| b.overlaps(&probe)), "{p:?} uncovered");
        }
        let mid = BBox::new(DomainPoint::new1(500_000), DomainPoint::new1(500_000));
        assert!(boxes.iter().all(|b| !b.overlaps(&mid)), "a box spans the gap");
        // Deterministic: same input, same decomposition.
        assert_eq!(boxes, coverage_boxes(&Domain::sparse(pts)));
        // Empty domains decompose to nothing.
        let empty = Domain::Rect1(il_geometry::Rect::new1(5, 4));
        assert!(coverage_boxes(&empty).is_empty());
    }

    #[test]
    fn bbox_overlap_rules() {
        assert!(bb1(0, 5).overlaps(&bb1(5, 9)));
        assert!(!bb1(0, 4).overlaps(&bb1(5, 9)));
        let a = BBox::new(DomainPoint::new2(0, 0), DomainPoint::new2(3, 3));
        let b = BBox::new(DomainPoint::new2(3, 3), DomainPoint::new2(6, 6));
        let c = BBox::new(DomainPoint::new2(4, 0), DomainPoint::new2(6, 2));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&bb1(0, 3))); // rank mismatch
    }
}
