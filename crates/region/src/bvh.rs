//! A bounding-volume hierarchy over subregion bounding boxes.
//!
//! "Legion uses a distributed bounding volume hierarchy to perform this
//! check in logarithmic time with respect to partition size" (§5): the
//! physical analysis must find, among all sub-collections touched so far,
//! the ones overlapping a new access. [`BvhSet`] provides that query:
//! items (bounding boxes with payloads) are inserted incrementally; a
//! static median-split BVH is rebuilt lazily when enough inserts
//! accumulate, keeping amortized insert cost O(log n) and query cost
//! O(log n + k).

use il_geometry::DomainPoint;

/// A rank-erased bounding box (inclusive), rank 1–3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BBox {
    /// Lower corner.
    pub lo: DomainPoint,
    /// Upper corner.
    pub hi: DomainPoint,
}

impl BBox {
    /// Construct from corners.
    ///
    /// # Panics
    /// Panics when ranks differ.
    pub fn new(lo: DomainPoint, hi: DomainPoint) -> Self {
        assert_eq!(lo.dim(), hi.dim(), "bbox corner ranks differ");
        BBox { lo, hi }
    }

    /// Rank of the box.
    pub fn dim(&self) -> usize {
        self.lo.dim()
    }

    /// True iff the boxes share at least one point (same-rank only;
    /// different ranks never overlap).
    pub fn overlaps(&self, other: &BBox) -> bool {
        if self.dim() != other.dim() {
            return false;
        }
        (0..self.dim()).all(|d| {
            self.lo.coord(d) <= other.hi.coord(d) && other.lo.coord(d) <= self.hi.coord(d)
        })
    }

    /// Smallest box containing both (same rank required).
    fn merge(&self, other: &BBox) -> BBox {
        debug_assert_eq!(self.dim(), other.dim());
        let d = self.dim();
        let lo: Vec<i64> = (0..d).map(|k| self.lo.coord(k).min(other.lo.coord(k))).collect();
        let hi: Vec<i64> = (0..d).map(|k| self.hi.coord(k).max(other.hi.coord(k))).collect();
        BBox::new(DomainPoint::from_slice(&lo), DomainPoint::from_slice(&hi))
    }

    /// Center coordinate along dimension `d` (doubled, to stay integral).
    fn center2(&self, d: usize) -> i64 {
        self.lo.coord(d) + self.hi.coord(d)
    }
}

enum Node {
    Leaf {
        /// Range of `items` covered by this leaf.
        start: u32,
        len: u32,
        bbox: BBox,
    },
    Inner {
        left: u32,
        right: u32,
        bbox: BBox,
    },
}

/// An incrementally-filled BVH set with payloads of type `T`.
pub struct BvhSet<T> {
    /// All items, reordered during builds.
    items: Vec<(BBox, T)>,
    /// Items inserted since the last build (linear-scanned by queries).
    pending_from: usize,
    nodes: Vec<Node>,
    root: Option<u32>,
}

const LEAF_SIZE: usize = 8;
const PENDING_LIMIT: usize = 64;

impl<T: Copy> BvhSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        BvhSet { items: Vec::new(), pending_from: 0, nodes: Vec::new(), root: None }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Insert an item; rebuilds the tree lazily once enough inserts
    /// accumulate.
    pub fn insert(&mut self, bbox: BBox, payload: T) {
        self.items.push((bbox, payload));
        if self.items.len() - self.pending_from > PENDING_LIMIT {
            self.rebuild();
        }
    }

    /// Collect payloads of all items whose boxes overlap `query`.
    pub fn query(&self, query: &BBox, out: &mut Vec<T>) {
        if let Some(root) = self.root {
            self.query_node(root, query, out);
        }
        for (bbox, payload) in &self.items[self.pending_from..] {
            if bbox.overlaps(query) {
                out.push(*payload);
            }
        }
    }

    fn query_node(&self, node: u32, query: &BBox, out: &mut Vec<T>) {
        match &self.nodes[node as usize] {
            Node::Leaf { start, len, bbox } => {
                if bbox.overlaps(query) {
                    for (b, payload) in &self.items[*start as usize..(*start + *len) as usize] {
                        if b.overlaps(query) {
                            out.push(*payload);
                        }
                    }
                }
            }
            Node::Inner { left, right, bbox } => {
                if bbox.overlaps(query) {
                    self.query_node(*left, query, out);
                    self.query_node(*right, query, out);
                }
            }
        }
    }

    fn rebuild(&mut self) {
        self.nodes.clear();
        if self.items.is_empty() {
            self.root = None;
            self.pending_from = 0;
            return;
        }
        // Mixed-rank content can't share one tree; keep same-rank items in
        // the tree and leave the (rare) other ranks pending.
        let major_dim = self.items[0].0.dim();
        self.items.sort_by_key(|(b, _)| usize::from(b.dim() != major_dim));
        let tree_count = self.items.iter().take_while(|(b, _)| b.dim() == major_dim).count();
        let root = self.build_range(0, tree_count);
        self.root = Some(root);
        self.pending_from = tree_count;
    }

    fn build_range(&mut self, start: usize, len: usize) -> u32 {
        let bbox = self.items[start..start + len]
            .iter()
            .map(|(b, _)| *b)
            .reduce(|a, b| a.merge(&b))
            .expect("non-empty range");
        if len <= LEAF_SIZE {
            self.nodes.push(Node::Leaf { start: start as u32, len: len as u32, bbox });
            return (self.nodes.len() - 1) as u32;
        }
        // Split along the widest dimension at the median center.
        let dim = (0..bbox.dim())
            .max_by_key(|&d| bbox.hi.coord(d) - bbox.lo.coord(d))
            .expect("rank >= 1");
        self.items[start..start + len].sort_by_key(|(b, _)| b.center2(dim));
        let mid = len / 2;
        let left = self.build_range(start, mid);
        let right = self.build_range(start + mid, len - mid);
        let node = Node::Inner { left, right, bbox };
        self.nodes.push(node);
        (self.nodes.len() - 1) as u32
    }
}

impl<T: Copy> Default for BvhSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb1(lo: i64, hi: i64) -> BBox {
        BBox::new(DomainPoint::new1(lo), DomainPoint::new1(hi))
    }

    #[test]
    fn insert_and_query_small() {
        let mut set = BvhSet::new();
        set.insert(bb1(0, 4), 'a');
        set.insert(bb1(5, 9), 'b');
        set.insert(bb1(3, 6), 'c');
        let mut out = Vec::new();
        set.query(&bb1(4, 4), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec!['a', 'c']);
    }

    #[test]
    fn query_after_rebuild() {
        let mut set = BvhSet::new();
        for i in 0..200i64 {
            set.insert(bb1(i * 10, i * 10 + 5), i);
        }
        assert!(set.len() == 200);
        let mut out = Vec::new();
        set.query(&bb1(42, 103), &mut out);
        out.sort_unstable();
        // Boxes [40,45], [50,55], ..., [100,105] overlap [42,103].
        assert_eq!(out, vec![4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn mixed_rank_items() {
        let mut set = BvhSet::new();
        for i in 0..100i64 {
            set.insert(bb1(i, i), i);
        }
        set.insert(
            BBox::new(DomainPoint::new2(0, 0), DomainPoint::new2(9, 9)),
            1000,
        );
        let mut out = Vec::new();
        set.query(&bb1(50, 50), &mut out);
        assert_eq!(out, vec![50]);
        out.clear();
        set.query(
            &BBox::new(DomainPoint::new2(5, 5), DomainPoint::new2(5, 5)),
            &mut out,
        );
        assert_eq!(out, vec![1000]);
    }

    #[test]
    fn empty_set() {
        let set: BvhSet<u32> = BvhSet::new();
        let mut out = Vec::new();
        set.query(&bb1(0, 10), &mut out);
        assert!(out.is_empty());
        assert!(set.is_empty());
    }

    #[test]
    fn bbox_overlap_rules() {
        assert!(bb1(0, 5).overlaps(&bb1(5, 9)));
        assert!(!bb1(0, 4).overlaps(&bb1(5, 9)));
        let a = BBox::new(DomainPoint::new2(0, 0), DomainPoint::new2(3, 3));
        let b = BBox::new(DomainPoint::new2(3, 3), DomainPoint::new2(6, 6));
        let c = BBox::new(DomainPoint::new2(4, 0), DomainPoint::new2(6, 2));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&bb1(0, 3))); // rank mismatch
    }
}
