//! Field spaces and typed field values.

use crate::ids::FieldId;
use crate::instance::FieldStore;
use std::fmt;

/// The element type of a field.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FieldKind {
    /// 64-bit float.
    F64,
    /// 32-bit float.
    F32,
    /// 64-bit signed integer (also used for pointer fields — indices into
    /// another region, as the circuit app's wire endpoints).
    I64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit unsigned integer.
    U64,
    /// 32-bit unsigned integer.
    U32,
}

impl FieldKind {
    /// Size of one element in bytes (drives data-movement costs).
    pub fn size(self) -> u64 {
        match self {
            FieldKind::F64 | FieldKind::I64 | FieldKind::U64 => 8,
            FieldKind::F32 | FieldKind::I32 | FieldKind::U32 => 4,
        }
    }
}

/// Description of a field space: an ordered set of named, typed fields.
#[derive(Clone, Debug, Default)]
pub struct FieldSpaceDesc {
    fields: Vec<(FieldId, FieldKind, String)>,
}

impl FieldSpaceDesc {
    /// An empty field space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a field, returning its id (ids are dense from 0).
    pub fn add(&mut self, name: &str, kind: FieldKind) -> FieldId {
        assert!(
            !self.fields.iter().any(|(_, _, n)| n == name),
            "duplicate field name {name:?}"
        );
        let id = FieldId(self.fields.len() as u32);
        self.fields.push((id, kind, name.to_string()));
        id
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True iff there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The kind of a field.
    pub fn kind(&self, field: FieldId) -> FieldKind {
        self.fields[field.0 as usize].1
    }

    /// The name of a field.
    pub fn name(&self, field: FieldId) -> &str {
        &self.fields[field.0 as usize].2
    }

    /// Look a field up by name.
    pub fn by_name(&self, name: &str) -> Option<FieldId> {
        self.fields.iter().find(|(_, _, n)| n == name).map(|(id, _, _)| *id)
    }

    /// Iterate `(id, kind)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, FieldKind)> + '_ {
        self.fields.iter().map(|(id, kind, _)| (*id, *kind))
    }

    /// Total bytes per point across the given fields (all fields when
    /// `fields` is empty).
    pub fn bytes_per_point(&self, fields: &[FieldId]) -> u64 {
        if fields.is_empty() {
            self.fields.iter().map(|(_, k, _)| k.size()).sum()
        } else {
            fields.iter().map(|f| self.kind(*f).size()).sum()
        }
    }
}

impl fmt::Display for FieldSpaceDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (id, kind, name)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}:{kind:?}({id})")?;
        }
        write!(f, "}}")
    }
}

/// A scalar type storable in a field.
///
/// Implemented for the primitive types matching [`FieldKind`]; provides the
/// typed view into a [`FieldStore`].
pub trait FieldValue: Copy + Default + PartialEq + Send + Sync + 'static {
    /// The matching field kind.
    const KIND: FieldKind;

    /// Allocate a store of `len` default values.
    fn new_store(len: usize) -> FieldStore;
    /// Typed view of a store.
    ///
    /// # Panics
    /// Panics on kind mismatch.
    fn slice(store: &FieldStore) -> &[Self];
    /// Typed mutable view of a store.
    ///
    /// # Panics
    /// Panics on kind mismatch.
    fn slice_mut(store: &mut FieldStore) -> &mut [Self];
}

macro_rules! field_value {
    ($ty:ty, $kind:ident, $variant:ident) => {
        impl FieldValue for $ty {
            const KIND: FieldKind = FieldKind::$kind;

            fn new_store(len: usize) -> FieldStore {
                FieldStore::$variant(vec![<$ty>::default(); len])
            }

            fn slice(store: &FieldStore) -> &[Self] {
                match store {
                    FieldStore::$variant(v) => v,
                    other => panic!(
                        concat!("field kind mismatch: wanted ", stringify!($kind), ", store is {:?}"),
                        other.kind()
                    ),
                }
            }

            fn slice_mut(store: &mut FieldStore) -> &mut [Self] {
                match store {
                    FieldStore::$variant(v) => v,
                    other => panic!(
                        concat!("field kind mismatch: wanted ", stringify!($kind), ", store is {:?}"),
                        other.kind()
                    ),
                }
            }
        }
    };
}

field_value!(f64, F64, F64);
field_value!(f32, F32, F32);
field_value!(i64, I64, I64);
field_value!(i32, I32, I32);
field_value!(u64, U64, U64);
field_value!(u32, U32, U32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_space_basics() {
        let mut fs = FieldSpaceDesc::new();
        let a = fs.add("voltage", FieldKind::F64);
        let b = fs.add("charge", FieldKind::F32);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.kind(a), FieldKind::F64);
        assert_eq!(fs.name(b), "charge");
        assert_eq!(fs.by_name("voltage"), Some(a));
        assert_eq!(fs.by_name("nope"), None);
        assert_eq!(fs.bytes_per_point(&[]), 12);
        assert_eq!(fs.bytes_per_point(&[b]), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_names_rejected() {
        let mut fs = FieldSpaceDesc::new();
        fs.add("x", FieldKind::F64);
        fs.add("x", FieldKind::F32);
    }

    #[test]
    fn typed_store_roundtrip() {
        let mut store = f64::new_store(4);
        f64::slice_mut(&mut store)[2] = 7.5;
        assert_eq!(f64::slice(&store), &[0.0, 0.0, 7.5, 0.0]);
        assert_eq!(store.kind(), FieldKind::F64);
        assert_eq!(store.len(), 4);
    }

    #[test]
    #[should_panic(expected = "field kind mismatch")]
    fn kind_mismatch_panics() {
        let store = f64::new_store(1);
        let _ = i64::slice(&store);
    }

    #[test]
    fn kind_sizes() {
        assert_eq!(FieldKind::F64.size(), 8);
        assert_eq!(FieldKind::U32.size(), 4);
    }
}
