//! The region forest: index spaces, partitions, and disjointness queries.

use crate::field::FieldSpaceDesc;
use crate::ids::{FieldSpaceId, IndexPartitionId, IndexSpaceId, LogicalRegion, RegionTreeId};
use il_geometry::{Domain, DomainPoint, Rect};
use std::collections::BTreeMap;
use std::fmt;

/// Why a partition create/replace request was rejected.
///
/// Partition operators historically panicked on ill-formed requests; the
/// adaptive (AMR-style) workloads replace partitions while a forest is
/// live, so every rejection is now a recoverable value first and a panic
/// only at the legacy `create_partition` entry point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// The operator requires a dense rectangular space of a specific rank.
    WrongShape {
        /// What the operator needed (e.g. "dense 1-D").
        expected: &'static str,
        /// What the space actually was.
        found: String,
    },
    /// A color lies outside the declared color space.
    ColorOutsideSpace {
        /// The offending color.
        color: DomainPoint,
    },
    /// A subspace escapes the parent's domain.
    EscapesParent {
        /// The color whose subspace escapes.
        color: DomainPoint,
    },
    /// The same color appears twice in the coloring.
    DuplicateColor {
        /// The repeated color.
        color: DomainPoint,
    },
    /// A coloring declared `Disjointness::Disjoint` overlaps.
    NotDisjoint,
    /// Replacing the partition would orphan a nested partition hanging off
    /// a dropped subspace (a stale slice tree).
    WouldOrphanSubtree {
        /// The dropped color that still has nested partitions.
        color: DomainPoint,
    },
    /// The id passed to `replace_partition` names no partition.
    NoSuchPartition,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::WrongShape { expected, found } => {
                write!(f, "requires a {expected} space, found {found}")
            }
            PartitionError::ColorOutsideSpace { color } => {
                write!(f, "color {color:?} outside color space")
            }
            PartitionError::EscapesParent { color } => {
                write!(f, "subspace for color {color:?} escapes parent domain")
            }
            PartitionError::DuplicateColor { color } => {
                write!(f, "duplicate color {color:?}")
            }
            PartitionError::NotDisjoint => {
                write!(f, "partition declared disjoint but subspaces overlap")
            }
            PartitionError::WouldOrphanSubtree { color } => {
                write!(
                    f,
                    "replacement drops color {color:?} whose subspace still has nested partitions"
                )
            }
            PartitionError::NoSuchPartition => write!(f, "no such partition"),
        }
    }
}

/// An empty domain of the same rank as `d` (tombstone for dropped
/// subspaces: empty domains are disjoint from everything).
fn empty_domain_like(d: &Domain) -> Domain {
    match d.dim() {
        2 => Domain::Rect2(Rect::empty()),
        3 => Domain::Rect3(Rect::empty()),
        _ => Domain::Rect1(Rect::empty()),
    }
}

/// How a partition's disjointness is established at creation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Disjointness {
    /// The creating operator guarantees disjointness (e.g. equal block
    /// partitions); trusted without verification.
    Disjoint,
    /// The partition is (or may be) aliased.
    Aliased,
    /// Verify disjointness now by pairwise subspace intersection. The paper
    /// assumes "the compiler and runtime have a procedure for determining
    /// the disjointness of partitions" (§2); this is that procedure.
    Compute,
}

/// A node of the index-space tree: a set of points, possibly a subspace of
/// a parent partition.
#[derive(Clone, Debug)]
pub struct IndexSpaceNode {
    /// This space's id.
    pub id: IndexSpaceId,
    /// The points of the space.
    pub domain: Domain,
    /// The partition and color this space was created under (None for
    /// roots).
    pub parent: Option<(IndexPartitionId, DomainPoint)>,
    /// Partitions of this space.
    pub partitions: Vec<IndexPartitionId>,
    /// Depth in the tree (roots are 0; a subspace is parent depth + 1).
    pub depth: u32,
}

/// A partition node: a coloring of a parent space into subspaces.
#[derive(Clone, Debug)]
pub struct IndexPartitionNode {
    /// This partition's id.
    pub id: IndexPartitionId,
    /// The space being partitioned.
    pub parent: IndexSpaceId,
    /// The color space naming the subsets.
    pub color_space: Domain,
    /// Color → subspace.
    pub children: BTreeMap<DomainPoint, IndexSpaceId>,
    /// True iff subspaces are pairwise disjoint.
    pub disjoint: bool,
}

/// The region forest: owner of all shape metadata.
///
/// Under dynamic control replication every node of the machine replays the
/// same program and therefore constructs identical metadata; the simulation
/// shares a single forest among the simulated runtime instances, which is
/// behaviorally equivalent and keeps memory bounded.
#[derive(Clone, Debug, Default)]
pub struct RegionForest {
    spaces: Vec<IndexSpaceNode>,
    partitions: Vec<IndexPartitionNode>,
    field_spaces: Vec<FieldSpaceDesc>,
    tree_roots: Vec<IndexSpaceId>,
    /// Bumped whenever existing shape metadata is *mutated in place*
    /// (partition replacement). Appending new spaces/partitions does not
    /// bump it: fresh ids cannot collide with anything previously cached.
    /// Launch signatures mix this in, so analysis caches and captured
    /// traces keyed on a replaced partition id are invalidated rather than
    /// silently reused against the new coloring.
    generation: u64,
}

impl RegionForest {
    /// An empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a field space.
    pub fn create_field_space(&mut self, desc: FieldSpaceDesc) -> FieldSpaceId {
        let id = FieldSpaceId(self.field_spaces.len() as u32);
        self.field_spaces.push(desc);
        id
    }

    /// The description of a field space.
    pub fn field_space(&self, id: FieldSpaceId) -> &FieldSpaceDesc {
        &self.field_spaces[id.0 as usize]
    }

    /// Create a root index space over `domain`.
    pub fn create_index_space(&mut self, domain: Domain) -> IndexSpaceId {
        let id = IndexSpaceId(self.spaces.len() as u32);
        self.spaces.push(IndexSpaceNode {
            id,
            domain,
            parent: None,
            partitions: Vec::new(),
            depth: 0,
        });
        id
    }

    /// Create a top-level logical region (a new region tree) over `domain`
    /// with fields `fields`.
    pub fn create_region(&mut self, domain: Domain, fields: FieldSpaceId) -> LogicalRegion {
        let space = self.create_index_space(domain);
        let tree = RegionTreeId(self.tree_roots.len() as u32);
        self.tree_roots.push(space);
        LogicalRegion { tree, space, fields }
    }

    /// The root index space of a region tree.
    pub fn tree_root(&self, tree: RegionTreeId) -> IndexSpaceId {
        self.tree_roots[tree.0 as usize]
    }

    /// Partition `parent` by an explicit coloring. Subspace domains need
    /// not cover the parent and (for aliased partitions) may overlap, but
    /// must be contained in the parent's domain.
    ///
    /// # Panics
    /// Panics if a subspace escapes the parent domain, if a color is
    /// repeated or outside `color_space`, or if `Disjointness::Disjoint`
    /// is declared for an overlapping coloring in debug builds.
    pub fn create_partition(
        &mut self,
        parent: IndexSpaceId,
        color_space: Domain,
        coloring: Vec<(DomainPoint, Domain)>,
        disjointness: Disjointness,
    ) -> IndexPartitionId {
        if let Err(e) = self.validate_coloring(parent, &color_space, &coloring) {
            let parent_domain = &self.spaces[parent.0 as usize].domain;
            panic!("{e} (parent domain {parent_domain:?}, color space {color_space:?})");
        }
        let disjoint = match disjointness {
            Disjointness::Disjoint => {
                debug_assert!(
                    coloring_is_disjoint(&coloring),
                    "partition declared disjoint but subspaces overlap"
                );
                true
            }
            Disjointness::Aliased => false,
            Disjointness::Compute => coloring_is_disjoint(&coloring),
        };
        self.insert_partition(parent, color_space, coloring, disjoint)
    }

    /// Non-panicking [`Self::create_partition`]: every ill-formed request
    /// is a [`PartitionError`]. Unlike the legacy entry point, a coloring
    /// declared `Disjointness::Disjoint` is *always* verified (not only in
    /// debug builds) — a caller reaching for the fallible API wants the
    /// forest to defend itself.
    pub fn try_create_partition(
        &mut self,
        parent: IndexSpaceId,
        color_space: Domain,
        coloring: Vec<(DomainPoint, Domain)>,
        disjointness: Disjointness,
    ) -> Result<IndexPartitionId, PartitionError> {
        self.validate_coloring(parent, &color_space, &coloring)?;
        let disjoint = match disjointness {
            Disjointness::Disjoint => {
                if !coloring_is_disjoint(&coloring) {
                    return Err(PartitionError::NotDisjoint);
                }
                true
            }
            Disjointness::Aliased => false,
            Disjointness::Compute => coloring_is_disjoint(&coloring),
        };
        Ok(self.insert_partition(parent, color_space, coloring, disjoint))
    }

    /// Replace the coloring of an existing partition **in place**, keeping
    /// its id and its parent space.
    ///
    /// This is the forest half of adaptive mesh refinement: a program (or
    /// a long-lived service tenant) refines or coarsens a partition and
    /// every later launch that names the same [`IndexPartitionId`] sees
    /// the new subspaces. The replacement is staleness-free by
    /// construction:
    ///
    /// * colors present in both colorings keep their [`IndexSpaceId`] and
    ///   only their domain changes — references held by earlier program
    ///   structures stay valid;
    /// * colors only in the new coloring get fresh subspaces;
    /// * dropped colors are detached from the partition and their domains
    ///   are emptied (an empty domain is disjoint from everything, so any
    ///   stale reference reads as "no data" instead of stale bounds);
    /// * dropping a color whose subspace still has nested partitions is
    ///   refused ([`PartitionError::WouldOrphanSubtree`]) — that subtree
    ///   would otherwise silently keep slicing the old bounds;
    /// * the forest [`Self::generation`] is bumped so launch signatures
    ///   (and with them the analysis cache and captured traces) can never
    ///   conflate the old and new shape of the same partition id.
    pub fn replace_partition(
        &mut self,
        partition: IndexPartitionId,
        color_space: Domain,
        coloring: Vec<(DomainPoint, Domain)>,
        disjointness: Disjointness,
    ) -> Result<(), PartitionError> {
        if partition.0 as usize >= self.partitions.len() {
            return Err(PartitionError::NoSuchPartition);
        }
        let parent = self.partitions[partition.0 as usize].parent;
        self.validate_coloring(parent, &color_space, &coloring)?;
        let disjoint = match disjointness {
            Disjointness::Disjoint => {
                if !coloring_is_disjoint(&coloring) {
                    return Err(PartitionError::NotDisjoint);
                }
                true
            }
            Disjointness::Aliased => false,
            Disjointness::Compute => coloring_is_disjoint(&coloring),
        };
        // Refuse to drop a color whose subspace roots a nested subtree.
        let old_children = self.partitions[partition.0 as usize].children.clone();
        let new_colors: std::collections::BTreeSet<DomainPoint> =
            coloring.iter().map(|(c, _)| *c).collect();
        for (color, &sid) in &old_children {
            if !new_colors.contains(color) && !self.spaces[sid.0 as usize].partitions.is_empty() {
                return Err(PartitionError::WouldOrphanSubtree { color: *color });
            }
        }

        let parent_depth = self.spaces[parent.0 as usize].depth;
        let mut children = BTreeMap::new();
        for (color, sub) in coloring {
            if let Some(&sid) = old_children.get(&color) {
                // Retained color: update the domain in place, id stable.
                self.spaces[sid.0 as usize].domain = sub;
                children.insert(color, sid);
            } else {
                let sid = IndexSpaceId(self.spaces.len() as u32);
                self.spaces.push(IndexSpaceNode {
                    id: sid,
                    domain: sub,
                    parent: Some((partition, color)),
                    partitions: Vec::new(),
                    depth: parent_depth + 1,
                });
                children.insert(color, sid);
            }
        }
        for (color, &sid) in &old_children {
            if !new_colors.contains(color) {
                let empty = empty_domain_like(&self.spaces[sid.0 as usize].domain);
                self.spaces[sid.0 as usize].domain = empty;
            }
        }
        let node = &mut self.partitions[partition.0 as usize];
        node.color_space = color_space;
        node.children = children;
        node.disjoint = disjoint;
        self.generation += 1;
        Ok(())
    }

    /// Mutation generation of the forest: bumped by every in-place
    /// metadata replacement (see [`Self::replace_partition`]). Mixed into
    /// launch signatures so nothing keyed on shape survives a replacement.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn validate_coloring(
        &self,
        parent: IndexSpaceId,
        color_space: &Domain,
        coloring: &[(DomainPoint, Domain)],
    ) -> Result<(), PartitionError> {
        let parent_domain = &self.spaces[parent.0 as usize].domain;
        let mut seen = std::collections::BTreeSet::new();
        for (color, sub) in coloring {
            if !color_space.contains(*color) {
                return Err(PartitionError::ColorOutsideSpace { color: *color });
            }
            if !domain_contains(parent_domain, sub) {
                return Err(PartitionError::EscapesParent { color: *color });
            }
            if !seen.insert(*color) {
                return Err(PartitionError::DuplicateColor { color: *color });
            }
        }
        Ok(())
    }

    fn insert_partition(
        &mut self,
        parent: IndexSpaceId,
        color_space: Domain,
        coloring: Vec<(DomainPoint, Domain)>,
        disjoint: bool,
    ) -> IndexPartitionId {
        let parent_depth = self.spaces[parent.0 as usize].depth;
        let pid = IndexPartitionId(self.partitions.len() as u32);
        let mut children = BTreeMap::new();
        for (color, sub) in coloring {
            let sid = IndexSpaceId(self.spaces.len() as u32);
            self.spaces.push(IndexSpaceNode {
                id: sid,
                domain: sub,
                parent: Some((pid, color)),
                partitions: Vec::new(),
                depth: parent_depth + 1,
            });
            children.insert(color, sid);
        }
        self.partitions.push(IndexPartitionNode {
            id: pid,
            parent,
            color_space,
            children,
            disjoint,
        });
        self.spaces[parent.0 as usize].partitions.push(pid);
        pid
    }

    /// The node for an index space.
    pub fn space(&self, id: IndexSpaceId) -> &IndexSpaceNode {
        &self.spaces[id.0 as usize]
    }

    /// The node for a partition.
    pub fn partition(&self, id: IndexPartitionId) -> &IndexPartitionNode {
        &self.partitions[id.0 as usize]
    }

    /// The domain of an index space.
    pub fn domain(&self, id: IndexSpaceId) -> &Domain {
        &self.spaces[id.0 as usize].domain
    }

    /// The subspace of `partition` named by `color`.
    ///
    /// # Panics
    /// Panics when `color` has no subspace (the dynamic bounds check of the
    /// projection-functor analysis exists precisely to rule this out before
    /// execution).
    pub fn subspace(&self, partition: IndexPartitionId, color: DomainPoint) -> IndexSpaceId {
        *self.partitions[partition.0 as usize]
            .children
            .get(&color)
            .unwrap_or_else(|| panic!("color {color:?} not in partition {partition:?}"))
    }

    /// The subspace for `color`, or `None` if absent (used by the dynamic
    /// bounds check).
    pub fn try_subspace(&self, partition: IndexPartitionId, color: DomainPoint) -> Option<IndexSpaceId> {
        self.partitions[partition.0 as usize].children.get(&color).copied()
    }

    /// True iff the partition's subspaces are pairwise disjoint.
    pub fn is_disjoint(&self, partition: IndexPartitionId) -> bool {
        self.partitions[partition.0 as usize].disjoint
    }

    /// The region tree a space belongs to (by walking to its root).
    pub fn tree_of_space(&self, mut space: IndexSpaceId) -> IndexSpaceId {
        while let Some((pid, _)) = self.spaces[space.0 as usize].parent {
            space = self.partitions[pid.0 as usize].parent;
        }
        space
    }

    /// Path of `(partition, color)` edges from `space` up to its root
    /// (nearest first).
    fn ancestry(&self, space: IndexSpaceId) -> Vec<(IndexPartitionId, DomainPoint, IndexSpaceId)> {
        let mut out = Vec::new();
        let mut cur = space;
        while let Some((pid, color)) = self.spaces[cur.0 as usize].parent {
            let parent = self.partitions[pid.0 as usize].parent;
            out.push((pid, color, parent));
            cur = parent;
        }
        out
    }

    /// Whether two index spaces are **provably disjoint**.
    ///
    /// This first attempts the structural proof Legion's logical analysis
    /// uses — the spaces diverge at a *disjoint* partition with different
    /// colors — and otherwise falls back to an exact domain-intersection
    /// test. The structural path is what gives index launches their
    /// whole-partition O(1) reasoning; the fallback keeps the answer exact
    /// for aliased partitions and cross-partition views.
    pub fn spaces_disjoint(&self, a: IndexSpaceId, b: IndexSpaceId) -> bool {
        if a == b {
            return self.spaces[a.0 as usize].domain.is_empty();
        }
        if self.tree_of_space(a) != self.tree_of_space(b) {
            return true; // distinct collections share no data
        }
        // Structural proof: find the first common ancestor edge pair.
        let pa = self.ancestry(a);
        let pb = self.ancestry(b);
        // Map ancestor space -> (partition, color) taken from `a`'s side,
        // keyed by the partition edge *below* that ancestor.
        for (pid_a, color_a, anc_a) in &pa {
            for (pid_b, color_b, anc_b) in &pb {
                if anc_a == anc_b && pid_a == pid_b
                    && color_a != color_b && self.partitions[pid_a.0 as usize].disjoint {
                        return true;
                    }
                    // Same color or aliased: inconclusive structurally.
            }
        }
        // One may be an ancestor of the other, or they diverge through
        // aliased/different partitions: exact domain test.
        !domains_overlap(
            &self.spaces[a.0 as usize].domain,
            &self.spaces[b.0 as usize].domain,
        )
    }

    /// Whether two logical regions are provably disjoint (different trees,
    /// or disjoint index spaces).
    pub fn regions_disjoint(&self, a: &LogicalRegion, b: &LogicalRegion) -> bool {
        if a.tree != b.tree {
            return true;
        }
        self.spaces_disjoint(a.space, b.space)
    }

    /// Number of index spaces (diagnostics).
    pub fn num_spaces(&self) -> usize {
        self.spaces.len()
    }

    /// Number of partitions (diagnostics).
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }
}

/// True iff every point of `sub` lies in `sup`.
fn domain_contains(sup: &Domain, sub: &Domain) -> bool {
    if sub.is_empty() {
        return true;
    }
    match (sup, sub) {
        (Domain::Rect1(a), Domain::Rect1(b)) => a.contains_rect(b),
        (Domain::Rect2(a), Domain::Rect2(b)) => a.contains_rect(b),
        (Domain::Rect3(a), Domain::Rect3(b)) => a.contains_rect(b),
        _ => sub.iter().all(|p| sup.contains(p)),
    }
}

/// Exact overlap test between two domains.
pub fn domains_overlap(a: &Domain, b: &Domain) -> bool {
    if a.is_empty() || b.is_empty() || a.dim() != b.dim() {
        return false;
    }
    match (a, b) {
        (Domain::Rect1(x), Domain::Rect1(y)) => x.overlaps(y),
        (Domain::Rect2(x), Domain::Rect2(y)) => x.overlaps(y),
        (Domain::Rect3(x), Domain::Rect3(y)) => x.overlaps(y),
        (Domain::Sparse { .. }, _) => a.iter().any(|p| b.contains(p)),
        (_, Domain::Sparse { .. }) => b.iter().any(|p| a.contains(p)),
        // Mixed dense ranks: unreachable (ranks already checked equal).
        _ => false,
    }
}

/// Exact intersection of two domains as a domain, or `None` when empty.
/// Dense intersections stay dense; intersections involving a sparse
/// domain enumerate points.
pub fn domain_intersection(a: &Domain, b: &Domain) -> Option<Domain> {
    if a.is_empty() || b.is_empty() || a.dim() != b.dim() {
        return None;
    }
    match (a, b) {
        (Domain::Rect1(x), Domain::Rect1(y)) => {
            let i = x.intersection(y);
            (!i.is_empty()).then_some(Domain::Rect1(i))
        }
        (Domain::Rect2(x), Domain::Rect2(y)) => {
            let i = x.intersection(y);
            (!i.is_empty()).then_some(Domain::Rect2(i))
        }
        (Domain::Rect3(x), Domain::Rect3(y)) => {
            let i = x.intersection(y);
            (!i.is_empty()).then_some(Domain::Rect3(i))
        }
        (Domain::Sparse { .. }, _) => {
            let pts: Vec<DomainPoint> = a.iter().filter(|p| b.contains(*p)).collect();
            (!pts.is_empty()).then(|| Domain::sparse(pts))
        }
        (_, Domain::Sparse { .. }) => {
            let pts: Vec<DomainPoint> = b.iter().filter(|p| a.contains(*p)).collect();
            (!pts.is_empty()).then(|| Domain::sparse(pts))
        }
        _ => None,
    }
}

/// Exact number of points shared by two domains (drives copy sizes in
/// the runtime's data-movement model).
pub fn overlap_volume(a: &Domain, b: &Domain) -> u64 {
    if a.is_empty() || b.is_empty() || a.dim() != b.dim() {
        return 0;
    }
    match (a, b) {
        (Domain::Rect1(x), Domain::Rect1(y)) => x.intersection(y).volume(),
        (Domain::Rect2(x), Domain::Rect2(y)) => x.intersection(y).volume(),
        (Domain::Rect3(x), Domain::Rect3(y)) => x.intersection(y).volume(),
        (Domain::Sparse { .. }, _) => a.iter().filter(|p| b.contains(*p)).count() as u64,
        (_, Domain::Sparse { .. }) => b.iter().filter(|p| a.contains(*p)).count() as u64,
        _ => 0,
    }
}

fn coloring_is_disjoint(coloring: &[(DomainPoint, Domain)]) -> bool {
    // BVH-pruned pairwise test: bounding-box candidates first, the exact
    // domain-overlap test only on those. The naive all-pairs loop is
    // Θ(n²) even when every sub-collection is disjoint — at 10⁵+ colors
    // (graph-scale partitions) that is minutes of host time for a check
    // whose answer is almost always "yes, disjoint".
    let mut bvh: crate::BvhSet<usize> = crate::BvhSet::new();
    let mut candidates = Vec::new();
    for (i, (_, a)) in coloring.iter().enumerate() {
        let boxes = crate::coverage_boxes(a);
        candidates.clear();
        for b in &boxes {
            bvh.query(b, &mut candidates);
        }
        candidates.sort_unstable();
        candidates.dedup();
        for &j in &candidates {
            if domains_overlap(a, &coloring[j].1) {
                return false;
            }
        }
        for b in boxes {
            bvh.insert(b, i);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_geometry::Rect;

    fn forest_with_region(n: i64) -> (RegionForest, LogicalRegion) {
        let mut f = RegionForest::new();
        let fs = f.create_field_space(FieldSpaceDesc::new());
        let r = f.create_region(Domain::range(n), fs);
        (f, r)
    }

    fn block_coloring(n: i64, parts: i64) -> Vec<(DomainPoint, Domain)> {
        let size = n / parts;
        (0..parts)
            .map(|c| {
                (
                    DomainPoint::new1(c),
                    Domain::Rect1(Rect::new1(c * size, (c + 1) * size - 1)),
                )
            })
            .collect()
    }

    #[test]
    fn build_disjoint_partition() {
        let (mut f, r) = forest_with_region(100);
        let p = f.create_partition(
            r.space,
            Domain::range(4),
            block_coloring(100, 4),
            Disjointness::Compute,
        );
        assert!(f.is_disjoint(p));
        let s0 = f.subspace(p, DomainPoint::new1(0));
        let s1 = f.subspace(p, DomainPoint::new1(1));
        assert_eq!(f.domain(s0), &Domain::Rect1(Rect::new1(0, 24)));
        assert!(f.spaces_disjoint(s0, s1));
        assert!(!f.spaces_disjoint(s0, r.space)); // child overlaps parent
        assert_eq!(f.try_subspace(p, DomainPoint::new1(9)), None);
    }

    #[test]
    fn aliased_partition_overlap_detected() {
        let (mut f, r) = forest_with_region(100);
        // Halo-style: blocks of 25 extended by 5 on each side.
        let coloring: Vec<_> = (0..4i64)
            .map(|c| {
                let lo = (c * 25 - 5).max(0);
                let hi = ((c + 1) * 25 + 4).min(99);
                (DomainPoint::new1(c), Domain::Rect1(Rect::new1(lo, hi)))
            })
            .collect();
        let p = f.create_partition(r.space, Domain::range(4), coloring, Disjointness::Compute);
        assert!(!f.is_disjoint(p));
        let s0 = f.subspace(p, DomainPoint::new1(0));
        let s1 = f.subspace(p, DomainPoint::new1(1));
        let s2 = f.subspace(p, DomainPoint::new1(2));
        assert!(!f.spaces_disjoint(s0, s1)); // halos overlap
        assert!(f.spaces_disjoint(s0, s2)); // far apart: exact test succeeds
    }

    #[test]
    fn cross_partition_views() {
        let (mut f, r) = forest_with_region(100);
        let blocks = f.create_partition(
            r.space,
            Domain::range(4),
            block_coloring(100, 4),
            Disjointness::Disjoint,
        );
        // A second, shifted view of the same data.
        let shifted: Vec<_> = (0..4i64)
            .map(|c| {
                let lo = (c * 25 + 10).min(99);
                let hi = ((c + 1) * 25 + 9).min(99);
                (DomainPoint::new1(c), Domain::Rect1(Rect::new1(lo, hi)))
            })
            .collect();
        let shift = f.create_partition(r.space, Domain::range(4), shifted, Disjointness::Compute);
        let b0 = f.subspace(blocks, DomainPoint::new1(0)); // [0,24]
        let sh0 = f.subspace(shift, DomainPoint::new1(0)); // [10,34]
        let sh3 = f.subspace(shift, DomainPoint::new1(3)); // [85,99]
        assert!(!f.spaces_disjoint(b0, sh0));
        assert!(f.spaces_disjoint(b0, sh3));
    }

    #[test]
    fn different_trees_always_disjoint() {
        let mut f = RegionForest::new();
        let fs = f.create_field_space(FieldSpaceDesc::new());
        let r1 = f.create_region(Domain::range(10), fs);
        let r2 = f.create_region(Domain::range(10), fs);
        assert!(f.regions_disjoint(&r1, &r2));
        assert!(f.spaces_disjoint(r1.space, r2.space));
        assert!(!f.regions_disjoint(&r1, &r1));
    }

    #[test]
    fn nested_partitions() {
        let (mut f, r) = forest_with_region(100);
        let outer = f.create_partition(
            r.space,
            Domain::range(2),
            block_coloring(100, 2),
            Disjointness::Disjoint,
        );
        let left = f.subspace(outer, DomainPoint::new1(0)); // [0,49]
        let inner = f.create_partition(
            left,
            Domain::range(2),
            vec![
                (DomainPoint::new1(0), Domain::Rect1(Rect::new1(0, 24))),
                (DomainPoint::new1(1), Domain::Rect1(Rect::new1(25, 49))),
            ],
            Disjointness::Disjoint,
        );
        let ll = f.subspace(inner, DomainPoint::new1(0));
        let right = f.subspace(outer, DomainPoint::new1(1)); // [50,99]
        // Structural proof through the disjoint outer partition.
        assert!(f.spaces_disjoint(ll, right));
        assert_eq!(f.space(ll).depth, 2);
        assert_eq!(f.tree_of_space(ll), r.space);
    }

    #[test]
    #[should_panic(expected = "escapes parent domain")]
    fn escaping_subspace_rejected() {
        let (mut f, r) = forest_with_region(10);
        f.create_partition(
            r.space,
            Domain::range(1),
            vec![(DomainPoint::new1(0), Domain::Rect1(Rect::new1(5, 15)))],
            Disjointness::Aliased,
        );
    }

    #[test]
    #[should_panic(expected = "duplicate color")]
    fn duplicate_color_rejected() {
        let (mut f, r) = forest_with_region(10);
        f.create_partition(
            r.space,
            Domain::range(2),
            vec![
                (DomainPoint::new1(0), Domain::Rect1(Rect::new1(0, 4))),
                (DomainPoint::new1(0), Domain::Rect1(Rect::new1(5, 9))),
            ],
            Disjointness::Aliased,
        );
    }

    #[test]
    fn sparse_domain_overlap() {
        let a = Domain::sparse(vec![DomainPoint::new2(0, 0), DomainPoint::new2(1, 1)]);
        let b = Domain::sparse(vec![DomainPoint::new2(1, 1)]);
        let c = Domain::sparse(vec![DomainPoint::new2(2, 2)]);
        assert!(domains_overlap(&a, &b));
        assert!(!domains_overlap(&a, &c));
        let dense: Domain = Rect::new2((0, 0), (0, 5)).into();
        assert!(domains_overlap(&a, &dense));
        assert!(!domains_overlap(&c, &dense));
    }
}
