//! Identifiers for shape metadata.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

id_type!(
    /// Identifier of an index space (a set of points).
    IndexSpaceId,
    "is"
);
id_type!(
    /// Identifier of an index partition (a coloring of an index space).
    IndexPartitionId,
    "ip"
);
id_type!(
    /// Identifier of a field space (a set of fields).
    FieldSpaceId,
    "fs"
);
id_type!(
    /// Identifier of a field within a field space.
    FieldId,
    "f"
);
id_type!(
    /// Identifier of a region tree (one per top-level collection).
    RegionTreeId,
    "t"
);

/// A logical region: an index space crossed with a field space, within a
/// region tree. Subregions of a partitioned region share the tree and field
/// space and name a child index space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalRegion {
    /// The region tree this region belongs to.
    pub tree: RegionTreeId,
    /// The index space naming the points of the region.
    pub space: IndexSpaceId,
    /// The fields attached to every point.
    pub fields: FieldSpaceId,
}

impl fmt::Debug for LogicalRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region({:?},{:?},{:?})", self.tree, self.space, self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", IndexSpaceId(3)), "is3");
        assert_eq!(format!("{}", FieldId(7)), "f7");
        let r = LogicalRegion {
            tree: RegionTreeId(1),
            space: IndexSpaceId(2),
            fields: FieldSpaceId(3),
        };
        assert_eq!(format!("{r:?}"), "region(t1,is2,fs3)");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(IndexSpaceId(1) < IndexSpaceId(2));
    }
}
