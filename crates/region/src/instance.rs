//! Physical instances: dense per-field storage over a domain.

use crate::field::{FieldKind, FieldSpaceDesc, FieldValue};
use crate::ids::FieldId;
use crate::reduction::ReductionKind;
use il_geometry::{Domain, DomainPoint};
use std::collections::BTreeMap;

/// Type-erased storage for one field of an instance.
///
/// `PartialEq` is **bitwise**: float lanes compare by `to_bits`, so two
/// byte-identical stores are equal even where the data holds NaN (a
/// derived float `==` would make a NaN-bearing store unequal to
/// itself, breaking every "converges to the fault-free data" assertion
/// on programs whose reductions produce NaN). The flip side — `-0.0`
/// and `+0.0` compare *unequal* — is exactly the byte-identity the
/// chaos/replay suites assert.
#[derive(Clone, Debug)]
pub enum FieldStore {
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit signed integers.
    I64(Vec<i64>),
    /// 32-bit signed integers.
    I32(Vec<i32>),
    /// 64-bit unsigned integers.
    U64(Vec<u64>),
    /// 32-bit unsigned integers.
    U32(Vec<u32>),
}

impl PartialEq for FieldStore {
    fn eq(&self, other: &Self) -> bool {
        use FieldStore::*;
        match (self, other) {
            (F64(a), F64(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (F32(a), F32(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (I64(a), I64(b)) => a == b,
            (I32(a), I32(b)) => a == b,
            (U64(a), U64(b)) => a == b,
            (U32(a), U32(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for FieldStore {}

impl FieldStore {
    /// Allocate default-initialized storage of `len` elements of `kind`.
    pub fn new(kind: FieldKind, len: usize) -> Self {
        match kind {
            FieldKind::F64 => FieldStore::F64(vec![0.0; len]),
            FieldKind::F32 => FieldStore::F32(vec![0.0; len]),
            FieldKind::I64 => FieldStore::I64(vec![0; len]),
            FieldKind::I32 => FieldStore::I32(vec![0; len]),
            FieldKind::U64 => FieldStore::U64(vec![0; len]),
            FieldKind::U32 => FieldStore::U32(vec![0; len]),
        }
    }

    /// The kind of this store.
    pub fn kind(&self) -> FieldKind {
        match self {
            FieldStore::F64(_) => FieldKind::F64,
            FieldStore::F32(_) => FieldKind::F32,
            FieldStore::I64(_) => FieldKind::I64,
            FieldStore::I32(_) => FieldKind::I32,
            FieldStore::U64(_) => FieldKind::U64,
            FieldStore::U32(_) => FieldKind::U32,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            FieldStore::F64(v) => v.len(),
            FieldStore::F32(v) => v.len(),
            FieldStore::I64(v) => v.len(),
            FieldStore::I32(v) => v.len(),
            FieldStore::U64(v) => v.len(),
            FieldStore::U32(v) => v.len(),
        }
    }

    /// True iff there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy element `src_idx` of `src` into element `dst_idx` of `self`.
    ///
    /// # Panics
    /// Panics on kind mismatch or out-of-bounds indices.
    pub fn copy_element(&mut self, dst_idx: usize, src: &FieldStore, src_idx: usize) {
        match (self, src) {
            (FieldStore::F64(d), FieldStore::F64(s)) => d[dst_idx] = s[src_idx],
            (FieldStore::F32(d), FieldStore::F32(s)) => d[dst_idx] = s[src_idx],
            (FieldStore::I64(d), FieldStore::I64(s)) => d[dst_idx] = s[src_idx],
            (FieldStore::I32(d), FieldStore::I32(s)) => d[dst_idx] = s[src_idx],
            (FieldStore::U64(d), FieldStore::U64(s)) => d[dst_idx] = s[src_idx],
            (FieldStore::U32(d), FieldStore::U32(s)) => d[dst_idx] = s[src_idx],
            (d, s) => panic!("field kind mismatch in copy: {:?} vs {:?}", d.kind(), s.kind()),
        }
    }

    /// Raw bit pattern of element `idx`, widened to 64 bits. Floats are
    /// read via `to_bits`, so the digest distinguishes `-0.0` from `0.0`
    /// and every NaN payload — bit-flip detection must be exact, not
    /// numeric.
    pub fn bits_at(&self, idx: usize) -> u64 {
        match self {
            FieldStore::F64(v) => v[idx].to_bits(),
            FieldStore::F32(v) => u64::from(v[idx].to_bits()),
            FieldStore::I64(v) => v[idx] as u64,
            FieldStore::I32(v) => v[idx] as u32 as u64,
            FieldStore::U64(v) => v[idx],
            FieldStore::U32(v) => u64::from(v[idx]),
        }
    }

    /// XOR `delta` into the raw bits of element `idx` — a modeled silent
    /// bit flip. For 32-bit kinds the two halves of `delta` are OR-folded,
    /// so any nonzero `delta` still flips at least one stored bit.
    pub fn flip_bits(&mut self, idx: usize, delta: u64) {
        let d32 = (delta as u32) | ((delta >> 32) as u32);
        match self {
            FieldStore::F64(v) => v[idx] = f64::from_bits(v[idx].to_bits() ^ delta),
            FieldStore::F32(v) => v[idx] = f32::from_bits(v[idx].to_bits() ^ d32),
            FieldStore::I64(v) => v[idx] = (v[idx] as u64 ^ delta) as i64,
            FieldStore::I32(v) => v[idx] = (v[idx] as u32 ^ d32) as i32,
            FieldStore::U64(v) => v[idx] ^= delta,
            FieldStore::U32(v) => v[idx] ^= d32,
        }
    }

    /// Fold element `src_idx` of `src` into element `dst_idx` of `self`
    /// with reduction `kind`. Integer variants use the `i64` fold semantics
    /// of [`ReductionKind`].
    pub fn fold_element(&mut self, dst_idx: usize, src: &FieldStore, src_idx: usize, kind: ReductionKind) {
        match (self, src) {
            (FieldStore::F64(d), FieldStore::F64(s)) => d[dst_idx] = kind.fold_f64(d[dst_idx], s[src_idx]),
            (FieldStore::F32(d), FieldStore::F32(s)) => d[dst_idx] = kind.fold_f32(d[dst_idx], s[src_idx]),
            (FieldStore::I64(d), FieldStore::I64(s)) => d[dst_idx] = kind.fold_i64(d[dst_idx], s[src_idx]),
            (FieldStore::I32(d), FieldStore::I32(s)) => {
                d[dst_idx] = kind.fold_i64(d[dst_idx] as i64, s[src_idx] as i64) as i32
            }
            (FieldStore::U64(d), FieldStore::U64(s)) => {
                d[dst_idx] = kind.fold_i64(d[dst_idx] as i64, s[src_idx] as i64) as u64
            }
            (FieldStore::U32(d), FieldStore::U32(s)) => {
                d[dst_idx] = kind.fold_i64(d[dst_idx] as i64, s[src_idx] as i64) as u32
            }
            (d, s) => panic!("field kind mismatch in fold: {:?} vs {:?}", d.kind(), s.kind()),
        }
    }
}

/// A physical instance: dense storage for a set of fields over the points
/// of a domain.
///
/// In Legion, instances materialize a subregion's data in a specific
/// memory; collections "are not fixed in a specific memory but may be
/// copied and migrated" (§2). Here each simulated node keeps its own
/// instances, and the runtime copies between them when dependencies cross
/// nodes. Storage is row-major (struct-of-arrays) over the domain's
/// bounding rectangle.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalInstance {
    domain: Domain,
    fields: BTreeMap<FieldId, FieldStore>,
}

impl PhysicalInstance {
    /// Allocate an instance over `domain` holding `fields` (all fields of
    /// `desc` when `fields` is empty).
    pub fn new(domain: Domain, desc: &FieldSpaceDesc, fields: &[FieldId]) -> Self {
        let len = domain.bbox_volume() as usize;
        let mut stores = BTreeMap::new();
        if fields.is_empty() {
            for (id, kind) in desc.iter() {
                stores.insert(id, FieldStore::new(kind, len));
            }
        } else {
            for &id in fields {
                stores.insert(id, FieldStore::new(desc.kind(id), len));
            }
        }
        PhysicalInstance { domain, fields: stores }
    }

    /// The domain this instance covers.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The field ids present.
    pub fn field_ids(&self) -> impl Iterator<Item = FieldId> + '_ {
        self.fields.keys().copied()
    }

    /// True iff the instance stores `field`.
    pub fn has_field(&self, field: FieldId) -> bool {
        self.fields.contains_key(&field)
    }

    /// Linearized storage index of `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside the instance's domain bounding box.
    #[inline]
    pub fn index_of(&self, p: DomainPoint) -> usize {
        self.domain
            .linearize(p)
            .unwrap_or_else(|| panic!("point {p:?} outside instance domain {:?}", self.domain)) as usize
    }

    /// Typed read-only view of a field's storage.
    pub fn field<T: FieldValue>(&self, field: FieldId) -> &[T] {
        T::slice(self.fields.get(&field).expect("field not in instance"))
    }

    /// Typed mutable view of a field's storage.
    pub fn field_mut<T: FieldValue>(&mut self, field: FieldId) -> &mut [T] {
        T::slice_mut(self.fields.get_mut(&field).expect("field not in instance"))
    }

    /// Read one element.
    #[inline]
    pub fn get<T: FieldValue>(&self, field: FieldId, p: DomainPoint) -> T {
        let idx = self.index_of(p);
        self.field::<T>(field)[idx]
    }

    /// Write one element.
    #[inline]
    pub fn set<T: FieldValue>(&mut self, field: FieldId, p: DomainPoint, v: T) {
        let idx = self.index_of(p);
        self.field_mut::<T>(field)[idx] = v;
    }

    /// Raw store access (for copies and folds).
    pub fn store(&self, field: FieldId) -> &FieldStore {
        self.fields.get(&field).expect("field not in instance")
    }

    /// Copy all points of `domain` (which must lie inside both instances)
    /// for the listed fields (all shared fields when empty) from `src`.
    pub fn copy_from(&mut self, src: &PhysicalInstance, domain: &Domain, fields: &[FieldId]) {
        let ids: Vec<FieldId> = if fields.is_empty() {
            self.fields.keys().copied().filter(|f| src.has_field(*f)).collect()
        } else {
            fields.to_vec()
        };
        for p in domain.iter() {
            let di = self.index_of(p);
            let si = src.index_of(p);
            for &f in &ids {
                let src_store = src.fields.get(&f).expect("src missing field");
                let dst_store = self.fields.get_mut(&f).expect("dst missing field");
                dst_store.copy_element(di, src_store, si);
            }
        }
    }

    /// Fold all points of `domain` from `src` into `self` with `kind`.
    pub fn fold_from(
        &mut self,
        src: &PhysicalInstance,
        domain: &Domain,
        fields: &[FieldId],
        kind: ReductionKind,
    ) {
        let ids: Vec<FieldId> = if fields.is_empty() {
            self.fields.keys().copied().filter(|f| src.has_field(*f)).collect()
        } else {
            fields.to_vec()
        };
        for p in domain.iter() {
            let di = self.index_of(p);
            let si = src.index_of(p);
            for &f in &ids {
                let src_store = src.fields.get(&f).expect("src missing field");
                let dst_store = self.fields.get_mut(&f).expect("dst missing field");
                dst_store.fold_element(di, src_store, si, kind);
            }
        }
    }

    /// Fill a field with a reduction identity (used to stage reduction
    /// buffers).
    pub fn fill_identity(&mut self, field: FieldId, kind: ReductionKind) {
        match self.fields.get_mut(&field).expect("field not in instance") {
            FieldStore::F64(v) => v.fill(kind.identity_f64()),
            FieldStore::F32(v) => v.fill(kind.identity_f32()),
            FieldStore::I64(v) => v.fill(kind.identity_i64()),
            FieldStore::I32(v) => v.fill(kind.identity_i64() as i32),
            FieldStore::U64(v) => v.fill(kind.identity_i64() as u64),
            FieldStore::U32(v) => v.fill(kind.identity_i64() as u32),
        }
    }

    /// Total bytes of the instance across its fields.
    pub fn bytes(&self) -> u64 {
        self.fields
            .values()
            .map(|s| s.len() as u64 * s.kind().size())
            .sum()
    }

    /// Deterministic 64-bit content digest: FNV-1a over the instance's
    /// shape (bounding-box volume, field ids and kinds) and every
    /// element's raw bit pattern, fields in id order. Two instances have
    /// equal digests iff their stored bytes agree, which is the checksum
    /// the silent-data-corruption vote compares — a single flipped bit in
    /// any element changes the digest.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = FNV_OFFSET;
        let mut eat = |word: u64| {
            for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
                h ^= (word >> shift) & 0xFF;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.domain.bbox_volume());
        for (id, store) in &self.fields {
            eat(u64::from(id.0));
            eat(store.kind().size());
            eat(store.len() as u64);
            for idx in 0..store.len() {
                eat(store.bits_at(idx));
            }
        }
        h
    }

    /// Apply a modeled silent bit flip: XOR `delta` into the raw bits of
    /// the element of `field` chosen deterministically from `delta`
    /// itself. Used by fault injection to corrupt a task's output; a
    /// no-op when the field has no elements.
    pub fn corrupt_element(&mut self, field: FieldId, delta: u64) {
        let store = self.fields.get_mut(&field).expect("field not in instance");
        if store.is_empty() {
            return;
        }
        let idx = (delta.rotate_right(17) as usize) % store.len();
        store.flip_bits(idx, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_geometry::Rect;

    fn two_field_desc() -> (FieldSpaceDesc, FieldId, FieldId) {
        let mut desc = FieldSpaceDesc::new();
        let v = desc.add("v", FieldKind::F64);
        let n = desc.add("n", FieldKind::I64);
        (desc, v, n)
    }

    #[test]
    fn alloc_and_rw() {
        let (desc, v, n) = two_field_desc();
        let dom: Domain = Rect::new2((0, 0), (3, 3)).into();
        let mut inst = PhysicalInstance::new(dom, &desc, &[]);
        inst.set(v, DomainPoint::new2(1, 2), 3.5f64);
        inst.set(n, DomainPoint::new2(3, 3), -9i64);
        assert_eq!(inst.get::<f64>(v, DomainPoint::new2(1, 2)), 3.5);
        assert_eq!(inst.get::<i64>(n, DomainPoint::new2(3, 3)), -9);
        assert_eq!(inst.get::<f64>(v, DomainPoint::new2(0, 0)), 0.0);
        assert_eq!(inst.bytes(), 16 * 8 + 16 * 8);
    }

    #[test]
    fn subset_of_fields() {
        let (desc, v, n) = two_field_desc();
        let inst = PhysicalInstance::new(Domain::range(4), &desc, &[v]);
        assert!(inst.has_field(v));
        assert!(!inst.has_field(n));
    }

    #[test]
    fn copy_between_instances() {
        let (desc, v, _) = two_field_desc();
        let whole: Domain = Rect::new1(0, 9).into();
        let mut a = PhysicalInstance::new(whole.clone(), &desc, &[v]);
        let mut b = PhysicalInstance::new(whole.clone(), &desc, &[v]);
        for i in 0..10 {
            a.set(v, DomainPoint::new1(i), i as f64);
        }
        let part: Domain = Rect::new1(3, 5).into();
        b.copy_from(&a, &part, &[v]);
        assert_eq!(b.get::<f64>(v, DomainPoint::new1(4)), 4.0);
        assert_eq!(b.get::<f64>(v, DomainPoint::new1(6)), 0.0);
    }

    #[test]
    fn fold_between_instances() {
        let (desc, v, _) = two_field_desc();
        let whole: Domain = Rect::new1(0, 3).into();
        let mut acc = PhysicalInstance::new(whole.clone(), &desc, &[v]);
        let mut contrib = PhysicalInstance::new(whole.clone(), &desc, &[v]);
        for i in 0..4 {
            acc.set(v, DomainPoint::new1(i), 10.0);
            contrib.set(v, DomainPoint::new1(i), i as f64);
        }
        acc.fold_from(&contrib, &whole, &[v], ReductionKind::Sum);
        assert_eq!(acc.get::<f64>(v, DomainPoint::new1(3)), 13.0);
    }

    #[test]
    fn fill_identity_values() {
        let (desc, v, n) = two_field_desc();
        let mut inst = PhysicalInstance::new(Domain::range(2), &desc, &[]);
        inst.fill_identity(v, ReductionKind::Min);
        inst.fill_identity(n, ReductionKind::Max);
        assert_eq!(inst.get::<f64>(v, DomainPoint::new1(0)), f64::INFINITY);
        assert_eq!(inst.get::<i64>(n, DomainPoint::new1(1)), i64::MIN);
    }

    #[test]
    #[should_panic(expected = "outside instance domain")]
    fn out_of_bounds_access_panics() {
        let (desc, v, _) = two_field_desc();
        let inst = PhysicalInstance::new(Domain::range(2), &desc, &[]);
        inst.get::<f64>(v, DomainPoint::new1(5));
    }

    #[test]
    fn instance_over_sparse_domain_uses_bbox() {
        let (desc, v, _) = two_field_desc();
        let dom = Domain::sparse(vec![DomainPoint::new1(2), DomainPoint::new1(7)]);
        let mut inst = PhysicalInstance::new(dom, &desc, &[v]);
        inst.set(v, DomainPoint::new1(7), 1.25f64);
        assert_eq!(inst.get::<f64>(v, DomainPoint::new1(7)), 1.25);
        // bbox is [2,7] -> 6 slots
        assert_eq!(inst.field::<f64>(v).len(), 6);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use il_geometry::Rect;

    #[test]
    #[should_panic(expected = "field kind mismatch in copy")]
    fn copy_between_mismatched_kinds_panics() {
        let mut a = FieldStore::new(FieldKind::F64, 2);
        let b = FieldStore::new(FieldKind::I64, 2);
        a.copy_element(0, &b, 0);
    }

    #[test]
    fn fold_integer_kinds() {
        let mut a = FieldStore::new(FieldKind::I32, 2);
        let mut b = FieldStore::new(FieldKind::I32, 2);
        if let FieldStore::I32(v) = &mut a {
            v[0] = 5;
        }
        if let FieldStore::I32(v) = &mut b {
            v[0] = 7;
        }
        a.fold_element(0, &b, 0, ReductionKind::Sum);
        assert_eq!(a, {
            let mut e = FieldStore::new(FieldKind::I32, 2);
            if let FieldStore::I32(v) = &mut e {
                v[0] = 12;
            }
            e
        });
    }

    #[test]
    fn copy_from_all_shared_fields_by_default() {
        let mut fsd = FieldSpaceDesc::new();
        let x = fsd.add("x", FieldKind::F64);
        let y = fsd.add("y", FieldKind::F64);
        let dom: Domain = Rect::new1(0, 3).into();
        let mut a = PhysicalInstance::new(dom.clone(), &fsd, &[]);
        let mut b = PhysicalInstance::new(dom.clone(), &fsd, &[x]); // only x
        a.set(x, DomainPoint::new1(1), 2.0f64);
        a.set(y, DomainPoint::new1(1), 3.0f64);
        // Empty field list = all fields present in BOTH instances.
        b.copy_from(&a, &dom, &[]);
        assert_eq!(b.get::<f64>(x, DomainPoint::new1(1)), 2.0);
        assert!(!b.has_field(y));
    }

    #[test]
    fn bytes_accounts_field_sizes() {
        let mut fsd = FieldSpaceDesc::new();
        fsd.add("a", FieldKind::F32);
        fsd.add("b", FieldKind::I64);
        let inst = PhysicalInstance::new(Domain::range(10), &fsd, &[]);
        assert_eq!(inst.bytes(), 10 * 4 + 10 * 8);
    }

    #[test]
    fn digest_is_deterministic_and_content_sensitive() {
        let mut fsd = FieldSpaceDesc::new();
        let x = fsd.add("x", FieldKind::F64);
        let n = fsd.add("n", FieldKind::U32);
        let dom: Domain = Rect::new1(0, 7).into();
        let mut a = PhysicalInstance::new(dom.clone(), &fsd, &[]);
        let mut b = PhysicalInstance::new(dom.clone(), &fsd, &[]);
        for i in 0..8 {
            a.set(x, DomainPoint::new1(i), i as f64 * 0.5);
            b.set(x, DomainPoint::new1(i), i as f64 * 0.5);
            a.set(n, DomainPoint::new1(i), i as u32);
            b.set(n, DomainPoint::new1(i), i as u32);
        }
        assert_eq!(a.digest(), b.digest(), "equal contents must digest equally");
        b.set(n, DomainPoint::new1(3), 999u32);
        assert_ne!(a.digest(), b.digest(), "a changed element must change the digest");
    }

    #[test]
    fn digest_distinguishes_float_bit_patterns() {
        let mut fsd = FieldSpaceDesc::new();
        let x = fsd.add("x", FieldKind::F64);
        let dom: Domain = Rect::new1(0, 0).into();
        let mut a = PhysicalInstance::new(dom.clone(), &fsd, &[]);
        let mut b = PhysicalInstance::new(dom, &fsd, &[]);
        a.set(x, DomainPoint::new1(0), 0.0f64);
        b.set(x, DomainPoint::new1(0), -0.0f64);
        // 0.0 == -0.0 numerically, but the stored bits differ — a bit-flip
        // detector must see through numeric equality.
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn corrupt_element_flips_and_digest_detects() {
        let mut fsd = FieldSpaceDesc::new();
        let x = fsd.add("x", FieldKind::F64);
        let m = fsd.add("m", FieldKind::U32);
        let dom: Domain = Rect::new1(0, 5).into();
        let inst = PhysicalInstance::new(dom, &fsd, &[]);
        let before = inst.digest();
        for delta in [1u64, 0xDEAD_BEEF, u64::MAX, 1 << 63, 0xFFFF_FFFF_0000_0000] {
            for field in [x, m] {
                let mut hit = inst.clone();
                hit.corrupt_element(field, delta);
                assert_ne!(
                    hit.digest(),
                    before,
                    "delta {delta:#x} on field {field:?} must change the digest"
                );
                // XOR is an involution: the same flip restores the data.
                hit.corrupt_element(field, delta);
                assert_eq!(hit.digest(), before);
            }
        }
    }
}
