//! Logical regions, partitions, and physical instances.
//!
//! This crate is the data model of the programming model in §2 of the
//! paper: data is organized into *collections* (here: logical regions — an
//! index space crossed with a field space), which can be *partitioned* into
//! named subsets. Partitions may be **disjoint** or **aliased**, and the
//! same collection may be partitioned multiple ways; all partitions are
//! views onto the same underlying data. Tasks declare *privileges*
//! (read / write / read-write / reduce) on the regions they access.
//!
//! The [`RegionForest`] owns the shape metadata (index spaces, partitions,
//! regions, field spaces) and answers the two questions the index-launch
//! analyses need:
//!
//! * is partition `P` disjoint? (§3 self-checks)
//! * are two regions provably disjoint? (logical dependence analysis)
//!
//! Physical data lives in [`PhysicalInstance`]s — per-field dense storage
//! over a subregion's domain — with typed accessors and commutative
//! [`reduction`] operators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bvh;
pub mod field;
pub mod forest;
pub mod ids;
pub mod instance;
pub mod partition_ops;
pub mod privilege;
pub mod reduction;

pub use bvh::{coverage_boxes, BBox, BvhSet, MAX_COVERAGE_BOXES};
pub use field::{FieldKind, FieldSpaceDesc, FieldValue};
pub use forest::{
    domain_intersection, domains_overlap, overlap_volume, Disjointness, IndexPartitionNode,
    IndexSpaceNode, PartitionError, RegionForest,
};
pub use ids::{FieldId, FieldSpaceId, IndexPartitionId, IndexSpaceId, LogicalRegion, RegionTreeId};
pub use instance::{FieldStore, PhysicalInstance};
pub use partition_ops::{
    block_partition_2d, block_partition_3d, coloring_partition, equal_partition_1d,
    halo_partition_1d, halo_partition_2d, halo_partition_3d, replace_equal_partition_1d,
    replace_halo_partition_1d, try_block_partition_2d, try_block_partition_3d,
    try_equal_partition_1d, try_halo_partition_1d, try_halo_partition_2d, try_halo_partition_3d,
};
pub use privilege::Privilege;
pub use reduction::{ReductionKind, ReductionOpId};
