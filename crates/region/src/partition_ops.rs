//! Partitioning operators.
//!
//! The paper leaves the method of determining partitions unspecified (§2),
//! pointing at language-based dependent partitioning and graph
//! partitioners. These operators cover what the three evaluation
//! applications need: equal block partitions (disjoint), halo/ghost
//! partitions (aliased), and explicit colorings (e.g. from a graph
//! partitioner, as in Circuit).

use crate::forest::{Disjointness, PartitionError, RegionForest};
use crate::ids::{IndexPartitionId, IndexSpaceId};
use il_geometry::{Domain, DomainPoint, Rect};

fn wrong_shape(expected: &'static str, found: &Domain) -> PartitionError {
    PartitionError::WrongShape {
        expected,
        found: format!("{found:?}"),
    }
}

/// Equal 1-D block coloring of `domain`: `(color_space, coloring)` or an
/// error if the domain is not a dense 1-D rectangle.
fn equal_coloring_1d(
    domain: &Domain,
    parts: usize,
) -> Result<(Domain, Vec<(DomainPoint, Domain)>), PartitionError> {
    let Domain::Rect1(rect) = domain else {
        return Err(wrong_shape("dense 1-D", domain));
    };
    let coloring = rect
        .split(parts)
        .into_iter()
        .enumerate()
        .map(|(i, r)| (DomainPoint::new1(i as i64), Domain::Rect1(r)))
        .collect();
    Ok((Domain::range(parts as i64), coloring))
}

fn block_coloring_2d(
    domain: &Domain,
    tiles: (usize, usize),
) -> Result<(Domain, Vec<(DomainPoint, Domain)>), PartitionError> {
    let Domain::Rect2(rect) = domain else {
        return Err(wrong_shape("dense 2-D", domain));
    };
    let rows = split_dim(rect, 0, tiles.0);
    let mut coloring = Vec::with_capacity(tiles.0 * tiles.1);
    for (i, row) in rows.iter().enumerate() {
        // Split the other dimension: transpose trick — split() picks the
        // longest dim, so split columns explicitly.
        let cols = split_dim(row, 1, tiles.1);
        for (j, tile) in cols.into_iter().enumerate() {
            coloring.push((DomainPoint::new2(i as i64, j as i64), Domain::Rect2(tile)));
        }
    }
    let color_space = Domain::Rect2(Rect::new2(
        (0, 0),
        (tiles.0 as i64 - 1, tiles.1 as i64 - 1),
    ));
    Ok((color_space, coloring))
}

fn block_coloring_3d(
    domain: &Domain,
    tiles: (usize, usize, usize),
) -> Result<(Domain, Vec<(DomainPoint, Domain)>), PartitionError> {
    let Domain::Rect3(rect) = domain else {
        return Err(wrong_shape("dense 3-D", domain));
    };
    let xs = split_dim(rect, 0, tiles.0);
    let mut coloring = Vec::with_capacity(tiles.0 * tiles.1 * tiles.2);
    for (i, x) in xs.iter().enumerate() {
        let ys = split_dim(x, 1, tiles.1);
        for (j, y) in ys.iter().enumerate() {
            let zs = split_dim(y, 2, tiles.2);
            for (k, tile) in zs.into_iter().enumerate() {
                coloring.push((
                    DomainPoint::new3(i as i64, j as i64, k as i64),
                    Domain::Rect3(tile),
                ));
            }
        }
    }
    let color_space = Domain::Rect3(Rect::new3(
        (0, 0, 0),
        (tiles.0 as i64 - 1, tiles.1 as i64 - 1, tiles.2 as i64 - 1),
    ));
    Ok((color_space, coloring))
}

fn halo_coloring_2d(
    domain: &Domain,
    tiles: (usize, usize),
    radius: i64,
) -> Result<(Domain, Vec<(DomainPoint, Domain)>), PartitionError> {
    let Domain::Rect2(bounds) = domain else {
        return Err(wrong_shape("dense 2-D", domain));
    };
    let rows = split_dim(bounds, 0, tiles.0);
    let mut coloring = Vec::with_capacity(tiles.0 * tiles.1);
    for (i, row) in rows.iter().enumerate() {
        for (j, tile) in split_dim(row, 1, tiles.1).into_iter().enumerate() {
            let grown = Rect::new2(
                (
                    (tile.lo[0] - radius).max(bounds.lo[0]),
                    (tile.lo[1] - radius).max(bounds.lo[1]),
                ),
                (
                    (tile.hi[0] + radius).min(bounds.hi[0]),
                    (tile.hi[1] + radius).min(bounds.hi[1]),
                ),
            );
            coloring.push((DomainPoint::new2(i as i64, j as i64), Domain::Rect2(grown)));
        }
    }
    let color_space = Domain::Rect2(Rect::new2(
        (0, 0),
        (tiles.0 as i64 - 1, tiles.1 as i64 - 1),
    ));
    Ok((color_space, coloring))
}

fn halo_coloring_3d(
    domain: &Domain,
    tiles: (usize, usize, usize),
    radius: i64,
) -> Result<(Domain, Vec<(DomainPoint, Domain)>), PartitionError> {
    let Domain::Rect3(bounds) = domain else {
        return Err(wrong_shape("dense 3-D", domain));
    };
    let xs = split_dim(bounds, 0, tiles.0);
    let mut coloring = Vec::with_capacity(tiles.0 * tiles.1 * tiles.2);
    for (i, x) in xs.iter().enumerate() {
        for (j, y) in split_dim(x, 1, tiles.1).iter().enumerate() {
            for (k, tile) in split_dim(y, 2, tiles.2).into_iter().enumerate() {
                let grown = Rect::new3(
                    (
                        (tile.lo[0] - radius).max(bounds.lo[0]),
                        (tile.lo[1] - radius).max(bounds.lo[1]),
                        (tile.lo[2] - radius).max(bounds.lo[2]),
                    ),
                    (
                        (tile.hi[0] + radius).min(bounds.hi[0]),
                        (tile.hi[1] + radius).min(bounds.hi[1]),
                        (tile.hi[2] + radius).min(bounds.hi[2]),
                    ),
                );
                coloring.push((
                    DomainPoint::new3(i as i64, j as i64, k as i64),
                    Domain::Rect3(grown),
                ));
            }
        }
    }
    let color_space = Domain::Rect3(Rect::new3(
        (0, 0, 0),
        (tiles.0 as i64 - 1, tiles.1 as i64 - 1, tiles.2 as i64 - 1),
    ));
    Ok((color_space, coloring))
}

/// Partition a 1-D space into `parts` nearly-equal disjoint blocks, colored
/// `0..parts`.
pub fn equal_partition_1d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    parts: usize,
) -> IndexPartitionId {
    try_equal_partition_1d(forest, space, parts)
        .unwrap_or_else(|e| panic!("equal_partition_1d requires a dense 1-D space: {e}"))
}

/// Fallible [`equal_partition_1d`]: wrong-shaped spaces yield an error
/// instead of a panic.
pub fn try_equal_partition_1d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    parts: usize,
) -> Result<IndexPartitionId, PartitionError> {
    let (color_space, coloring) = equal_coloring_1d(forest.domain(space), parts)?;
    forest.try_create_partition(space, color_space, coloring, Disjointness::Disjoint)
}

/// Replace an existing partition **in place** with an equal 1-D split of
/// its parent space into `parts` blocks — the refine/coarsen step of the
/// AMR workload. The partition keeps its id; retained colors keep their
/// subspace ids; the forest generation is bumped so cached analyses and
/// captured traces keyed on the old shape are invalidated.
pub fn replace_equal_partition_1d(
    forest: &mut RegionForest,
    partition: IndexPartitionId,
    parts: usize,
) -> Result<(), PartitionError> {
    let parent = forest.partition(partition).parent;
    let (color_space, coloring) = equal_coloring_1d(forest.domain(parent), parts)?;
    forest.replace_partition(partition, color_space, coloring, Disjointness::Disjoint)
}

/// Partition a 2-D space into a `tiles.0 × tiles.1` grid of disjoint
/// blocks, colored by 2-D tile coordinates.
pub fn block_partition_2d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    tiles: (usize, usize),
) -> IndexPartitionId {
    try_block_partition_2d(forest, space, tiles)
        .unwrap_or_else(|e| panic!("block_partition_2d requires a dense 2-D space: {e}"))
}

/// Fallible [`block_partition_2d`].
pub fn try_block_partition_2d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    tiles: (usize, usize),
) -> Result<IndexPartitionId, PartitionError> {
    let (color_space, coloring) = block_coloring_2d(forest.domain(space), tiles)?;
    forest.try_create_partition(space, color_space, coloring, Disjointness::Disjoint)
}

/// Partition a 3-D space into a grid of disjoint blocks colored by 3-D
/// tile coordinates.
pub fn block_partition_3d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    tiles: (usize, usize, usize),
) -> IndexPartitionId {
    try_block_partition_3d(forest, space, tiles)
        .unwrap_or_else(|e| panic!("block_partition_3d requires a dense 3-D space: {e}"))
}

/// Fallible [`block_partition_3d`].
pub fn try_block_partition_3d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    tiles: (usize, usize, usize),
) -> Result<IndexPartitionId, PartitionError> {
    let (color_space, coloring) = block_coloring_3d(forest.domain(space), tiles)?;
    forest.try_create_partition(space, color_space, coloring, Disjointness::Disjoint)
}

/// Aliased halo partition of a 2-D space: the tile of `base` at each color
/// grown by `radius` in every direction (clamped to the space bounds).
/// Used for the ghost/exchange regions of the stencil (§6.1).
pub fn halo_partition_2d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    tiles: (usize, usize),
    radius: i64,
) -> IndexPartitionId {
    try_halo_partition_2d(forest, space, tiles, radius)
        .unwrap_or_else(|e| panic!("halo_partition_2d requires a dense 2-D space: {e}"))
}

/// Fallible [`halo_partition_2d`].
pub fn try_halo_partition_2d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    tiles: (usize, usize),
    radius: i64,
) -> Result<IndexPartitionId, PartitionError> {
    let (color_space, coloring) = halo_coloring_2d(forest.domain(space), tiles, radius)?;
    forest.try_create_partition(space, color_space, coloring, Disjointness::Aliased)
}

/// Aliased halo partition of a 3-D space: each tile of the block grid
/// grown by `radius` in every direction (clamped to the space bounds).
/// Used for the fluid exchange regions of Soleil-mini.
pub fn halo_partition_3d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    tiles: (usize, usize, usize),
    radius: i64,
) -> IndexPartitionId {
    try_halo_partition_3d(forest, space, tiles, radius)
        .unwrap_or_else(|e| panic!("halo_partition_3d requires a dense 3-D space: {e}"))
}

/// Fallible [`halo_partition_3d`].
pub fn try_halo_partition_3d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    tiles: (usize, usize, usize),
    radius: i64,
) -> Result<IndexPartitionId, PartitionError> {
    let (color_space, coloring) = halo_coloring_3d(forest.domain(space), tiles, radius)?;
    forest.try_create_partition(space, color_space, coloring, Disjointness::Aliased)
}

/// Replace an existing aliased halo partition in place with a halo
/// coloring matching a new tile grid (the AMR exchange partition follows
/// the block partition through refine/coarsen).
pub fn replace_halo_partition_1d(
    forest: &mut RegionForest,
    partition: IndexPartitionId,
    parts: usize,
    radius: i64,
) -> Result<(), PartitionError> {
    let parent = forest.partition(partition).parent;
    let (color_space, coloring) = halo_coloring_1d(forest.domain(parent), parts, radius)?;
    forest.replace_partition(partition, color_space, coloring, Disjointness::Aliased)
}

/// Aliased halo partition of a 1-D space: each equal block grown by
/// `radius` on both sides (clamped to the space bounds). The exchange
/// partition of the 1-D AMR workload.
pub fn halo_partition_1d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    parts: usize,
    radius: i64,
) -> IndexPartitionId {
    try_halo_partition_1d(forest, space, parts, radius)
        .unwrap_or_else(|e| panic!("halo_partition_1d requires a dense 1-D space: {e}"))
}

/// Fallible [`halo_partition_1d`].
pub fn try_halo_partition_1d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    parts: usize,
    radius: i64,
) -> Result<IndexPartitionId, PartitionError> {
    let (color_space, coloring) = halo_coloring_1d(forest.domain(space), parts, radius)?;
    forest.try_create_partition(space, color_space, coloring, Disjointness::Aliased)
}

fn halo_coloring_1d(
    domain: &Domain,
    parts: usize,
    radius: i64,
) -> Result<(Domain, Vec<(DomainPoint, Domain)>), PartitionError> {
    let Domain::Rect1(bounds) = domain else {
        return Err(wrong_shape("dense 1-D", domain));
    };
    let coloring = bounds
        .split(parts)
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let grown = Rect::new1(
                (r.lo[0] - radius).max(bounds.lo[0]),
                (r.hi[0] + radius).min(bounds.hi[0]),
            );
            (DomainPoint::new1(i as i64), Domain::Rect1(grown))
        })
        .collect();
    Ok((Domain::range(parts as i64), coloring))
}

/// Partition by an explicit coloring (e.g. the output of a graph
/// partitioner); disjointness is verified.
pub fn coloring_partition(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    color_space: Domain,
    coloring: Vec<(DomainPoint, Domain)>,
) -> IndexPartitionId {
    forest.create_partition(space, color_space, coloring, Disjointness::Compute)
}

/// Split `rect` into `parts` pieces along dimension `dim` specifically.
fn split_dim<const N: usize>(rect: &Rect<N>, dim: usize, parts: usize) -> Vec<Rect<N>> {
    let extent = rect.extent(dim);
    if extent == 0 {
        return vec![];
    }
    let parts = parts.clamp(1, extent as usize);
    let base = extent / parts as u64;
    let rem = extent % parts as u64;
    let mut out = Vec::with_capacity(parts);
    let mut lo = rect.lo[dim];
    for i in 0..parts {
        let len = base + u64::from((i as u64) < rem);
        let hi = lo + len as i64 - 1;
        let mut piece = *rect;
        piece.lo[dim] = lo;
        piece.hi[dim] = hi;
        out.push(piece);
        lo = hi + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldSpaceDesc;

    fn forest() -> RegionForest {
        let mut f = RegionForest::new();
        f.create_field_space(FieldSpaceDesc::new());
        f
    }

    #[test]
    fn equal_1d() {
        let mut f = forest();
        let s = f.create_index_space(Domain::range(10));
        let p = equal_partition_1d(&mut f, s, 3);
        assert!(f.is_disjoint(p));
        let sizes: Vec<u64> = (0..3)
            .map(|c| f.domain(f.subspace(p, DomainPoint::new1(c))).volume())
            .collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn blocks_2d_cover() {
        let mut f = forest();
        let s = f.create_index_space(Domain::Rect2(Rect::new2((0, 0), (7, 11))));
        let p = block_partition_2d(&mut f, s, (2, 3));
        assert!(f.is_disjoint(p));
        let total: u64 = f
            .partition(p)
            .children
            .values()
            .map(|&sid| f.domain(sid).volume())
            .sum();
        assert_eq!(total, 96);
        let tile = f.subspace(p, DomainPoint::new2(1, 2));
        assert_eq!(f.domain(tile), &Domain::Rect2(Rect::new2((4, 8), (7, 11))));
    }

    #[test]
    fn blocks_3d_cover() {
        let mut f = forest();
        let s = f.create_index_space(Domain::Rect3(Rect::new3((0, 0, 0), (3, 3, 3))));
        let p = block_partition_3d(&mut f, s, (2, 2, 2));
        assert!(f.is_disjoint(p));
        assert_eq!(f.partition(p).children.len(), 8);
        let total: u64 = f
            .partition(p)
            .children
            .values()
            .map(|&sid| f.domain(sid).volume())
            .sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn halo_is_aliased_and_grown() {
        let mut f = forest();
        let s = f.create_index_space(Domain::Rect2(Rect::new2((0, 0), (9, 9))));
        let interior = block_partition_2d(&mut f, s, (2, 2));
        let halo = halo_partition_2d(&mut f, s, (2, 2), 1);
        assert!(!f.is_disjoint(halo));
        let tile = f.subspace(interior, DomainPoint::new2(0, 0));
        assert_eq!(f.domain(tile), &Domain::Rect2(Rect::new2((0, 0), (4, 4))));
        let ghost = f.subspace(halo, DomainPoint::new2(0, 0));
        // Clamped at the low edges, grown at the high edges.
        assert_eq!(f.domain(ghost), &Domain::Rect2(Rect::new2((0, 0), (5, 5))));
        let ghost11 = f.subspace(halo, DomainPoint::new2(1, 1));
        assert_eq!(f.domain(ghost11), &Domain::Rect2(Rect::new2((4, 4), (9, 9))));
    }

    // --- regression tests: one per former panic site -------------------
    // Each of the five shaped operators used to panic outright when handed
    // a space of the wrong rank (or a sparse space). The fallible variants
    // must report `PartitionError::WrongShape` instead, leaving the forest
    // untouched.

    #[test]
    fn equal_1d_rejects_wrong_rank_gracefully() {
        let mut f = forest();
        let s2 = f.create_index_space(Domain::Rect2(Rect::new2((0, 0), (3, 3))));
        let spaces_before = f.num_spaces();
        let err = try_equal_partition_1d(&mut f, s2, 2).unwrap_err();
        assert!(matches!(err, PartitionError::WrongShape { expected: "dense 1-D", .. }));
        assert_eq!(f.num_spaces(), spaces_before, "failed op must not leak spaces");
        assert_eq!(f.num_partitions(), 0);
    }

    #[test]
    fn blocks_2d_rejects_wrong_rank_gracefully() {
        let mut f = forest();
        let s1 = f.create_index_space(Domain::range(16));
        let err = try_block_partition_2d(&mut f, s1, (2, 2)).unwrap_err();
        assert!(matches!(err, PartitionError::WrongShape { expected: "dense 2-D", .. }));
        assert_eq!(f.num_partitions(), 0);
    }

    #[test]
    fn blocks_3d_rejects_wrong_rank_gracefully() {
        let mut f = forest();
        let s2 = f.create_index_space(Domain::Rect2(Rect::new2((0, 0), (7, 7))));
        let err = try_block_partition_3d(&mut f, s2, (2, 2, 2)).unwrap_err();
        assert!(matches!(err, PartitionError::WrongShape { expected: "dense 3-D", .. }));
        assert_eq!(f.num_partitions(), 0);
    }

    #[test]
    fn halo_2d_rejects_sparse_space_gracefully() {
        let mut f = forest();
        let sparse = f.create_index_space(Domain::sparse(vec![
            DomainPoint::new2(0, 0),
            DomainPoint::new2(3, 3),
        ]));
        let err = try_halo_partition_2d(&mut f, sparse, (2, 2), 1).unwrap_err();
        assert!(matches!(err, PartitionError::WrongShape { expected: "dense 2-D", .. }));
        assert_eq!(f.num_partitions(), 0);
    }

    #[test]
    fn halo_3d_rejects_wrong_rank_gracefully() {
        let mut f = forest();
        let s1 = f.create_index_space(Domain::range(64));
        let err = try_halo_partition_3d(&mut f, s1, (2, 2, 2), 1).unwrap_err();
        assert!(matches!(err, PartitionError::WrongShape { expected: "dense 3-D", .. }));
        assert_eq!(f.num_partitions(), 0);
    }

    // --- partition replacement (AMR refine/coarsen) --------------------

    #[test]
    fn replace_refines_in_place_and_keeps_retained_ids() {
        let mut f = forest();
        let s = f.create_index_space(Domain::range(48));
        let p = equal_partition_1d(&mut f, s, 4);
        let g0 = f.generation();
        let old_ids: Vec<_> = (0..4)
            .map(|c| f.subspace(p, DomainPoint::new1(c)))
            .collect();

        // Refine 4 → 8: the first four colors keep their subspace ids.
        replace_equal_partition_1d(&mut f, p, 8).unwrap();
        assert!(f.generation() > g0, "replacement must bump the generation");
        assert_eq!(f.partition(p).children.len(), 8);
        assert!(f.is_disjoint(p));
        for (c, &old) in old_ids.iter().enumerate() {
            assert_eq!(f.subspace(p, DomainPoint::new1(c as i64)), old);
            // ... but with refined (6-cell) bounds now.
            assert_eq!(f.domain(old).volume(), 6);
        }
        let total: u64 = f
            .partition(p)
            .children
            .values()
            .map(|&sid| f.domain(sid).volume())
            .sum();
        assert_eq!(total, 48, "refined coloring must still cover the space");

        // Coarsen 8 → 2: dropped colors' subspaces become empty tombstones.
        let dropped = f.subspace(p, DomainPoint::new1(5));
        replace_equal_partition_1d(&mut f, p, 2).unwrap();
        assert_eq!(f.partition(p).children.len(), 2);
        assert!(f.domain(dropped).is_empty(), "dropped subspace must read as empty");
        assert_eq!(f.try_subspace(p, DomainPoint::new1(5)), None);
        assert!(
            f.spaces_disjoint(dropped, f.subspace(p, DomainPoint::new1(0))),
            "tombstoned subspace must be disjoint from live data"
        );
    }

    #[test]
    fn replace_refuses_to_orphan_nested_partitions() {
        let mut f = forest();
        let s = f.create_index_space(Domain::range(40));
        let p = equal_partition_1d(&mut f, s, 4);
        // Hang a nested partition off color 3.
        let leaf = f.subspace(p, DomainPoint::new1(3));
        equal_partition_1d(&mut f, leaf, 2);
        let g = f.generation();
        // Coarsening to 2 colors would drop color 3 and strand its subtree.
        let err = replace_equal_partition_1d(&mut f, p, 2).unwrap_err();
        assert!(matches!(err, PartitionError::WouldOrphanSubtree { .. }));
        assert_eq!(f.generation(), g, "failed replacement must not bump generation");
        assert_eq!(f.partition(p).children.len(), 4, "failed replacement must not mutate");
        // Refining keeps color 3 alive, so it is allowed.
        replace_equal_partition_1d(&mut f, p, 8).unwrap();
        assert_eq!(f.subspace(p, DomainPoint::new1(3)), leaf);
    }

    #[test]
    fn replace_halo_follows_block_refinement() {
        let mut f = forest();
        let s = f.create_index_space(Domain::range(32));
        let halo = halo_partition_1d(&mut f, s, 4, 1);
        assert!(!f.is_disjoint(halo));
        let ghost = f.subspace(halo, DomainPoint::new1(1));
        // Blocks of 8 grown by 1, clamped: [7,16].
        assert_eq!(f.domain(ghost), &Domain::Rect1(Rect::new1(7, 16)));
        replace_halo_partition_1d(&mut f, halo, 8, 1).unwrap();
        // Same color, same subspace id, refined (4-wide) grown bounds [3,8].
        assert_eq!(f.subspace(halo, DomainPoint::new1(1)), ghost);
        assert_eq!(f.domain(ghost), &Domain::Rect1(Rect::new1(3, 8)));
        assert_eq!(f.partition(halo).children.len(), 8);
    }

    #[test]
    fn try_create_verifies_declared_disjointness() {
        let mut f = forest();
        let s = f.create_index_space(Domain::range(10));
        let err = f
            .try_create_partition(
                s,
                Domain::range(2),
                vec![
                    (DomainPoint::new1(0), Domain::Rect1(Rect::new1(0, 5))),
                    (DomainPoint::new1(1), Domain::Rect1(Rect::new1(5, 9))),
                ],
                Disjointness::Disjoint,
            )
            .unwrap_err();
        assert_eq!(err, PartitionError::NotDisjoint);
    }

    #[test]
    fn explicit_coloring_disjointness_computed() {
        let mut f = forest();
        let s = f.create_index_space(Domain::range(10));
        let p = coloring_partition(
            &mut f,
            s,
            Domain::range(2),
            vec![
                (DomainPoint::new1(0), Domain::Rect1(Rect::new1(0, 4))),
                (DomainPoint::new1(1), Domain::Rect1(Rect::new1(5, 9))),
            ],
        );
        assert!(f.is_disjoint(p));
        let q = coloring_partition(
            &mut f,
            s,
            Domain::range(2),
            vec![
                (DomainPoint::new1(0), Domain::Rect1(Rect::new1(0, 5))),
                (DomainPoint::new1(1), Domain::Rect1(Rect::new1(5, 9))),
            ],
        );
        assert!(!f.is_disjoint(q));
    }
}
