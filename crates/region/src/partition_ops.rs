//! Partitioning operators.
//!
//! The paper leaves the method of determining partitions unspecified (§2),
//! pointing at language-based dependent partitioning and graph
//! partitioners. These operators cover what the three evaluation
//! applications need: equal block partitions (disjoint), halo/ghost
//! partitions (aliased), and explicit colorings (e.g. from a graph
//! partitioner, as in Circuit).

use crate::forest::{Disjointness, RegionForest};
use crate::ids::{IndexPartitionId, IndexSpaceId};
use il_geometry::{Domain, DomainPoint, Rect};

/// Partition a 1-D space into `parts` nearly-equal disjoint blocks, colored
/// `0..parts`.
pub fn equal_partition_1d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    parts: usize,
) -> IndexPartitionId {
    let Domain::Rect1(rect) = forest.domain(space).clone() else {
        panic!("equal_partition_1d requires a dense 1-D space");
    };
    let pieces = rect.split(parts);
    let coloring = pieces
        .into_iter()
        .enumerate()
        .map(|(i, r)| (DomainPoint::new1(i as i64), Domain::Rect1(r)))
        .collect();
    forest.create_partition(space, Domain::range(parts as i64), coloring, Disjointness::Disjoint)
}

/// Partition a 2-D space into a `tiles.0 × tiles.1` grid of disjoint
/// blocks, colored by 2-D tile coordinates.
pub fn block_partition_2d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    tiles: (usize, usize),
) -> IndexPartitionId {
    let Domain::Rect2(rect) = forest.domain(space).clone() else {
        panic!("block_partition_2d requires a dense 2-D space");
    };
    let rows = split_dim(&rect, 0, tiles.0);
    let mut coloring = Vec::with_capacity(tiles.0 * tiles.1);
    for (i, row) in rows.iter().enumerate() {
        // Split the other dimension: transpose trick — split() picks the
        // longest dim, so split columns explicitly.
        let cols = split_dim(row, 1, tiles.1);
        for (j, tile) in cols.into_iter().enumerate() {
            coloring.push((DomainPoint::new2(i as i64, j as i64), Domain::Rect2(tile)));
        }
    }
    let color_space = Domain::Rect2(Rect::new2(
        (0, 0),
        (tiles.0 as i64 - 1, tiles.1 as i64 - 1),
    ));
    forest.create_partition(space, color_space, coloring, Disjointness::Disjoint)
}

/// Partition a 3-D space into a grid of disjoint blocks colored by 3-D
/// tile coordinates.
pub fn block_partition_3d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    tiles: (usize, usize, usize),
) -> IndexPartitionId {
    let Domain::Rect3(rect) = forest.domain(space).clone() else {
        panic!("block_partition_3d requires a dense 3-D space");
    };
    let xs = split_dim(&rect, 0, tiles.0);
    let mut coloring = Vec::with_capacity(tiles.0 * tiles.1 * tiles.2);
    for (i, x) in xs.iter().enumerate() {
        let ys = split_dim(x, 1, tiles.1);
        for (j, y) in ys.iter().enumerate() {
            let zs = split_dim(y, 2, tiles.2);
            for (k, tile) in zs.into_iter().enumerate() {
                coloring.push((
                    DomainPoint::new3(i as i64, j as i64, k as i64),
                    Domain::Rect3(tile),
                ));
            }
        }
    }
    let color_space = Domain::Rect3(Rect::new3(
        (0, 0, 0),
        (tiles.0 as i64 - 1, tiles.1 as i64 - 1, tiles.2 as i64 - 1),
    ));
    forest.create_partition(space, color_space, coloring, Disjointness::Disjoint)
}

/// Aliased halo partition of a 2-D space: the tile of `base` at each color
/// grown by `radius` in every direction (clamped to the space bounds).
/// Used for the ghost/exchange regions of the stencil (§6.1).
pub fn halo_partition_2d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    tiles: (usize, usize),
    radius: i64,
) -> IndexPartitionId {
    let Domain::Rect2(bounds) = forest.domain(space).clone() else {
        panic!("halo_partition_2d requires a dense 2-D space");
    };
    let rows = split_dim(&bounds, 0, tiles.0);
    let mut coloring = Vec::with_capacity(tiles.0 * tiles.1);
    for (i, row) in rows.iter().enumerate() {
        for (j, tile) in split_dim(row, 1, tiles.1).into_iter().enumerate() {
            let grown = Rect::new2(
                (
                    (tile.lo[0] - radius).max(bounds.lo[0]),
                    (tile.lo[1] - radius).max(bounds.lo[1]),
                ),
                (
                    (tile.hi[0] + radius).min(bounds.hi[0]),
                    (tile.hi[1] + radius).min(bounds.hi[1]),
                ),
            );
            coloring.push((DomainPoint::new2(i as i64, j as i64), Domain::Rect2(grown)));
        }
    }
    let color_space = Domain::Rect2(Rect::new2(
        (0, 0),
        (tiles.0 as i64 - 1, tiles.1 as i64 - 1),
    ));
    forest.create_partition(space, color_space, coloring, Disjointness::Aliased)
}

/// Aliased halo partition of a 3-D space: each tile of the block grid
/// grown by `radius` in every direction (clamped to the space bounds).
/// Used for the fluid exchange regions of Soleil-mini.
pub fn halo_partition_3d(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    tiles: (usize, usize, usize),
    radius: i64,
) -> IndexPartitionId {
    let Domain::Rect3(bounds) = forest.domain(space).clone() else {
        panic!("halo_partition_3d requires a dense 3-D space");
    };
    let xs = split_dim(&bounds, 0, tiles.0);
    let mut coloring = Vec::with_capacity(tiles.0 * tiles.1 * tiles.2);
    for (i, x) in xs.iter().enumerate() {
        for (j, y) in split_dim(x, 1, tiles.1).iter().enumerate() {
            for (k, tile) in split_dim(y, 2, tiles.2).into_iter().enumerate() {
                let grown = Rect::new3(
                    (
                        (tile.lo[0] - radius).max(bounds.lo[0]),
                        (tile.lo[1] - radius).max(bounds.lo[1]),
                        (tile.lo[2] - radius).max(bounds.lo[2]),
                    ),
                    (
                        (tile.hi[0] + radius).min(bounds.hi[0]),
                        (tile.hi[1] + radius).min(bounds.hi[1]),
                        (tile.hi[2] + radius).min(bounds.hi[2]),
                    ),
                );
                coloring.push((
                    DomainPoint::new3(i as i64, j as i64, k as i64),
                    Domain::Rect3(grown),
                ));
            }
        }
    }
    let color_space = Domain::Rect3(Rect::new3(
        (0, 0, 0),
        (tiles.0 as i64 - 1, tiles.1 as i64 - 1, tiles.2 as i64 - 1),
    ));
    forest.create_partition(space, color_space, coloring, Disjointness::Aliased)
}

/// Partition by an explicit coloring (e.g. the output of a graph
/// partitioner); disjointness is verified.
pub fn coloring_partition(
    forest: &mut RegionForest,
    space: IndexSpaceId,
    color_space: Domain,
    coloring: Vec<(DomainPoint, Domain)>,
) -> IndexPartitionId {
    forest.create_partition(space, color_space, coloring, Disjointness::Compute)
}

/// Split `rect` into `parts` pieces along dimension `dim` specifically.
fn split_dim<const N: usize>(rect: &Rect<N>, dim: usize, parts: usize) -> Vec<Rect<N>> {
    let extent = rect.extent(dim);
    if extent == 0 {
        return vec![];
    }
    let parts = parts.clamp(1, extent as usize);
    let base = extent / parts as u64;
    let rem = extent % parts as u64;
    let mut out = Vec::with_capacity(parts);
    let mut lo = rect.lo[dim];
    for i in 0..parts {
        let len = base + u64::from((i as u64) < rem);
        let hi = lo + len as i64 - 1;
        let mut piece = *rect;
        piece.lo[dim] = lo;
        piece.hi[dim] = hi;
        out.push(piece);
        lo = hi + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldSpaceDesc;

    fn forest() -> RegionForest {
        let mut f = RegionForest::new();
        f.create_field_space(FieldSpaceDesc::new());
        f
    }

    #[test]
    fn equal_1d() {
        let mut f = forest();
        let s = f.create_index_space(Domain::range(10));
        let p = equal_partition_1d(&mut f, s, 3);
        assert!(f.is_disjoint(p));
        let sizes: Vec<u64> = (0..3)
            .map(|c| f.domain(f.subspace(p, DomainPoint::new1(c))).volume())
            .collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn blocks_2d_cover() {
        let mut f = forest();
        let s = f.create_index_space(Domain::Rect2(Rect::new2((0, 0), (7, 11))));
        let p = block_partition_2d(&mut f, s, (2, 3));
        assert!(f.is_disjoint(p));
        let total: u64 = f
            .partition(p)
            .children
            .values()
            .map(|&sid| f.domain(sid).volume())
            .sum();
        assert_eq!(total, 96);
        let tile = f.subspace(p, DomainPoint::new2(1, 2));
        assert_eq!(f.domain(tile), &Domain::Rect2(Rect::new2((4, 8), (7, 11))));
    }

    #[test]
    fn blocks_3d_cover() {
        let mut f = forest();
        let s = f.create_index_space(Domain::Rect3(Rect::new3((0, 0, 0), (3, 3, 3))));
        let p = block_partition_3d(&mut f, s, (2, 2, 2));
        assert!(f.is_disjoint(p));
        assert_eq!(f.partition(p).children.len(), 8);
        let total: u64 = f
            .partition(p)
            .children
            .values()
            .map(|&sid| f.domain(sid).volume())
            .sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn halo_is_aliased_and_grown() {
        let mut f = forest();
        let s = f.create_index_space(Domain::Rect2(Rect::new2((0, 0), (9, 9))));
        let interior = block_partition_2d(&mut f, s, (2, 2));
        let halo = halo_partition_2d(&mut f, s, (2, 2), 1);
        assert!(!f.is_disjoint(halo));
        let tile = f.subspace(interior, DomainPoint::new2(0, 0));
        assert_eq!(f.domain(tile), &Domain::Rect2(Rect::new2((0, 0), (4, 4))));
        let ghost = f.subspace(halo, DomainPoint::new2(0, 0));
        // Clamped at the low edges, grown at the high edges.
        assert_eq!(f.domain(ghost), &Domain::Rect2(Rect::new2((0, 0), (5, 5))));
        let ghost11 = f.subspace(halo, DomainPoint::new2(1, 1));
        assert_eq!(f.domain(ghost11), &Domain::Rect2(Rect::new2((4, 4), (9, 9))));
    }

    #[test]
    fn explicit_coloring_disjointness_computed() {
        let mut f = forest();
        let s = f.create_index_space(Domain::range(10));
        let p = coloring_partition(
            &mut f,
            s,
            Domain::range(2),
            vec![
                (DomainPoint::new1(0), Domain::Rect1(Rect::new1(0, 4))),
                (DomainPoint::new1(1), Domain::Rect1(Rect::new1(5, 9))),
            ],
        );
        assert!(f.is_disjoint(p));
        let q = coloring_partition(
            &mut f,
            s,
            Domain::range(2),
            vec![
                (DomainPoint::new1(0), Domain::Rect1(Rect::new1(0, 5))),
                (DomainPoint::new1(1), Domain::Rect1(Rect::new1(5, 9))),
            ],
        );
        assert!(!f.is_disjoint(q));
    }
}
