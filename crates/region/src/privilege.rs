//! Task privileges on region arguments.

use crate::reduction::ReductionOpId;
use std::fmt;

/// The privilege a task declares on a region argument (§2).
///
/// Privileges drive both the index-launch safety checks (§3) and the
/// dependence analysis: a dependency exists when a task reads data written
/// (or reduced) by an earlier task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Privilege {
    /// Read-only access.
    Read,
    /// Write-only access (the task may not observe prior contents).
    Write,
    /// Read-write access.
    ReadWrite,
    /// Reduction with a specific commutative operator.
    Reduce(ReductionOpId),
}

impl Privilege {
    /// True iff the privilege permits observing prior contents.
    pub fn reads(&self) -> bool {
        matches!(self, Privilege::Read | Privilege::ReadWrite)
    }

    /// True iff the privilege mutates the region (write or reduce).
    pub fn writes(&self) -> bool {
        !matches!(self, Privilege::Read)
    }

    /// True iff this is a reduction privilege.
    pub fn is_reduction(&self) -> bool {
        matches!(self, Privilege::Reduce(_))
    }

    /// Whether two *same-data* accesses with these privileges may run in
    /// parallel: both read-only, or both reductions with the same operator
    /// (§3 cross-checks, first bullet).
    pub fn parallel_with(&self, other: &Privilege) -> bool {
        match (self, other) {
            (Privilege::Read, Privilege::Read) => true,
            (Privilege::Reduce(a), Privilege::Reduce(b)) => a == b,
            _ => false,
        }
    }

    /// Whether an access with privilege `self` followed by an access with
    /// privilege `later` to overlapping data constitutes a dependence.
    ///
    /// Read→read never conflicts; same-operator reduce→reduce folds
    /// commutatively and never conflicts; everything else does.
    pub fn conflicts_before(&self, later: &Privilege) -> bool {
        !self.parallel_with(later)
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Privilege::Read => write!(f, "reads"),
            Privilege::Write => write!(f, "writes"),
            Privilege::ReadWrite => write!(f, "reads writes"),
            Privilege::Reduce(op) => write!(f, "reduces({op:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_flags() {
        assert!(Privilege::Read.reads());
        assert!(!Privilege::Read.writes());
        assert!(Privilege::Write.writes());
        assert!(!Privilege::Write.reads());
        assert!(Privilege::ReadWrite.reads() && Privilege::ReadWrite.writes());
        assert!(Privilege::Reduce(ReductionOpId(0)).writes());
        assert!(Privilege::Reduce(ReductionOpId(0)).is_reduction());
    }

    #[test]
    fn parallelism_rules() {
        let r = Privilege::Read;
        let w = Privilege::Write;
        let red_a = Privilege::Reduce(ReductionOpId(0));
        let red_b = Privilege::Reduce(ReductionOpId(1));
        assert!(r.parallel_with(&r));
        assert!(!r.parallel_with(&w));
        assert!(!w.parallel_with(&w));
        assert!(red_a.parallel_with(&red_a));
        assert!(!red_a.parallel_with(&red_b));
        assert!(!red_a.parallel_with(&r));
    }

    #[test]
    fn conflict_is_negation_of_parallel() {
        let cases = [
            Privilege::Read,
            Privilege::Write,
            Privilege::ReadWrite,
            Privilege::Reduce(ReductionOpId(2)),
        ];
        for a in cases {
            for b in cases {
                assert_eq!(a.conflicts_before(&b), !a.parallel_with(&b));
            }
        }
    }
}
