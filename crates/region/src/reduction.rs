//! Commutative reduction operators.
//!
//! Reduction privileges (§2) let multiple tasks in one index launch fold
//! into the same data concurrently, because folds with the same commutative
//! operator reorder freely. The runtime applies reductions element-wise
//! through these operators.

use std::fmt;

/// Identifier of a registered reduction operator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReductionOpId(pub u32);

impl fmt::Debug for ReductionOpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            Some(k) => write!(f, "{k:?}"),
            None => write!(f, "redop{}", self.0),
        }
    }
}

/// The built-in commutative reduction operators.
///
/// Operators are monoids: each has an identity and an associative,
/// commutative fold. Floating-point addition is treated as commutative
/// here, as it is in Legion; the deterministic event ordering of the
/// simulator keeps results reproducible run-to-run regardless.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReductionKind {
    /// Addition.
    Sum,
    /// Multiplication.
    Prod,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReductionKind {
    /// The stable id for this built-in operator.
    pub const fn id(self) -> ReductionOpId {
        ReductionOpId(match self {
            ReductionKind::Sum => 0,
            ReductionKind::Prod => 1,
            ReductionKind::Min => 2,
            ReductionKind::Max => 3,
        })
    }

    /// Identity element for `f64` folds.
    pub fn identity_f64(self) -> f64 {
        match self {
            ReductionKind::Sum => 0.0,
            ReductionKind::Prod => 1.0,
            ReductionKind::Min => f64::INFINITY,
            ReductionKind::Max => f64::NEG_INFINITY,
        }
    }

    /// Fold for `f64`.
    pub fn fold_f64(self, acc: f64, v: f64) -> f64 {
        match self {
            ReductionKind::Sum => acc + v,
            ReductionKind::Prod => acc * v,
            ReductionKind::Min => acc.min(v),
            ReductionKind::Max => acc.max(v),
        }
    }

    /// Identity element for `i64` folds.
    pub fn identity_i64(self) -> i64 {
        match self {
            ReductionKind::Sum => 0,
            ReductionKind::Prod => 1,
            ReductionKind::Min => i64::MAX,
            ReductionKind::Max => i64::MIN,
        }
    }

    /// Fold for `i64`.
    pub fn fold_i64(self, acc: i64, v: i64) -> i64 {
        match self {
            ReductionKind::Sum => acc.wrapping_add(v),
            ReductionKind::Prod => acc.wrapping_mul(v),
            ReductionKind::Min => acc.min(v),
            ReductionKind::Max => acc.max(v),
        }
    }

    /// Identity element for `f32` folds.
    pub fn identity_f32(self) -> f32 {
        self.identity_f64() as f32
    }

    /// Fold for `f32`.
    pub fn fold_f32(self, acc: f32, v: f32) -> f32 {
        match self {
            ReductionKind::Sum => acc + v,
            ReductionKind::Prod => acc * v,
            ReductionKind::Min => acc.min(v),
            ReductionKind::Max => acc.max(v),
        }
    }
}

impl ReductionOpId {
    /// Recover the built-in kind for this id, if it is one.
    pub fn kind(self) -> Option<ReductionKind> {
        Some(match self.0 {
            0 => ReductionKind::Sum,
            1 => ReductionKind::Prod,
            2 => ReductionKind::Min,
            3 => ReductionKind::Max,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        for k in [
            ReductionKind::Sum,
            ReductionKind::Prod,
            ReductionKind::Min,
            ReductionKind::Max,
        ] {
            assert_eq!(k.id().kind(), Some(k));
        }
        assert_eq!(ReductionOpId(99).kind(), None);
    }

    #[test]
    fn identities() {
        for k in [
            ReductionKind::Sum,
            ReductionKind::Prod,
            ReductionKind::Min,
            ReductionKind::Max,
        ] {
            assert_eq!(k.fold_f64(k.identity_f64(), 5.0), 5.0);
            assert_eq!(k.fold_i64(k.identity_i64(), -7), -7);
            assert_eq!(k.fold_f32(k.identity_f32(), 2.5), 2.5);
        }
    }

    #[test]
    fn folds() {
        assert_eq!(ReductionKind::Sum.fold_f64(2.0, 3.0), 5.0);
        assert_eq!(ReductionKind::Prod.fold_i64(4, 5), 20);
        assert_eq!(ReductionKind::Min.fold_f64(2.0, -3.0), -3.0);
        assert_eq!(ReductionKind::Max.fold_i64(2, 9), 9);
    }

    #[test]
    fn commutativity_sample() {
        let k = ReductionKind::Sum;
        let a = k.fold_i64(k.fold_i64(k.identity_i64(), 3), 9);
        let b = k.fold_i64(k.fold_i64(k.identity_i64(), 9), 3);
        assert_eq!(a, b);
    }
}
