//! Property tests for the region data model: disjointness queries,
//! overlap volumes, intersections, and instance copy/fold semantics.

use il_geometry::{Domain, DomainPoint, Rect};
use il_region::{
    domain_intersection, domains_overlap, overlap_volume, Disjointness, FieldKind,
    FieldSpaceDesc, PhysicalInstance, RegionForest, ReductionKind,
};
use proptest::prelude::*;

fn domain1() -> impl Strategy<Value = Domain> {
    prop_oneof![
        (0i64..30, 0i64..12).prop_map(|(lo, len)| Domain::Rect1(Rect::new1(lo, lo + len))),
        proptest::collection::btree_set(0i64..40, 1..10)
            .prop_map(|s| Domain::sparse(s.into_iter().map(DomainPoint::new1).collect())),
    ]
}

proptest! {
    /// Overlap predicates and volumes agree with point enumeration.
    #[test]
    fn overlap_matches_enumeration(a in domain1(), b in domain1()) {
        let shared: Vec<DomainPoint> = a.iter().filter(|p| b.contains(*p)).collect();
        prop_assert_eq!(domains_overlap(&a, &b), !shared.is_empty());
        prop_assert_eq!(overlap_volume(&a, &b), shared.len() as u64);
        prop_assert_eq!(overlap_volume(&a, &b), overlap_volume(&b, &a));
        match domain_intersection(&a, &b) {
            None => prop_assert!(shared.is_empty()),
            Some(i) => {
                let mut got: Vec<DomainPoint> = i.iter().collect();
                let mut want = shared;
                got.sort_unstable();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
        }
    }

    /// `spaces_disjoint` is exact for arbitrary colorings: it answers
    /// true iff the domains share no point.
    #[test]
    fn spaces_disjoint_is_exact(
        doms in proptest::collection::vec(domain1(), 2..6),
    ) {
        let mut forest = RegionForest::new();
        let fs = forest.create_field_space(FieldSpaceDesc::new());
        let region = forest.create_region(Domain::range(64), fs);
        let coloring: Vec<(DomainPoint, Domain)> = doms
            .iter()
            .enumerate()
            .map(|(i, d)| (DomainPoint::new1(i as i64), d.clone()))
            .collect();
        let p = forest.create_partition(
            region.space,
            Domain::range(doms.len() as i64),
            coloring,
            Disjointness::Compute,
        );
        // Partition disjointness flag agrees with pairwise overlap.
        let any_overlap = (0..doms.len()).any(|i| {
            (i + 1..doms.len()).any(|j| domains_overlap(&doms[i], &doms[j]))
        });
        prop_assert_eq!(forest.is_disjoint(p), !any_overlap);
        // Space-level queries are exact.
        for i in 0..doms.len() {
            for j in 0..doms.len() {
                let si = forest.subspace(p, DomainPoint::new1(i as i64));
                let sj = forest.subspace(p, DomainPoint::new1(j as i64));
                let disjoint = forest.spaces_disjoint(si, sj);
                if i == j {
                    prop_assert_eq!(disjoint, doms[i].is_empty());
                } else {
                    prop_assert_eq!(disjoint, !domains_overlap(&doms[i], &doms[j]));
                }
            }
        }
    }

    /// copy_from moves exactly the overlap; fold_from is additive and
    /// commutative across producers.
    #[test]
    fn instance_copy_and_fold(
        vals in proptest::collection::vec(-100.0f64..100.0, 10),
        lo in 0i64..5,
        len in 0i64..6,
    ) {
        let mut fsd = FieldSpaceDesc::new();
        let f = fsd.add("x", FieldKind::F64);
        let whole: Domain = Rect::new1(0, 9).into();
        let mut src = PhysicalInstance::new(whole.clone(), &fsd, &[]);
        let mut dst = PhysicalInstance::new(whole.clone(), &fsd, &[]);
        for (i, v) in vals.iter().enumerate() {
            src.set(f, DomainPoint::new1(i as i64), *v);
        }
        let window: Domain = Rect::new1(lo, (lo + len).min(9)).into();
        dst.copy_from(&src, &window, &[f]);
        for i in 0..10i64 {
            let got: f64 = dst.get(f, DomainPoint::new1(i));
            if window.contains(DomainPoint::new1(i)) {
                prop_assert_eq!(got, vals[i as usize]);
            } else {
                prop_assert_eq!(got, 0.0);
            }
        }
        // Fold twice = add twice.
        let mut acc = PhysicalInstance::new(whole.clone(), &fsd, &[]);
        acc.fold_from(&src, &window, &[f], ReductionKind::Sum);
        acc.fold_from(&src, &window, &[f], ReductionKind::Sum);
        for p in window.iter() {
            let got: f64 = acc.get(f, p);
            prop_assert!((got - 2.0 * vals[p.x() as usize]).abs() < 1e-12);
        }
    }

    /// Min/Max folds are idempotent and order-insensitive.
    #[test]
    fn min_max_fold_laws(a in -50i64..50, b in -50i64..50) {
        for kind in [ReductionKind::Min, ReductionKind::Max] {
            let ab = kind.fold_i64(kind.fold_i64(kind.identity_i64(), a), b);
            let ba = kind.fold_i64(kind.fold_i64(kind.identity_i64(), b), a);
            prop_assert_eq!(ab, ba);
            prop_assert_eq!(kind.fold_i64(ab, ab), ab);
        }
    }
}

mod bvh_props {
    use il_geometry::DomainPoint;
    use il_region::{BBox, BvhSet};
    use proptest::prelude::*;

    proptest! {
        /// BVH queries return exactly the brute-force overlap set, across
        /// rebuild boundaries.
        #[test]
        fn bvh_query_equals_bruteforce(
            boxes in proptest::collection::vec((-100i64..100, 0i64..30, -100i64..100, 0i64..30), 1..150),
            q in (-120i64..120, 0i64..50, -120i64..120, 0i64..50),
        ) {
            let mut set = BvhSet::new();
            let items: Vec<BBox> = boxes
                .iter()
                .map(|&(x, w, y, h)| {
                    BBox::new(DomainPoint::new2(x, y), DomainPoint::new2(x + w, y + h))
                })
                .collect();
            for (i, b) in items.iter().enumerate() {
                set.insert(*b, i);
            }
            let query = BBox::new(
                DomainPoint::new2(q.0, q.2),
                DomainPoint::new2(q.0 + q.1, q.2 + q.3),
            );
            let mut got = Vec::new();
            set.query(&query, &mut got);
            got.sort_unstable();
            let want: Vec<usize> = items
                .iter()
                .enumerate()
                .filter(|(_, b)| b.overlaps(&query))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(got, want);
        }
    }
}
