//! Property tests for the region data model: disjointness queries,
//! overlap volumes, intersections, and instance copy/fold semantics.
//! Runs on the hermetic `il-testkit` harness; note `one_of`/`map`
//! generators do not shrink, so failures report the original input.

use il_geometry::{Domain, DomainPoint, Rect};
use il_region::{
    domain_intersection, domains_overlap, overlap_volume, Disjointness, FieldKind, FieldSpaceDesc,
    PhysicalInstance, RegionForest, ReductionKind,
};
use il_testkit::prop::{check, f64s, i64s, map, one_of, vec_of, OneOf};
use il_testkit::{prop_assert, prop_assert_eq};
use std::collections::BTreeSet;

/// A small 1-D domain: either a dense interval or a sparse point set.
fn domain1() -> OneOf<Domain> {
    one_of(vec![
        Box::new(map((i64s(0..30), i64s(0..12)), |(lo, len)| {
            Domain::Rect1(Rect::new1(lo, lo + len))
        })),
        Box::new(map(vec_of(i64s(0..40), 1..10), |vals| {
            let set: BTreeSet<i64> = vals.into_iter().collect();
            Domain::sparse(set.into_iter().map(DomainPoint::new1).collect())
        })),
    ])
}

/// Overlap predicates and volumes agree with point enumeration.
#[test]
fn overlap_matches_enumeration() {
    check("overlap_matches_enumeration", &(domain1(), domain1()), |(a, b)| {
        let shared: Vec<DomainPoint> = a.iter().filter(|p| b.contains(*p)).collect();
        prop_assert_eq!(domains_overlap(a, b), !shared.is_empty());
        prop_assert_eq!(overlap_volume(a, b), shared.len() as u64);
        prop_assert_eq!(overlap_volume(a, b), overlap_volume(b, a));
        match domain_intersection(a, b) {
            None => prop_assert!(shared.is_empty()),
            Some(i) => {
                let mut got: Vec<DomainPoint> = i.iter().collect();
                let mut want = shared;
                got.sort_unstable();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
        }
        Ok(())
    });
}

/// `spaces_disjoint` is exact for arbitrary colorings: it answers
/// true iff the domains share no point.
#[test]
fn spaces_disjoint_is_exact() {
    check("spaces_disjoint_is_exact", &vec_of(domain1(), 2..6), |doms| {
        let mut forest = RegionForest::new();
        let fs = forest.create_field_space(FieldSpaceDesc::new());
        let region = forest.create_region(Domain::range(64), fs);
        let coloring: Vec<(DomainPoint, Domain)> = doms
            .iter()
            .enumerate()
            .map(|(i, d)| (DomainPoint::new1(i as i64), d.clone()))
            .collect();
        let p = forest.create_partition(
            region.space,
            Domain::range(doms.len() as i64),
            coloring,
            Disjointness::Compute,
        );
        // Partition disjointness flag agrees with pairwise overlap.
        let any_overlap = (0..doms.len())
            .any(|i| (i + 1..doms.len()).any(|j| domains_overlap(&doms[i], &doms[j])));
        prop_assert_eq!(forest.is_disjoint(p), !any_overlap);
        // Space-level queries are exact.
        for i in 0..doms.len() {
            for j in 0..doms.len() {
                let si = forest.subspace(p, DomainPoint::new1(i as i64));
                let sj = forest.subspace(p, DomainPoint::new1(j as i64));
                let disjoint = forest.spaces_disjoint(si, sj);
                if i == j {
                    prop_assert_eq!(disjoint, doms[i].is_empty());
                } else {
                    prop_assert_eq!(disjoint, !domains_overlap(&doms[i], &doms[j]));
                }
            }
        }
        Ok(())
    });
}

/// copy_from moves exactly the overlap; fold_from is additive and
/// commutative across producers.
#[test]
fn instance_copy_and_fold() {
    let gen = (vec_of(f64s(-100.0..100.0), 10..11), i64s(0..5), i64s(0..6));
    check("instance_copy_and_fold", &gen, |(vals, lo, len)| {
        let (lo, len) = (*lo, *len);
        let mut fsd = FieldSpaceDesc::new();
        let f = fsd.add("x", FieldKind::F64);
        let whole: Domain = Rect::new1(0, 9).into();
        let mut src = PhysicalInstance::new(whole.clone(), &fsd, &[]);
        let mut dst = PhysicalInstance::new(whole.clone(), &fsd, &[]);
        for (i, v) in vals.iter().enumerate() {
            src.set(f, DomainPoint::new1(i as i64), *v);
        }
        let window: Domain = Rect::new1(lo, (lo + len).min(9)).into();
        dst.copy_from(&src, &window, &[f]);
        for i in 0..10i64 {
            let got: f64 = dst.get(f, DomainPoint::new1(i));
            if window.contains(DomainPoint::new1(i)) {
                prop_assert_eq!(got, vals[i as usize]);
            } else {
                prop_assert_eq!(got, 0.0);
            }
        }
        // Fold twice = add twice.
        let mut acc = PhysicalInstance::new(whole.clone(), &fsd, &[]);
        acc.fold_from(&src, &window, &[f], ReductionKind::Sum);
        acc.fold_from(&src, &window, &[f], ReductionKind::Sum);
        for p in window.iter() {
            let got: f64 = acc.get(f, p);
            prop_assert!((got - 2.0 * vals[p.x() as usize]).abs() < 1e-12);
        }
        Ok(())
    });
}

/// Min/Max folds are idempotent and order-insensitive.
#[test]
fn min_max_fold_laws() {
    check("min_max_fold_laws", &(i64s(-50..50), i64s(-50..50)), |&(a, b)| {
        for kind in [ReductionKind::Min, ReductionKind::Max] {
            let ab = kind.fold_i64(kind.fold_i64(kind.identity_i64(), a), b);
            let ba = kind.fold_i64(kind.fold_i64(kind.identity_i64(), b), a);
            prop_assert_eq!(ab, ba);
            prop_assert_eq!(kind.fold_i64(ab, ab), ab);
        }
        Ok(())
    });
}

mod bvh_props {
    use il_geometry::DomainPoint;
    use il_region::{BBox, BvhSet};
    use il_testkit::prop::{check, i64s, vec_of};
    use il_testkit::prop_assert_eq;

    /// BVH queries return exactly the brute-force overlap set, across
    /// rebuild boundaries.
    #[test]
    fn bvh_query_equals_bruteforce() {
        let gen = (
            vec_of((i64s(-100..100), i64s(0..30), i64s(-100..100), i64s(0..30)), 1..150),
            (i64s(-120..120), i64s(0..50), i64s(-120..120), i64s(0..50)),
        );
        check("bvh_query_equals_bruteforce", &gen, |(boxes, q)| {
            let mut set = BvhSet::new();
            let items: Vec<BBox> = boxes
                .iter()
                .map(|&(x, w, y, h)| {
                    BBox::new(DomainPoint::new2(x, y), DomainPoint::new2(x + w, y + h))
                })
                .collect();
            for (i, b) in items.iter().enumerate() {
                set.insert(*b, i);
            }
            let query = BBox::new(
                DomainPoint::new2(q.0, q.2),
                DomainPoint::new2(q.0 + q.1, q.2 + q.3),
            );
            let mut got = Vec::new();
            set.query(&query, &mut got);
            got.sort_unstable();
            let want: Vec<usize> = items
                .iter()
                .enumerate()
                .filter(|(_, b)| b.overlaps(&query))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(got, want);
            Ok(())
        });
    }
}
