//! Runtime configuration and the calibrated cost model.

use crate::sdc::ReplicationConfig;
use il_machine::{FaultSpec, HierarchySpec, SimTime};

/// Whether task bodies really execute or are only cost-modeled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecutionMode {
    /// Execute real kernels over real physical instances, including real
    /// inter-node copies. Used by tests and examples on small machines;
    /// results are bit-identical across all runtime configurations.
    Validate,
    /// Skip kernel bodies and data allocation; charge modeled durations
    /// only. Used by the scaling experiments (Figures 4–10) at up to 1024
    /// nodes.
    Scale,
}

/// Configuration of one runtime execution — the axes of the paper's
/// evaluation (§6.2).
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of nodes of the simulated machine.
    pub nodes: usize,
    /// Dynamic control replication (the "DCR" axis).
    pub dcr: bool,
    /// Index launches enabled (the "IDX" axis). When false every index
    /// launch is expanded into individual task launches at issuance.
    pub idx: bool,
    /// Legion-style tracing of repeated task-graph fragments. Note the §6
    /// interaction: without DCR, tracing works at individual-task
    /// granularity and forces expansion of index launches *before*
    /// distribution.
    pub tracing: bool,
    /// Run the dynamic projection-functor checks for launches the static
    /// analyzer could not prove (§4). Disabling them (after a verified
    /// run) removes their O(|D|) issuance cost, as in Figure 10.
    pub dynamic_checks: bool,
    /// Collect a structured per-stage event log of the run (op, task,
    /// node, stage, start, duration), returned in
    /// [`RunReport::trace`](crate::RunReport::trace) and exportable as
    /// Chrome `about:tracing` JSON. Off by default: the log is
    /// observability, never cost — it does not change simulated time.
    pub trace: bool,
    /// Run the pipeline audits at the end of the run: credit
    /// conservation (every task's initial wait count is paid by
    /// exactly-once credits) and slice-tree coverage (the non-DCR
    /// recursive-halving scatter delivers every slice exactly once).
    /// Defaults to on in debug builds, off in release.
    pub audit: bool,
    /// Memoize hybrid-analysis verdicts by launch signature during
    /// expansion, so repeated iterations of the same launch shape (every
    /// app's time loop) skip re-analysis — the Lee et al. tracing pattern
    /// applied to the analysis itself. This is a *host-side* optimization:
    /// it never changes simulated time (cache hits are the launches the
    /// tracing cost model already charges at `trace_replay_per_task`
    /// rates), only how fast the simulator itself runs. Defaults to on;
    /// turning it off exists for the cache-equivalence tests.
    pub analysis_cache: bool,
    /// Whole-sequence trace capture & replay during expansion: a rolling
    /// window over launch signatures detects a repeated launch sequence
    /// (every app's time loop), captures its fully expanded dependence
    /// graph, sharding decisions, and distribution plan as a
    /// [`LaunchTrace`](crate::replay::LaunchTrace), and replays the trace
    /// on subsequent iterations instead of re-running logical/physical
    /// analysis — invalidating on any partition, privilege, domain, or
    /// functor change. Like [`analysis_cache`](Self::analysis_cache) this
    /// is *host-side* memoization: replayed runs are byte-identical to
    /// replay-off runs (locked by `tests/trace_replay.rs`); only the
    /// host-side expansion cost drops. Defaults to on; off restores
    /// bit-for-bit pre-subsystem behavior.
    pub trace_replay: bool,
    /// Execute or model task bodies.
    pub mode: ExecutionMode,
    /// Cost model constants.
    pub cost: CostModel,
    /// Seeded fault injection and recovery. `None` (the default) leaves
    /// every fault/recovery code path inert, so fault-free runs remain
    /// byte-identical to a build without this subsystem.
    pub faults: Option<FaultConfig>,
    /// Silent-data-corruption defense: which tasks execute on k nodes
    /// with output-digest voting. `None` (the default) leaves the
    /// replication/verification path inert, so defense-off runs remain
    /// byte-identical to a build without this subsystem.
    pub replication: Option<ReplicationConfig>,
    /// Hierarchical interconnect topology. `None` (the default) keeps the
    /// original flat α–β network, so every existing figure CSV stays
    /// byte-identical; `Some(spec)` routes messages through the leaf/pod
    /// switch tree with per-link contention accounting.
    pub net_hierarchy: Option<HierarchySpec>,
}

impl RuntimeConfig {
    /// The paper's best configuration: DCR + index launches, tracing and
    /// dynamic checks on, in scale (modeled) execution.
    pub fn scale(nodes: usize) -> Self {
        RuntimeConfig {
            nodes,
            dcr: true,
            idx: true,
            tracing: true,
            dynamic_checks: true,
            trace: false,
            audit: cfg!(debug_assertions),
            analysis_cache: true,
            trace_replay: true,
            mode: ExecutionMode::Scale,
            cost: CostModel::calibrated(),
            faults: None,
            replication: None,
            net_hierarchy: None,
        }
    }

    /// Validation-mode configuration for small machines.
    pub fn validate(nodes: usize) -> Self {
        RuntimeConfig {
            mode: ExecutionMode::Validate,
            ..RuntimeConfig::scale(nodes)
        }
    }

    /// Set the DCR/IDX axes (the four corners of Figures 4–8).
    pub fn with_axes(mut self, dcr: bool, idx: bool) -> Self {
        self.dcr = dcr;
        self.idx = idx;
        self
    }

    /// Enable/disable tracing.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Enable/disable the dynamic safety checks.
    pub fn with_dynamic_checks(mut self, on: bool) -> Self {
        self.dynamic_checks = on;
        self
    }

    /// Enable/disable structured per-stage trace collection.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enable/disable the end-of-run pipeline audits.
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Enable/disable the launch-signature analysis cache.
    pub fn with_analysis_cache(mut self, on: bool) -> Self {
        self.analysis_cache = on;
        self
    }

    /// Enable/disable trace capture & replay of repeated launch
    /// sequences.
    pub fn with_trace_replay(mut self, on: bool) -> Self {
        self.trace_replay = on;
        self
    }

    /// Enable seeded fault injection with the default fault mix.
    pub fn with_faults(mut self, seed: u64) -> Self {
        self.faults = Some(FaultConfig::from_seed(seed));
        self
    }

    /// Install a fully specified fault configuration.
    pub fn with_fault_config(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enable seeded silent-data-corruption injection: a corruption-only
    /// fault schedule (no crashes, drops, duplicates, or slow nodes) for
    /// `seed`. Compose with [`with_replication`](Self::with_replication)
    /// to turn the defense on.
    pub fn with_corruption(mut self, seed: u64) -> Self {
        self.faults = Some(FaultConfig::corrupting(seed));
        self
    }

    /// Install a replication policy for the silent-data-corruption
    /// defense.
    pub fn with_replication(mut self, replication: ReplicationConfig) -> Self {
        self.replication = Some(replication);
        self
    }

    /// Route messages through a hierarchical interconnect instead of the
    /// flat α–β network.
    pub fn with_net_hierarchy(mut self, spec: HierarchySpec) -> Self {
        self.net_hierarchy = Some(spec);
        self
    }
}

/// Seeded fault-injection parameters plus the runtime's recovery knobs.
///
/// The machine-side fault schedule ([`FaultSpec`]/`FaultPlan`) is derived
/// deterministically from `seed` and the machine shape, so the same
/// `(seed, RuntimeConfig)` always yields the same crashes, drops,
/// duplications, and slow nodes — and therefore a byte-identical
/// [`RunReport`](crate::RunReport).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Master seed for the fault schedule.
    pub seed: u64,
    /// Per-mille probability a data-plane message is dropped.
    pub drop_per_mille: u16,
    /// Per-mille probability a data-plane message is duplicated.
    pub dup_per_mille: u16,
    /// Maximum number of node crashes to schedule (node 0 never crashes).
    pub max_crashes: usize,
    /// Crash times are drawn uniformly from this window.
    pub crash_window: (SimTime, SimTime),
    /// Number of slowed nodes.
    pub slow_nodes: usize,
    /// Runtime-work multiplier on slowed nodes.
    pub slow_factor: u64,
    /// How long the coordinator waits for an op's completion reports
    /// before probing/retrying (per-attempt base; backs off exponentially).
    pub ack_timeout: SimTime,
    /// Retries per op before the coordinator declares the assigned node
    /// dead (confirmed against the fault plan) and re-shards its work.
    pub max_retries: u32,
    /// Number of silently-corrupting nodes to schedule (node 0 never
    /// corrupts). Defaults to 0, keeping pre-existing fault schedules
    /// byte-identical.
    pub corrupt_nodes: usize,
    /// Per-mille probability a corrupt node flips bits in one of its task
    /// outputs.
    pub corrupt_per_mille: u16,
    /// Per-mille probability a corrupt node flips bits in a data-plane
    /// message payload it sends.
    pub corrupt_payload_per_mille: u16,
}

impl FaultConfig {
    /// The default chaos mix for `seed`: moderate drop/duplication rates,
    /// at most one crash, one slow node, no corruption.
    pub fn from_seed(seed: u64) -> Self {
        let spec = FaultSpec::default();
        FaultConfig {
            seed,
            drop_per_mille: spec.drop_per_mille,
            dup_per_mille: spec.dup_per_mille,
            max_crashes: spec.max_crashes,
            crash_window: spec.crash_window,
            slow_nodes: spec.slow_nodes,
            slow_factor: spec.slow_factor,
            ack_timeout: SimTime::ms(5),
            max_retries: 3,
            corrupt_nodes: 0,
            corrupt_per_mille: 0,
            corrupt_payload_per_mille: 0,
        }
    }

    /// A corruption-only schedule for `seed`: silent bit flips on one
    /// node's task outputs and message payloads, with every announced
    /// fault (crashes, drops, duplicates, slow nodes) turned off — the
    /// isolation mix the corruption chaos tier runs under.
    pub fn corrupting(seed: u64) -> Self {
        FaultConfig {
            drop_per_mille: 0,
            dup_per_mille: 0,
            max_crashes: 0,
            slow_nodes: 0,
            corrupt_nodes: 1,
            corrupt_per_mille: 250,
            corrupt_payload_per_mille: 125,
            ..FaultConfig::from_seed(seed)
        }
    }

    /// The machine-side schedule parameters of this configuration.
    pub fn to_spec(&self) -> FaultSpec {
        FaultSpec {
            drop_per_mille: self.drop_per_mille,
            dup_per_mille: self.dup_per_mille,
            max_crashes: self.max_crashes,
            crash_window: self.crash_window,
            slow_nodes: self.slow_nodes,
            slow_factor: self.slow_factor,
            corrupt_nodes: self.corrupt_nodes,
            corrupt_per_mille: self.corrupt_per_mille,
            corrupt_payload_per_mille: self.corrupt_payload_per_mille,
        }
    }

    /// Whether this configuration schedules any silent corruption.
    pub fn corrupts(&self) -> bool {
        self.corrupt_nodes > 0
            && (self.corrupt_per_mille > 0 || self.corrupt_payload_per_mille > 0)
    }
}

/// Calibrated per-operation runtime overheads.
///
/// Values are chosen to sit in the regime the paper reports for
/// Regent/Legion on Piz Daint: task launch overheads of a few tens of
/// microseconds, dynamic-check costs of ~1.3 ns per functor evaluation
/// (Table 2: 10⁶ identity evaluations ≈ 1.3 ms), and an Aries-like
/// network. Absolute throughputs are not expected to match the paper's
/// hardware; the scaling *shapes* are.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Issuing one index-launch descriptor from the application to the
    /// runtime (one API call, §5 "a set of tasks can be issued with a
    /// single runtime call").
    pub issue_launch: SimTime,
    /// Issuing one individual task launch (paid |D| times when index
    /// launches are disabled).
    pub issue_task: SimTime,
    /// Logical (whole-partition) dependence analysis of one index-launch
    /// descriptor.
    pub logical_launch: SimTime,
    /// Logical dependence analysis of one individual task.
    pub logical_task: SimTime,
    /// Evaluating the sharding functor / expanding one local point during
    /// distribution.
    pub distribute_point: SimTime,
    /// Per-task physical analysis base cost; multiplied by log2(|P|)
    /// (§5: O(|D|_local · log |P|) via the distributed bounding volume
    /// hierarchy).
    pub physical_per_task: SimTime,
    /// Mapper invocation + instance selection per task.
    pub map_task: SimTime,
    /// Fixed processor-side overhead to start one task.
    pub start_task: SimTime,
    /// One projection-functor evaluation inside the dynamic check
    /// (Table 2/3 regime).
    pub dyn_check_per_eval: SimTime,
    /// Tracing: replaying one task's analysis from a captured trace,
    /// replacing `logical_task` + most of the physical analysis.
    pub trace_replay_per_task: SimTime,
    /// Centralized (non-DCR) runtime: per-unit completion/coordination
    /// processing on node 0. Without DCR every task's mapping
    /// coordination and completion flows through the owner node's
    /// runtime instance; with index launches (and no tracing) the unit
    /// is a whole slice, restoring scalability — this constant is what
    /// makes the centralized mode an honest bottleneck.
    pub central_complete: SimTime,
    /// Serialized size of a single-task launch message (non-DCR
    /// distribution of individual tasks).
    pub task_message_bytes: u64,
    /// Serialized size of an index-launch slice descriptor (fixed,
    /// independent of how many tasks the slice represents — the O(1)
    /// representation).
    pub slice_message_bytes: u64,
    /// Size of a completion/dependence notification message.
    pub notify_message_bytes: u64,
    /// Coordinator-side cost of one recovery probe: inspecting the
    /// completion journal for an outstanding op when its acknowledgement
    /// timer fires. Only charged when fault injection is enabled.
    pub recovery_check: SimTime,
    /// Computing the content digest of one task's output (the
    /// silent-data-corruption checksum). Only charged for replicated
    /// tasks.
    pub verify_digest: SimTime,
    /// Owner-side comparison of one replica's digest against the
    /// primary's during the corruption vote.
    pub verify_vote: SimTime,
    /// Size of a replica-digest report message.
    pub digest_message_bytes: u64,
}

impl CostModel {
    /// The default calibration used by all experiments.
    pub fn calibrated() -> Self {
        CostModel {
            issue_launch: SimTime::us(10),
            issue_task: SimTime::us(45),
            logical_launch: SimTime::us(12),
            logical_task: SimTime::us(18),
            distribute_point: SimTime::us(3),
            physical_per_task: SimTime::us(3),
            map_task: SimTime::us(12),
            start_task: SimTime::us(8),
            dyn_check_per_eval: SimTime::ns(2),
            trace_replay_per_task: SimTime::us(5),
            central_complete: SimTime::us(80),
            task_message_bytes: 512,
            slice_message_bytes: 256,
            notify_message_bytes: 64,
            recovery_check: SimTime::us(5),
            verify_digest: SimTime::us(6),
            verify_vote: SimTime::us(2),
            digest_message_bytes: 32,
        }
    }

    /// A zero-overhead cost model (unit tests that only care about
    /// semantics).
    pub fn free() -> Self {
        CostModel {
            issue_launch: SimTime::ZERO,
            issue_task: SimTime::ZERO,
            logical_launch: SimTime::ZERO,
            logical_task: SimTime::ZERO,
            distribute_point: SimTime::ZERO,
            physical_per_task: SimTime::ZERO,
            map_task: SimTime::ZERO,
            start_task: SimTime::ZERO,
            dyn_check_per_eval: SimTime::ZERO,
            trace_replay_per_task: SimTime::ZERO,
            central_complete: SimTime::ZERO,
            task_message_bytes: 0,
            slice_message_bytes: 0,
            notify_message_bytes: 0,
            recovery_check: SimTime::ZERO,
            verify_digest: SimTime::ZERO,
            verify_vote: SimTime::ZERO,
            digest_message_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let c = RuntimeConfig::scale(64);
        assert!(c.dcr && c.idx && c.tracing && c.dynamic_checks);
        assert_eq!(c.mode, ExecutionMode::Scale);
        let v = RuntimeConfig::validate(4);
        assert_eq!(v.mode, ExecutionMode::Validate);
        let c2 = c.with_axes(false, true).with_tracing(false).with_dynamic_checks(false);
        assert!(!c2.dcr && c2.idx && !c2.tracing && !c2.dynamic_checks);
        // Trace collection is opt-in; audits follow the build profile.
        assert!(!c2.trace);
        assert_eq!(c2.audit, cfg!(debug_assertions));
        let c3 = c2.with_trace(true).with_audit(true);
        assert!(c3.trace && c3.audit);
        // The analysis cache defaults to on and toggles independently.
        assert!(c3.analysis_cache);
        assert!(!c3.clone().with_analysis_cache(false).analysis_cache);
        // Trace replay likewise defaults to on, toggles independently,
        // and turning off the cache leaves it alone (and vice versa).
        assert!(c3.trace_replay);
        let c4 = c3.clone().with_trace_replay(false);
        assert!(!c4.trace_replay && c4.analysis_cache);
        assert!(c4.clone().with_analysis_cache(false).analysis_cache == false);
        assert!(!c4.with_analysis_cache(false).trace_replay);
    }

    #[test]
    fn dyn_check_calibration_matches_table2_regime() {
        // 10^6 evaluations should land near the paper's ~1.3 ms.
        let c = CostModel::calibrated();
        let total = c.dyn_check_per_eval * 1_000_000;
        assert!(total >= SimTime::us(500) && total <= SimTime::ms(5), "{total}");
    }
}
