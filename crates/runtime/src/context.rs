//! Per-node instance stores and the task execution context.
//!
//! In validation mode every simulated node owns a real [`InstanceStore`]:
//! one [`PhysicalInstance`] per subregion the node touches. Task bodies
//! receive a [`TaskContext`] with the instances for their region
//! requirements checked out of the store; inter-node dependencies copy (or
//! reduction-fold) the overlapping points between producer and consumer
//! instances, mirroring Legion's automatic data movement (§2).

use il_geometry::{Domain, DomainPoint};
use il_region::{
    FieldId, FieldSpaceId, FieldValue, IndexSpaceId, PhysicalInstance, RegionForest,
    RegionTreeId, ReductionKind,
};
use std::collections::HashMap;

/// Key of an instance within a node's store: the subregion it holds.
pub type InstanceKey = (RegionTreeId, IndexSpaceId);

/// All physical instances resident on one simulated node.
///
/// `PartialEq` compares the full resident data set; the chaos suite uses
/// it to assert that a faulted run converges to the same final data as a
/// fault-free one.
#[derive(Default, Debug, PartialEq)]
pub struct InstanceStore {
    insts: HashMap<InstanceKey, PhysicalInstance>,
}

impl InstanceStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (allocating if needed) the instance for a subregion, with all
    /// fields of `field_space`.
    pub fn ensure(
        &mut self,
        forest: &RegionForest,
        tree: RegionTreeId,
        space: IndexSpaceId,
        field_space: FieldSpaceId,
    ) -> &mut PhysicalInstance {
        self.insts.entry((tree, space)).or_insert_with(|| {
            PhysicalInstance::new(
                forest.domain(space).clone(),
                forest.field_space(field_space),
                &[],
            )
        })
    }

    /// Look up an existing instance.
    pub fn get(&self, key: InstanceKey) -> Option<&PhysicalInstance> {
        self.insts.get(&key)
    }

    /// Look up an existing instance mutably.
    pub fn get_mut(&mut self, key: InstanceKey) -> Option<&mut PhysicalInstance> {
        self.insts.get_mut(&key)
    }

    /// Check an instance out of the store (for the duration of a task).
    pub fn take(&mut self, key: InstanceKey) -> Option<PhysicalInstance> {
        self.insts.remove(&key)
    }

    /// Return a checked-out instance.
    pub fn put(&mut self, key: InstanceKey, inst: PhysicalInstance) {
        self.insts.insert(key, inst);
    }

    /// Number of resident instances.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True iff no instances are resident.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Total resident bytes.
    pub fn bytes(&self) -> u64 {
        self.insts.values().map(|i| i.bytes()).sum()
    }
}

/// Execution context handed to a task body (validation mode).
///
/// `ctx.inst(r)` / `ctx.inst_mut(r)` expose the physical instance backing
/// region requirement `r`; `ctx.domain(r)` is the concrete subregion the
/// projection functor selected for this point task.
pub struct TaskContext {
    /// The task's point within the launch domain.
    pub point: DomainPoint,
    /// Scalar by-value arguments of the launch.
    pub scalars: Vec<f64>,
    slots: Vec<(InstanceKey, PhysicalInstance)>,
    req_slot: Vec<usize>,
    req_domain: Vec<Domain>,
}

impl TaskContext {
    /// Assemble a context: one slot per distinct instance key, with
    /// requirements mapped onto slots (two requirements naming the same
    /// subregion share a slot).
    pub fn assemble(
        point: DomainPoint,
        scalars: Vec<f64>,
        reqs: Vec<(InstanceKey, Domain)>,
        store: &mut InstanceStore,
    ) -> Self {
        let mut slots: Vec<(InstanceKey, PhysicalInstance)> = Vec::new();
        let mut req_slot = Vec::with_capacity(reqs.len());
        let mut req_domain = Vec::with_capacity(reqs.len());
        for (key, domain) in reqs {
            let slot = match slots.iter().position(|(k, _)| *k == key) {
                Some(s) => s,
                None => {
                    let inst = store
                        .take(key)
                        .unwrap_or_else(|| panic!("instance {key:?} not resident"));
                    slots.push((key, inst));
                    slots.len() - 1
                }
            };
            req_slot.push(slot);
            req_domain.push(domain);
        }
        TaskContext { point, scalars, slots, req_slot, req_domain }
    }

    /// Return all instances to the store after the body ran.
    pub fn disassemble(self, store: &mut InstanceStore) {
        for (key, inst) in self.slots {
            store.put(key, inst);
        }
    }

    /// The concrete subregion domain of requirement `req`.
    pub fn domain(&self, req: usize) -> &Domain {
        &self.req_domain[req]
    }

    /// Scalar argument `i`.
    pub fn scalar(&self, i: usize) -> f64 {
        self.scalars[i]
    }

    /// The instance backing requirement `req`.
    pub fn inst(&self, req: usize) -> &PhysicalInstance {
        &self.slots[self.req_slot[req]].1
    }

    /// The instance backing requirement `req`, mutably.
    pub fn inst_mut(&mut self, req: usize) -> &mut PhysicalInstance {
        &mut self.slots[self.req_slot[req]].1
    }

    /// Read `field` at `p` through requirement `req`.
    pub fn read<T: FieldValue>(&self, req: usize, field: FieldId, p: DomainPoint) -> T {
        self.inst(req).get(field, p)
    }

    /// Write `field` at `p` through requirement `req`.
    pub fn write<T: FieldValue>(&mut self, req: usize, field: FieldId, p: DomainPoint, v: T) {
        self.inst_mut(req).set(field, p, v);
    }

    /// Fold `v` into `field` at `p` with reduction `kind` (for reduce
    /// privileges; the instance is an identity-filled reduction buffer).
    pub fn fold_f64(
        &mut self,
        req: usize,
        field: FieldId,
        p: DomainPoint,
        kind: ReductionKind,
        v: f64,
    ) {
        let cur: f64 = self.read(req, field, p);
        self.write(req, field, p, kind.fold_f64(cur, v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_region::{equal_partition_1d, FieldKind, FieldSpaceDesc};

    fn setup() -> (RegionForest, RegionTreeId, IndexSpaceId, IndexSpaceId, FieldSpaceId, FieldId) {
        let mut forest = RegionForest::new();
        let mut fsd = FieldSpaceDesc::new();
        let x = fsd.add("x", FieldKind::F64);
        let fs = forest.create_field_space(fsd);
        let region = forest.create_region(Domain::range(10), fs);
        let part = equal_partition_1d(&mut forest, region.space, 2);
        let s0 = forest.subspace(part, DomainPoint::new1(0));
        let s1 = forest.subspace(part, DomainPoint::new1(1));
        (forest, region.tree, s0, s1, fs, x)
    }

    #[test]
    fn store_ensure_and_bytes() {
        let (forest, tree, s0, _, fs, _) = setup();
        let mut store = InstanceStore::new();
        assert!(store.is_empty());
        store.ensure(&forest, tree, s0, fs);
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes(), 5 * 8); // 5 points × f64
        // Idempotent.
        store.ensure(&forest, tree, s0, fs);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn context_checkout_and_rw() {
        let (forest, tree, s0, s1, fs, x) = setup();
        let mut store = InstanceStore::new();
        store.ensure(&forest, tree, s0, fs);
        store.ensure(&forest, tree, s1, fs);
        let d0 = forest.domain(s0).clone();
        let d1 = forest.domain(s1).clone();
        let mut ctx = TaskContext::assemble(
            DomainPoint::new1(0),
            vec![2.5],
            vec![((tree, s0), d0.clone()), ((tree, s1), d1)],
            &mut store,
        );
        assert_eq!(store.len(), 0); // both checked out
        assert_eq!(ctx.scalar(0), 2.5);
        for p in d0.iter() {
            let v: f64 = ctx.read(0, x, p);
            ctx.write(1, x, DomainPoint::new1(p.x() + 5), v + 1.0);
        }
        ctx.disassemble(&mut store);
        assert_eq!(store.len(), 2);
        let inst1 = store.get((tree, s1)).unwrap();
        assert_eq!(inst1.get::<f64>(x, DomainPoint::new1(7)), 1.0);
    }

    #[test]
    fn duplicate_keys_share_a_slot() {
        let (forest, tree, s0, _, fs, x) = setup();
        let mut store = InstanceStore::new();
        store.ensure(&forest, tree, s0, fs);
        let d0 = forest.domain(s0).clone();
        let mut ctx = TaskContext::assemble(
            DomainPoint::new1(0),
            vec![],
            vec![((tree, s0), d0.clone()), ((tree, s0), d0)],
            &mut store,
        );
        ctx.write(0, x, DomainPoint::new1(2), 9.0f64);
        let through_other: f64 = ctx.read(1, x, DomainPoint::new1(2));
        assert_eq!(through_other, 9.0);
        ctx.disassemble(&mut store);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn fold_accumulates() {
        let (forest, tree, s0, _, fs, x) = setup();
        let mut store = InstanceStore::new();
        store
            .ensure(&forest, tree, s0, fs)
            .fill_identity(x, ReductionKind::Sum);
        let d0 = forest.domain(s0).clone();
        let mut ctx = TaskContext::assemble(
            DomainPoint::new1(0),
            vec![],
            vec![((tree, s0), d0)],
            &mut store,
        );
        let p = DomainPoint::new1(1);
        ctx.fold_f64(0, x, p, ReductionKind::Sum, 2.0);
        ctx.fold_f64(0, x, p, ReductionKind::Sum, 3.0);
        assert_eq!(ctx.read::<f64>(0, x, p), 5.0);
        ctx.disassemble(&mut store);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn checkout_of_missing_instance_panics() {
        let (forest, tree, s0, ..) = setup();
        let _ = forest;
        let mut store = InstanceStore::new();
        TaskContext::assemble(
            DomainPoint::new1(0),
            vec![],
            vec![((tree, s0), Domain::range(1))],
            &mut store,
        );
    }
}
